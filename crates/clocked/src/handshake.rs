//! The asynchronous-handshake baseline.
//!
//! §2.7 motivates the clock-free subset's speed by contrast: "Execution is
//! very fast, because we need not deal with asynchronous handshake, as it
//! is often used for exchanging values between modules when more abstract
//! timing is modeled by means of VHDL without introducing physical time."
//!
//! This module implements that *other* style so the claim can be measured:
//! the same register-transfer schedule is executed by communicating
//! agents — one per register, one per module, one per transfer — that
//! synchronize exclusively through **4-phase request/acknowledge
//! handshakes** in delta time. A sequencer walks the schedule (reads of a
//! step before its writes, preserving the abstract model's semantics) and
//! triggers each transfer agent through its own handshake.
//!
//! Every value exchange costs four signal transitions plus the wake-ups of
//! both parties; the style-comparison bench counts exactly how much more
//! delta-cycle traffic this is than the six-phase control-step scheme.

use clockless_core::value::kernel_resolver;
use clockless_core::{Guard, Op, RtModel, Step, Value};
use clockless_kernel::{KernelError, ProcessCtx, SignalId, SimStats, Simulator, Wait};

/// One schedulable action of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ActionKind {
    /// Fetch operands and run the module (read phases of a step).
    Read,
    /// Latch guard decisions for the step's writes — broadcast after all
    /// reads of the step but before any of its writes commit, so every
    /// write guard observes the same pre-commit register state the
    /// abstract model's wb phase does.
    GuardEval,
    /// Deliver the result into the destination register (write phases).
    Write,
}

/// A guard bound to the `_data` nets of the registers it reads.
type ResolvedGuard = (Guard, Vec<(String, SignalId)>);

fn eval_guard(ctx: &ProcessCtx<'_, Value>, rg: &ResolvedGuard) -> bool {
    rg.0.eval(|name| {
        rg.1.iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, s)| ctx.value(*s).num())
    })
}

/// The handshake rendering of a clock-free RT model.
///
/// # Examples
///
/// ```
/// use clockless_core::model::fig1_model;
/// use clockless_clocked::HandshakeSim;
/// use clockless_core::Value;
///
/// let model = fig1_model(3, 4);
/// let mut sim = HandshakeSim::new(&model)?;
/// sim.run_to_completion()?;
/// assert_eq!(sim.register_value("R1"), Some(Value::Num(7)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct HandshakeSim {
    model: RtModel,
    sim: Simulator<Value>,
    reg_data: Vec<SignalId>,
}

/// Per-module channel signal bundle (shared among clients; request and
/// data lines are resolved signals so the inactive clients' `DISC` drives
/// do not disturb the active one).
#[derive(Debug, Clone, Copy)]
struct ModuleChannel {
    req: SignalId,
    d1: SignalId,
    d2: SignalId,
    opsel: SignalId,
    ack: SignalId,
    res: SignalId,
}

/// Per-register write channel bundle.
#[derive(Debug, Clone, Copy)]
struct RegChannel {
    wreq: SignalId,
    wdata: SignalId,
    wack: SignalId,
    data: SignalId,
}

/// The module server: waits for a request, applies the selected
/// operation, acknowledges, and releases after the client does.
struct ModuleAgent {
    ch: ModuleChannel,
    ops: Vec<Op>,
    /// false = idle (awaiting request), true = serving (awaiting release).
    serving: bool,
    started: bool,
}

impl clockless_kernel::Process<Value> for ModuleAgent {
    fn resume(&mut self, ctx: &mut ProcessCtx<'_, Value>) -> Wait<Value> {
        if !self.serving {
            if *ctx.value(self.ch.req) == Value::Num(1) {
                let op_idx = ctx.value(self.ch.opsel).num().unwrap_or(0) as usize;
                let op = self.ops.get(op_idx).copied().unwrap_or(self.ops[0]);
                let a = *ctx.value(self.ch.d1);
                let b = *ctx.value(self.ch.d2);
                ctx.assign(self.ch.res, op.apply(a, b));
                ctx.assign(self.ch.ack, Value::Num(1));
                self.serving = true;
            }
        } else if *ctx.value(self.ch.req) == Value::Disc {
            ctx.assign(self.ch.ack, Value::Num(0));
            ctx.assign(self.ch.res, Value::Disc);
            self.serving = false;
        }
        if self.started {
            Wait::Same
        } else {
            self.started = true;
            Wait::Event(vec![self.ch.req])
        }
    }
}

/// The register server: waits for a write request, stores the data on its
/// output, acknowledges, releases.
struct RegAgent {
    ch: RegChannel,
    serving: bool,
    started: bool,
}

impl clockless_kernel::Process<Value> for RegAgent {
    fn resume(&mut self, ctx: &mut ProcessCtx<'_, Value>) -> Wait<Value> {
        if !self.serving {
            if *ctx.value(self.ch.wreq) == Value::Num(1) {
                let v = *ctx.value(self.ch.wdata);
                if v != Value::Disc {
                    ctx.assign(self.ch.data, v);
                }
                ctx.assign(self.ch.wack, Value::Num(1));
                self.serving = true;
            }
        } else if *ctx.value(self.ch.wreq) == Value::Disc {
            ctx.assign(self.ch.wack, Value::Num(0));
            self.serving = false;
        }
        if self.started {
            Wait::Same
        } else {
            self.started = true;
            Wait::Event(vec![self.ch.wreq])
        }
    }
}

/// States of a transfer agent's double handshake choreography.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransState {
    AwaitReadTrig,
    AwaitModuleAck,
    AwaitModuleRelease,
    AwaitReadTrigDrop,
    AwaitGuardEval,
    AwaitWriteTrig,
    AwaitRegAck,
    AwaitRegRelease,
    AwaitWriteTrigDrop,
    Finished,
}

/// One transfer's client agent: on the read trigger it fetches operands
/// (plain reads of the steady register outputs) and runs a 4-phase
/// handshake with the module; on the write trigger it runs a 4-phase
/// handshake with the destination register.
struct TransferAgent {
    // Trigger channel to/from the sequencer.
    read_trig: SignalId,
    read_ack: SignalId,
    write_trig: Option<SignalId>,
    write_ack: Option<SignalId>,
    // Operand sources (register data signals).
    src_a: Option<SignalId>,
    src_b: Option<SignalId>,
    op_index: i64,
    module: ModuleChannel,
    dest: Option<RegChannel>,
    // The tuple's guard, if any: on the read side a false guard replaces
    // the operands with DISC; on the write side the decision is latched
    // at the step's GuardEval broadcast and a false guard writes DISC
    // (which the register server ignores).
    guard: Option<ResolvedGuard>,
    gseval: Option<SignalId>,
    write_enabled: bool,
    result: Value,
    state: TransState,
    started: bool,
}

impl clockless_kernel::Process<Value> for TransferAgent {
    fn resume(&mut self, ctx: &mut ProcessCtx<'_, Value>) -> Wait<Value> {
        use TransState::*;
        // A single wake-up can enable at most one step of the protocol;
        // loop so back-to-back enabling events are not missed.
        loop {
            let next = match self.state {
                AwaitReadTrig => {
                    if *ctx.value(self.read_trig) == Value::Num(1) {
                        let pass = self.guard.as_ref().is_none_or(|g| eval_guard(ctx, g));
                        let (a, b) = if pass {
                            (
                                self.src_a.map(|s| *ctx.value(s)).unwrap_or(Value::Disc),
                                self.src_b.map(|s| *ctx.value(s)).unwrap_or(Value::Disc),
                            )
                        } else {
                            (Value::Disc, Value::Disc)
                        };
                        ctx.assign(self.module.d1, a);
                        ctx.assign(self.module.d2, b);
                        ctx.assign(self.module.opsel, Value::Num(self.op_index));
                        ctx.assign(self.module.req, Value::Num(1));
                        Some(AwaitModuleAck)
                    } else {
                        None
                    }
                }
                AwaitModuleAck => {
                    if *ctx.value(self.module.ack) == Value::Num(1) {
                        self.result = *ctx.value(self.module.res);
                        ctx.assign(self.module.d1, Value::Disc);
                        ctx.assign(self.module.d2, Value::Disc);
                        ctx.assign(self.module.opsel, Value::Disc);
                        ctx.assign(self.module.req, Value::Disc);
                        Some(AwaitModuleRelease)
                    } else {
                        None
                    }
                }
                AwaitModuleRelease => {
                    if *ctx.value(self.module.ack) == Value::Num(0) {
                        ctx.assign(self.read_ack, Value::Num(1));
                        Some(AwaitReadTrigDrop)
                    } else {
                        None
                    }
                }
                AwaitReadTrigDrop => {
                    if *ctx.value(self.read_trig) == Value::Num(0) {
                        ctx.assign(self.read_ack, Value::Num(0));
                        Some(match (self.dest.is_some(), self.gseval.is_some()) {
                            (true, true) => AwaitGuardEval,
                            (true, false) => AwaitWriteTrig,
                            (false, _) => Finished,
                        })
                    } else {
                        None
                    }
                }
                AwaitGuardEval => {
                    let gs = self.gseval.expect("guard states imply broadcast line");
                    if *ctx.value(gs) == Value::Num(1) {
                        let g = self.guard.as_ref().expect("gseval implies guard");
                        self.write_enabled = eval_guard(ctx, g);
                        Some(AwaitWriteTrig)
                    } else {
                        None
                    }
                }
                AwaitWriteTrig => {
                    let trig = self.write_trig.expect("write states imply write channel");
                    if *ctx.value(trig) == Value::Num(1) {
                        let dest = self.dest.expect("write states imply destination");
                        let v = if self.write_enabled {
                            self.result
                        } else {
                            Value::Disc
                        };
                        ctx.assign(dest.wdata, v);
                        ctx.assign(dest.wreq, Value::Num(1));
                        Some(AwaitRegAck)
                    } else {
                        None
                    }
                }
                AwaitRegAck => {
                    let dest = self.dest.expect("write states imply destination");
                    if *ctx.value(dest.wack) == Value::Num(1) {
                        ctx.assign(dest.wdata, Value::Disc);
                        ctx.assign(dest.wreq, Value::Disc);
                        Some(AwaitRegRelease)
                    } else {
                        None
                    }
                }
                AwaitRegRelease => {
                    let dest = self.dest.expect("write states imply destination");
                    if *ctx.value(dest.wack) == Value::Num(0) {
                        let ack = self.write_ack.expect("write states imply write channel");
                        ctx.assign(ack, Value::Num(1));
                        Some(AwaitWriteTrigDrop)
                    } else {
                        None
                    }
                }
                AwaitWriteTrigDrop => {
                    let trig = self.write_trig.expect("write states imply write channel");
                    if *ctx.value(trig) == Value::Num(0) {
                        let ack = self.write_ack.expect("write states imply write channel");
                        ctx.assign(ack, Value::Num(0));
                        Some(Finished)
                    } else {
                        None
                    }
                }
                Finished => None,
            };
            match next {
                Some(s) => self.state = s,
                None => break,
            }
        }
        if self.state == Finished {
            return Wait::Done;
        }
        if self.started {
            Wait::Same
        } else {
            self.started = true;
            let mut sens = vec![self.read_trig, self.module.ack];
            if let Some(t) = self.write_trig {
                sens.push(t);
            }
            if let Some(d) = self.dest {
                sens.push(d.wack);
            }
            if let Some(gs) = self.gseval {
                sens.push(gs);
            }
            Wait::Event(sens)
        }
    }
}

/// The sequencer: triggers each action in schedule order through its own
/// 4-phase handshake.
struct Sequencer {
    /// `(trigger, ack)` per action, in execution order. `None` ack marks
    /// an ack-less broadcast (guard evaluation): raise and move on.
    actions: Vec<(SignalId, Option<SignalId>)>,
    index: usize,
    /// false = trigger raised / awaiting ack, true = trigger dropped /
    /// awaiting release.
    dropping: bool,
    launched: bool,
    started: bool,
}

impl clockless_kernel::Process<Value> for Sequencer {
    fn resume(&mut self, ctx: &mut ProcessCtx<'_, Value>) -> Wait<Value> {
        loop {
            if self.index >= self.actions.len() {
                return Wait::Done;
            }
            let (trig, ack) = self.actions[self.index];
            let Some(ack) = ack else {
                ctx.assign(trig, Value::Num(1));
                self.index += 1;
                self.launched = false;
                continue;
            };
            if !self.launched {
                ctx.assign(trig, Value::Num(1));
                self.launched = true;
                self.dropping = false;
                break;
            } else if !self.dropping {
                if *ctx.value(ack) == Value::Num(1) {
                    ctx.assign(trig, Value::Num(0));
                    self.dropping = true;
                }
                break;
            } else if *ctx.value(ack) == Value::Num(0) {
                self.index += 1;
                self.launched = false;
                // loop: raise the next trigger immediately.
            } else {
                break;
            }
        }
        // Sensitivity must follow the current action's ack line. (The
        // loop above consumes ack-less broadcasts immediately, so the
        // action waited on here always has one.)
        if self.index < self.actions.len() {
            let (_, ack) = self.actions[self.index];
            let ack = ack.expect("broadcast actions never await");
            let w = Wait::Event(vec![ack]);
            if self.started {
                // The ack signal changes between actions; re-register.
                return w;
            }
            self.started = true;
            return w;
        }
        Wait::Done
    }
}

impl HandshakeSim {
    /// Builds and initializes the handshake rendering of `model`.
    ///
    /// Guarded transfers are honoured: a false guard yields `DISC`
    /// operands on the read side, and write guards are latched at a
    /// per-step broadcast before any of the step's writes commit.
    /// Memory-declaring models have no handshake rendering (reject them
    /// upstream, as [`crate::equiv::check_handshake_equivalence`] does).
    ///
    /// # Errors
    ///
    /// Propagates kernel elaboration errors.
    ///
    /// # Panics
    ///
    /// Panics when the model declares memories (indexed endpoints have
    /// no register channel to bind to).
    pub fn new(model: &RtModel) -> Result<HandshakeSim, KernelError> {
        assert!(
            model.memories().is_empty(),
            "memory models have no handshake rendering"
        );
        let mut sim: Simulator<Value> = Simulator::new();

        // Register channels.
        let mut reg_ch = Vec::new();
        for r in model.registers() {
            let ch = RegChannel {
                wreq: sim.resolved_signal(
                    format!("{}_wreq", r.name),
                    Value::Disc,
                    kernel_resolver(),
                ),
                wdata: sim.resolved_signal(
                    format!("{}_wdata", r.name),
                    Value::Disc,
                    kernel_resolver(),
                ),
                wack: sim.signal(format!("{}_wack", r.name), Value::Num(0)),
                data: sim.signal(format!("{}_data", r.name), r.init),
            };
            reg_ch.push(ch);
        }

        // Module channels.
        let mut mod_ch = Vec::new();
        for m in model.modules() {
            let ch = ModuleChannel {
                req: sim.resolved_signal(format!("{}_req", m.name), Value::Disc, kernel_resolver()),
                d1: sim.resolved_signal(format!("{}_d1", m.name), Value::Disc, kernel_resolver()),
                d2: sim.resolved_signal(format!("{}_d2", m.name), Value::Disc, kernel_resolver()),
                opsel: sim.resolved_signal(
                    format!("{}_opsel", m.name),
                    Value::Disc,
                    kernel_resolver(),
                ),
                ack: sim.signal(format!("{}_ack", m.name), Value::Num(0)),
                res: sim.signal(format!("{}_res", m.name), Value::Disc),
            };
            mod_ch.push(ch);
        }

        // One guard-evaluation broadcast line per step with guarded
        // writes; the sequencer raises it after the step's reads and
        // before its writes.
        let mut gseval_by_step: std::collections::HashMap<Step, SignalId> =
            std::collections::HashMap::new();
        for tuple in model.tuples() {
            if tuple.guard.is_none() {
                continue;
            }
            if let Some(w) = &tuple.write {
                gseval_by_step
                    .entry(w.step)
                    .or_insert_with(|| sim.signal(format!("gseval_s{}", w.step), Value::Num(0)));
            }
        }

        let resolve = |g: &Guard| -> ResolvedGuard {
            let mut regs: Vec<(String, SignalId)> = Vec::new();
            for r in g.registers() {
                if !regs.iter().any(|(n, _)| n == r) {
                    let rid = model
                        .register_by_name(r)
                        .expect("guard reads known register");
                    regs.push((r.to_string(), reg_ch[rid.0 as usize].data));
                }
            }
            (g.clone(), regs)
        };

        // Transfer agents plus the schedule.
        // Schedule entries: (step, kind, trigger, ack).
        let mut schedule: Vec<(Step, ActionKind, SignalId, Option<SignalId>)> = Vec::new();
        for (step, sig) in &gseval_by_step {
            schedule.push((*step, ActionKind::GuardEval, *sig, None));
        }
        for (tidx, tuple) in model.tuples().iter().enumerate() {
            let mid = model
                .module_by_name(&tuple.module)
                .expect("validated tuple references known module");
            let mdecl = &model.modules()[mid.0 as usize];
            let op = model.effective_op(tuple);
            let op_index = mdecl.op_index(op).expect("validated op") as i64;

            let read_trig = sim.signal(format!("t{tidx}_rtrig"), Value::Num(0));
            let read_ack = sim.signal(format!("t{tidx}_rack"), Value::Num(0));
            schedule.push((tuple.read_step, ActionKind::Read, read_trig, Some(read_ack)));

            let (write_trig, write_ack, dest) = match &tuple.write {
                Some(w) => {
                    let trig = sim.signal(format!("t{tidx}_wtrig"), Value::Num(0));
                    let ack = sim.signal(format!("t{tidx}_wack"), Value::Num(0));
                    schedule.push((w.step, ActionKind::Write, trig, Some(ack)));
                    let rid = model
                        .register_by_name(&w.register)
                        .expect("validated tuple references known register");
                    (Some(trig), Some(ack), Some(reg_ch[rid.0 as usize]))
                }
                None => (None, None, None),
            };

            let src_sig = |route: &Option<clockless_core::OperandRoute>| {
                route.as_ref().map(|r| {
                    let rid = model
                        .register_by_name(&r.register)
                        .expect("validated tuple references known register");
                    reg_ch[rid.0 as usize].data
                })
            };

            let ch = mod_ch[mid.0 as usize];
            let mut drives = vec![ch.d1, ch.d2, ch.opsel, ch.req, read_ack];
            if let Some(d) = dest {
                drives.push(d.wreq);
                drives.push(d.wdata);
            }
            if let Some(a) = write_ack {
                drives.push(a);
            }
            sim.process(
                format!("t{tidx}_agent"),
                &drives,
                TransferAgent {
                    read_trig,
                    read_ack,
                    write_trig,
                    write_ack,
                    src_a: src_sig(&tuple.src_a),
                    src_b: src_sig(&tuple.src_b),
                    op_index,
                    module: ch,
                    dest,
                    guard: tuple.guard.as_ref().map(&resolve),
                    gseval: tuple
                        .guard
                        .as_ref()
                        .and(tuple.write.as_ref())
                        .and_then(|w| gseval_by_step.get(&w.step).copied()),
                    write_enabled: true,
                    result: Value::Disc,
                    state: TransState::AwaitReadTrig,
                    started: false,
                },
            );
        }

        // Resource servers.
        for (i, m) in model.modules().iter().enumerate() {
            let ch = mod_ch[i];
            sim.process(
                format!("{}_agent", m.name),
                &[ch.ack, ch.res],
                ModuleAgent {
                    ch,
                    ops: m.ops.clone(),
                    serving: false,
                    started: false,
                },
            );
        }
        for (i, r) in model.registers().iter().enumerate() {
            let ch = reg_ch[i];
            sim.process(
                format!("{}_agent", r.name),
                &[ch.wack, ch.data],
                RegAgent {
                    ch,
                    serving: false,
                    started: false,
                },
            );
        }

        // Sequencer: reads of a step strictly before its guard broadcast,
        // which precedes all of its writes.
        schedule.sort_by_key(|(step, kind, _, _)| (*step, *kind));
        let actions: Vec<(SignalId, Option<SignalId>)> =
            schedule.iter().map(|(_, _, t, a)| (*t, *a)).collect();
        let trigs: Vec<SignalId> = actions.iter().map(|(t, _)| *t).collect();
        sim.process(
            "SEQ",
            &trigs,
            Sequencer {
                actions,
                index: 0,
                dropping: false,
                launched: false,
                started: false,
            },
        );

        let reg_data = reg_ch.iter().map(|c| c.data).collect();
        sim.initialize()?;
        Ok(HandshakeSim {
            model: model.clone(),
            sim,
            reg_data,
        })
    }

    /// Runs the full schedule to quiescence.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn run_to_completion(&mut self) -> Result<SimStats, KernelError> {
        self.sim.run()
    }

    /// Final (or current) value of a register.
    pub fn register_value(&self, name: &str) -> Option<Value> {
        let rid = self.model.register_by_name(name)?;
        Some(*self.sim.value(self.reg_data[rid.0 as usize]))
    }

    /// All register values, in declaration order.
    pub fn registers(&self) -> Vec<(String, Value)> {
        self.model
            .registers()
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), *self.sim.value(self.reg_data[i])))
            .collect()
    }

    /// Kernel statistics (the expensive part: compare `delta_cycles`,
    /// `events` and `process_activations` with the clock-free model's).
    pub fn stats(&self) -> SimStats {
        self.sim.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;
    use clockless_core::prelude::*;

    #[test]
    fn fig1_handshake_matches_abstract_result() {
        let model = fig1_model(3, 4);
        let mut sim = HandshakeSim::new(&model).unwrap();
        sim.run_to_completion().unwrap();
        assert_eq!(sim.register_value("R1"), Some(Value::Num(7)));
        assert_eq!(sim.register_value("R2"), Some(Value::Num(4)));
    }

    /// Builds a model with `k` independent transfers all scheduled in the
    /// same control step — the concurrency the control-step scheme
    /// synchronizes for free and the handshake network must serialize.
    fn parallel_model(k: usize) -> RtModel {
        let mut m = RtModel::new("parallel", 2);
        for i in 0..k {
            m.add_register_init(format!("A{i}"), Value::Num(i as i64))
                .unwrap();
            m.add_register_init(format!("B{i}"), Value::Num(2 * i as i64))
                .unwrap();
            m.add_register(format!("C{i}")).unwrap();
            m.add_bus(format!("X{i}")).unwrap();
            m.add_bus(format!("Y{i}")).unwrap();
            m.add_module(ModuleDecl::single(
                format!("ADD{i}"),
                Op::Add,
                ModuleTiming::Pipelined { latency: 1 },
            ))
            .unwrap();
            m.add_transfer(
                TransferTuple::new(1, format!("ADD{i}"))
                    .src_a(format!("A{i}"), format!("X{i}"))
                    .src_b(format!("B{i}"), format!("Y{i}"))
                    .write(2, format!("X{i}"), format!("C{i}")),
            )
            .unwrap();
        }
        m
    }

    #[test]
    fn handshake_serializes_what_control_steps_parallelize() {
        let model = parallel_model(8);
        let mut hs = HandshakeSim::new(&model).unwrap();
        let hs_stats = hs.run_to_completion().unwrap();

        let mut cf = RtSimulation::new(&model).unwrap();
        let cf_summary = cf.run_to_completion().unwrap();

        // Same function…
        for i in 0..8 {
            assert_eq!(
                hs.register_value(&format!("C{i}")),
                cf_summary.register(&format!("C{i}")),
            );
            assert_eq!(hs.register_value(&format!("C{i}")), Some(Value::Num(3 * i)));
        }
        // …but the clock-free model finishes all eight transfers in
        // 2 steps x 6 deltas (plus init and the trailing delta that
        // applies the last-step register commits), while every handshake
        // exchange costs its own delta cycles, serialized by the chain.
        assert_eq!(cf_summary.stats.delta_cycles, 1 + 12 + 1);
        assert!(
            hs_stats.delta_cycles > 3 * cf_summary.stats.delta_cycles,
            "handshake {hs_stats:?} vs clock-free {:?}",
            cf_summary.stats
        );
    }

    #[test]
    fn chained_dependent_transfers_execute_in_order() {
        // R3 := R1 + R2 (steps 1/2), R4 := R3 + R1 (steps 3/4):
        // the second read must see the first write's result.
        let mut m = RtModel::new("chain", 4);
        m.add_register_init("R1", Value::Num(10)).unwrap();
        m.add_register_init("R2", Value::Num(20)).unwrap();
        m.add_register("R3").unwrap();
        m.add_register("R4").unwrap();
        m.add_bus("B1").unwrap();
        m.add_bus("B2").unwrap();
        m.add_module(ModuleDecl::single(
            "ADD",
            Op::Add,
            ModuleTiming::Pipelined { latency: 1 },
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(1, "ADD")
                .src_a("R1", "B1")
                .src_b("R2", "B2")
                .write(2, "B1", "R3"),
        )
        .unwrap();
        m.add_transfer(
            TransferTuple::new(3, "ADD")
                .src_a("R3", "B1")
                .src_b("R1", "B2")
                .write(4, "B1", "R4"),
        )
        .unwrap();
        let mut sim = HandshakeSim::new(&m).unwrap();
        sim.run_to_completion().unwrap();
        assert_eq!(sim.register_value("R3"), Some(Value::Num(30)));
        assert_eq!(sim.register_value("R4"), Some(Value::Num(40)));
    }
}
