//! # clockless-hls — high-level synthesis onto clock-free RT models
//!
//! §4 of the DATE 1998 paper names high-level synthesis as a primary
//! application of the clock-free subset: scheduling and allocation results
//! are "translated into our subset and can then be simulated at a high
//! level before the next synthesis steps". This crate is that front end:
//!
//! * [`dfg`] — dataflow graphs (the algorithmic-level description) with a
//!   reference evaluator;
//! * [`schedule`] — ASAP/ALAP/mobility, resource-constrained list
//!   scheduling and bus-budgeted scheduling, honouring the control-step
//!   timing rules (results pass through registers, one extra step per
//!   dependence level);
//! * [`fds`] — force-directed scheduling (Paulin & Knight): the dual,
//!   time-constrained resource-minimizing scheduler;
//! * [`alloc`] — left-edge register allocation and per-phase bus
//!   allocation;
//! * [`mod@emit`] — emission of validated [`clockless_core::RtModel`]s, one
//!   transfer tuple per operation;
//! * [`workloads`] — FIR / Horner / differential-equation benchmarks and
//!   a reproducible random-DAG generator.
//!
//! ## Example
//!
//! ```
//! use clockless_hls::prelude::*;
//! use clockless_core::prelude::*;
//!
//! let g = fir(&[1, 2, 3]);
//! let resources = ResourceSet::new([
//!     ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 1),
//!     ResourceClass::new("ADD", [Op::Add], ModuleTiming::Pipelined { latency: 1 }, 1),
//! ]);
//! let inputs = [("x0", 10), ("x1", 20), ("x2", 30)].into_iter().collect();
//! let syn = synthesize(&g, &resources, &inputs)?;
//!
//! let mut sim = RtSimulation::new(&syn.model)?;
//! let summary = sim.run_to_completion()?;
//! assert_eq!(
//!     summary.register(&syn.output_registers["y"]),
//!     Some(Value::Num(10 + 40 + 90)),
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod dfg;
pub mod emit;
pub mod fds;
pub mod schedule;
pub mod workloads;

pub use alloc::{allocate, Allocation, ValueId};
pub use dfg::{Dfg, DfgError, Node, NodeId, Operand};
pub use emit::{emit, synthesize, SynthesisError, Synthesized};
pub use fds::{force_directed_schedule, FdsResult};
pub use schedule::{
    alap, asap, critical_path, default_timing, list_schedule, list_schedule_with_buses, mobility,
    ResourceClass, ResourceSet, Schedule, ScheduleError,
};
pub use workloads::{diffeq, fir, horner, random_dag};

/// Convenient glob import for synthesis flows.
pub mod prelude {
    pub use crate::alloc::{allocate, Allocation};
    pub use crate::dfg::{Dfg, NodeId, Operand};
    pub use crate::emit::{synthesize, Synthesized};
    pub use crate::schedule::{list_schedule, ResourceClass, ResourceSet, Schedule};
    pub use crate::workloads::{diffeq, fir, horner, random_dag};
}
