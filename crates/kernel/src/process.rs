//! Processes: the active objects of a simulation.
//!
//! A [`Process`] is a resumable state machine, the Rust rendering of a VHDL
//! process. The kernel calls [`Process::resume`] once at initialization and
//! again whenever the process's wait condition is satisfied; the process
//! reads signals and schedules driver assignments through the
//! [`ProcessCtx`] handed to it, then returns the next [`Wait`].
//!
//! VHDL `wait until <cond>` is modeled the canonical way: the process waits
//! on the signals appearing in the condition and re-checks the condition
//! itself on each resumption, going back to sleep if it does not hold. The
//! variant [`Wait::Same`] makes this cheap for static sensitivity lists.

use std::fmt;

use crate::signal::SignalId;
use crate::time::{Femtos, SimTime};

/// Identifies a process within one [`Simulator`](crate::sim::Simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    /// The dense index of this process.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// What a process waits for after suspending.
///
/// `Wait` is generic over the simulator's value type only through
/// [`Wait::UntilEq`]; every other variant ignores the parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wait<V = ()> {
    /// Resume when an event (value change) occurs on any listed signal.
    ///
    /// An empty list means "wait forever" (VHDL `wait;`): the process never
    /// resumes but is not removed, unlike [`Wait::Done`].
    Event(Vec<SignalId>),
    /// Resume when `signal` changes **to exactly this value** — the
    /// kernel evaluates the equality before scheduling the process, so
    /// non-matching events cost one comparison instead of a resumption.
    ///
    /// Semantically identical to waiting on `signal` and re-checking
    /// `value(signal) == v` in the process (VHDL's implicit `wait until`
    /// loop), but evaluated in-kernel.
    UntilEq(SignalId, V),
    /// Keep the previous sensitivity list unchanged.
    ///
    /// Processes with a static sensitivity list (the common case for the
    /// paper's `TRANS`/`REG`/module processes) return this so the kernel
    /// can skip all re-registration work. Semantically identical to
    /// returning the same `Wait::Event` list again.
    Same,
    /// Resume after the given physical delay (VHDL `wait for`).
    For(Femtos),
    /// The process has terminated and will never be resumed.
    Done,
}

impl<V> Wait<V> {
    /// Convenience: wait on a single signal.
    pub fn on(signal: SignalId) -> Wait<V> {
        Wait::Event(vec![signal])
    }
}

/// The interface a process uses while running.
///
/// Exposes signal reads, driver assignment, event queries and the current
/// simulation time. A context is only valid for the duration of one
/// [`Process::resume`] call.
pub struct ProcessCtx<'a, V> {
    pub(crate) pid: ProcessId,
    pub(crate) now: SimTime,
    pub(crate) tick: u64,
    pub(crate) signals: &'a [crate::signal::SignalSlot<V>],
    /// `(signal, driver index within signal)` pairs owned by this process.
    pub(crate) owned: &'a [(SignalId, u32)],
    /// Assignments collected during this resumption:
    /// `(signal, driver index, value, delay)`.
    pub(crate) out: &'a mut Vec<(SignalId, u32, V, Femtos)>,
}

impl<'a, V: Clone> ProcessCtx<'a, V> {
    /// The current simulation time (physical time and delta).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the running process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Reads the current effective value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` does not belong to this simulator.
    pub fn value(&self, signal: SignalId) -> &V {
        &self.signals[signal.index()].value
    }

    /// Returns `true` if `signal` had an event in the delta cycle that
    /// caused this resumption (VHDL `'event`).
    pub fn had_event(&self, signal: SignalId) -> bool {
        self.signals[signal.index()].last_event_tick == self.tick
    }

    /// Schedules a delta-delayed assignment of this process's driver of
    /// `signal` (VHDL `signal <= value;`). The new driver value takes
    /// effect in the next delta cycle.
    ///
    /// # Panics
    ///
    /// Panics if this process does not drive `signal` (drivers are declared
    /// when the process is added to the simulator).
    pub fn assign(&mut self, signal: SignalId, value: V) {
        self.assign_after(signal, value, 0);
    }

    /// Schedules an assignment after a physical delay
    /// (VHDL `signal <= value after T;`). A zero delay means delta delay.
    ///
    /// # Panics
    ///
    /// Panics if this process does not drive `signal`.
    pub fn assign_after(&mut self, signal: SignalId, value: V, delay: Femtos) {
        let driver = self
            .owned
            .iter()
            .find(|(s, _)| *s == signal)
            .unwrap_or_else(|| {
                panic!(
                    "process {} assigned to {} without driving it",
                    self.pid, signal
                )
            })
            .1;
        self.out.push((signal, driver, value, delay));
    }
}

/// A resumable process.
///
/// Implementors encode their control state explicitly (an enum field is
/// the usual pattern) because Rust has no coroutines to capture the VHDL
/// process body's implicit program counter.
pub trait Process<V>: Send {
    /// Runs the process until its next suspension point and returns what it
    /// waits for next.
    ///
    /// Called once during initialization and then once per satisfied wait.
    fn resume(&mut self, ctx: &mut ProcessCtx<'_, V>) -> Wait<V>;
}

/// Blanket impl so closures can serve as simple (often test-only) processes.
///
/// The closure is invoked on every resumption and returns the next wait.
impl<V, F> Process<V> for F
where
    F: FnMut(&mut ProcessCtx<'_, V>) -> Wait<V> + Send,
{
    fn resume(&mut self, ctx: &mut ProcessCtx<'_, V>) -> Wait<V> {
        self(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_helpers() {
        let s = SignalId(3);
        assert_eq!(Wait::<()>::on(s), Wait::Event(vec![s]));
        assert_ne!(Wait::<()>::Same, Wait::Event(vec![]));
        assert_ne!(Wait::UntilEq(s, 5i64), Wait::Event(vec![s]));
    }

    #[test]
    fn ids_display() {
        assert_eq!(ProcessId(2).to_string(), "proc#2");
        assert_eq!(SignalId(9).to_string(), "sig#9");
    }
}
