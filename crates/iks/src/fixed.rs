//! Q16.16 fixed-point helpers for the IKS datapath.
//!
//! The IKS chip (Leung & Shanblatt, modeled in §3 of the paper) computes
//! in fixed point. All values on the chip's datapath — and in the golden
//! algorithmic model it is verified against — use the Q16.16 format: 16
//! integer bits, 16 fractional bits, stored in `i64` with plenty of
//! headroom.

/// Fractional bits of the chip's number format.
pub const FRAC: u8 = 16;

/// The value 1.0 in Q16.16.
pub const ONE: i64 = 1 << FRAC;

/// Converts a float to Q16.16 (truncating toward zero).
///
/// # Examples
///
/// ```
/// use clockless_iks::fixed::{to_fx, ONE};
/// assert_eq!(to_fx(1.0), ONE);
/// assert_eq!(to_fx(0.5), ONE / 2);
/// ```
pub fn to_fx(v: f64) -> i64 {
    (v * (1u64 << FRAC) as f64) as i64
}

/// Converts a Q16.16 value back to a float.
pub fn from_fx(v: i64) -> f64 {
    v as f64 / (1u64 << FRAC) as f64
}

/// Fixed-point multiply: `(a * b) >> FRAC` with an `i128` intermediate —
/// exactly the semantics of the chip multiplier's `MulFx(16)` operation.
pub fn mul_fx(a: i64, b: i64) -> i64 {
    (((a as i128) * (b as i128)) >> FRAC) as i64
}

/// Fixed-point reciprocal of `a`: `(1 << 32) / a` as Q16.16, computed
/// host-side when preparing chip constants (the datapath has no divider;
/// divisions become multiplications by precomputed reciprocals).
///
/// # Panics
///
/// Panics if `a == 0`.
pub fn recip_fx(a: i64) -> i64 {
    assert!(a != 0, "reciprocal of zero");
    (((1i128) << (2 * FRAC)) / a as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_close() {
        for v in [0.0, 1.0, -2.5, std::f64::consts::PI, 100.25, -0.0001] {
            assert!((from_fx(to_fx(v)) - v).abs() < 1e-4);
        }
    }

    #[test]
    fn mul_fx_matches_float_product() {
        let a = to_fx(2.5);
        let b = to_fx(-1.25);
        assert!((from_fx(mul_fx(a, b)) - (-3.125)).abs() < 1e-4);
    }

    #[test]
    fn mul_fx_handles_large_intermediates() {
        let a = to_fx(30000.0);
        let b = to_fx(30000.0);
        assert!((from_fx(mul_fx(a, b)) - 9.0e8).abs() < 1.0);
    }

    #[test]
    fn recip_fx_inverts() {
        let a = to_fx(4.0);
        assert!((from_fx(recip_fx(a)) - 0.25).abs() < 1e-4);
        // a * (1/a) ≈ 1
        assert!((from_fx(mul_fx(a, recip_fx(a))) - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_of_zero_panics() {
        recip_fx(0);
    }
}
