//! A minimal NDJSON client for the Unix-socket daemon.
//!
//! The container the project targets has no `nc`, so `clockless client`
//! fills that role: it forwards request lines from its input to the
//! socket, prints each response line as it arrives, and exits when the
//! daemon closes the stream. With `payload_only` set, success envelopes
//! are unwrapped to their byte-exact one-shot CLI documents — the mode
//! `scripts/ci.sh` uses to diff daemon output against the CLI.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::decode_payload;

/// Runs one client session against the daemon listening on `socket`.
///
/// Request lines are read from `input` (blank lines skipped) and
/// forwarded concurrently with response reading, so a long stream of
/// jobs cannot deadlock on a full socket buffer. After `input` ends the
/// write half of the socket is shut down — the daemon sees EOF, drains
/// its queue, and closes, which ends the session.
///
/// When `payload_only` is `true`, success envelopes are replaced by
/// their decoded `payload` documents (error envelopes still print
/// verbatim, so failures stay visible).
///
/// # Errors
///
/// Connection and I/O errors. A response stream that ends early (daemon
/// killed) is an `Ok` session end, mirroring `nc`.
pub fn run_client(
    socket: &Path,
    input: impl BufRead + Send,
    mut output: impl Write,
    payload_only: bool,
) -> std::io::Result<()> {
    let stream = UnixStream::connect(socket)?;
    std::thread::scope(|s| -> std::io::Result<()> {
        let sender = s.spawn({
            let stream = &stream;
            move || -> std::io::Result<()> {
                let mut w = stream;
                for line in input.lines() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    w.write_all(line.as_bytes())?;
                    w.write_all(b"\n")?;
                }
                w.flush()?;
                stream.shutdown(std::net::Shutdown::Write)
            }
        });
        for line in BufReader::new(&stream).lines() {
            let line = line?;
            match decode_payload(&line) {
                Some(doc) if payload_only => output.write_all(doc.as_bytes())?,
                _ => {
                    output.write_all(line.as_bytes())?;
                    output.write_all(b"\n")?;
                }
            }
        }
        output.flush()?;
        sender.join().unwrap_or(Ok(()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{Daemon, ServeConfig};

    /// End-to-end over a real Unix socket: daemon thread + client.
    #[test]
    fn client_talks_to_a_unix_daemon() {
        let dir = std::env::temp_dir().join(format!("clockless-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let socket = dir.join("daemon.sock");
        let server = {
            let socket = socket.clone();
            std::thread::spawn(move || Daemon::new(ServeConfig::default()).serve_unix(&socket))
        };
        // Wait for the socket to appear.
        for _ in 0..200 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        // Session 1: ping, envelopes verbatim.
        let mut out = Vec::new();
        run_client(
            &socket,
            "{\"id\":1,\"op\":\"ping\"}\n".as_bytes(),
            &mut out,
            false,
        )
        .expect("session 1");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.contains("\"ok\":true"), "{text}");

        // Session 2: payload-only run, then shutdown.
        let mut out = Vec::new();
        let reqs =
            "{\"id\":1,\"op\":\"run\",\"model\":\"model t steps 1\\nregister R init 3\\n\"}\n\
                    {\"id\":2,\"op\":\"shutdown\"}\n";
        run_client(&socket, reqs.as_bytes(), &mut out, true).expect("session 2");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.contains("\"model\": \"t\""), "{text}");
        assert!(text.ends_with("bye\n"), "{text}");

        server
            .join()
            .expect("server thread")
            .expect("clean daemon exit");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
