//! Control steps and the six-phase timing scheme (paper Fig. 2).
//!
//! A control step is partitioned into six successive phases occurring
//! cyclically:
//!
//! ```text
//! ra → rb → cm → wa → wb → cr → (next step) ra → …
//! ```
//!
//! | phase | meaning                              |
//! |-------|--------------------------------------|
//! | `ra`  | register output ports to buses       |
//! | `rb`  | buses to module input ports          |
//! | `cm`  | module compute                       |
//! | `wa`  | module output ports to buses         |
//! | `wb`  | buses to register input ports        |
//! | `cr`  | register input to output ports       |
//!
//! Phases advance with delta delay only; one control step therefore costs
//! exactly [`PHASES_PER_STEP`] delta cycles, the paper's key timing fact.

use std::fmt;
use std::str::FromStr;

/// Number of phases per control step.
pub const PHASES_PER_STEP: u64 = 6;

/// A control step number. Steps are numbered from 1; 0 is the
/// pre-simulation state of the controller.
pub type Step = u32;

/// One of the six phases of a control step (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // variants documented in the module table
pub enum Phase {
    Ra,
    Rb,
    Cm,
    Wa,
    Wb,
    Cr,
}

impl Phase {
    /// All phases in cyclic order.
    pub const ALL: [Phase; 6] = [
        Phase::Ra,
        Phase::Rb,
        Phase::Cm,
        Phase::Wa,
        Phase::Wb,
        Phase::Cr,
    ];

    /// The first phase of a step (VHDL `Phase'Low`).
    pub const FIRST: Phase = Phase::Ra;
    /// The last phase of a step (VHDL `Phase'High`).
    pub const LAST: Phase = Phase::Cr;

    /// The next phase within the same step (VHDL `Phase'Succ`).
    ///
    /// # Panics
    ///
    /// Panics on [`Phase::Cr`], which has no successor within a step; the
    /// controller wraps to [`Phase::Ra`] of the next step instead.
    pub fn succ(self) -> Phase {
        match self {
            Phase::Ra => Phase::Rb,
            Phase::Rb => Phase::Cm,
            Phase::Cm => Phase::Wa,
            Phase::Wa => Phase::Wb,
            Phase::Wb => Phase::Cr,
            Phase::Cr => panic!("Phase'Succ(cr) is undefined; the step wraps"),
        }
    }

    /// The next phase, wrapping `cr → ra`.
    pub fn succ_wrapping(self) -> Phase {
        if self == Phase::Cr {
            Phase::Ra
        } else {
            self.succ()
        }
    }

    /// Dense index (`ra = 0` … `cr = 5`).
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Phase from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 6`.
    pub fn from_index(index: u8) -> Phase {
        Phase::ALL[index as usize]
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Ra => "ra",
            Phase::Rb => "rb",
            Phase::Cm => "cm",
            Phase::Wa => "wa",
            Phase::Wb => "wb",
            Phase::Cr => "cr",
        };
        f.write_str(s)
    }
}

/// Error parsing a [`Phase`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePhaseError(pub String);

impl fmt::Display for ParsePhaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown phase `{}` (expected ra|rb|cm|wa|wb|cr)", self.0)
    }
}

impl std::error::Error for ParsePhaseError {}

impl FromStr for Phase {
    type Err = ParsePhaseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ra" => Ok(Phase::Ra),
            "rb" => Ok(Phase::Rb),
            "cm" => Ok(Phase::Cm),
            "wa" => Ok(Phase::Wa),
            "wb" => Ok(Phase::Wb),
            "cr" => Ok(Phase::Cr),
            other => Err(ParsePhaseError(other.to_string())),
        }
    }
}

/// A fully qualified instant in control-step time: step plus phase.
///
/// Ordered chronologically (step-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhaseTime {
    /// The control step (numbered from 1).
    pub step: Step,
    /// The phase within the step.
    pub phase: Phase,
}

impl PhaseTime {
    /// Creates a phase time.
    pub fn new(step: Step, phase: Phase) -> PhaseTime {
        PhaseTime { step, phase }
    }

    /// The chronologically next phase time (wrapping into the next step).
    pub fn next(self) -> PhaseTime {
        if self.phase == Phase::LAST {
            PhaseTime::new(self.step + 1, Phase::FIRST)
        } else {
            PhaseTime::new(self.step, self.phase.succ())
        }
    }

    /// Delta-cycle index at which this phase is *active*, counted from the
    /// start of simulation.
    ///
    /// The controller's initial execution happens in delta 0; phase `ra`
    /// of step 1 is then active in delta 1, and in general phase `p` of
    /// step `s` is active in delta `(s-1)*6 + p.index() + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is 0 (no phases are active before step 1).
    pub fn active_delta(self) -> u64 {
        assert!(self.step >= 1, "phases are active from step 1 onwards");
        (self.step as u64 - 1) * PHASES_PER_STEP + self.phase.index() as u64 + 1
    }

    /// Inverse of [`active_delta`](Self::active_delta): the phase time
    /// active in a given delta cycle, or `None` for delta 0 (initialization).
    pub fn from_active_delta(delta: u64) -> Option<PhaseTime> {
        if delta == 0 {
            return None;
        }
        let d = delta - 1;
        Some(PhaseTime::new(
            (d / PHASES_PER_STEP) as Step + 1,
            Phase::from_index((d % PHASES_PER_STEP) as u8),
        ))
    }
}

impl fmt::Display for PhaseTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {} phase {}", self.step, self.phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succ_chain_matches_paper() {
        let mut p = Phase::FIRST;
        let mut seen = vec![p];
        while p != Phase::LAST {
            p = p.succ();
            seen.push(p);
        }
        assert_eq!(seen, Phase::ALL);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn succ_of_cr_panics() {
        let _ = Phase::Cr.succ();
    }

    #[test]
    fn wrapping_succ_cycles() {
        assert_eq!(Phase::Cr.succ_wrapping(), Phase::Ra);
        assert_eq!(Phase::Wa.succ_wrapping(), Phase::Wb);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(p.to_string().parse::<Phase>().unwrap(), p);
        }
        assert!("xx".parse::<Phase>().is_err());
        assert_eq!("RA".parse::<Phase>().unwrap(), Phase::Ra);
    }

    #[test]
    fn index_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_index(p.index()), p);
        }
    }

    #[test]
    fn phase_time_ordering_is_chronological() {
        let a = PhaseTime::new(1, Phase::Cr);
        let b = PhaseTime::new(2, Phase::Ra);
        assert!(a < b);
        assert_eq!(a.next(), b);
    }

    #[test]
    fn active_delta_roundtrip() {
        // Step 1 ra is delta 1; step 1 cr is delta 6; step 2 ra is delta 7.
        assert_eq!(PhaseTime::new(1, Phase::Ra).active_delta(), 1);
        assert_eq!(PhaseTime::new(1, Phase::Cr).active_delta(), 6);
        assert_eq!(PhaseTime::new(2, Phase::Ra).active_delta(), 7);
        for d in 1..=37 {
            let pt = PhaseTime::from_active_delta(d).unwrap();
            assert_eq!(pt.active_delta(), d);
        }
        assert_eq!(PhaseTime::from_active_delta(0), None);
    }
}
