//! VHDL import: from §2.7 source text to a runnable [`RtModel`].
//!
//! Combines the subset parser of `clockless_core::vhdl_parse` with the
//! tuple reconstruction of [`crate::semantics`]: the `TRANS`
//! instantiations become transfer specs, the specs become partial tuples,
//! the partials merge into full tuples against the parsed module
//! timings — the paper's reverse mapping applied to actual VHDL source.

use std::fmt;

use clockless_core::vhdl_parse::{parse_vhdl, ParseVhdlError, ParsedDesign};
use clockless_core::{ModelError, RtModel};

use crate::semantics::{merge_partials, reconstruct_partials, SemanticsError};

/// Errors from importing a VHDL design.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImportVhdlError {
    /// The source text could not be parsed.
    Parse(ParseVhdlError),
    /// The transfer processes could not be reassembled into tuples.
    Semantics(SemanticsError),
    /// The reconstructed model failed validation.
    Model(ModelError),
}

impl fmt::Display for ImportVhdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportVhdlError::Parse(e) => write!(f, "parse error: {e}"),
            ImportVhdlError::Semantics(e) => write!(f, "reconstruction failed: {e}"),
            ImportVhdlError::Model(e) => write!(f, "invalid model: {e}"),
        }
    }
}

impl std::error::Error for ImportVhdlError {}

impl From<ParseVhdlError> for ImportVhdlError {
    fn from(e: ParseVhdlError) -> Self {
        ImportVhdlError::Parse(e)
    }
}
impl From<SemanticsError> for ImportVhdlError {
    fn from(e: SemanticsError) -> Self {
        ImportVhdlError::Semantics(e)
    }
}
impl From<ModelError> for ImportVhdlError {
    fn from(e: ModelError) -> Self {
        ImportVhdlError::Model(e)
    }
}

/// Builds a validated model from a parsed design.
///
/// # Errors
///
/// [`ImportVhdlError`] when reconstruction or validation fails.
pub fn model_from_design(design: &ParsedDesign) -> Result<RtModel, ImportVhdlError> {
    let mut model = RtModel::new(design.name.clone(), design.cs_max);
    for (name, init) in &design.registers {
        model.add_register_init(name.clone(), *init)?;
    }
    for b in &design.buses {
        model.add_bus(b.clone())?;
    }
    for m in &design.modules {
        model.add_module(m.clone())?;
    }
    let partials = reconstruct_partials(&design.specs)?;
    let tuples = merge_partials(partials, &model)?;
    for t in tuples {
        model.add_transfer(t)?;
    }
    Ok(model)
}

/// Parses VHDL source in the paper's subset and reassembles the model.
///
/// # Errors
///
/// [`ImportVhdlError`] describing the first failure.
///
/// # Examples
///
/// A full round trip — the model prints as the paper's VHDL and the VHDL
/// reads back as the model:
///
/// ```
/// use clockless_core::model::fig1_model;
/// use clockless_core::vhdl::emit_vhdl;
/// use clockless_verify::model_from_vhdl;
///
/// let model = fig1_model(3, 4);
/// let vhdl = emit_vhdl(&model)?;
/// let back = model_from_vhdl(&vhdl)?;
/// assert_eq!(back.tuples(), model.tuples());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn model_from_vhdl(text: &str) -> Result<RtModel, ImportVhdlError> {
    let design = parse_vhdl(text)?;
    model_from_design(&design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;
    use clockless_core::prelude::*;
    use clockless_core::vhdl::emit_vhdl;

    fn assert_roundtrip(model: &RtModel) {
        let vhdl = emit_vhdl(model).expect("emits");
        let back = model_from_vhdl(&vhdl).expect("imports");
        assert_eq!(back.cs_max(), model.cs_max());
        assert_eq!(back.registers(), model.registers());
        assert_eq!(back.buses(), model.buses());
        assert_eq!(back.modules(), model.modules());
        let mut a = back.tuples().to_vec();
        let mut b = model.tuples().to_vec();
        let key = |t: &TransferTuple| (t.module.clone(), t.read_step);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn fig1_roundtrips() {
        assert_roundtrip(&fig1_model(3, 4));
    }

    #[test]
    fn multi_op_model_roundtrips() {
        let mut m = RtModel::new("alu_demo", 6);
        m.add_register_init("A", Value::Num(12)).unwrap();
        m.add_register_init("B", Value::Num(5)).unwrap();
        m.add_register("T").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_bus("W").unwrap();
        m.add_module(ModuleDecl::multi(
            "ALU",
            [Op::Add, Op::Sub, Op::Min],
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "ALU")
                .src_a("A", "X")
                .src_b("B", "Y")
                .op(Op::Sub)
                .write(2, "W", "T"),
        )
        .unwrap();
        m.add_transfer(
            TransferTuple::new(4, "ALU")
                .src_a("T", "X")
                .src_b("B", "Y")
                .op(Op::Min)
                .write(4, "W", "T"),
        )
        .unwrap();
        assert_roundtrip(&m);
    }

    #[test]
    fn sequential_module_roundtrips() {
        let mut m = RtModel::new("seq", 8);
        m.add_register_init("A", Value::Num(3)).unwrap();
        m.add_register_init("B", Value::Num(4)).unwrap();
        m.add_register("T").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_bus("W").unwrap();
        m.add_module(ModuleDecl::single(
            "MUL",
            Op::Mul,
            ModuleTiming::Sequential { latency: 3 },
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "MUL")
                .src_a("A", "X")
                .src_b("B", "Y")
                .write(5, "W", "T"),
        )
        .unwrap();
        assert_roundtrip(&m);
    }

    #[test]
    fn imported_model_simulates_identically() {
        let model = fig1_model(21, 21);
        let vhdl = emit_vhdl(&model).unwrap();
        let imported = model_from_vhdl(&vhdl).unwrap();
        let mut a = RtSimulation::new(&model).unwrap();
        let mut b = RtSimulation::new(&imported).unwrap();
        let ra = a.run_to_completion().unwrap();
        let rb = b.run_to_completion().unwrap();
        assert_eq!(a.registers(), b.registers());
        assert_eq!(ra.stats, rb.stats);
    }

    #[test]
    fn hls_output_roundtrips_through_vhdl() {
        use clockless_hls::prelude::*;
        let g = diffeq();
        let inputs = [("x", 1), ("y", 2), ("u", 3), ("dx", 1)]
            .into_iter()
            .collect();
        let resources = clockless_hls::ResourceSet::new([
            clockless_hls::ResourceClass::new(
                "MUL",
                [Op::Mul],
                ModuleTiming::Pipelined { latency: 2 },
                2,
            ),
            clockless_hls::ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub],
                ModuleTiming::Pipelined { latency: 1 },
                2,
            ),
        ]);
        let syn = synthesize(&g, &resources, &inputs).unwrap();
        assert_roundtrip(&syn.model);
    }
}
