//! Symbolic simulation of clock-free RT models.
//!
//! §2.7: the tuple semantics "form the basis for automatic verification
//! tools, which compare register transfer level descriptions with either
//! more abstract descriptions or more concrete descriptions". The
//! comparison against *more abstract* descriptions works by running the
//! RT model symbolically: register contents become expression trees over
//! symbolic inputs, evaluated step by step with the exact control-step
//! semantics (reads of a step precede its commits; a module's result
//! commits `latency` steps after its operands were read).

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use clockless_core::model::StorageRead;
use clockless_core::{Guard, Op, RtModel, Step, Value};

/// A symbolic expression over register/input variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A known constant.
    Const(i64),
    /// A symbolic variable (an input or an unknown initial register
    /// value).
    Var(String),
    /// An operation applied to one or two subexpressions.
    Apply(Op, Vec<Rc<Expr>>),
}

impl Expr {
    /// A variable expression.
    pub fn var(name: impl Into<String>) -> Rc<Expr> {
        Rc::new(Expr::Var(name.into()))
    }

    /// A constant expression.
    pub fn constant(v: i64) -> Rc<Expr> {
        Rc::new(Expr::Const(v))
    }

    /// Applies `op`, folding constants eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`SymbolicError::IllegalOperation`] when constant folding
    /// hits an illegal combination (e.g. an out-of-range shift).
    pub fn apply(op: Op, args: Vec<Rc<Expr>>) -> Result<Rc<Expr>, SymbolicError> {
        let consts: Option<Vec<i64>> = args
            .iter()
            .map(|a| match **a {
                Expr::Const(c) => Some(c),
                _ => None,
            })
            .collect();
        if let Some(cs) = consts {
            let a = Value::Num(cs[0]);
            let b = cs.get(1).map(|&c| Value::Num(c)).unwrap_or(Value::Disc);
            return match op.apply(a, b) {
                Value::Num(v) => Ok(Expr::constant(v)),
                _ => Err(SymbolicError::IllegalOperation { op }),
            };
        }
        Ok(Rc::new(Expr::Apply(op, args)))
    }

    /// Evaluates the expression with concrete variable values.
    ///
    /// # Errors
    ///
    /// [`SymbolicError::UnboundVariable`] for missing variables and
    /// [`SymbolicError::IllegalOperation`] for illegal arithmetic.
    pub fn eval(&self, env: &HashMap<String, i64>) -> Result<i64, SymbolicError> {
        match self {
            Expr::Const(c) => Ok(*c),
            Expr::Var(v) => env
                .get(v)
                .copied()
                .ok_or_else(|| SymbolicError::UnboundVariable(v.clone())),
            Expr::Apply(op, args) => {
                let a = Value::Num(args[0].eval(env)?);
                let b = match args.get(1) {
                    Some(e) => Value::Num(e.eval(env)?),
                    None => Value::Disc,
                };
                match op.apply(a, b) {
                    Value::Num(v) => Ok(v),
                    _ => Err(SymbolicError::IllegalOperation { op: *op }),
                }
            }
        }
    }

    /// All variable names appearing in the expression.
    pub fn variables(&self) -> Vec<String> {
        fn walk(e: &Expr, out: &mut Vec<String>) {
            match e {
                Expr::Const(_) => {}
                Expr::Var(v) => {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
                Expr::Apply(_, args) => {
                    for a in args {
                        walk(a, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Apply(op, args) => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Errors from symbolic simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SymbolicError {
    /// A transfer read a register that holds no defined value at that
    /// step.
    UndefinedRead {
        /// The register.
        register: String,
        /// The step of the read.
        step: Step,
    },
    /// Constant folding or evaluation hit an illegal operand combination.
    IllegalOperation {
        /// The operation.
        op: Op,
    },
    /// Evaluation referenced an unbound variable.
    UnboundVariable(String),
    /// A guard's operand did not fold to a constant, so the branch
    /// cannot be decided symbolically.
    UnresolvedGuard {
        /// The guard's textual form.
        guard: String,
        /// The step whose phase evaluates the guard.
        step: Step,
    },
    /// A register-indexed memory access whose address expression did not
    /// fold to an in-range constant.
    UnresolvedAddress {
        /// The memory endpoint as written (`M[R]`).
        endpoint: String,
        /// The step of the access.
        step: Step,
    },
}

impl fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicError::UndefinedRead { register, step } => {
                write!(
                    f,
                    "register `{register}` read at step {step} while undefined"
                )
            }
            SymbolicError::IllegalOperation { op } => {
                write!(f, "operation `{op}` applied to illegal operands")
            }
            SymbolicError::UnboundVariable(v) => write!(f, "variable `{v}` is unbound"),
            SymbolicError::UnresolvedGuard { guard, step } => {
                write!(
                    f,
                    "guard `{guard}` at step {step} does not fold to a constant"
                )
            }
            SymbolicError::UnresolvedAddress { endpoint, step } => {
                write!(
                    f,
                    "memory address `{endpoint}` at step {step} does not fold to an \
                     in-range constant"
                )
            }
        }
    }
}

impl std::error::Error for SymbolicError {}

/// Symbolically executes the model.
///
/// `bindings` overrides register initial values with symbolic
/// expressions (typically `Var`s for the design's inputs); registers
/// preloaded with numbers become constants, everything else starts
/// undefined.
///
/// Returns the final symbolic value of every register and memory word
/// that ends up defined.
///
/// Control stays concrete: a guard decides its branch only when every
/// operand folds to a constant in the pre-commit state of its step (an
/// undefined operand reads `DISC`, making the clause false exactly as
/// in the abstract model), and a register-indexed memory access needs
/// its address to fold to an in-range constant.
///
/// # Errors
///
/// [`SymbolicError::UndefinedRead`] when a transfer reads an undefined
/// register, [`SymbolicError::IllegalOperation`] when folding hits
/// illegal arithmetic, [`SymbolicError::UnresolvedGuard`] /
/// [`SymbolicError::UnresolvedAddress`] when control or addressing
/// stays symbolic.
pub fn symbolic_run(
    model: &RtModel,
    bindings: &HashMap<String, Rc<Expr>>,
) -> Result<HashMap<String, Rc<Expr>>, SymbolicError> {
    let mut state: HashMap<String, Rc<Expr>> = HashMap::new();
    for r in model.registers() {
        if let Some(e) = bindings.get(&r.name) {
            state.insert(r.name.clone(), e.clone());
        } else if let Value::Num(v) = r.init {
            state.insert(r.name.clone(), Expr::constant(v));
        }
    }
    for m in model.memories() {
        for i in 0..m.len {
            let name = format!("{}[{i}]", m.name);
            if let Some(e) = bindings.get(&name) {
                state.insert(name, e.clone());
            } else if let Value::Num(v) = m.init {
                state.insert(name, Expr::constant(v));
            }
        }
    }

    // Resolves a storage endpoint to its state key at `step`; a
    // register-indexed word needs a constant in-range address.
    let resolve = |state: &HashMap<String, Rc<Expr>>,
                   name: &str,
                   step: Step|
     -> Result<String, SymbolicError> {
        match model.resolve_storage(name) {
            Ok(StorageRead::MemIndirect { mem, addr }) => {
                let decl = &model.memories()[mem.0 as usize];
                let addr_name = &model.registers()[addr.0 as usize].name;
                match state.get(addr_name).map(|e| &**e) {
                    Some(&Expr::Const(i)) if (0..i64::from(decl.len)).contains(&i) => {
                        Ok(format!("{}[{i}]", decl.name))
                    }
                    _ => Err(SymbolicError::UnresolvedAddress {
                        endpoint: name.to_string(),
                        step,
                    }),
                }
            }
            _ => Ok(name.to_string()),
        }
    };

    // Decides a guard over the current (pre-commit) state. An undefined
    // operand register reads DISC — the clause is false, as in the
    // abstract model; a *symbolic* operand is an error.
    let decide =
        |state: &HashMap<String, Rc<Expr>>, g: &Guard, step: Step| -> Result<bool, SymbolicError> {
            let mut symbolic = false;
            let pass = g.eval(|r| match state.get(r).map(|e| &**e) {
                None => None,
                Some(&Expr::Const(c)) => Some(c),
                Some(_) => {
                    symbolic = true;
                    None
                }
            });
            if symbolic {
                return Err(SymbolicError::UnresolvedGuard {
                    guard: g.to_string(),
                    step,
                });
            }
            Ok(pass)
        };

    // Pending commits: (write step, destination endpoint, expression,
    // guard re-evaluated at the write step).
    let mut pending: Vec<(Step, String, Rc<Expr>, Option<Guard>)> = Vec::new();

    for step in 1..=model.cs_max() {
        // Reads of this step (ra/rb phases; module computes from these).
        for tuple in model.tuples().iter().filter(|t| t.read_step == step) {
            // A false read-side guard drives DISC operands: the module
            // result is DISC and nothing ever commits from this tuple.
            if let Some(g) = &tuple.guard {
                if !decide(&state, g, step)? {
                    continue;
                }
            }
            let mut args = Vec::new();
            for route in [&tuple.src_a, &tuple.src_b].into_iter().flatten() {
                let key = resolve(&state, &route.register, step)?;
                let e = state
                    .get(&key)
                    .cloned()
                    .ok_or_else(|| SymbolicError::UndefinedRead {
                        register: route.register.clone(),
                        step,
                    })?;
                args.push(e);
            }
            let op = model.effective_op(tuple);
            let result = Expr::apply(op, args)?;
            if let Some(w) = &tuple.write {
                pending.push((w.step, w.register.clone(), result, tuple.guard.clone()));
            }
        }
        // Commits of this step (cr phase — strictly after the reads).
        // Write-side guards and addresses are evaluated over the
        // pre-commit state (the wb phase), then all commits land at
        // once, so same-step commits never leak into each other.
        let mut commits: Vec<(String, Rc<Expr>)> = Vec::new();
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 == step {
                let (_, dest, e, guard) = pending.swap_remove(i);
                let enabled = match &guard {
                    Some(g) => decide(&state, g, step)?,
                    None => true,
                };
                if enabled {
                    commits.push((resolve(&state, &dest, step)?, e));
                }
            } else {
                i += 1;
            }
        }
        for (key, e) in commits {
            state.insert(key, e);
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;
    use clockless_core::prelude::*;

    #[test]
    fn guards_and_memories_run_with_concrete_control() {
        // The guarded/memory corpus shape: a constant-address load, a
        // register-indexed write-back, and a guard over the result.
        let model = clockless_core::text::parse_model(
            "model sym steps 5\nregister IDX init 1\nregister ACC init 0\n\
             memory M[3] init 5\nbus B\nbus C\nmodule CP ops passa comb\n\
             transfer (M[0],B,-,-,1,CP,1,C,ACC)\n\
             transfer if ACC >= 5 then (ACC,B,-,-,2,CP,2,C,M[IDX])\n\
             transfer if ACC < 5 then (IDX,B,-,-,3,CP,3,C,M[2])\n",
        )
        .unwrap();
        let out = symbolic_run(&model, &HashMap::new()).unwrap();
        assert_eq!(*out["ACC"], Expr::Const(5));
        assert_eq!(*out["M[1]"], Expr::Const(5), "indexed write landed");
        assert_eq!(*out["M[2]"], Expr::Const(5), "false guard left the word");
    }

    #[test]
    fn symbolic_guard_operand_is_a_typed_error() {
        let model = clockless_core::text::parse_model(
            "model sg steps 3\nregister A\nregister R init 1\n\
             bus B\nbus C\nmodule CP ops passa comb\n\
             transfer if A = 1 then (R,B,-,-,1,CP,1,C,R)\n",
        )
        .unwrap();
        let bindings: HashMap<String, Rc<Expr>> = [("A".to_string(), Expr::var("a"))].into();
        let err = symbolic_run(&model, &bindings).unwrap_err();
        assert!(
            matches!(&err, SymbolicError::UnresolvedGuard { step: 1, .. }),
            "{err}"
        );
        // With no binding, A reads DISC: the clause is false, no error.
        let out = symbolic_run(&model, &HashMap::new()).unwrap();
        assert_eq!(*out["R"], Expr::Const(1));
    }

    #[test]
    fn symbolic_memory_address_is_a_typed_error() {
        let model = clockless_core::text::parse_model(
            "model sa steps 3\nregister IDX\nregister R init 1\n\
             memory M[2] init 0\nbus B\nbus C\nmodule CP ops passa comb\n\
             transfer (R,B,-,-,1,CP,1,C,M[IDX])\n",
        )
        .unwrap();
        let bindings: HashMap<String, Rc<Expr>> = [("IDX".to_string(), Expr::var("i"))].into();
        let err = symbolic_run(&model, &bindings).unwrap_err();
        assert!(
            matches!(&err, SymbolicError::UnresolvedAddress { step: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn fig1_concrete_initials_fold_to_constant() {
        let model = fig1_model(3, 4);
        let out = symbolic_run(&model, &HashMap::new()).unwrap();
        assert_eq!(*out["R1"], Expr::Const(7));
        assert_eq!(*out["R2"], Expr::Const(4));
    }

    #[test]
    fn fig1_symbolic_inputs_build_expression() {
        let model = fig1_model(0, 0);
        let bindings = [
            ("R1".to_string(), Expr::var("a")),
            ("R2".to_string(), Expr::var("b")),
        ]
        .into_iter()
        .collect();
        let out = symbolic_run(&model, &bindings).unwrap();
        assert_eq!(out["R1"].to_string(), "add(a, b)");
        // Evaluation agrees with real simulation.
        let env = [("a".to_string(), 11i64), ("b".to_string(), 31i64)]
            .into_iter()
            .collect();
        assert_eq!(out["R1"].eval(&env).unwrap(), 42);
    }

    #[test]
    fn same_step_read_then_commit_sees_old_value() {
        // R2 := R1 (comb copy at step 2); R3 := R1 read at step 2 too —
        // both read the original R1; R1 := R2 at step 3 then sees the old
        // R1 propagated through R2.
        let mut m = RtModel::new("order", 4);
        m.add_register_init("R1", Value::Num(5)).unwrap();
        m.add_register("R2").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_module(ModuleDecl::single(
            "CP",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_module(ModuleDecl::single(
            "NEG",
            Op::Neg,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        // Step 2: R2 := R1; step 2: R1 := -R1. Reads precede commits, so
        // R2 gets 5 and R1 becomes -5.
        m.add_transfer(
            TransferTuple::new(2, "CP")
                .src_a("R1", "X")
                .write(2, "X", "R2"),
        )
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "NEG")
                .src_a("R1", "Y")
                .write(2, "Y", "R1"),
        )
        .unwrap();
        let out = symbolic_run(&m, &HashMap::new()).unwrap();
        assert_eq!(*out["R2"], Expr::Const(5));
        assert_eq!(*out["R1"], Expr::Const(-5));

        // Cross-check against the real simulator.
        let mut sim = RtSimulation::new(&m).unwrap();
        let summary = sim.run_to_completion().unwrap();
        assert_eq!(summary.register("R2"), Some(Value::Num(5)));
        assert_eq!(summary.register("R1"), Some(Value::Num(-5)));
    }

    #[test]
    fn undefined_read_reported() {
        // Like Fig. 1 but with R2 never preloaded nor written.
        let mut m = RtModel::new("undef", 7);
        m.add_register_init("R1", Value::Num(1)).unwrap();
        m.add_register("R2").unwrap();
        m.add_bus("B1").unwrap();
        m.add_bus("B2").unwrap();
        m.add_module(ModuleDecl::single(
            "ADD",
            Op::Add,
            ModuleTiming::Pipelined { latency: 1 },
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(5, "ADD")
                .src_a("R1", "B1")
                .src_b("R2", "B2")
                .write(6, "B1", "R1"),
        )
        .unwrap();
        assert_eq!(
            symbolic_run(&m, &HashMap::new()),
            Err(SymbolicError::UndefinedRead {
                register: "R2".into(),
                step: 5
            })
        );
    }

    #[test]
    fn variables_collected() {
        let e = Expr::apply(
            Op::Add,
            vec![
                Expr::var("x"),
                Expr::apply(Op::Mul, vec![Expr::var("y"), Expr::var("x")]).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(e.variables(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn constant_folding_detects_illegal() {
        let e = Expr::apply(Op::Shr, vec![Expr::constant(4), Expr::constant(-1)]);
        assert_eq!(e, Err(SymbolicError::IllegalOperation { op: Op::Shr }));
    }
}
