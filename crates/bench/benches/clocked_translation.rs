//! Experiment E6 (§4 automatic translation): control steps → clock
//! signals under both clock schemes, with commit-trace equivalence, plus
//! the cost of translation and of the equivalence check itself.

use clockless_bench::dense_model;
use clockless_bench::harness::Harness;
use clockless_clocked::{check_clocked_equivalence, ClockScheme, ClockedDesign, ClockedSimulation};
use clockless_core::model::fig1_model;
use clockless_iks::prelude::*;
use clockless_kernel::NS;

fn schemes() -> [(&'static str, ClockScheme); 2] {
    [
        (
            "one_cycle",
            ClockScheme::OneCyclePerStep { period_fs: 10 * NS },
        ),
        (
            "two_cycle",
            ClockScheme::TwoCyclesPerStep { period_fs: 10 * NS },
        ),
    ]
}

fn report() {
    eprintln!("--- E6: automatic translation to clocked RTL ---");
    eprintln!(
        "{:<12} {:<10} {:>8} {:>10} {:>10} {:>12}",
        "model", "scheme", "cycles", "ctrl-sigs", "sim-ns", "equivalent"
    );
    let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
    let iks = build_ik_chip(to_fx(1.0), to_fx(1.0), constants).expect("builds");
    let models: Vec<(&str, clockless_core::RtModel)> = vec![
        ("fig1", fig1_model(3, 4)),
        ("dense8x8", dense_model(8, 8)),
        ("iks_chip", iks.model),
    ];
    for (name, model) in &models {
        for (sname, scheme) in schemes() {
            let design = ClockedDesign::translate(model, scheme).expect("translates");
            let mut sim = ClockedSimulation::new(&design, false).expect("elaborates");
            sim.run_to_completion().expect("runs");
            let eq = check_clocked_equivalence(model, scheme).expect("checks");
            eprintln!(
                "{name:<12} {sname:<10} {:>8} {:>10} {:>10} {:>12}",
                design.total_cycles(),
                design.tables().control_signal_count(),
                sim.elapsed_fs() / NS,
                eq.equivalent()
            );
            assert!(eq.equivalent());
        }
    }
}

fn main() {
    report();
    let mut h = Harness::new();
    {
        let mut g = h.group("clocked_translation");

        let model = dense_model(8, 8);
        for (sname, scheme) in schemes() {
            g.bench(format!("translate/{sname}"), || {
                ClockedDesign::translate(&model, scheme).expect("translates")
            });
            let design = ClockedDesign::translate(&model, scheme).expect("translates");
            g.bench(format!("simulate/{sname}"), || {
                let mut sim = ClockedSimulation::new(&design, false).expect("elaborates");
                sim.run_to_completion().expect("runs")
            });
            g.bench(format!("equivalence_check/{sname}"), || {
                check_clocked_equivalence(&model, scheme).expect("checks")
            });
        }
    }
    h.print_table();
}
