//! Automatic verification of synthesis results.
//!
//! §4: "High level synthesis results are translated into our subset …
//! Formal semantics of initial algorithmic description and resulting
//! register transfer level description are defined. An automatic proving
//! procedure has been implemented, that performs the verification task."
//!
//! [`verify_synthesis`] is that procedure: the emitted RT model is run
//! **symbolically** with the design's inputs as variables; each output
//! register's expression is normalized and compared against the
//! normalized dataflow-graph expression. Operations outside the
//! polynomial fragment fall back to structural comparison plus randomized
//! concrete testing ([`concrete_check`]).
//!
//! The module also carries the **backend differential obligation**:
//! [`backend_equiv`] runs a model on both execution engines — the
//! interpreted delta kernel and the compiled phase-schedule walker — and
//! checks every observable (registers, statistics, conflicts, commit
//! log, VCD, and even error text) for byte identity.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use clockless_core::{Backend, ExecOptions, OptLevel, RtModel, RtSimulation, Value};
use clockless_hls::{Dfg, Operand, Synthesized, ValueId};

use crate::normalize::equivalent;
use crate::symbolic::{symbolic_run, Expr, SymbolicError};

/// Outcome of verifying one output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputVerdict {
    /// The normal forms match: proven equivalent (over wrapping `i64`).
    Proven,
    /// The normal forms differ but every concrete test agreed — only
    /// possible when opaque operations are involved.
    TestedOnly,
    /// A concrete disagreement was found: definitely wrong.
    Refuted {
        /// The inputs exhibiting the disagreement.
        inputs: Vec<(String, i64)>,
        /// The value the RT model computed.
        got: i64,
        /// The value the algorithmic description computes.
        expected: i64,
    },
}

/// Report of verifying a synthesized design against its dataflow graph.
#[derive(Debug, Clone)]
pub struct SynthesisVerification {
    /// Per-output verdicts.
    pub outputs: Vec<(String, OutputVerdict)>,
}

impl SynthesisVerification {
    /// `true` when every output is proven or at least never refuted.
    pub fn passed(&self) -> bool {
        self.outputs
            .iter()
            .all(|(_, v)| !matches!(v, OutputVerdict::Refuted { .. }))
    }

    /// `true` when every output's equivalence was proven by
    /// normalization.
    pub fn fully_proven(&self) -> bool {
        self.outputs
            .iter()
            .all(|(_, v)| matches!(v, OutputVerdict::Proven))
    }
}

impl fmt::Display for SynthesisVerification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.outputs {
            match v {
                OutputVerdict::Proven => writeln!(f, "output `{name}`: proven equivalent")?,
                OutputVerdict::TestedOnly => {
                    writeln!(f, "output `{name}`: equivalent on all tests (opaque ops)")?
                }
                OutputVerdict::Refuted {
                    inputs,
                    got,
                    expected,
                } => writeln!(
                    f,
                    "output `{name}`: REFUTED at {inputs:?} (rt {got} vs algorithm {expected})"
                )?,
            }
        }
        Ok(())
    }
}

/// Errors from the verification procedure itself.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// Symbolic simulation failed.
    Symbolic(SymbolicError),
    /// An output register ended the run undefined.
    UndefinedOutput(String),
    /// Concrete simulation failed.
    Simulation(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Symbolic(e) => write!(f, "symbolic simulation failed: {e}"),
            VerifyError::UndefinedOutput(o) => {
                write!(f, "output register `{o}` is undefined after the run")
            }
            VerifyError::Simulation(e) => write!(f, "concrete simulation failed: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<SymbolicError> for VerifyError {
    fn from(e: SymbolicError) -> Self {
        VerifyError::Symbolic(e)
    }
}

/// Converts a dataflow graph's outputs into symbolic expressions over
/// its primary inputs.
pub fn dfg_expressions(dfg: &Dfg) -> Result<HashMap<String, Rc<Expr>>, SymbolicError> {
    let mut node_expr: Vec<Rc<Expr>> = Vec::with_capacity(dfg.len());
    for node in dfg.nodes() {
        let fetch = |o: &Operand| -> Rc<Expr> {
            match o {
                Operand::Node(n) => node_expr[n.index()].clone(),
                Operand::Input(name) => Expr::var(name.clone()),
                Operand::Const(c) => Expr::constant(*c),
            }
        };
        let mut args = vec![fetch(&node.a)];
        if let Some(b) = &node.b {
            args.push(fetch(b));
        }
        node_expr.push(Expr::apply(node.op, args)?);
    }
    Ok(dfg
        .outputs()
        .iter()
        .map(|(name, n)| (name.clone(), node_expr[n.index()].clone()))
        .collect())
}

/// Deterministic pseudo-random input vectors for concrete testing.
fn test_vectors(vars: &[String], rounds: usize) -> Vec<HashMap<String, i64>> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        state
    };
    (0..rounds)
        .map(|_| {
            vars.iter()
                .map(|v| (v.clone(), (next() % 2001) as i64 - 1000))
                .collect()
        })
        .collect()
}

/// Verifies a synthesized design against its dataflow graph.
///
/// The RT model runs symbolically with the input-holding registers bound
/// to variables named after the inputs; each output register's final
/// expression is compared to the graph's expression by normalization,
/// with `test_rounds` rounds of concrete evaluation as a fallback
/// discriminator for opaque operations.
///
/// # Errors
///
/// [`VerifyError`] when simulation itself fails (the *verdicts* for
/// mismatching outputs are reported in the result, not as errors).
pub fn verify_synthesis(
    dfg: &Dfg,
    synthesized: &Synthesized,
    test_rounds: usize,
) -> Result<SynthesisVerification, VerifyError> {
    // Bind every input-hosting register to a variable named after the
    // input (overriding the concrete preload the emitter installed).
    let mut bindings: HashMap<String, Rc<Expr>> = HashMap::new();
    for (v, reg) in &synthesized.allocation.register_of {
        if let ValueId::Input(name) = v {
            bindings.insert(format!("r{reg}"), Expr::var(name.clone()));
        }
    }
    let final_state = symbolic_run(&synthesized.model, &bindings)?;
    let reference = dfg_expressions(dfg)?;

    let mut outputs = Vec::new();
    for (name, reg) in &synthesized.output_registers {
        let got = final_state
            .get(reg)
            .ok_or_else(|| VerifyError::UndefinedOutput(reg.clone()))?;
        let want = &reference[name];
        if equivalent(got, want) {
            outputs.push((name.clone(), OutputVerdict::Proven));
            continue;
        }
        // Opaque-operation fallback: concrete testing.
        let mut vars = got.variables();
        for v in want.variables() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let mut verdict = OutputVerdict::TestedOnly;
        for env in test_vectors(&vars, test_rounds.max(1)) {
            let g = got.eval(&env);
            let w = want.eval(&env);
            match (g, w) {
                (Ok(g), Ok(w)) if g == w => {}
                (Ok(g), Ok(w)) => {
                    verdict = OutputVerdict::Refuted {
                        inputs: env.into_iter().collect(),
                        got: g,
                        expected: w,
                    };
                    break;
                }
                // Illegal on either side for this vector: skip it (e.g.
                // a shift amount out of range for random data).
                _ => {}
            }
        }
        outputs.push((name.clone(), verdict));
    }
    outputs.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(SynthesisVerification { outputs })
}

/// End-to-end concrete check: simulates the synthesized model and
/// compares every output register against the graph's evaluator for the
/// inputs the model was emitted with.
///
/// # Errors
///
/// [`VerifyError::Simulation`] when elaboration/simulation fails.
pub fn concrete_check(
    dfg: &Dfg,
    synthesized: &Synthesized,
    inputs: &HashMap<&str, i64>,
) -> Result<bool, VerifyError> {
    let mut sim = RtSimulation::new(&synthesized.model)
        .map_err(|e| VerifyError::Simulation(e.to_string()))?;
    let summary = sim
        .run_to_completion()
        .map_err(|e| VerifyError::Simulation(e.to_string()))?;
    let reference = dfg
        .evaluate(inputs)
        .map_err(|e| VerifyError::Simulation(e.to_string()))?;
    for (name, reg) in &synthesized.output_registers {
        if summary.register(reg) != Some(Value::Num(reference[name])) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// A divergence between the two execution backends on one model: the
/// differential obligation of the backend layer failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendDivergence {
    /// The model that exposed the divergence.
    pub model: String,
    /// Which observable differed (`"registers"`, `"stats"`,
    /// `"conflicts"`, `"commits"`, `"vcd"`, or `"error"`).
    pub field: &'static str,
    /// The interpreted engine's rendering of that observable.
    pub interpreted: String,
    /// The compiled engine's rendering of that observable.
    pub compiled: String,
}

impl fmt::Display for BackendDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "backends diverge on `{}` in {}: interpreted {} vs compiled {}",
            self.model, self.field, self.interpreted, self.compiled
        )
    }
}

impl std::error::Error for BackendDivergence {}

/// Differentially runs `model` on the interpreted and the compiled
/// backend — once traced, once untraced, the compiled engine swept over
/// **every optimization level** (`-O0`, `-O1`, `-O2`) — and checks every
/// observable for byte identity: final registers, kernel statistics,
/// conflict diagnoses (exact site, step and phase), the register-commit
/// log, the VCD waveform, and, when a run fails, the rendered error
/// itself.
///
/// This is the proof obligation the pluggable-backend layer carries: the
/// compiled phase-schedule engine and its optimizing plan compiler may
/// take any shortcut they like, but every level must be *observationally
/// indistinguishable* from the paper's VHDL delta semantics. CI runs
/// this over the `.rtl` corpus, the HLS workloads, the IKS chips and
/// every fault-campaign mutant.
///
/// # Errors
///
/// The first [`BackendDivergence`] found, naming the differing field and
/// both renderings.
///
/// # Examples
///
/// ```
/// use clockless_core::model::fig1_model;
/// use clockless_verify::backend_equiv;
///
/// backend_equiv(&fig1_model(3, 4))?;
/// # Ok::<(), clockless_verify::equiv::BackendDivergence>(())
/// ```
pub fn backend_equiv(model: &RtModel) -> Result<(), BackendDivergence> {
    for options in [ExecOptions::traced(), ExecOptions::default()] {
        for level in OptLevel::ALL {
            backend_equiv_with(model, &options.at_opt(level))?;
        }
    }
    Ok(())
}

/// The single-configuration core of [`backend_equiv`].
fn backend_equiv_with(model: &RtModel, options: &ExecOptions) -> Result<(), BackendDivergence> {
    let diverge = |field: &'static str, interpreted: String, compiled: String| BackendDivergence {
        model: model.name().to_string(),
        field,
        interpreted,
        compiled,
    };
    let interp = Backend::Interpreted.execute(model, options);
    let compiled = Backend::Compiled.execute(model, options);
    match (interp, compiled) {
        (Err(a), Err(b)) => {
            if a.to_string() != b.to_string() {
                return Err(diverge("error", a.to_string(), b.to_string()));
            }
            Ok(())
        }
        (Ok(_), Err(b)) => Err(diverge("error", "run completed".into(), b.to_string())),
        (Err(a), Ok(_)) => Err(diverge("error", a.to_string(), "run completed".into())),
        (Ok(a), Ok(b)) => {
            if a.summary.registers != b.summary.registers {
                return Err(diverge(
                    "registers",
                    format!("{:?}", a.summary.registers),
                    format!("{:?}", b.summary.registers),
                ));
            }
            if a.summary.stats != b.summary.stats {
                return Err(diverge(
                    "stats",
                    format!("{:?}", a.summary.stats),
                    format!("{:?}", b.summary.stats),
                ));
            }
            if a.summary.conflicts != b.summary.conflicts {
                return Err(diverge(
                    "conflicts",
                    format!("{:?}", a.summary.conflicts),
                    format!("{:?}", b.summary.conflicts),
                ));
            }
            if a.commits != b.commits {
                return Err(diverge(
                    "commits",
                    format!("{:?}", a.commits),
                    format!("{:?}", b.commits),
                ));
            }
            if a.vcd != b.vcd {
                return Err(diverge(
                    "vcd",
                    a.vcd.unwrap_or_else(|| "<none>".into()),
                    b.vcd.unwrap_or_else(|| "<none>".into()),
                ));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::Op;
    use clockless_hls::{synthesize, ResourceSet};

    fn verify_graph(g: &Dfg, inputs: &[(&str, i64)]) -> SynthesisVerification {
        let resources = ResourceSet::unconstrained(g);
        let map: HashMap<&str, i64> = inputs.iter().copied().collect();
        let syn = synthesize(g, &resources, &map).expect("synthesis");
        assert!(concrete_check(g, &syn, &map).expect("simulates"));
        verify_synthesis(g, &syn, 16).expect("verification runs")
    }

    #[test]
    fn polynomial_design_is_proven() {
        let mut g = Dfg::new("poly");
        let s = g.node(Op::Add, "a", "b").unwrap();
        let d = g.node(Op::Sub, s, "c").unwrap();
        let m = g.node(Op::Mul, s, d).unwrap();
        g.output("out", m).unwrap();
        let report = verify_graph(&g, &[("a", 1), ("b", 2), ("c", 3)]);
        assert!(report.fully_proven(), "{report}");
    }

    #[test]
    fn opaque_design_is_tested() {
        let mut g = Dfg::new("opaque");
        let m = g.node(Op::Min, "a", "b").unwrap();
        let s = g.node(Op::Add, m, "c").unwrap();
        g.output("out", s).unwrap();
        let report = verify_graph(&g, &[("a", 5), ("b", 2), ("c", 1)]);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn diffeq_benchmark_is_proven() {
        let g = clockless_hls::diffeq();
        let report = verify_graph(&g, &[("x", 1), ("y", 2), ("u", 3), ("dx", 1)]);
        assert!(report.fully_proven(), "{report}");
    }

    #[test]
    fn broken_model_is_refuted() {
        // Synthesize a correct model, then sabotage it: swap the graph
        // against a different one and verify — must be refuted.
        let mut g = Dfg::new("good");
        let s = g.node(Op::Add, "a", "b").unwrap();
        g.output("out", s).unwrap();
        let resources = ResourceSet::unconstrained(&g);
        let map: HashMap<&str, i64> = [("a", 1), ("b", 2)].into_iter().collect();
        let syn = synthesize(&g, &resources, &map).unwrap();

        let mut wrong = Dfg::new("wrong");
        let d = wrong.node(Op::Sub, "a", "b").unwrap();
        wrong.output("out", d).unwrap();
        let report = verify_synthesis(&wrong, &syn, 8).unwrap();
        assert!(!report.passed(), "{report}");
        assert!(matches!(report.outputs[0].1, OutputVerdict::Refuted { .. }));
    }

    #[test]
    fn backends_agree_on_the_rtl_corpus() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../models");
        let mut checked = 0;
        for entry in std::fs::read_dir(dir).expect("models directory") {
            let path = entry.expect("entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("rtl") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("readable");
            let model = clockless_core::text::parse_model(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            backend_equiv(&model).unwrap_or_else(|d| panic!("{}: {d}", path.display()));
            checked += 1;
        }
        assert!(checked >= 5, "corpus shrank to {checked} models");
    }

    #[test]
    fn backends_agree_on_hls_workloads() {
        let graphs = [
            clockless_hls::fir(&[1, 3, 5, 7]),
            clockless_hls::horner(&[2, -1, 4]),
            clockless_hls::diffeq(),
            clockless_hls::random_dag(42, 24, 4),
        ];
        for g in &graphs {
            let resources = ResourceSet::unconstrained(g);
            let names = g.inputs();
            let inputs: HashMap<&str, i64> = names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), i as i64 + 1))
                .collect();
            let syn = synthesize(g, &resources, &inputs).expect("synthesis");
            backend_equiv(&syn.model).unwrap_or_else(|d| panic!("{}: {d}", g.name()));
        }
    }

    #[test]
    fn backends_agree_on_the_iks_chips() {
        use clockless_iks::prelude::*;
        let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
        let ik = build_ik_chip(to_fx(1.0), to_fx(1.0), constants)
            .expect("ik chip")
            .model;
        backend_equiv(&ik).expect("ik chip equivalence");

        let samples = [to_fx(0.5), to_fx(1.5), to_fx(-1.0), to_fx(2.0)];
        let coeffs = [to_fx(2.0), to_fx(-0.5), to_fx(0.25), to_fx(1.0)];
        let fir = clockless_iks::build_fir_chip(samples, coeffs).expect("fir chip");
        backend_equiv(&fir).expect("fir chip equivalence");
    }

    #[test]
    fn backends_agree_on_every_fault_mutant() {
        use crate::faults::{generate_faults, CampaignConfig};
        use clockless_core::model::fig1_model;

        let model = fig1_model(3, 4);
        let faults = generate_faults(&model, &CampaignConfig::default());
        assert!(!faults.is_empty());
        for fault in faults {
            let mutant = fault.apply(&model).expect("applies");
            backend_equiv(&mutant).unwrap_or_else(|d| panic!("{fault}: {d}"));
        }
    }

    #[test]
    fn backend_divergence_display_names_the_field() {
        let d = BackendDivergence {
            model: "m".into(),
            field: "stats",
            interpreted: "a".into(),
            compiled: "b".into(),
        };
        assert_eq!(
            d.to_string(),
            "backends diverge on `m` in stats: interpreted a vs compiled b"
        );
    }

    #[test]
    fn dfg_expressions_match_evaluator() {
        let g = clockless_hls::fir(&[1, 2, 3]);
        let exprs = dfg_expressions(&g).unwrap();
        let env: HashMap<String, i64> = [("x0", 7i64), ("x1", -2), ("x2", 10)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let inputs: HashMap<&str, i64> = [("x0", 7), ("x1", -2), ("x2", 10)].into_iter().collect();
        let direct = g.evaluate(&inputs).unwrap();
        assert_eq!(exprs["y"].eval(&env).unwrap(), direct["y"]);
    }
}
