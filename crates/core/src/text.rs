//! A small declarative text format for RT models.
//!
//! The paper describes models as VHDL source. We do not reproduce a VHDL
//! parser (see DESIGN.md); instead this line-oriented format captures the
//! same declarations so models can be written, versioned and diffed as
//! text:
//!
//! ```text
//! # the Fig. 1 example
//! model example steps 7
//! register R1 init 3
//! register R2 init 4
//! array A[4] init 0
//! memory M[8] init 0
//! bus B1
//! bus B2
//! module ADD ops add pipelined 1
//! transfer (R1,B1,R2,B2,5,ADD,6,B1,R1)
//! transfer if R1 /= 0 then (A[0],B1,M[2],B2,1,ADD,2,B1,R2)
//! ```
//!
//! Module timing is `comb`, `pipelined <latency>` or
//! `sequential <latency>`. Transfers use the paper's 9-tuple notation
//! (with the `MODULE:op` extension), optionally prefixed by a guard
//! `if <cond> then`. `array NAME[N]` declares `N` element registers
//! `NAME[0]`…; `memory NAME[N]` declares an indexed storage resource.
//! `#` starts a comment.

use std::collections::HashMap;
use std::fmt;

use crate::model::{ModelError, RtModel};
use crate::op::Op;
use crate::resource::{ModuleDecl, ModuleTiming};
use crate::tuples::TransferTuple;
use crate::value::Value;

/// Error parsing a model description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// 1-based column of the offending token, or 0 when the error has no
    /// finer location than the line itself.
    pub col: usize,
    /// Description of the problem.
    pub msg: String,
}

impl ParseModelError {
    fn new(line: usize, msg: impl Into<String>) -> Self {
        ParseModelError {
            line,
            col: 0,
            msg: msg.into(),
        }
    }

    fn at(line: usize, col: usize, msg: impl Into<String>) -> Self {
        ParseModelError {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col == 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            write!(f, "line {}:{}: {}", self.line, self.col, self.msg)
        }
    }
}

impl std::error::Error for ParseModelError {}

impl From<(usize, ModelError)> for ParseModelError {
    fn from((line, e): (usize, ModelError)) -> Self {
        ParseModelError::new(line, e.to_string())
    }
}

/// Splits a line into whitespace-separated tokens with their byte
/// offsets, so errors can point at the offending column.
fn tokenize(line: &str) -> Vec<(usize, &str)> {
    let mut toks = Vec::new();
    let mut start = None;
    for (i, ch) in line.char_indices() {
        if ch.is_whitespace() {
            if let Some(s) = start.take() {
                toks.push((s, &line[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        toks.push((s, &line[s..]));
    }
    toks
}

/// Parses a `NAME[N]` storage spec; on failure returns the message and
/// the byte offset of the offending part within `spec`.
fn parse_storage_spec(spec: &str) -> Result<(&str, u32), (String, usize)> {
    let Some(open) = spec.find('[') else {
        return Err((format!("expected `NAME[N]`, found `{spec}`"), 0));
    };
    let name = &spec[..open];
    if name.is_empty() {
        return Err(("storage name must come before `[`".into(), 0));
    }
    let Some(idx) = spec[open + 1..].strip_suffix(']') else {
        return Err(("unclosed `[` in storage spec".into(), open));
    };
    let len: u32 = idx
        .parse()
        .map_err(|_| (format!("bad length `{idx}`"), open + 1))?;
    Ok((name, len))
}

/// Parses a model from its textual description.
///
/// # Errors
///
/// Returns a [`ParseModelError`] locating the first offending line; when
/// the offending token is known (malformed guards, storage indices, …)
/// the error additionally carries its 1-based column. Model validation
/// errors (unknown resources, wrong write step, …) are reported the same
/// way.
///
/// # Examples
///
/// ```
/// use clockless_core::text::parse_model;
///
/// let m = parse_model("
///     model tiny steps 3
///     register A init 1
///     register B
///     bus X
///     bus Y
///     module CP ops passa comb
///     transfer (A,X,-,-,2,CP,2,Y,B)
/// ")?;
/// assert_eq!(m.cs_max(), 3);
/// # Ok::<(), clockless_core::text::ParseModelError>(())
/// ```
pub fn parse_model(text: &str) -> Result<RtModel, ParseModelError> {
    let mut model: Option<RtModel> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let stripped = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let indent = stripped.len() - stripped.trim_start().len();
        let line = stripped.trim();
        if line.is_empty() {
            continue;
        }
        let toks = tokenize(line);
        let tokens: Vec<&str> = toks.iter().map(|&(_, t)| t).collect();
        // 1-based column of byte offset `off` within the trimmed line.
        let col = |off: usize| indent + off + 1;
        match tokens[0] {
            "model" => {
                if model.is_some() {
                    return Err(ParseModelError::new(lineno, "duplicate `model` line"));
                }
                let (name, steps) = match tokens.as_slice() {
                    [_, name, "steps", n] => (*name, *n),
                    _ => {
                        return Err(ParseModelError::new(
                            lineno,
                            "expected `model <name> steps <N>`",
                        ))
                    }
                };
                let steps: u32 = steps.parse().map_err(|_| {
                    ParseModelError::at(lineno, col(toks[3].0), format!("bad step count `{steps}`"))
                })?;
                model = Some(RtModel::new(name, steps));
            }
            "register" => {
                let m = model
                    .as_mut()
                    .ok_or_else(|| ParseModelError::new(lineno, "`model` line must come first"))?;
                match tokens.as_slice() {
                    [_, name] => m
                        .add_register(*name)
                        .map_err(|e| ParseModelError::from((lineno, e)))?,
                    [_, name, "init", v] => {
                        let v: i64 = v.parse().map_err(|_| {
                            ParseModelError::at(
                                lineno,
                                col(toks[3].0),
                                format!("bad init value `{v}`"),
                            )
                        })?;
                        m.add_register_init(*name, Value::Num(v))
                            .map_err(|e| ParseModelError::from((lineno, e)))?
                    }
                    _ => {
                        return Err(ParseModelError::new(
                            lineno,
                            "expected `register <name> [init <value>]`",
                        ))
                    }
                };
            }
            "array" | "memory" => {
                let directive = tokens[0];
                let m = model
                    .as_mut()
                    .ok_or_else(|| ParseModelError::new(lineno, "`model` line must come first"))?;
                let (spec, init) = match tokens.as_slice() {
                    [_, spec] => (*spec, Value::Disc),
                    [_, spec, "init", v] => {
                        let v: i64 = v.parse().map_err(|_| {
                            ParseModelError::at(
                                lineno,
                                col(toks[3].0),
                                format!("bad init value `{v}`"),
                            )
                        })?;
                        (*spec, Value::Num(v))
                    }
                    _ => {
                        return Err(ParseModelError::new(
                            lineno,
                            format!("expected `{directive} NAME[N] [init <value>]`"),
                        ))
                    }
                };
                let (name, len) = parse_storage_spec(spec)
                    .map_err(|(msg, off)| ParseModelError::at(lineno, col(toks[1].0 + off), msg))?;
                let result = if directive == "array" {
                    m.add_array(name, len, init)
                } else {
                    m.add_memory(name, len, init).map(|_| ())
                };
                result.map_err(|e| ParseModelError::from((lineno, e)))?;
            }
            "bus" => {
                let m = model
                    .as_mut()
                    .ok_or_else(|| ParseModelError::new(lineno, "`model` line must come first"))?;
                match tokens.as_slice() {
                    [_, name] => m
                        .add_bus(*name)
                        .map_err(|e| ParseModelError::from((lineno, e)))?,
                    _ => return Err(ParseModelError::new(lineno, "expected `bus <name>`")),
                };
            }
            "module" => {
                let m = model
                    .as_mut()
                    .ok_or_else(|| ParseModelError::new(lineno, "`model` line must come first"))?;
                let (name, ops_str, timing_tokens) = match tokens.as_slice() {
                    [_, name, "ops", ops, rest @ ..] if !rest.is_empty() => (*name, *ops, rest),
                    _ => return Err(ParseModelError::new(
                        lineno,
                        "expected `module <name> ops <op[,op…]> <comb|pipelined N|sequential N>`",
                    )),
                };
                let ops = ops_str
                    .split(',')
                    .map(|s| s.parse::<Op>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| ParseModelError::at(lineno, col(toks[3].0), e.to_string()))?;
                let timing = match timing_tokens {
                    ["comb"] => ModuleTiming::Combinational,
                    ["pipelined", n] => ModuleTiming::Pipelined {
                        latency: n.parse().map_err(|_| {
                            ParseModelError::new(lineno, format!("bad latency `{n}`"))
                        })?,
                    },
                    ["sequential", n] => ModuleTiming::Sequential {
                        latency: n.parse().map_err(|_| {
                            ParseModelError::new(lineno, format!("bad latency `{n}`"))
                        })?,
                    },
                    _ => {
                        return Err(ParseModelError::new(
                            lineno,
                            "timing must be `comb`, `pipelined <N>` or `sequential <N>`",
                        ))
                    }
                };
                m.add_module(ModuleDecl {
                    name: name.to_string(),
                    ops,
                    timing,
                })
                .map_err(|e| ParseModelError::from((lineno, e)))?;
            }
            "transfer" => {
                let m = model
                    .as_mut()
                    .ok_or_else(|| ParseModelError::new(lineno, "`model` line must come first"))?;
                let after = &line["transfer".len()..];
                let tuple_off = "transfer".len() + (after.len() - after.trim_start().len());
                let tuple_text = after.trim();
                let tuple: TransferTuple =
                    tuple_text
                        .parse()
                        .map_err(|e: crate::tuples::ParseTupleError| {
                            ParseModelError::at(lineno, col(tuple_off + e.offset()), e.to_string())
                        })?;
                m.add_transfer(tuple)
                    .map_err(|e| ParseModelError::from((lineno, e)))?;
            }
            other => {
                return Err(ParseModelError::new(
                    lineno,
                    format!("unknown directive `{other}`"),
                ))
            }
        }
    }
    model.ok_or_else(|| ParseModelError::new(1, "no `model` line found"))
}

fn storage_line(out: &mut String, directive: &str, name: &str, len: u32, init: Value) {
    use std::fmt::Write as _;
    match init {
        Value::Num(n) => {
            let _ = writeln!(out, "{directive} {name}[{len}] init {n}");
        }
        // ILLEGAL init is unreachable for built models; keep loadable.
        Value::Disc | Value::Illegal => {
            let _ = writeln!(out, "{directive} {name}[{len}]");
        }
    }
}

/// Renders a model in the textual format; [`parse_model`] of the result
/// reproduces the model. Array element registers are folded back into
/// their `array` declaration (emitted where the first element sits in
/// declaration order); memories follow the registers.
pub fn to_text(model: &RtModel) -> String {
    use std::fmt::Write as _;

    // Map each array element register to its declaration and index.
    let mut elements: HashMap<String, (usize, u32)> = HashMap::new();
    for (ai, a) in model.arrays().iter().enumerate() {
        for i in 0..a.len {
            elements.insert(format!("{}[{}]", a.name, i), (ai, i));
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "model {} steps {}", model.name(), model.cs_max());
    for r in model.registers() {
        if let Some(&(ai, i)) = elements.get(&r.name) {
            if i == 0 {
                let a = &model.arrays()[ai];
                storage_line(&mut out, "array", &a.name, a.len, a.init);
            }
            continue;
        }
        match r.init {
            Value::Disc => {
                let _ = writeln!(out, "register {}", r.name);
            }
            Value::Num(n) => {
                let _ = writeln!(out, "register {} init {}", r.name, n);
            }
            Value::Illegal => {
                // Unreachable for built models; keep the text loadable.
                let _ = writeln!(out, "register {}", r.name);
            }
        }
    }
    for m in model.memories() {
        storage_line(&mut out, "memory", &m.name, m.len, m.init);
    }
    for b in model.buses() {
        let _ = writeln!(out, "bus {}", b.name);
    }
    for m in model.modules() {
        let ops: Vec<String> = m.ops.iter().map(|o| o.mnemonic()).collect();
        let timing = match m.timing {
            ModuleTiming::Combinational => "comb".to_string(),
            ModuleTiming::Pipelined { latency } => format!("pipelined {latency}"),
            ModuleTiming::Sequential { latency } => format!("sequential {latency}"),
        };
        let _ = writeln!(out, "module {} ops {} {}", m.name, ops.join(","), timing);
    }
    for t in model.tuples() {
        let _ = writeln!(out, "transfer {t}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;

    #[test]
    fn fig1_roundtrips_through_text() {
        let m = fig1_model(3, 4);
        let text = to_text(&m);
        let m2 = parse_model(&text).unwrap();
        assert_eq!(m2.name(), m.name());
        assert_eq!(m2.cs_max(), m.cs_max());
        assert_eq!(m2.registers(), m.registers());
        assert_eq!(m2.buses(), m.buses());
        assert_eq!(m2.modules(), m.modules());
        assert_eq!(m2.tuples(), m.tuples());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let m =
            parse_model("# header\n\nmodel x steps 2\n  register A # trailing\n bus B\n").unwrap();
        assert_eq!(m.registers().len(), 1);
        assert_eq!(m.buses().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_model("model x steps 2\nbogus Y\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 0);
        assert!(err.to_string().contains("bogus"));
        assert!(err.to_string().starts_with("line 2: "));
    }

    #[test]
    fn model_line_must_come_first() {
        let err = parse_model("register A\nmodel x steps 2\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn validation_errors_surface_with_line() {
        let err = parse_model(
            "model x steps 9\nregister A\nbus B\nmodule ADD ops add pipelined 1\n\
             transfer (A,B,A,B,5,ADD,9,B,A)\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.msg.contains("write-back"));
    }

    #[test]
    fn sequential_and_multi_op_modules_parse() {
        let m = parse_model(
            "model x steps 4\nmodule ALU ops add,sub,shr comb\nmodule MUL ops mulfx12 sequential 2\n",
        )
        .unwrap();
        assert_eq!(m.modules()[0].ops.len(), 3);
        assert_eq!(
            m.modules()[1].timing,
            ModuleTiming::Sequential { latency: 2 }
        );
        assert_eq!(m.modules()[1].ops[0], Op::MulFx(12));
    }

    #[test]
    fn missing_model_line_is_error() {
        assert!(parse_model("# nothing here\n").is_err());
    }

    #[test]
    fn arrays_and_memories_parse_and_roundtrip() {
        let text = "model st steps 3\nregister R init 1\narray A[3] init 7\n\
                    memory M[4] init 0\nbus B\nbus C\nmodule CP ops passa comb\n\
                    transfer (A[1],B,-,-,1,CP,1,C,R)\n\
                    transfer if R /= 0 then (R,B,-,-,2,CP,2,C,M[2])\n";
        let m = parse_model(text).unwrap();
        assert_eq!(m.arrays().len(), 1);
        assert_eq!(m.memories().len(), 1);
        // 1 plain register + 3 array elements.
        assert_eq!(m.registers().len(), 4);
        assert!(m.register_by_name("A[2]").is_some());
        assert!(m.tuples()[1].guard.is_some());

        let rendered = to_text(&m);
        // Element registers fold back into the array line.
        assert!(rendered.contains("array A[3] init 7\n"), "{rendered}");
        assert!(!rendered.contains("register A[0]"), "{rendered}");
        assert!(rendered.contains("memory M[4] init 0\n"), "{rendered}");
        assert!(rendered.contains("if R /= 0 then "), "{rendered}");
        let m2 = parse_model(&rendered).unwrap();
        assert_eq!(m2.registers(), m.registers());
        assert_eq!(m2.arrays(), m.arrays());
        assert_eq!(m2.memories(), m.memories());
        assert_eq!(m2.tuples(), m.tuples());
    }

    #[test]
    fn uninitialized_storage_defaults_to_disc() {
        let m = parse_model("model x steps 1\narray A[2]\nmemory M[2]\n").unwrap();
        assert_eq!(m.arrays()[0].init, Value::Disc);
        assert_eq!(m.memories()[0].init, Value::Disc);
    }

    /// The satellite diagnostic table: every malformed guard or index
    /// points at its exact line *and* column.
    #[test]
    fn malformed_guards_and_indices_locate_line_and_column() {
        // (source, expected line, expected 1-based column, msg fragment)
        let table: &[(&str, usize, usize, &str)] = &[
            // `array A3`: no bracket in the spec token.
            ("model x steps 1\narray A3\n", 2, 7, "expected `NAME[N]`"),
            // Unclosed bracket: column of the `[`.
            ("model x steps 1\nmemory M[4\n", 2, 9, "unclosed `[`"),
            // Non-numeric length: column of the index text.
            ("model x steps 1\narray A[x]\n", 2, 9, "bad length `x`"),
            // Missing name: column of the spec itself.
            ("model x steps 1\nmemory [4]\n", 2, 8, "storage name"),
            // Indented line: columns shift with the indentation.
            ("model x steps 1\n  array A[x]\n", 2, 11, "bad length `x`"),
            // Bad comparison operator inside a guard: the tuple text
            // starts at col 10, `??` sits 6 bytes into it (`if R1 `).
            (
                "model x steps 1\nregister R1\nbus B\nbus C\nmodule CP ops passa comb\n\
                 transfer if R1 ?? 0 then (R1,B,-,-,1,CP,1,C,R1)\n",
                6,
                16,
                "unknown comparison `??`",
            ),
            // Bad guard literal: `0x` is 8 bytes into the tuple text.
            (
                "model x steps 1\nregister R1\nbus B\nbus C\nmodule CP ops passa comb\n\
                 transfer if R1 = 0x then (R1,B,-,-,1,CP,1,C,R1)\n",
                6,
                18,
                "bad literal `0x`",
            ),
            // Guard without `then`: column of the tuple text.
            (
                "model x steps 1\nregister R1\nbus B\nbus C\nmodule CP ops passa comb\n\
                 transfer if R1 = 0 (R1,B,-,-,1,CP,1,C,R1)\n",
                6,
                10,
                "then",
            ),
        ];
        for &(src, line, column, frag) in table {
            let err = parse_model(src).unwrap_err();
            assert_eq!(err.line, line, "{src:?}: {err}");
            assert_eq!(err.col, column, "{src:?}: {err}");
            assert!(err.msg.contains(frag), "{src:?}: {err}");
            assert!(
                err.to_string()
                    .starts_with(&format!("line {line}:{column}: ")),
                "{err}"
            );
        }
    }

    #[test]
    fn storage_validation_errors_carry_lines() {
        let err = parse_model("model x steps 1\narray A[0]\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("at least one element"), "{err}");
        let err = parse_model("model x steps 1\nmemory M[2]\nmemory M[2]\n").unwrap_err();
        assert_eq!(err.line, 3);
    }
}
