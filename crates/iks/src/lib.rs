//! # clockless-iks — the inverse-kinematics-solution chip application
//!
//! §3 of the DATE 1998 paper demonstrates the clock-free RT subset on the
//! IKS chip (Leung & Shanblatt): an ASIC computing the inverse kinematics
//! solution for a robot arm, whose register transfers are *extracted from
//! microcode tables* by a small translator program and then verified
//! against an algorithmic-level description. This crate reproduces that
//! whole application:
//!
//! * [`fixed`] — the chip's Q16.16 arithmetic;
//! * [`cordic`] — the CORDIC core's reference operations (atan2, sqrt);
//! * [`algorithm`] — the algorithmic-level golden model (two-link planar
//!   inverse kinematics) computed with the chip's exact arithmetic;
//! * [`resources`] — the Fig. 3 resource structure (register files as
//!   scalar registers, direct links as dedicated buses, the two-stage
//!   pipelined multiplier, the non-pipelined adders, the sequential
//!   CORDIC core);
//! * [`microcode`] — the `addr cycle opc1 opc2 …` instruction format and
//!   opcode maps;
//! * [`mod@translate`] — the paper's "C program": microcode tables → transfer
//!   tuples;
//! * [`program`] — a complete IK microprogram plus [`build_ik_chip`],
//!   which assembles a runnable clock-free RT model for a pose.
//!
//! ## Example
//!
//! ```
//! use clockless_iks::prelude::*;
//! use clockless_core::RtSimulation;
//!
//! let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
//! let chip = build_ik_chip(to_fx(1.0), to_fx(1.0), constants)?;
//! let mut sim = RtSimulation::new(&chip.model)?;
//! let summary = sim.run_to_completion()?;
//!
//! // The chip's answer equals the algorithmic model's, bit for bit.
//! let golden = solve_ik(to_fx(1.0), to_fx(1.0), &constants)?;
//! assert_eq!(
//!     summary.register(THETA2_REG).unwrap().num(),
//!     Some(golden.theta2),
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod cordic;
pub mod fixed;
pub mod microcode;
pub mod program;
pub mod resources;
pub mod translate;

pub use algorithm::{
    forward_kinematics, forward_kinematics_fx, solve_ik, ArmGeometry, IkConstants, IkError,
    IkSolution,
};
pub use microcode::{
    Field, MicroInstruction, MicroOp, MicroOpTemplate, MicrocodeError, OpcodeMaps, OperandPort,
    RegRef,
};
pub use program::{
    build_fir_chip, build_fk_chip, build_ik_chip, fir_microprogram, fk_microprogram,
    ik_microprogram, ik_opcode_maps, IksChip, FIR_OUT_REG, FIR_STEPS, FK_STEPS, FK_X_REG, FK_Y_REG,
    IK_STEPS, THETA1_REG, THETA2_REG,
};
pub use resources::{chip_model, CORDIC_LATENCY, J_FILE, MULT_LATENCY, M_FILE, R_FILE};
pub use translate::{translate, TranslateMicrocodeError};

/// Convenient glob import for the IKS application.
pub mod prelude {
    pub use crate::algorithm::{solve_ik, ArmGeometry, IkConstants, IkSolution};
    pub use crate::fixed::{from_fx, to_fx, FRAC, ONE};
    pub use crate::program::{build_ik_chip, IksChip, THETA1_REG, THETA2_REG};
}
