//! Register transfers as 9-tuples, and their expansion into transfer
//! processes.
//!
//! The paper denotes a concrete register transfer by the tuple
//!
//! ```text
//! (R1, B1, R2, B2, 5, ADD, 6, B1, R1)
//! ```
//!
//! read as: *in control step 5, route register `R1` over bus `B1` to the
//! left input of module `ADD` and `R2` over `B2` to its right input; in
//! step 6 route the module's output over `B1` into register `R1`*. Partial
//! tuples use `-` for absent elements. §2.7 gives the straightforward,
//! bidirectional mapping between tuples and transfer-process instances;
//! [`TransferTuple::expand`] implements the forward direction (the reverse
//! lives in `clockless-verify`).
//!
//! The IKS extension (§3) adds an operation selector: our textual form is
//! `MODULE:op` in the module position.

use std::fmt;
use std::str::FromStr;

use crate::op::Op;
use crate::phase::{Phase, Step};

/// Splits an indexed storage reference `BASE[IDX]` into its parts.
///
/// Returns `None` when `name` carries no index suffix. The index part is
/// returned raw (it may be a number or a register name); callers resolve
/// it against the model.
pub fn indexed_parts(name: &str) -> Option<(&str, &str)> {
    let open = name.find('[')?;
    let rest = &name[open + 1..];
    let close = rest.find(']')?;
    if open == 0 || close + 1 != rest.len() || rest[..close].is_empty() {
        return None;
    }
    Some((&name[..open], &rest[..close]))
}

/// A comparison operator usable in transfer guards, printed in VHDL
/// relational notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `/=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The logically opposite comparison (`=` ↔ `/=`, `<` ↔ `>=`, …).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
        }
    }

    /// Applies the comparison to two numbers.
    pub fn holds(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "/=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

impl FromStr for CmpOp {
    type Err = ParseGuardError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "=" => CmpOp::Eq,
            "/=" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            _ => {
                return Err(ParseGuardError {
                    msg: format!("unknown comparison `{s}`"),
                    offset: 0,
                })
            }
        })
    }
}

/// One side of a guard comparison: a register (possibly an array element)
/// or an integer literal. Buses are deliberately excluded — their values
/// are phase-transient within a step, so a guard re-evaluated at each
/// spec's activation phase would be incoherent; register outputs are
/// stable from `ra` through `wb` (commits land at `cr`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GuardOperand {
    /// A register output, read at guard-evaluation time.
    Reg(String),
    /// An integer literal.
    Const(i64),
}

impl fmt::Display for GuardOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardOperand::Reg(r) => f.write_str(r),
            GuardOperand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// One comparison clause of a guard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GuardClause {
    /// Left operand.
    pub lhs: GuardOperand,
    /// Comparison operator.
    pub cmp: CmpOp,
    /// Right operand.
    pub rhs: GuardOperand,
}

impl fmt::Display for GuardClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.cmp, self.rhs)
    }
}

/// A transfer guard: a conjunction of comparison clauses, optionally
/// negated as a whole (`not (…)`).
///
/// The guard is a combinational enable, re-evaluated at each asserting
/// spec's activation phase over the *current* register-output values: the
/// read-side specs see the registers as of the read step, the write-side
/// specs as of the write step. A clause holds only when both operands are
/// regular numbers and the comparison is true; a `DISC` or `ILLEGAL`
/// operand makes the clause false. A false guard makes the transfer
/// process drive `DISC` instead of the source value — the driver update
/// still happens, so schedule statistics are guard-independent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Guard {
    /// Whether the conjunction is negated as a whole.
    pub negated: bool,
    /// The conjunction clauses (non-empty).
    pub clauses: Vec<GuardClause>,
}

impl Guard {
    /// A single-clause guard.
    pub fn new(lhs: GuardOperand, cmp: CmpOp, rhs: GuardOperand) -> Guard {
        Guard {
            negated: false,
            clauses: vec![GuardClause { lhs, cmp, rhs }],
        }
    }

    /// The guard's logical negation (toggles the `not` wrapper).
    pub fn flipped(&self) -> Guard {
        Guard {
            negated: !self.negated,
            clauses: self.clauses.clone(),
        }
    }

    /// Evaluates the guard; `lookup` maps register names to their current
    /// values (`None` meaning no numeric value is available).
    pub fn eval(&self, mut lookup: impl FnMut(&str) -> Option<i64>) -> bool {
        let conj = self.clauses.iter().all(|c| {
            let mut side = |op: &GuardOperand| match op {
                GuardOperand::Reg(r) => lookup(r),
                GuardOperand::Const(v) => Some(*v),
            };
            match (side(&c.lhs), side(&c.rhs)) {
                (Some(a), Some(b)) => c.cmp.holds(a, b),
                _ => false,
            }
        });
        conj != self.negated
    }

    /// Register names the guard reads, in clause order (with duplicates).
    pub fn registers(&self) -> impl Iterator<Item = &str> {
        self.clauses.iter().flat_map(|c| {
            [&c.lhs, &c.rhs].into_iter().filter_map(|op| match op {
                GuardOperand::Reg(r) => Some(r.as_str()),
                GuardOperand::Const(_) => None,
            })
        })
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body = self
            .clauses
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" and ");
        if self.negated {
            write!(f, "not ({body})")
        } else {
            f.write_str(&body)
        }
    }
}

/// Error parsing a [`Guard`], locating the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGuardError {
    /// Description of the problem.
    pub msg: String,
    /// Byte offset of the offending token within the parsed text.
    pub offset: usize,
}

impl fmt::Display for ParseGuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid guard: {}", self.msg)
    }
}

impl std::error::Error for ParseGuardError {}

impl Guard {
    /// Parses a guard from its textual form, e.g. `R1 /= 0 and A[1] <= 5`
    /// or `not (MODE = 2)`.
    ///
    /// # Errors
    ///
    /// A [`ParseGuardError`] carrying the byte offset of the offending
    /// token within `text`.
    pub fn parse(text: &str) -> Result<Guard, ParseGuardError> {
        let trimmed = text.trim();
        let base = text.len() - text.trim_start().len();
        let at = |tok_offset: usize| base + tok_offset;
        let (negated, body, body_base) = match trimmed.strip_prefix("not") {
            Some(rest) if rest.trim_start().starts_with('(') => {
                let inner = rest.trim_start();
                let inner_base = at(trimmed.len() - inner.len());
                let inner = inner
                    .strip_prefix('(')
                    .and_then(|s| s.trim_end().strip_suffix(')'))
                    .ok_or_else(|| ParseGuardError {
                        msg: "`not` needs a parenthesized condition".into(),
                        offset: inner_base,
                    })?;
                (true, inner, inner_base + 1)
            }
            _ => (false, trimmed, base),
        };
        if body.trim().is_empty() {
            return Err(ParseGuardError {
                msg: "empty condition".into(),
                offset: base,
            });
        }
        let mut clauses = Vec::new();
        let mut cursor = 0usize;
        for part in body.split(" and ") {
            let part_base = body_base + cursor;
            cursor += part.len() + " and ".len();
            let toks: Vec<(usize, &str)> = split_tokens(part);
            let [l, c, r] = toks.as_slice() else {
                return Err(ParseGuardError {
                    msg: format!(
                        "expected `<operand> <cmp> <operand>`, found `{}`",
                        part.trim()
                    ),
                    offset: part_base + toks.first().map_or(0, |&(o, _)| o),
                });
            };
            let cmp: CmpOp = c.1.parse().map_err(|e: ParseGuardError| ParseGuardError {
                msg: e.msg,
                offset: part_base + c.0,
            })?;
            let operand = |(off, tok): (usize, &str)| -> Result<GuardOperand, ParseGuardError> {
                if tok
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-' || ch == '+')
                {
                    tok.parse::<i64>()
                        .map(GuardOperand::Const)
                        .map_err(|_| ParseGuardError {
                            msg: format!("bad literal `{tok}`"),
                            offset: part_base + off,
                        })
                } else {
                    Ok(GuardOperand::Reg(tok.to_string()))
                }
            };
            clauses.push(GuardClause {
                lhs: operand(*l)?,
                cmp,
                rhs: operand(*r)?,
            });
        }
        Ok(Guard { negated, clauses })
    }
}

/// Whitespace-splits `s` into `(byte offset, token)` pairs.
fn split_tokens(s: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut rest = s;
    let mut off = 0usize;
    loop {
        let skipped = rest.len() - rest.trim_start().len();
        off += skipped;
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
        out.push((off, &rest[..end]));
        off += end;
        rest = &rest[end..];
    }
    out
}

/// One operand route: a register read onto a bus.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OperandRoute {
    /// Source register name.
    pub register: String,
    /// Bus carrying the value to the module port.
    pub bus: String,
}

impl OperandRoute {
    /// Creates a route from register to bus.
    pub fn new(register: impl Into<String>, bus: impl Into<String>) -> OperandRoute {
        OperandRoute {
            register: register.into(),
            bus: bus.into(),
        }
    }
}

/// The result route: module output over a bus into a register.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WriteRoute {
    /// Control step of the write-back (`wa`/`wb` phases).
    pub step: Step,
    /// Bus carrying the result.
    pub bus: String,
    /// Destination register name.
    pub register: String,
}

impl WriteRoute {
    /// Creates a write-back route.
    pub fn new(step: Step, bus: impl Into<String>, register: impl Into<String>) -> WriteRoute {
        WriteRoute {
            step,
            bus: bus.into(),
            register: register.into(),
        }
    }
}

/// A register transfer: the paper's 9-tuple plus the IKS operation
/// extension.
///
/// # Examples
///
/// The transfer of paper Fig. 1:
///
/// ```
/// use clockless_core::tuples::TransferTuple;
///
/// let t: TransferTuple = "(R1,B1,R2,B2,5,ADD,6,B1,R1)".parse()?;
/// assert_eq!(t.read_step, 5);
/// assert_eq!(t.module, "ADD");
/// assert_eq!(t.to_string(), "(R1,B1,R2,B2,5,ADD,6,B1,R1)");
/// # Ok::<(), clockless_core::tuples::ParseTupleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransferTuple {
    /// Route for the module's first (left) operand, if used.
    pub src_a: Option<OperandRoute>,
    /// Route for the module's second (right) operand, if used.
    pub src_b: Option<OperandRoute>,
    /// Control step in which operands are read (`ra`/`rb` phases).
    pub read_step: Step,
    /// The functional module performing the operation.
    pub module: String,
    /// Operation selector for multi-operation modules (IKS extension,
    /// §3). `None` for single-operation modules.
    pub op: Option<Op>,
    /// Result route, if the transfer writes a register this tuple.
    pub write: Option<WriteRoute>,
    /// Optional guard: when present, every asserting process of this
    /// tuple drives `DISC` instead of its source value whenever the
    /// guard evaluates false at the process's activation phase.
    pub guard: Option<Guard>,
}

impl TransferTuple {
    /// Starts building a tuple for `module` with operands read at
    /// `read_step`.
    pub fn new(read_step: Step, module: impl Into<String>) -> TransferTuple {
        TransferTuple {
            src_a: None,
            src_b: None,
            read_step,
            module: module.into(),
            op: None,
            write: None,
            guard: None,
        }
    }

    /// Sets the transfer guard.
    pub fn guard(mut self, guard: Guard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Sets the first-operand route.
    pub fn src_a(mut self, register: impl Into<String>, bus: impl Into<String>) -> Self {
        self.src_a = Some(OperandRoute::new(register, bus));
        self
    }

    /// Sets the second-operand route.
    pub fn src_b(mut self, register: impl Into<String>, bus: impl Into<String>) -> Self {
        self.src_b = Some(OperandRoute::new(register, bus));
        self
    }

    /// Sets the operation selector (IKS extension).
    pub fn op(mut self, op: Op) -> Self {
        self.op = Some(op);
        self
    }

    /// Sets the write-back route.
    pub fn write(
        mut self,
        step: Step,
        bus: impl Into<String>,
        register: impl Into<String>,
    ) -> Self {
        self.write = Some(WriteRoute::new(step, bus, register));
        self
    }

    /// Expands the tuple into its transfer-process specifications,
    /// following the mapping of §2.7: up to two `ra`-phase, two
    /// `rb`-phase, one `wa`-phase and one `wb`-phase processes, plus the
    /// operation-select process for multi-operation modules.
    ///
    /// This purely syntactic expansion treats every storage name as a
    /// register. Models that may declare memories must use
    /// [`TransferTuple::expand_in`], which resolves indexed references
    /// against the model's memory table.
    pub fn expand(&self) -> Vec<TransferSpec> {
        self.expand_with(|name| Endpoint::RegOut(name.to_string()), |_| None)
    }

    /// Expands the tuple like [`TransferTuple::expand`], but resolves
    /// storage names against `model`: an operand `M[x]` where `M` is a
    /// declared memory becomes a memory-word read endpoint, and a write
    /// destination `M[x]` lowers to a pair of `wb`-phase processes
    /// driving the memory's write-value and write-address ports.
    pub fn expand_in(&self, model: &crate::model::RtModel) -> Vec<TransferSpec> {
        let read = |name: &str| -> Endpoint {
            if let Some((base, idx)) = indexed_parts(name) {
                if model.memory_by_name(base).is_some() {
                    let addr = match idx.parse::<u32>() {
                        Ok(i) => MemAddr::Const(i),
                        Err(_) => MemAddr::Reg(idx.to_string()),
                    };
                    return Endpoint::MemWord {
                        mem: base.to_string(),
                        addr,
                    };
                }
            }
            Endpoint::RegOut(name.to_string())
        };
        let write = |name: &str| -> Option<(String, MemAddr)> {
            let (base, idx) = indexed_parts(name)?;
            model.memory_by_name(base)?;
            let addr = match idx.parse::<u32>() {
                Ok(i) => MemAddr::Const(i),
                Err(_) => MemAddr::Reg(idx.to_string()),
            };
            Some((base.to_string(), addr))
        };
        self.expand_with(read, write)
    }

    /// Shared expansion body: `read` maps an operand storage name to its
    /// source endpoint; `mem_write` classifies a write destination as a
    /// memory reference (returning the memory name and address).
    fn expand_with(
        &self,
        read: impl Fn(&str) -> Endpoint,
        mem_write: impl Fn(&str) -> Option<(String, MemAddr)>,
    ) -> Vec<TransferSpec> {
        let mut out = Vec::with_capacity(8);
        let mut push = |step: Step, phase: Phase, src: Endpoint, dst: Endpoint| {
            out.push(TransferSpec {
                step,
                phase,
                src,
                dst,
                guard: self.guard.clone(),
            });
        };
        if let Some(a) = &self.src_a {
            push(
                self.read_step,
                Phase::Ra,
                read(&a.register),
                Endpoint::Bus(a.bus.clone()),
            );
            push(
                self.read_step,
                Phase::Rb,
                Endpoint::Bus(a.bus.clone()),
                Endpoint::ModIn1(self.module.clone()),
            );
        }
        if let Some(b) = &self.src_b {
            push(
                self.read_step,
                Phase::Ra,
                read(&b.register),
                Endpoint::Bus(b.bus.clone()),
            );
            push(
                self.read_step,
                Phase::Rb,
                Endpoint::Bus(b.bus.clone()),
                Endpoint::ModIn2(self.module.clone()),
            );
        }
        if let Some(op) = self.op {
            push(
                self.read_step,
                Phase::Rb,
                Endpoint::ConstOp(op),
                Endpoint::ModOp(self.module.clone()),
            );
        }
        if let Some(w) = &self.write {
            push(
                w.step,
                Phase::Wa,
                Endpoint::ModOut(self.module.clone()),
                Endpoint::Bus(w.bus.clone()),
            );
            match mem_write(&w.register) {
                Some((mem, addr)) => {
                    push(
                        w.step,
                        Phase::Wb,
                        Endpoint::Bus(w.bus.clone()),
                        Endpoint::MemWin(mem.clone()),
                    );
                    let addr_src = match addr {
                        MemAddr::Const(i) => Endpoint::ConstVal(i64::from(i)),
                        MemAddr::Reg(r) => Endpoint::RegOut(r),
                    };
                    push(w.step, Phase::Wb, addr_src, Endpoint::MemWaddr(mem));
                }
                None => push(
                    w.step,
                    Phase::Wb,
                    Endpoint::Bus(w.bus.clone()),
                    Endpoint::RegIn(w.register.clone()),
                ),
            }
        }
        out
    }
}

/// A connection endpoint of one transfer process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A register's output port (transfer source).
    RegOut(String),
    /// A register's input port (transfer sink).
    RegIn(String),
    /// A bus (source or sink).
    Bus(String),
    /// A module's first operand port (sink).
    ModIn1(String),
    /// A module's second operand port (sink).
    ModIn2(String),
    /// A module's output port (source).
    ModOut(String),
    /// A module's operation-select port (sink; IKS extension).
    ModOp(String),
    /// A constant operation code (source for [`Endpoint::ModOp`]).
    ConstOp(Op),
    /// A memory word read (source): `mem[addr]`, with the address fixed
    /// at elaboration time or taken from a register output.
    MemWord {
        /// Memory name.
        mem: String,
        /// Word address.
        addr: MemAddr,
    },
    /// A memory's write-value port (sink; resolved).
    MemWin(String),
    /// A memory's write-address port (sink; resolved).
    MemWaddr(String),
    /// A constant integer (source for [`Endpoint::MemWaddr`]).
    ConstVal(i64),
}

/// Address selector of a memory-word read endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemAddr {
    /// A fixed word index.
    Const(u32),
    /// The current value of a register output.
    Reg(String),
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemAddr::Const(i) => write!(f, "{i}"),
            MemAddr::Reg(r) => f.write_str(r),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::RegOut(r) => write!(f, "{r}_out"),
            Endpoint::RegIn(r) => write!(f, "{r}_in"),
            Endpoint::Bus(b) => write!(f, "{b}"),
            Endpoint::ModIn1(m) => write!(f, "{m}_in1"),
            Endpoint::ModIn2(m) => write!(f, "{m}_in2"),
            Endpoint::ModOut(m) => write!(f, "{m}_out"),
            Endpoint::ModOp(m) => write!(f, "{m}_op"),
            Endpoint::ConstOp(op) => write!(f, "const({op})"),
            Endpoint::MemWord { mem, addr } => write!(f, "{mem}[{addr}]"),
            Endpoint::MemWin(m) => write!(f, "{m}_win"),
            Endpoint::MemWaddr(m) => write!(f, "{m}_waddr"),
            Endpoint::ConstVal(v) => write!(f, "const({v})"),
        }
    }
}

/// One transfer-process instance: the paper's `TRANS` generic-mapped to a
/// step and phase, port-mapped to a source and a sink.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransferSpec {
    /// The control step at which the process is active.
    pub step: Step,
    /// The phase at which the process assigns the source to the sink.
    pub phase: Phase,
    /// The value source (read at `phase`).
    pub src: Endpoint,
    /// The value sink (assigned at `phase`, disconnected at the
    /// successor phase).
    pub dst: Endpoint,
    /// Guard inherited from the originating tuple, if any; evaluated at
    /// the process's activation phase.
    pub guard: Option<Guard>,
}

impl TransferSpec {
    /// Instance name in the style the paper uses
    /// (e.g. `R1_out_B1_5`, `B1_ADD_in1_5`).
    pub fn instance_name(&self) -> String {
        format!("{}_{}_{}", self.src, self.dst, self.step)
    }
}

impl fmt::Display for TransferSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} @ step {} phase {}",
            self.src, self.dst, self.step, self.phase
        )
    }
}

/// Error parsing a [`TransferTuple`] from the paper's textual form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTupleError {
    msg: String,
    offset: usize,
}

impl ParseTupleError {
    fn new(msg: impl Into<String>) -> Self {
        ParseTupleError {
            msg: msg.into(),
            offset: 0,
        }
    }

    /// Byte offset of the offending token within the (trimmed) parsed
    /// text; 0 when the whole text is at fault.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseTupleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid transfer tuple: {}", self.msg)
    }
}

impl std::error::Error for ParseTupleError {}

impl fmt::Display for TransferTuple {
    /// Prints in the paper's 9-tuple notation, with `-` for absent
    /// elements and `MODULE:op` for the operation extension.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dash = "-".to_string();
        let (ra, ba) = self
            .src_a
            .as_ref()
            .map(|r| (r.register.clone(), r.bus.clone()))
            .unwrap_or((dash.clone(), dash.clone()));
        let (rb, bb) = self
            .src_b
            .as_ref()
            .map(|r| (r.register.clone(), r.bus.clone()))
            .unwrap_or((dash.clone(), dash.clone()));
        let module = match self.op {
            Some(op) => format!("{}:{}", self.module, op),
            None => self.module.clone(),
        };
        let (ws, wb, wr) = self
            .write
            .as_ref()
            .map(|w| (w.step.to_string(), w.bus.clone(), w.register.clone()))
            .unwrap_or((dash.clone(), dash.clone(), dash));
        if let Some(g) = &self.guard {
            write!(f, "if {g} then ")?;
        }
        write!(
            f,
            "({ra},{ba},{rb},{bb},{},{module},{ws},{wb},{wr})",
            self.read_step
        )
    }
}

impl FromStr for TransferTuple {
    type Err = ParseTupleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (guard, s) = match s.strip_prefix("if ") {
            Some(rest) => {
                let paren = rest.rfind('(').ok_or_else(|| {
                    ParseTupleError::new("guarded transfer needs a parenthesized tuple")
                })?;
                let head = &rest[..paren];
                let cond = head.trim_end().strip_suffix("then").ok_or_else(|| {
                    ParseTupleError::new("guarded transfer needs `then` before the tuple")
                })?;
                let guard = Guard::parse(cond).map_err(|e| ParseTupleError {
                    msg: e.msg,
                    // `cond` starts right after the 3-byte `if ` prefix.
                    offset: 3 + e.offset,
                })?;
                (Some(guard), &rest[paren..])
            }
            None => (None, s),
        };
        let body = s
            .trim()
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| ParseTupleError::new("missing parentheses"))?;
        let parts: Vec<&str> = body.split(',').map(str::trim).collect();
        if parts.len() != 9 {
            return Err(ParseTupleError::new(format!(
                "expected 9 elements, found {}",
                parts.len()
            )));
        }
        let opt = |s: &str| -> Option<String> {
            if s == "-" {
                None
            } else {
                Some(s.to_string())
            }
        };
        let src_a = match (opt(parts[0]), opt(parts[1])) {
            (Some(r), Some(b)) => Some(OperandRoute {
                register: r,
                bus: b,
            }),
            (None, None) => None,
            _ => {
                return Err(ParseTupleError::new(
                    "operand A must name both register and bus",
                ))
            }
        };
        let src_b = match (opt(parts[2]), opt(parts[3])) {
            (Some(r), Some(b)) => Some(OperandRoute {
                register: r,
                bus: b,
            }),
            (None, None) => None,
            _ => {
                return Err(ParseTupleError::new(
                    "operand B must name both register and bus",
                ))
            }
        };
        let read_step: Step = parts[4]
            .parse()
            .map_err(|_| ParseTupleError::new(format!("bad read step `{}`", parts[4])))?;
        let (module, op) = match parts[5].split_once(':') {
            Some((m, o)) => {
                let op = o
                    .parse::<Op>()
                    .map_err(|e| ParseTupleError::new(e.to_string()))?;
                (m.to_string(), Some(op))
            }
            None => (parts[5].to_string(), None),
        };
        if module.is_empty() || module == "-" {
            return Err(ParseTupleError::new("module name is required"));
        }
        let write = match (opt(parts[6]), opt(parts[7]), opt(parts[8])) {
            (Some(s), Some(b), Some(r)) => {
                let step: Step = s
                    .parse()
                    .map_err(|_| ParseTupleError::new(format!("bad write step `{s}`")))?;
                Some(WriteRoute {
                    step,
                    bus: b,
                    register: r,
                })
            }
            (None, None, None) => None,
            _ => {
                return Err(ParseTupleError::new(
                    "write-back must name step, bus and register together",
                ))
            }
        };
        Ok(TransferTuple {
            src_a,
            src_b,
            read_step,
            module,
            op,
            write,
            guard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> TransferTuple {
        TransferTuple::new(5, "ADD")
            .src_a("R1", "B1")
            .src_b("R2", "B2")
            .write(6, "B1", "R1")
    }

    #[test]
    fn fig1_expansion_matches_paper_mapping() {
        // §2.7 derives exactly six TRANS instances from the Fig. 1 tuple.
        let specs = fig1().expand();
        assert_eq!(specs.len(), 6);
        assert_eq!(
            specs[0],
            TransferSpec {
                step: 5,
                phase: Phase::Ra,
                src: Endpoint::RegOut("R1".into()),
                dst: Endpoint::Bus("B1".into()),
                guard: None,
            }
        );
        assert_eq!(specs[0].instance_name(), "R1_out_B1_5");
        assert_eq!(specs[1].instance_name(), "B1_ADD_in1_5");
        assert_eq!(specs[2].instance_name(), "R2_out_B2_5");
        assert_eq!(specs[3].instance_name(), "B2_ADD_in2_5");
        assert_eq!(specs[4].instance_name(), "ADD_out_B1_6");
        assert_eq!(specs[5].instance_name(), "B1_R1_in_6");
        // Phases follow Fig. 2.
        assert_eq!(specs[4].phase, Phase::Wa);
        assert_eq!(specs[5].phase, Phase::Wb);
    }

    #[test]
    fn tuple_display_parse_roundtrip() {
        let t = fig1();
        let s = t.to_string();
        assert_eq!(s, "(R1,B1,R2,B2,5,ADD,6,B1,R1)");
        assert_eq!(s.parse::<TransferTuple>().unwrap(), t);
    }

    #[test]
    fn partial_tuples_roundtrip() {
        // The paper's reconstruction examples use '-' for unknown parts.
        let t: TransferTuple = "(R1,B1,-,-,5,ADD,-,-,-)".parse().unwrap();
        assert!(t.src_b.is_none());
        assert!(t.write.is_none());
        assert_eq!(t.to_string(), "(R1,B1,-,-,5,ADD,-,-,-)");
    }

    #[test]
    fn op_extension_roundtrip() {
        let t: TransferTuple = "(Y,BusA,-,-,3,XADD:shr,4,BusB,X)".parse().unwrap();
        assert_eq!(t.op, Some(Op::Shr));
        assert_eq!(t.to_string(), "(Y,BusA,-,-,3,XADD:shr,4,BusB,X)");
        // Op expansion adds the operation-select process.
        let specs = t.expand();
        assert!(specs
            .iter()
            .any(|s| matches!(&s.dst, Endpoint::ModOp(m) if m == "XADD")));
    }

    #[test]
    fn unary_transfer_expands_to_four() {
        let t = TransferTuple::new(2, "COPY")
            .src_a("Z", "Z_R_link")
            .write(3, "Z_R_link2", "Rfile");
        assert_eq!(t.expand().len(), 4);
    }

    #[test]
    fn malformed_tuples_rejected() {
        assert!("(R1,B1)".parse::<TransferTuple>().is_err());
        assert!("R1,B1,R2,B2,5,ADD,6,B1,R1"
            .parse::<TransferTuple>()
            .is_err());
        assert!("(R1,-,R2,B2,5,ADD,6,B1,R1)"
            .parse::<TransferTuple>()
            .is_err());
        assert!("(R1,B1,R2,B2,x,ADD,6,B1,R1)"
            .parse::<TransferTuple>()
            .is_err());
        assert!("(R1,B1,R2,B2,5,-,6,B1,R1)"
            .parse::<TransferTuple>()
            .is_err());
        assert!("(R1,B1,R2,B2,5,ADD,6,-,R1)"
            .parse::<TransferTuple>()
            .is_err());
        assert!("(R1,B1,R2,B2,5,ADD:frob,6,B1,R1)"
            .parse::<TransferTuple>()
            .is_err());
    }

    #[test]
    fn guarded_tuple_roundtrip() {
        let t: TransferTuple = "if R3 /= 0 and R4 <= 7 then (R1,B1,R2,B2,5,ADD,6,B1,R1)"
            .parse()
            .unwrap();
        let g = t.guard.as_ref().unwrap();
        assert_eq!(g.clauses.len(), 2);
        assert!(!g.negated);
        assert_eq!(g.clauses[0].lhs, GuardOperand::Reg("R3".into()));
        assert_eq!(g.clauses[0].cmp, CmpOp::Ne);
        assert_eq!(g.clauses[0].rhs, GuardOperand::Const(0));
        assert_eq!(
            t.to_string(),
            "if R3 /= 0 and R4 <= 7 then (R1,B1,R2,B2,5,ADD,6,B1,R1)"
        );
        assert_eq!(t.to_string().parse::<TransferTuple>().unwrap(), t);
        // Every asserting spec inherits the guard.
        assert!(t.expand().iter().all(|s| s.guard.is_some()));
    }

    #[test]
    fn negated_guard_roundtrip() {
        let t: TransferTuple = "if not (MODE = 2) then (R1,B1,-,-,3,NEG,4,B1,R1)"
            .parse()
            .unwrap();
        assert!(t.guard.as_ref().unwrap().negated);
        assert_eq!(
            t.to_string(),
            "if not (MODE = 2) then (R1,B1,-,-,3,NEG,4,B1,R1)"
        );
        assert_eq!(t.to_string().parse::<TransferTuple>().unwrap(), t);
        let flipped = t.guard.as_ref().unwrap().flipped();
        assert!(!flipped.negated);
    }

    #[test]
    fn guard_eval_semantics() {
        let g = Guard::parse("A > 1 and B = 3").unwrap();
        let vals = |a: Option<i64>, b: Option<i64>| {
            g.eval(|r| match r {
                "A" => a,
                "B" => b,
                _ => None,
            })
        };
        assert!(vals(Some(2), Some(3)));
        assert!(!vals(Some(1), Some(3)));
        // DISC / ILLEGAL operands (no numeric value) make a clause false.
        assert!(!vals(None, Some(3)));
        assert!(g.flipped().eval(|_| None));
    }

    #[test]
    fn malformed_guards_rejected_with_offset() {
        let e = Guard::parse("R1 >< 3").unwrap_err();
        assert_eq!(e.offset, 3);
        let e = Guard::parse("R1 <").unwrap_err();
        assert_eq!(e.offset, 0);
        let e = Guard::parse("R1 < 1 and R2 >> 4").unwrap_err();
        assert_eq!(e.offset, 14);
        assert!(Guard::parse("").is_err());
        // `not` requires parentheses around the condition.
        assert!(Guard::parse("not R1 = 1").is_err());
        assert!("if R1 >< 3 then (R1,B1,-,-,3,NEG,4,B1,R1)"
            .parse::<TransferTuple>()
            .is_err());
        assert!("if R1 = 3 (R1,B1,-,-,3,NEG,4,B1,R1)"
            .parse::<TransferTuple>()
            .is_err());
    }

    #[test]
    fn indexed_parts_splits_bracketed_names() {
        assert_eq!(indexed_parts("M[2]"), Some(("M", "2")));
        assert_eq!(indexed_parts("MEM[R3]"), Some(("MEM", "R3")));
        assert_eq!(indexed_parts("R1"), None);
        assert_eq!(indexed_parts("[2]"), None);
        assert_eq!(indexed_parts("M[]"), None);
        assert_eq!(indexed_parts("M[2]x"), None);
    }
}
