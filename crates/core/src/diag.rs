//! Conflict diagnostics.
//!
//! §2.7: "simulation results allow easily to locate design errors leading
//! to resource conflicts: it would result to ILLEGAL values of resolved
//! signals in specific simulation cycles associated with a specific phase
//! of a specific control step." This module is that promise made concrete:
//! a [`Conflict`] names the poisoned object and the exact step and phase
//! at which the `ILLEGAL` value became visible.

use std::fmt;

use crate::phase::PhaseTime;

/// What kind of object carried an `ILLEGAL` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictSite {
    /// A bus: two or more transfers drove it in the same phase.
    Bus,
    /// A module operand port: several buses fed it simultaneously, or a
    /// partial/malformed operand combination reached the module.
    ModulePort,
    /// A module operation-select port.
    ModuleOpPort,
    /// A module output: the module computed from conflicting operands or
    /// was re-initiated while busy.
    ModuleOut,
    /// A register input port.
    RegisterPort,
    /// A register output: the conflict was *stored* and now poisons the
    /// dataflow downstream.
    RegisterValue,
    /// A memory's write-value or write-address port: two or more
    /// transfers wrote the memory in the same control step.
    MemoryPort,
    /// One word of a memory: a conflicting or mis-addressed write was
    /// *stored* and now poisons reads of that word.
    MemoryWord,
}

impl fmt::Display for ConflictSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConflictSite::Bus => "bus",
            ConflictSite::ModulePort => "module port",
            ConflictSite::ModuleOpPort => "module op port",
            ConflictSite::ModuleOut => "module output",
            ConflictSite::RegisterPort => "register port",
            ConflictSite::RegisterValue => "register",
            ConflictSite::MemoryPort => "memory port",
            ConflictSite::MemoryWord => "memory word",
        };
        f.write_str(s)
    }
}

/// One observed resource conflict: an `ILLEGAL` value on a signal, located
/// to the control step and phase in which it became visible.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Conflict {
    /// The poisoned object's kind.
    pub site: ConflictSite,
    /// The object's name (bus, module or register name).
    pub name: String,
    /// Step and phase at which the `ILLEGAL` value became visible.
    ///
    /// Because assignments are delta-delayed, a collision *driven* at
    /// phase `p` is *visible* from phase `p.succ()` — e.g. two `ra`-phase
    /// transfers fighting over a bus surface as `ILLEGAL` at `rb`.
    pub visible_at: PhaseTime,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ILLEGAL on {} `{}` visible at {}",
            self.site, self.name, self.visible_at
        )
    }
}

/// A chronologically ordered collection of conflicts with convenience
/// queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConflictReport {
    /// All conflicts, in order of appearance.
    pub conflicts: Vec<Conflict>,
}

impl ConflictReport {
    /// `true` if the run was conflict-free.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// The first conflict — usually the root cause; later entries are
    /// typically downstream propagation of the same `ILLEGAL` value.
    pub fn first(&self) -> Option<&Conflict> {
        self.conflicts.first()
    }

    /// Conflicts on a specific named object.
    pub fn on<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Conflict> + 'a {
        self.conflicts.iter().filter(move |c| c.name == name)
    }
}

impl fmt::Display for ConflictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "no resource conflicts");
        }
        writeln!(f, "{} conflict site(s):", self.conflicts.len())?;
        for c in &self.conflicts {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn sample() -> ConflictReport {
        ConflictReport {
            conflicts: vec![
                Conflict {
                    site: ConflictSite::Bus,
                    name: "B1".into(),
                    visible_at: PhaseTime::new(3, Phase::Rb),
                },
                Conflict {
                    site: ConflictSite::RegisterValue,
                    name: "R1".into(),
                    visible_at: PhaseTime::new(4, Phase::Ra),
                },
            ],
        }
    }

    #[test]
    fn report_queries() {
        let r = sample();
        assert!(!r.is_clean());
        assert_eq!(r.first().unwrap().name, "B1");
        assert_eq!(r.on("R1").count(), 1);
        assert_eq!(r.on("nope").count(), 0);
    }

    #[test]
    fn display_localizes_conflicts() {
        let s = sample().to_string();
        assert!(s.contains("bus `B1` visible at step 3 phase rb"));
        assert!(ConflictReport::default()
            .to_string()
            .contains("no resource conflicts"));
    }
}
