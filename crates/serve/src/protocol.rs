//! The NDJSON wire protocol: one JSON object per line, in both
//! directions.
//!
//! `docs/PROTOCOL.md` is the normative reference; this module is its
//! implementation. Requests are parsed with a small hand-rolled JSON
//! reader ([`Json::parse`] — no external crates, mirroring every other
//! machine-readable surface in the workspace), and responses are
//! rendered as single-line envelopes:
//!
//! ```text
//! {"v":1,"id":7,"op":"run","ok":true,"payload":"<JSON document, string-encoded>"}
//! {"v":1,"id":8,"op":"run","ok":false,"error":{"code":"build-failed","message":"…"}}
//! ```
//!
//! The `payload` field is the **byte-exact** document the one-shot CLI
//! would print for the same job (including its trailing newline),
//! JSON-string-encoded so it fits on one line. Unescaping it recovers
//! the CLI output verbatim — that is how `scripts/ci.sh` and the
//! integration tests enforce daemon/CLI byte-identity.

use std::fmt;

/// Protocol version stamped into every response envelope (`"v"`).
pub const PROTOCOL_VERSION: u32 = 1;

/// A parsed JSON value.
///
/// Numbers are kept as `f64`; request fields are small integers, which
/// `f64` represents exactly (see [`Json::as_u64`]).
///
/// # Examples
///
/// ```
/// use clockless_serve::protocol::Json;
///
/// let v = Json::parse(r#"{"op":"run","id":3,"deep":[1,2,{"k":true}]}"#)?;
/// assert_eq!(v.get("op").and_then(Json::as_str), Some("run"));
/// assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document from `text`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer small
    /// enough for `f64` to hold exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX for the low half.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let lo = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err("lone high surrogate".into());
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| "invalid unicode escape".to_string())?,
                        );
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: re-borrow as str for one char.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let slice = bytes
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let text = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_string())?;
    u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        if !fields.iter().any(|(k, _)| *k == key) {
            fields.push((key, value));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Stable machine-readable error codes used in error envelopes.
///
/// `docs/PROTOCOL.md` documents when each is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line is not valid JSON.
    BadJson,
    /// The request is valid JSON but structurally wrong (missing or
    /// mistyped fields, bad flag values).
    BadRequest,
    /// The `op` field names no known job kind.
    UnknownOp,
    /// The model failed to parse or elaborate.
    BuildFailed,
    /// The simulation/campaign/batch ran and failed.
    RunFailed,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::BuildFailed => "build-failed",
            ErrorCode::RunFailed => "run-failed",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A job rejection: the code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Stable machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl JobError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> JobError {
        JobError {
            code,
            message: message.into(),
        }
    }
}

/// Renders a success envelope: one line, newline-terminated.
///
/// `payload` is embedded as a JSON string — the byte-exact one-shot CLI
/// document, trailing newline included.
///
/// # Examples
///
/// ```
/// use clockless_serve::protocol::render_ok;
///
/// let line = render_ok(4, "ping", "pong\n");
/// assert_eq!(line, "{\"v\":1,\"id\":4,\"op\":\"ping\",\"ok\":true,\"payload\":\"pong\\n\"}\n");
/// ```
pub fn render_ok(id: u64, op: &str, payload: &str) -> String {
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"op\":\"{}\",\"ok\":true,\"payload\":\"{}\"}}\n",
        clockless_core::json::escape(op),
        clockless_core::json::escape(payload)
    )
}

/// Renders an error envelope: one line, newline-terminated. `id` is
/// `null` when the request line could not be parsed far enough to
/// recover one.
///
/// # Examples
///
/// ```
/// use clockless_serve::protocol::{render_error, ErrorCode};
///
/// let line = render_error(None, None, ErrorCode::BadJson, "line 1: not JSON");
/// assert!(line.starts_with("{\"v\":1,\"id\":null,\"op\":null,\"ok\":false,"));
/// assert!(line.contains("\"code\":\"bad-json\""));
/// ```
pub fn render_error(id: Option<u64>, op: Option<&str>, code: ErrorCode, message: &str) -> String {
    let id = id.map_or("null".to_string(), |n| n.to_string());
    let op = op.map_or("null".to_string(), |o| {
        format!("\"{}\"", clockless_core::json::escape(o))
    });
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"op\":{op},\"ok\":false,\
         \"error\":{{\"code\":\"{code}\",\"message\":\"{}\"}}}}\n",
        clockless_core::json::escape(message)
    )
}

/// A parsed request line: correlation id plus the raw request object
/// (job-specific fields are interpreted by the job implementations).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The job kind (`run`, `faults`, `fleet`, `sweep`, `stats`,
    /// `ping`, `shutdown`).
    pub op: String,
    /// The full request object, for job-specific fields.
    pub body: Json,
}

impl Request {
    /// Parses one NDJSON request line.
    ///
    /// # Errors
    ///
    /// `(recovered id, error)` — the id is `Some` whenever the line was
    /// valid JSON with a numeric `id`, so the error envelope can still
    /// be correlated.
    pub fn parse(line: &str) -> Result<Request, (Option<u64>, JobError)> {
        let body = Json::parse(line).map_err(|e| (None, JobError::new(ErrorCode::BadJson, e)))?;
        let id = body.get("id").and_then(Json::as_u64);
        if !matches!(body, Json::Obj(_)) {
            return Err((
                None,
                JobError::new(ErrorCode::BadRequest, "request must be a JSON object"),
            ));
        }
        let Some(id) = id else {
            return Err((
                None,
                JobError::new(ErrorCode::BadRequest, "missing or non-integer `id` field"),
            ));
        };
        let Some(op) = body.get("op").and_then(Json::as_str) else {
            return Err((
                Some(id),
                JobError::new(ErrorCode::BadRequest, "missing `op` field"),
            ));
        };
        Ok(Request {
            id,
            op: op.to_string(),
            body,
        })
    }
}

/// Decodes the `payload` field out of a response line, recovering the
/// byte-exact one-shot CLI document. Returns `None` for error envelopes
/// and non-responses.
///
/// # Examples
///
/// ```
/// use clockless_serve::protocol::{decode_payload, render_ok};
///
/// let line = render_ok(1, "run", "{\n  \"run\": {}\n}\n");
/// assert_eq!(decode_payload(&line).as_deref(), Some("{\n  \"run\": {}\n}\n"));
/// ```
pub fn decode_payload(line: &str) -> Option<String> {
    let v = Json::parse(line.trim_end()).ok()?;
    if v.get("ok").and_then(Json::as_bool) != Some(true) {
        return None;
    }
    v.get("payload").and_then(Json::as_str).map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(Json::parse("null"), Ok(Json::Null));
        assert_eq!(Json::parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(Json::parse("-2.5e1"), Ok(Json::Num(-25.0)));
        let v = Json::parse(r#"{"a":[1,{"b":"c"}],"d":null}"#).expect("parses");
        let a = v.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b").and_then(Json::as_str), Some("c"));
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\there \"quoted\" back\\slash\nnewline \u{1} ünïcode 𝄞";
        let encoded = format!("\"{}\"", clockless_core::json::escape(original));
        assert_eq!(Json::parse(&encoded), Ok(Json::Str(original.to_string())));
        // And a surrogate pair spelled explicitly.
        assert_eq!(
            Json::parse("\"\\ud834\\udd1e\""),
            Ok(Json::Str("𝄞".to_string()))
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "{}x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn duplicate_keys_keep_the_first() {
        let v = Json::parse(r#"{"k":1,"k":2}"#).expect("parses");
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn request_parse_recovers_id_when_possible() {
        let ok = Request::parse(r#"{"id":9,"op":"ping"}"#).expect("parses");
        assert_eq!((ok.id, ok.op.as_str()), (9, "ping"));

        let (id, err) = Request::parse("not json").expect_err("fails");
        assert_eq!((id, err.code), (None, ErrorCode::BadJson));

        let (id, err) = Request::parse(r#"{"id":4}"#).expect_err("fails");
        assert_eq!((id, err.code), (Some(4), ErrorCode::BadRequest));

        let (id, err) = Request::parse(r#"{"op":"run"}"#).expect_err("fails");
        assert_eq!((id, err.code), (None, ErrorCode::BadRequest));
    }

    #[test]
    fn payload_round_trips_byte_exactly() {
        let doc = "{\n  \"kernel\": {\"delta_cycles\": 43},\n  \"weird\": \"a\\\"b\\nc\"\n}\n";
        let line = render_ok(12, "run", doc);
        assert_eq!(line.matches('\n').count(), 1, "single line: {line:?}");
        assert_eq!(decode_payload(&line).as_deref(), Some(doc));
    }

    #[test]
    fn error_envelope_shape() {
        let line = render_error(
            Some(3),
            Some("fleet"),
            ErrorCode::RunFailed,
            "2 job(s) lost",
        );
        let v = Json::parse(line.trim_end()).expect("envelope is valid JSON");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        let e = v.get("error").expect("error object");
        assert_eq!(e.get("code").and_then(Json::as_str), Some("run-failed"));
        assert_eq!(decode_payload(&line), None);
    }
}
