//! Batch specifications: what a fleet run simulates.
//!
//! A [`BatchSpec`] is a flat list of [`JobSpec`]s. Each job names a model
//! source ([`JobSource`]) plus optional re-parameterization: a `CS_MAX`
//! override (`steps`) and register-init overrides (`init`) acting as the
//! job's stimulus. Specs come from three places:
//!
//! * programmatically (the `verify` conflict sweeps build them from
//!   in-memory models),
//! * directly from `.rtl` paths ([`BatchSpec::from_rtl_paths`] — the CLI
//!   glob form), or
//! * from a `.fleet` text file ([`BatchSpec::parse`]), one job per line:
//!
//! ```text
//! # comment                        (blank lines are fine too)
//! fleet nightly                    # optional header naming the batch
//! job base    rtl fig1.rtl
//! job stim    rtl fig1.rtl steps 9 init R1=40 init R2=2
//! job sched   hls fir 8
//! job probe   hls random 42 24 4
//! job chip    iks ik 1.0 1.0
//! job tight   rtl fig1.rtl budget 10   # per-job delta-cycle budget
//! job fast    rtl fig1.rtl backend compiled   # run on the compiled engine
//! job boom    chaos panic              # deliberate failure (fault drills)
//! ```
//!
//! Relative `.rtl` paths resolve against the spec file's directory.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use clockless_core::text::parse_model;
use clockless_core::{Backend, RtModel, Step, Value};

/// Errors from building, parsing or running a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetError {
    /// A file could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The OS error message.
        msg: String,
    },
    /// A spec line could not be parsed.
    Spec {
        /// 1-based line number in the spec text.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A job's model could not be built (parse error, synthesis error,
    /// invalid override…).
    Build {
        /// The job's name.
        job: String,
        /// What went wrong.
        msg: String,
    },
    /// A job's simulation failed (kernel error, e.g. delta overflow).
    Run {
        /// The job's name.
        job: String,
        /// What went wrong.
        msg: String,
    },
    /// A job panicked inside its worker (reported only in `--fail-fast`
    /// mode; the keep-going default quarantines panics instead).
    Panicked {
        /// The job's name.
        job: String,
        /// The panic payload, if it was a string.
        msg: String,
    },
    /// A job exhausted its configured delta-cycle or wall-clock budget
    /// (reported only in `--fail-fast` mode).
    Budget {
        /// The job's name.
        job: String,
        /// Which budget ran out, and where.
        msg: String,
    },
    /// The batch contains no jobs.
    EmptyBatch,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io { path, msg } => write!(f, "cannot read {path}: {msg}"),
            FleetError::Spec { line, msg } => write!(f, "spec line {line}: {msg}"),
            FleetError::Build { job, msg } => write!(f, "job `{job}`: {msg}"),
            FleetError::Run { job, msg } => write!(f, "job `{job}` failed: {msg}"),
            FleetError::Panicked { job, msg } => write!(f, "job `{job}` panicked: {msg}"),
            FleetError::Budget { job, msg } => {
                write!(f, "job `{job}` exceeded its budget: {msg}")
            }
            FleetError::EmptyBatch => write!(f, "batch contains no jobs"),
        }
    }
}

impl std::error::Error for FleetError {}

/// A synthetic high-level-synthesis workload, scheduled and emitted on
/// the fly (no input files needed).
#[derive(Debug, Clone, PartialEq)]
pub enum HlsWorkload {
    /// An n-tap FIR filter (`clockless_hls::fir`).
    Fir {
        /// Number of taps (≥ 1).
        taps: usize,
    },
    /// Horner evaluation of a degree-n polynomial (`clockless_hls::horner`).
    Horner {
        /// Polynomial degree (coefficient count − 1).
        degree: usize,
    },
    /// The HAL differential-equation benchmark (`clockless_hls::diffeq`).
    Diffeq,
    /// A reproducible random DAG (`clockless_hls::random_dag`).
    Random {
        /// PRNG seed.
        seed: u64,
        /// Node count.
        nodes: usize,
        /// Input count.
        inputs: usize,
    },
}

/// A deliberate misbehaviour injected into a worker, for exercising the
/// engine's fault tolerance (no well-formed model can make the kernel
/// panic, so chaos probes supply the failure the tests need).
///
/// Spec grammar: `job <name> chaos panic`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosProbe {
    /// Panic inside the worker the moment the job starts running. The
    /// engine's `catch_unwind` quarantines it; with `--fail-fast` it
    /// surfaces as [`FleetError::Panicked`].
    Panic,
}

impl ChaosProbe {
    /// Fires the probe (called by the engine inside its `catch_unwind`
    /// fence).
    pub(crate) fn trip(self) {
        match self {
            ChaosProbe::Panic => panic!("chaos probe tripped: deliberate panic"),
        }
    }
}

/// Where a job's model comes from.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// A `.rtl` file in the declarative text format.
    RtlFile(PathBuf),
    /// Inline `.rtl` text (used by tests and embedded specs).
    RtlText(String),
    /// An already-built model (boxed: an [`RtModel`] is much larger than
    /// the other variants).
    Model(Box<RtModel>),
    /// A synthetic HLS workload, synthesized with unconstrained resources
    /// and deterministic inputs.
    Hls(HlsWorkload),
    /// The IKS inverse-kinematics chip solving for target `(x, y)`
    /// (Q16.16 fixed point, arm geometry 1.0/1.0).
    IksIk {
        /// Target x coordinate.
        x: f64,
        /// Target y coordinate.
        y: f64,
    },
    /// The IKS MACC FIR filter chip with its reference sample/coefficient
    /// set.
    IksFir,
    /// A chaos probe: the job resolves to a trivial placeholder model and
    /// then misbehaves inside the worker. Exists so fault-tolerance tests
    /// (and deliberately broken CI specs) have a deterministic failure to
    /// inject.
    Chaos(ChaosProbe),
}

/// One batch job: a model source plus stimulus.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The job's name (unique within the batch; reports key on it).
    pub name: String,
    /// Where the model comes from.
    pub source: JobSource,
    /// Optional `CS_MAX` override (the model is rebuilt on the new step
    /// count; transfers must still fit).
    pub steps: Option<Step>,
    /// Register-init overrides `(register, value)` — the job's stimulus.
    pub overrides: Vec<(String, i64)>,
    /// Optional per-job delta-cycle budget (`budget <N>` in the spec
    /// text). When the batch config also sets a budget, the smaller one
    /// wins. Exceeding it quarantines the job as budget-exceeded.
    pub delta_budget: Option<u64>,
    /// Optional execution backend (`backend interpreted|compiled` in the
    /// spec text). A batch-wide backend in the
    /// [`FleetConfig`](crate::FleetConfig) overrides it; with neither set
    /// the job runs on the default (interpreted) engine. Both engines are
    /// observably byte-identical, so this only selects *how* the job
    /// executes, never *what* it reports.
    pub backend: Option<Backend>,
}

impl JobSpec {
    /// Creates a job with no overrides, no budget and the default
    /// backend.
    pub fn new(name: impl Into<String>, source: JobSource) -> JobSpec {
        JobSpec {
            name: name.into(),
            source,
            steps: None,
            overrides: Vec::new(),
            delta_budget: None,
            backend: None,
        }
    }

    /// Resolves the job to a runnable model (reading files, running HLS,
    /// applying overrides).
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] or [`FleetError::Build`] when the source cannot
    /// be materialized.
    pub fn resolve(&self) -> Result<RtModel, FleetError> {
        let build_err = |msg: String| FleetError::Build {
            job: self.name.clone(),
            msg,
        };
        let mut model = match &self.source {
            JobSource::RtlFile(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| FleetError::Io {
                    path: path.display().to_string(),
                    msg: e.to_string(),
                })?;
                parse_model(&text).map_err(|e| build_err(format!("{}:{e}", path.display())))?
            }
            JobSource::RtlText(text) => parse_model(text).map_err(|e| build_err(e.to_string()))?,
            JobSource::Model(m) => (**m).clone(),
            JobSource::Hls(workload) => synthesize_workload(workload)
                .map_err(|e| build_err(format!("HLS synthesis: {e}")))?,
            JobSource::IksIk { x, y } => {
                use clockless_iks::prelude::*;
                let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
                build_ik_chip(to_fx(*x), to_fx(*y), constants)
                    .map(|chip| chip.model)
                    .map_err(|e| build_err(format!("IKS chip: {e}")))?
            }
            JobSource::IksFir => {
                use clockless_iks::prelude::*;
                let samples = [to_fx(0.5), to_fx(1.5), to_fx(-1.0), to_fx(2.0)];
                let coeffs = [to_fx(2.0), to_fx(-0.5), to_fx(0.25), to_fx(1.0)];
                clockless_iks::build_fir_chip(samples, coeffs)
                    .map_err(|e| build_err(format!("IKS FIR chip: {e}")))?
            }
            JobSource::Chaos(_) => {
                // The probe fires inside the worker; resolution just needs
                // something elaborable.
                let mut m = RtModel::new("chaos_probe", 1);
                m.add_register_init("PROBE", Value::Num(0))
                    .map_err(|e| build_err(e.to_string()))?;
                m
            }
        };
        if self.steps.is_some() || !self.overrides.is_empty() {
            model =
                rebuild_with_overrides(&model, self.steps, &self.overrides).map_err(build_err)?;
        }
        Ok(model)
    }
}

/// Synthesizes an [`HlsWorkload`] with unconstrained resources and
/// deterministic inputs (input `i`, in the graph's input order, is fed
/// `i + 1`).
fn synthesize_workload(workload: &HlsWorkload) -> Result<RtModel, String> {
    use clockless_hls::{diffeq, fir, horner, random_dag, synthesize, ResourceSet};

    let dfg = match workload {
        HlsWorkload::Fir { taps } => {
            if *taps == 0 {
                return Err("FIR needs at least one tap".into());
            }
            let coeffs: Vec<i64> = (0..*taps as i64).map(|i| 2 * i + 1).collect();
            fir(&coeffs)
        }
        HlsWorkload::Horner { degree } => {
            let coeffs: Vec<i64> = (0..=*degree as i64).map(|i| i - 2).collect();
            horner(&coeffs)
        }
        HlsWorkload::Diffeq => diffeq(),
        HlsWorkload::Random {
            seed,
            nodes,
            inputs,
        } => random_dag(*seed, *nodes, *inputs),
    };
    let resources = ResourceSet::unconstrained(&dfg);
    let names = dfg.inputs();
    let inputs: HashMap<&str, i64> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as i64 + 1))
        .collect();
    synthesize(&dfg, &resources, &inputs)
        .map(|syn| syn.model)
        .map_err(|e| e.to_string())
}

/// Rebuilds `model` with a new `CS_MAX` and/or register-init overrides,
/// revalidating every transfer against the new parameters.
fn rebuild_with_overrides(
    model: &RtModel,
    steps: Option<Step>,
    overrides: &[(String, i64)],
) -> Result<RtModel, String> {
    for (reg, _) in overrides {
        if model.register_by_name(reg).is_none() {
            return Err(format!("init override names unknown register `{reg}`"));
        }
    }
    let mut m = RtModel::new(model.name(), steps.unwrap_or(model.cs_max()));
    for r in model.registers() {
        let init = overrides
            .iter()
            .rev() // later overrides win
            .find(|(name, _)| *name == r.name)
            .map(|(_, v)| Value::Num(*v))
            .unwrap_or(r.init);
        m.add_register_init(&r.name, init)
            .map_err(|e| e.to_string())?;
    }
    for b in model.buses() {
        m.add_bus(&b.name).map_err(|e| e.to_string())?;
    }
    for decl in model.modules() {
        m.add_module(decl.clone()).map_err(|e| e.to_string())?;
    }
    for t in model.tuples() {
        m.add_transfer(t.clone()).map_err(|e| e.to_string())?;
    }
    Ok(m)
}

/// A batch of independent simulation jobs.
///
/// # Examples
///
/// Parsing the text form:
///
/// ```
/// use clockless_fleet::BatchSpec;
///
/// let spec = BatchSpec::parse(
///     "fleet demo\n\
///      job sched hls fir 4\n\
///      job probe hls random 7 12 3\n",
///     ".",
/// )?;
/// assert_eq!(spec.jobs.len(), 2);
/// assert_eq!(spec.jobs[0].name, "sched");
/// # Ok::<(), clockless_fleet::FleetError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchSpec {
    /// The jobs, in spec order ([`FleetReport`](crate::FleetReport) rows
    /// keep this order).
    pub jobs: Vec<JobSpec>,
}

impl BatchSpec {
    /// Builds a batch that runs each `.rtl` file as one job (the CLI's
    /// glob form). Job names are the file stems.
    pub fn from_rtl_paths<P: AsRef<Path>>(paths: impl IntoIterator<Item = P>) -> BatchSpec {
        let jobs = paths
            .into_iter()
            .map(|p| {
                let p = p.as_ref();
                let name = p
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| p.display().to_string());
                JobSpec::new(name, JobSource::RtlFile(p.to_path_buf()))
            })
            .collect();
        BatchSpec { jobs }
    }

    /// Parses the `.fleet` text format (see the module docs for the
    /// grammar). Relative `.rtl` paths resolve against `base_dir`.
    ///
    /// # Errors
    ///
    /// [`FleetError::Spec`] with the offending 1-based line number.
    pub fn parse(text: &str, base_dir: impl AsRef<Path>) -> Result<BatchSpec, FleetError> {
        let base_dir = base_dir.as_ref();
        let mut jobs: Vec<JobSpec> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let err = |msg: String| FleetError::Spec { line, msg };
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let words: Vec<&str> = content.split_whitespace().collect();
            match words[0] {
                "fleet" => {
                    if words.len() != 2 {
                        return Err(err("expected `fleet <name>`".into()));
                    }
                }
                "job" => {
                    let job = parse_job_line(&words, base_dir).map_err(err)?;
                    if jobs.iter().any(|j| j.name == job.name) {
                        return Err(err(format!("duplicate job name `{}`", job.name)));
                    }
                    jobs.push(job);
                }
                other => {
                    return Err(err(format!(
                        "unknown directive `{other}` (expected `fleet` or `job`)"
                    )))
                }
            }
        }
        Ok(BatchSpec { jobs })
    }

    /// Reads and parses a `.fleet` spec file; relative `.rtl` paths
    /// resolve against the spec's directory.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] or [`FleetError::Spec`].
    pub fn load(path: impl AsRef<Path>) -> Result<BatchSpec, FleetError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| FleetError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        BatchSpec::parse(&text, base)
    }
}

/// Parses one `job …` line (already split into words).
fn parse_job_line(words: &[&str], base_dir: &Path) -> Result<JobSpec, String> {
    if words.len() < 3 {
        return Err("expected `job <name> <source> …`".into());
    }
    let name = words[1].to_string();
    let mut rest = &words[3..];
    let source = match words[2] {
        "rtl" => {
            let Some((path, r)) = rest.split_first() else {
                return Err("`rtl` needs a file path".into());
            };
            rest = r;
            let p = Path::new(path);
            let p = if p.is_absolute() {
                p.to_path_buf()
            } else {
                base_dir.join(p)
            };
            JobSource::RtlFile(p)
        }
        "hls" => {
            let Some((kind, r)) = rest.split_first() else {
                return Err("`hls` needs a workload (fir|horner|diffeq|random)".into());
            };
            let (workload, r) = match *kind {
                "fir" => {
                    let (n, r) = take_num::<usize>(r, "fir tap count")?;
                    (HlsWorkload::Fir { taps: n }, r)
                }
                "horner" => {
                    let (n, r) = take_num::<usize>(r, "horner degree")?;
                    (HlsWorkload::Horner { degree: n }, r)
                }
                "diffeq" => (HlsWorkload::Diffeq, r),
                "random" => {
                    let (seed, r) = take_num::<u64>(r, "random seed")?;
                    let (nodes, r) = take_num::<usize>(r, "random node count")?;
                    let (inputs, r) = take_num::<usize>(r, "random input count")?;
                    (
                        HlsWorkload::Random {
                            seed,
                            nodes,
                            inputs,
                        },
                        r,
                    )
                }
                other => return Err(format!("unknown hls workload `{other}`")),
            };
            rest = r;
            JobSource::Hls(workload)
        }
        "iks" => {
            let Some((kind, r)) = rest.split_first() else {
                return Err("`iks` needs a chip (ik|fir)".into());
            };
            match *kind {
                "ik" => {
                    let (x, r) = take_num::<f64>(r, "ik target x")?;
                    let (y, r) = take_num::<f64>(r, "ik target y")?;
                    rest = r;
                    JobSource::IksIk { x, y }
                }
                "fir" => {
                    rest = r;
                    JobSource::IksFir
                }
                other => return Err(format!("unknown iks chip `{other}`")),
            }
        }
        "chaos" => {
            let Some((kind, r)) = rest.split_first() else {
                return Err("`chaos` needs a probe (panic)".into());
            };
            match *kind {
                "panic" => {
                    rest = r;
                    JobSource::Chaos(ChaosProbe::Panic)
                }
                other => return Err(format!("unknown chaos probe `{other}`")),
            }
        }
        other => {
            return Err(format!(
                "unknown job source `{other}` (expected rtl|hls|iks|chaos)"
            ))
        }
    };

    let mut job = JobSpec::new(name, source);
    while let Some((word, r)) = rest.split_first() {
        match *word {
            "steps" => {
                let (n, r) = take_num::<Step>(r, "steps")?;
                job.steps = Some(n);
                rest = r;
            }
            "budget" => {
                let (n, r) = take_num::<u64>(r, "delta budget")?;
                job.delta_budget = Some(n);
                rest = r;
            }
            "backend" => {
                let Some((b, r)) = r.split_first() else {
                    return Err("`backend` needs an engine (interpreted|compiled)".into());
                };
                job.backend = Some(b.parse::<Backend>().map_err(|e| e.to_string())?);
                rest = r;
            }
            "init" => {
                let Some((assign, r)) = r.split_first() else {
                    return Err("`init` needs `<register>=<value>`".into());
                };
                let Some((reg, val)) = assign.split_once('=') else {
                    return Err(format!("malformed init `{assign}` (expected REG=VALUE)"));
                };
                let val: i64 = val
                    .parse()
                    .map_err(|_| format!("init value `{val}` is not an integer"))?;
                job.overrides.push((reg.to_string(), val));
                rest = r;
            }
            other => return Err(format!("unknown job option `{other}`")),
        }
    }
    Ok(job)
}

/// Pops one parsed number off `words`, with a descriptive error.
fn take_num<'a, T: std::str::FromStr>(
    words: &'a [&'a str],
    what: &str,
) -> Result<(T, &'a [&'a str]), String> {
    let Some((w, rest)) = words.split_first() else {
        return Err(format!("missing {what}"));
    };
    w.parse::<T>()
        .map(|n| (n, rest))
        .map_err(|_| format!("{what} `{w}` is not a valid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_sources_and_options() {
        let spec = BatchSpec::parse(
            "# a comment\n\
             fleet nightly\n\
             \n\
             job a rtl sub/x.rtl steps 9 init R1=40 init R2=-2\n\
             job b hls fir 8\n\
             job c hls horner 3\n\
             job d hls diffeq\n\
             job e hls random 42 24 4\n\
             job f iks ik 1.0 -0.5\n\
             job g iks fir\n",
            "/base",
        )
        .expect("parses");
        assert_eq!(spec.jobs.len(), 7);
        let a = &spec.jobs[0];
        assert_eq!(a.steps, Some(9));
        assert_eq!(a.overrides, vec![("R1".into(), 40), ("R2".into(), -2)]);
        match &a.source {
            JobSource::RtlFile(p) => assert_eq!(p, Path::new("/base/sub/x.rtl")),
            other => panic!("wrong source {other:?}"),
        }
        assert!(matches!(
            spec.jobs[4].source,
            JobSource::Hls(HlsWorkload::Random {
                seed: 42,
                nodes: 24,
                inputs: 4
            })
        ));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for (text, needle) in [
            ("job", "expected `job <name> <source>"),
            ("job x nope", "unknown job source"),
            ("job x hls", "`hls` needs a workload"),
            ("job x hls fir", "missing fir tap count"),
            ("job x hls fir many", "not a valid number"),
            ("job x rtl a.rtl frob", "unknown job option"),
            ("job x rtl a.rtl init", "needs `<register>=<value>`"),
            ("job x rtl a.rtl init R1:4", "malformed init"),
            ("job x iks ik 1.0", "missing ik target y"),
            ("frobnicate everything", "unknown directive"),
            ("job x rtl a.rtl\njob x rtl b.rtl", "duplicate job name"),
        ] {
            let err = BatchSpec::parse(text, ".").expect_err(text);
            assert!(
                err.to_string().contains(needle),
                "{text}: {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn overrides_apply_to_rebuilt_model() {
        use clockless_core::model::fig1_model;
        let mut job = JobSpec::new("j", JobSource::Model(Box::new(fig1_model(3, 4))));
        job.steps = Some(6);
        job.overrides = vec![("R2".into(), 100)];
        let m = job.resolve().expect("rebuilds");
        assert_eq!(m.cs_max(), 6);
        assert_eq!(m.registers()[1].init, Value::Num(100));
        // A steps override that no longer fits the schedule is rejected.
        job.steps = Some(5);
        assert!(matches!(job.resolve(), Err(FleetError::Build { .. })));
        // Unknown registers in overrides are rejected.
        job.steps = None;
        job.overrides = vec![("NOPE".into(), 1)];
        let err = job.resolve().expect_err("unknown register");
        assert!(err.to_string().contains("unknown register"));
    }

    #[test]
    fn hls_sources_synthesize_deterministically() {
        let job = JobSpec::new("f", JobSource::Hls(HlsWorkload::Fir { taps: 4 }));
        let a = job.resolve().expect("synthesizes");
        let b = job.resolve().expect("synthesizes");
        assert_eq!(
            clockless_core::text::to_text(&a),
            clockless_core::text::to_text(&b)
        );
        assert!(!a.tuples().is_empty());
    }

    #[test]
    fn missing_rtl_file_is_an_io_error() {
        let job = JobSpec::new("j", JobSource::RtlFile("/nonexistent/nope.rtl".into()));
        assert!(matches!(job.resolve(), Err(FleetError::Io { .. })));
    }

    #[test]
    fn parse_accepts_chaos_and_budget() {
        let spec = BatchSpec::parse(
            "job boom chaos panic\n\
             job tight rtl a.rtl budget 10 init R1=4\n",
            "/base",
        )
        .expect("parses");
        assert!(matches!(
            spec.jobs[0].source,
            JobSource::Chaos(ChaosProbe::Panic)
        ));
        assert_eq!(spec.jobs[0].delta_budget, None);
        assert_eq!(spec.jobs[1].delta_budget, Some(10));
        assert_eq!(spec.jobs[1].overrides, vec![("R1".into(), 4)]);
    }

    #[test]
    fn parse_rejects_malformed_chaos_and_budget() {
        for (text, needle) in [
            ("job x chaos", "`chaos` needs a probe"),
            ("job x chaos meteor", "unknown chaos probe"),
            ("job x rtl a.rtl budget", "missing delta budget"),
            ("job x rtl a.rtl budget lots", "not a valid number"),
        ] {
            let err = BatchSpec::parse(text, ".").expect_err(text);
            assert!(
                err.to_string().contains(needle),
                "{text}: {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn parse_accepts_backend_option() {
        let spec = BatchSpec::parse(
            "job slow rtl a.rtl backend interpreted\n\
             job fast rtl a.rtl backend compiled steps 9\n\
             job deft rtl a.rtl\n",
            "/base",
        )
        .expect("parses");
        assert_eq!(spec.jobs[0].backend, Some(Backend::Interpreted));
        assert_eq!(spec.jobs[1].backend, Some(Backend::Compiled));
        assert_eq!(spec.jobs[1].steps, Some(9));
        assert_eq!(spec.jobs[2].backend, None);
    }

    #[test]
    fn parse_rejects_malformed_backend() {
        for (text, needle) in [
            ("job x rtl a.rtl backend", "`backend` needs an engine"),
            ("job x rtl a.rtl backend jit", "unknown backend `jit`"),
        ] {
            let err = BatchSpec::parse(text, ".").expect_err(text);
            assert!(
                err.to_string().contains(needle),
                "{text}: {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn chaos_jobs_resolve_to_a_placeholder_model() {
        let job = JobSpec::new("boom", JobSource::Chaos(ChaosProbe::Panic));
        let m = job.resolve().expect("resolves without tripping");
        assert_eq!(m.name(), "chaos_probe");
        assert_eq!(m.registers().len(), 1);
    }

    #[test]
    fn fleet_error_display_covers_every_variant() {
        // FleetError is #[non_exhaustive]; this round-trip keeps each
        // variant's rendered form (the CLI's stderr surface) stable.
        let cases = [
            (
                FleetError::Io {
                    path: "a.fleet".into(),
                    msg: "denied".into(),
                },
                "cannot read a.fleet: denied",
            ),
            (
                FleetError::Spec {
                    line: 3,
                    msg: "bad".into(),
                },
                "spec line 3: bad",
            ),
            (
                FleetError::Build {
                    job: "j".into(),
                    msg: "parse".into(),
                },
                "job `j`: parse",
            ),
            (
                FleetError::Run {
                    job: "j".into(),
                    msg: "overflow".into(),
                },
                "job `j` failed: overflow",
            ),
            (
                FleetError::Panicked {
                    job: "j".into(),
                    msg: "boom".into(),
                },
                "job `j` panicked: boom",
            ),
            (
                FleetError::Budget {
                    job: "j".into(),
                    msg: "10 deltas".into(),
                },
                "job `j` exceeded its budget: 10 deltas",
            ),
            (FleetError::EmptyBatch, "batch contains no jobs"),
        ];
        for (err, text) in cases {
            assert_eq!(err.to_string(), text);
            // Errors survive a clone/compare round-trip (the engine moves
            // them between worker slots and the final report).
            assert_eq!(err.clone(), err);
        }
    }
}
