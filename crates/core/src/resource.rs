//! Resource declarations: registers, buses and functional modules.
//!
//! A register transfer model is "a set of registers, a set of modules
//! performing arithmetical and logical operations, a set of buses used for
//! transfers of values between modules and registers, and the timing of
//! transfers" (§2.1). Registers and modules together are the *functional
//! units*. This module holds the declaration types the
//! [`RtModel`](crate::model::RtModel) builder assembles.

use std::fmt;

use crate::op::Op;
use crate::value::Value;

/// Identifies a register within one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(pub u32);

/// Identifies a bus within one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BusId(pub u32);

/// Identifies a module within one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub u32);

/// Identifies a memory within one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemoryId(pub u32);

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reg#{}", self.0)
    }
}
impl fmt::Display for BusId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bus#{}", self.0)
    }
}
impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mod#{}", self.0)
    }
}
impl fmt::Display for MemoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mem#{}", self.0)
    }
}

/// A register declaration.
///
/// Registers fetch a new value at phase `cr` whenever a transfer assigned
/// their input port this step, and keep the old value otherwise (§2.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterDecl {
    /// The register's name, unique among registers.
    pub name: String,
    /// Value presented on the output port from the start of simulation.
    ///
    /// The paper's registers output `DISC` until first written; an initial
    /// value models a preloaded register (or an input port of the design).
    pub init: Value,
}

/// A register-array declaration.
///
/// An array is syntactic sugar: declaring `array A[N]` creates `N`
/// ordinary registers named `A[0]` … `A[N-1]`, each with the array's
/// initial value. Every element is individually addressable wherever a
/// register name is accepted (operand routes, write routes, guards), and
/// the elements behave exactly like hand-declared registers in both
/// engines. The declaration itself is kept only so the textual form and
/// the VHDL round trip can re-emit the array as one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// The array's base name, unique among storage base names.
    pub name: String,
    /// Number of elements (≥ 1).
    pub len: u32,
    /// Initial value of every element.
    pub init: Value,
}

/// A memory declaration.
///
/// Unlike an array, a memory is a genuinely indexed resource: reads take
/// the address at the transfer's activation phase (constant or register
/// indirect), and writes go through a shared resolved write-value /
/// write-address port pair committed once per control step at phase `cr`
/// — so two transfers writing the same memory in one step conflict on the
/// ports like any other resource conflict. A write whose address is not a
/// regular number in range poisons every word `ILLEGAL`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryDecl {
    /// The memory's name, unique among storage base names.
    pub name: String,
    /// Number of words (≥ 1).
    pub len: u32,
    /// Initial value of every word.
    pub init: Value,
}

impl MemoryDecl {
    /// Canonical signal name of word `i`, e.g. `M[3]`.
    pub fn word_name(&self, i: u32) -> String {
        format!("{}[{}]", self.name, i)
    }
}

/// A bus declaration.
///
/// Buses are resolved signals; simultaneous drivers resolve to `ILLEGAL`.
/// The paper models even direct register-to-module links as (dedicated)
/// buses, preferring "more resources" over subset extensions (§3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusDecl {
    /// The bus's name, unique among buses.
    pub name: String,
}

/// Timing behaviour of a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleTiming {
    /// Result is available in the *same* control step the operands are
    /// read (combinational module, e.g. the IKS adders).
    Combinational,
    /// Operands may be fetched every control step; the result appears
    /// `latency` steps later (e.g. the paper's `ADD` with latency 1, the
    /// IKS multiplier with latency 2).
    Pipelined {
        /// Control steps from operand fetch to result.
        latency: u32,
    },
    /// The module accepts new operands only every `latency` steps; the
    /// result appears `latency` steps after the fetch. Feeding operands
    /// while busy is a resource conflict and poisons the in-flight result.
    Sequential {
        /// Control steps from operand fetch to result, and the minimum
        /// distance between fetches.
        latency: u32,
    },
}

impl ModuleTiming {
    /// Control steps between operand read and result write for this module
    /// (0 for combinational).
    pub fn latency(self) -> u32 {
        match self {
            ModuleTiming::Combinational => 0,
            ModuleTiming::Pipelined { latency } | ModuleTiming::Sequential { latency } => latency,
        }
    }

    /// Minimum number of steps between successive operand fetches.
    pub fn initiation_interval(self) -> u32 {
        match self {
            ModuleTiming::Combinational | ModuleTiming::Pipelined { .. } => 1,
            ModuleTiming::Sequential { latency } => latency.max(1),
        }
    }
}

/// A functional-module declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleDecl {
    /// The module's name, unique among modules.
    pub name: String,
    /// Operations the module can perform. Single-operation modules (the
    /// paper's base model) need no operation selection; multi-operation
    /// modules (the IKS extension) get an operation port driven by the
    /// transfer that uses them.
    pub ops: Vec<Op>,
    /// Timing behaviour.
    pub timing: ModuleTiming,
}

impl ModuleDecl {
    /// A single-operation module.
    pub fn single(name: impl Into<String>, op: Op, timing: ModuleTiming) -> ModuleDecl {
        ModuleDecl {
            name: name.into(),
            ops: vec![op],
            timing,
        }
    }

    /// A multi-operation module (the IKS extension: the transfer selects
    /// the operation).
    pub fn multi(
        name: impl Into<String>,
        ops: impl IntoIterator<Item = Op>,
        timing: ModuleTiming,
    ) -> ModuleDecl {
        ModuleDecl {
            name: name.into(),
            ops: ops.into_iter().collect(),
            timing,
        }
    }

    /// `true` if the module needs an operation-select port.
    pub fn needs_op_port(&self) -> bool {
        self.ops.len() > 1
    }

    /// Index of `op` in this module's operation list, if supported.
    pub fn op_index(&self, op: Op) -> Option<usize> {
        self.ops.iter().position(|&o| o == op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_latency_and_ii() {
        assert_eq!(ModuleTiming::Combinational.latency(), 0);
        assert_eq!(ModuleTiming::Combinational.initiation_interval(), 1);
        let p = ModuleTiming::Pipelined { latency: 2 };
        assert_eq!(p.latency(), 2);
        assert_eq!(p.initiation_interval(), 1);
        let s = ModuleTiming::Sequential { latency: 3 };
        assert_eq!(s.latency(), 3);
        assert_eq!(s.initiation_interval(), 3);
    }

    #[test]
    fn multi_op_modules_need_op_port() {
        let add = ModuleDecl::single("ADD", Op::Add, ModuleTiming::Pipelined { latency: 1 });
        assert!(!add.needs_op_port());
        assert_eq!(add.op_index(Op::Add), Some(0));
        assert_eq!(add.op_index(Op::Sub), None);

        let alu = ModuleDecl::multi(
            "ALU",
            [Op::Add, Op::Sub, Op::Shr],
            ModuleTiming::Combinational,
        );
        assert!(alu.needs_op_port());
        assert_eq!(alu.op_index(Op::Shr), Some(2));
    }
}
