//! The optimizing plan compiler: `-O` pipeline between [`ExecPlan::lower`]
//! and execution.
//!
//! [`ExecPlan::execute`] interprets a generic [`Action`]
//! enum per slot, re-reads statically known controller values and routes
//! every assert through the generic `resolve()` even when a slot provably
//! has one driver. This module compiles the lowered plan one stage
//! further, into an [`OptPlan`]: one contiguous **micro-op stream** with
//! precomputed delta boundaries, walked by a loop that never touches the
//! per-slot `Vec<Vec<Action>>` tables again. Four passes, gated by
//! [`OptConfig`] (the per-level toggle sets of [`OptLevel`](crate::OptLevel)):
//!
//! 1. **Slot fusion** (`fuse`, the carrier pass) — flatten the
//!    per-`(step, phase)` action tables into one flat `Vec<MicroOp>`
//!    plus a `bounds` table mapping each delta cycle to its op range.
//!    Operand addressing is resolved at compile time: every op carries
//!    dense source/destination indices, eliminating the per-slot
//!    dispatch and bounds checks of the generic walker.
//! 2. **Resolution specialization** (`specialize`) — each `(signal,
//!    slot)` destination is classified statically. Unresolved signals
//!    and resolved signals with exactly one driver compile to **direct
//!    stores**: the pushed value *is* the effective value (`resolve` is
//!    the identity on singleton driver sets), so the per-delta driver
//!    buffers and the resolution call disappear. Only genuinely
//!    multi-driven signals keep rows in a flat driver buffer.
//! 3. **Control-trajectory constant folding** (`fold`) — the CS/PH
//!    trajectory is statically fixed (the paper's central observation),
//!    so guards whose operands are all literals are pre-evaluated:
//!    statically true guards compile to unguarded ops, statically false
//!    ones to the `DISC` drive the disabled assert would perform. The
//!    control bookkeeping pushes themselves are elidable: on untraced
//!    runs the walker skips them and credits their (exactly known)
//!    counter contributions analytically — every control push is an
//!    event, since CS strictly increments and PH always moves to a
//!    different phase. No transfer [`Source`] can
//!    name CS or PH (the endpoint grammar has no such endpoint), so
//!    there are no control *reads* to fold — the trajectory is folded
//!    into the schedule shape itself, as it already is in `lower`.
//! 4. **Dead-spur elimination** (`dse`) — module evaluations and
//!    register/memory commits whose pushes provably observe and produce
//!    only `DISC` are dropped from the stream. A module evaluation at
//!    step `s` is dead when no transfer asserts any of its operand
//!    ports within the preceding `2·latency + 2` steps: its operands
//!    are `DISC`, the latency pipeline has drained to `DISC`, the
//!    initiation counter is zero, and the output is already `DISC` — so
//!    the evaluation would push a value equal to the current one,
//!    producing no event and no observable difference. Its pending-queue
//!    and driver-update counter contributions are credited per delta. A
//!    commit at step `s` is dead when no transfer asserts the register
//!    input (or memory write port) in step `s`: the port is provably
//!    `DISC` at `cr(s)` and the generic engine would push nothing at
//!    all, so elimination is free.
//!
//! # Byte-identity obligations
//!
//! Every pass must leave **all observables byte-identical** to the
//! un-optimized walk and to the interpreted kernel: final registers,
//! trace/VCD, commit log, conflict sites (step **and** phase),
//! [`SimStats`] (every counter, including the pending-queue high-water
//! mark), rendered errors and checker verdicts. The obligations each
//! pass discharges are recorded in DESIGN.md §5i; `clockless-verify`
//! enforces them differentially at every level over the corpus, the IKS
//! chips, the fuzz zoo and every fault mutant.

use std::collections::VecDeque;

use clockless_kernel::{KernelError, SignalId, SimStats, SimTime, Trace};

use crate::backend::{ExecOptions, ExecOutcome, OptConfig};
use crate::phase::Phase;
use crate::plan::{combine, Action, ExecPlan, GuardSig, Source};
use crate::resource::ModuleTiming;
use crate::run::RunSummary;
use crate::value::{resolve, Value};

/// Sentinel row index marking a direct-store destination (no driver
/// buffer, no resolution call).
const NO_ROW: u32 = u32::MAX;

/// Sentinel guard index for unconditional ops.
const NO_GUARD: u16 = u16::MAX;

/// A compile-time-resolved destination: the driven signal plus either a
/// row in the flat driver buffer or [`NO_ROW`] for specialized direct
/// stores.
#[derive(Debug, Clone, Copy)]
struct Dst {
    sig: u32,
    row: u32,
}

/// One specialized instruction of the fused stream.
///
/// Each op reads current values and pushes driver updates for the next
/// delta cycle, in exactly the order the generic walker would — push
/// order is what makes events, traces and conflict diagnoses
/// byte-identical.
#[derive(Debug, Clone, Copy)]
enum MicroOp {
    /// Control bookkeeping push (CS/PH). Elidable on untraced runs when
    /// `fold` is enabled (the walk credits its counters analytically);
    /// pushed for real on traced runs.
    Ctl { sig: u32, v: Value },
    /// Push a constant (const asserts, releases, statically false
    /// guards, un-foldable control pushes).
    Const { dst: Dst, guard: u16, v: Value },
    /// Push the current value of another signal.
    Copy { dst: Dst, guard: u16, src: u32 },
    /// Register-indirect memory-word read, then push.
    MemRead {
        dst: Dst,
        guard: u16,
        addr: u32,
        base: u32,
        len: u32,
    },
    /// Module evaluation: combine operand ports, advance the latency
    /// pipeline, push the output port.
    Eval { module: u32 },
    /// Register commit: push the input port on the output unless `DISC`.
    Commit { reg: u32 },
    /// Memory commit: store the write port at the addressed word, or
    /// poison every word on a bad address.
    CommitMem { mem: u32 },
}

/// The optimized execution plan: the fused micro-op stream plus the
/// run-time shapes the walker needs.
///
/// Built by [`OptPlan::compile`] from a lowered [`ExecPlan`]; executed
/// by [`OptPlan::execute`] with observables byte-identical to
/// [`ExecPlan::execute`] (see the module docs for the per-pass
/// obligations). The source plan is retained for observable extraction
/// (register names, conflict/commit attribution, analytic statistics).
#[derive(Debug, Clone)]
pub struct OptPlan {
    plan: ExecPlan,
    config: OptConfig,
    /// Exact delta count of a run (`ExecPlan::total_deltas`).
    needed: u64,
    /// The fused stream; delta `d` runs `ops[bounds[d]..bounds[d + 1]]`.
    ops: Vec<MicroOp>,
    bounds: Vec<u32>,
    /// Per-delta pending/driver-update credits from DSE-eliminated
    /// module evaluations (indexed by the delta the eliminated push
    /// would have been applied in).
    phantom: Vec<u32>,
    /// Per signal: `(start, len)` row span in the flat driver buffer;
    /// `len == 0` marks a direct-store signal.
    span: Vec<(u32, u32)>,
    /// Initial contents of the flat driver buffer.
    dbuf_init: Vec<Value>,
}

impl OptPlan {
    /// Compiles a lowered plan into its optimized stream under the given
    /// pass toggles.
    ///
    /// `fuse` is the carrier pass and is always performed; the other
    /// toggles specialize or shrink the fused stream. Compilation is a
    /// single linear walk over the slot tables.
    pub fn compile(plan: &ExecPlan, config: OptConfig) -> OptPlan {
        Self::from_plan(plan.clone(), config)
    }

    /// [`compile`](Self::compile) taking the plan by value — the
    /// one-shot path ([`crate::backend::CompiledBackend`]) moves its
    /// freshly lowered plan in instead of cloning it.
    pub fn from_plan(plan: ExecPlan, config: OptConfig) -> OptPlan {
        assert!(
            plan.guards.len() < NO_GUARD as usize,
            "guard table exceeds the micro-op index range"
        );
        let needed = plan.total_deltas();
        let phases = Phase::ALL.len();

        // Pass 2 (specialization): row spans. A signal keeps driver
        // rows only when its effective value genuinely depends on more
        // than the pushed value: resolved with more than one driver, or
        // any resolved signal when specialization is off. Unresolved
        // signals read back exactly what was pushed in both engines.
        let mut span: Vec<(u32, u32)> = Vec::with_capacity(plan.signals.len());
        let mut dbuf_init: Vec<Value> = Vec::new();
        for s in &plan.signals {
            let rows = if s.resolved && (s.drivers > 1 || !config.specialize) {
                s.drivers
            } else {
                0
            };
            span.push((dbuf_init.len() as u32, rows as u32));
            dbuf_init.extend(std::iter::repeat_n(s.init, rows));
        }
        let dst = |sig: usize, slot: usize| -> Dst {
            let (start, len) = span[sig];
            Dst {
                sig: sig as u32,
                row: if len == 0 {
                    NO_ROW
                } else {
                    start + slot as u32
                },
            }
        };

        // Pass 3 (folding): pre-evaluate guards whose operands are all
        // literals. `eval` never invokes the read closure for them.
        let guard_static: Vec<Option<bool>> = plan
            .guards
            .iter()
            .map(|g| {
                let all_const = g.clauses.iter().all(|&(l, _, r)| {
                    matches!(l, GuardSig::Const(_)) && matches!(r, GuardSig::Const(_))
                });
                (config.fold && all_const).then(|| g.eval(|_| unreachable!("const-only guard")))
            })
            .collect();

        // Pass 4 (DSE): per-step activity tables. `port_active[m][s]`
        // marks an assert into module `m`'s operand ports anywhere in
        // step `s` (guards ignored — a disabled assert still drives
        // `DISC`, and presence is all the conservative window needs).
        let steps = plan.cs_max as usize;
        let step_asserts = |s: usize| {
            plan.slots[s * phases..(s + 1) * phases]
                .iter()
                .flatten()
                .filter_map(|a| match *a {
                    Action::Assert { dst, .. } => Some(dst),
                    _ => None,
                })
        };
        let mut port_active: Vec<Vec<bool>> = vec![vec![false; steps]; plan.modules.len()];
        let mut reg_in_active: Vec<Vec<bool>> = vec![vec![false; steps]; plan.regs.len()];
        let mut mem_win_active: Vec<Vec<bool>> = vec![vec![false; steps]; plan.mems.len()];
        if config.dse {
            // Reverse maps (signal → consumer) keep the table build
            // linear in the assert count rather than assert × consumer.
            let mut port_of: Vec<u32> = vec![u32::MAX; plan.signals.len()];
            let mut regin_of: Vec<u32> = vec![u32::MAX; plan.signals.len()];
            let mut memwin_of: Vec<u32> = vec![u32::MAX; plan.signals.len()];
            for (m, pm) in plan.modules.iter().enumerate() {
                port_of[pm.in1] = m as u32;
                port_of[pm.in2] = m as u32;
                if let Some(op) = pm.op {
                    port_of[op] = m as u32;
                }
            }
            for (r, pr) in plan.regs.iter().enumerate() {
                regin_of[pr.input] = r as u32;
            }
            for (w, pw) in plan.mems.iter().enumerate() {
                memwin_of[pw.win] = w as u32;
            }
            for s in 0..steps {
                for dst_sig in step_asserts(s) {
                    if port_of[dst_sig] != u32::MAX {
                        port_active[port_of[dst_sig] as usize][s] = true;
                    }
                    if regin_of[dst_sig] != u32::MAX {
                        reg_in_active[regin_of[dst_sig] as usize][s] = true;
                    }
                    if memwin_of[dst_sig] != u32::MAX {
                        mem_win_active[memwin_of[dst_sig] as usize][s] = true;
                    }
                }
            }
        }
        // A module evaluation at step `s` (0-based here) is dead when no
        // operand-port assert lands within the last `2·latency + 2`
        // steps: operands are `DISC`, the pipeline has drained, the
        // initiation counter is zero and the output already reads
        // `DISC` — the push would be a perfect no-op.
        let eval_dead = |m: usize, s: usize| -> bool {
            if !config.dse {
                return false;
            }
            let window = 2 * plan.modules[m].timing.latency() as usize + 2;
            (s.saturating_sub(window)..=s).all(|t| !port_active[m][t])
        };

        // Pass 1 (fusion): one linear walk over the schedule, emitting
        // micro-ops in the generic walker's exact action order.
        let action_count = plan.init_actions.len() + plan.slots.iter().map(Vec::len).sum::<usize>();
        let mut ops: Vec<MicroOp> = Vec::with_capacity(action_count);
        let mut bounds: Vec<u32> = Vec::with_capacity(needed as usize + 1);
        let mut phantom: Vec<u32> = vec![0; needed as usize + 1];
        bounds.push(0);
        for d in 0..needed as usize {
            let actions: &[Action] = if d == 0 {
                &plan.init_actions
            } else {
                plan.slots.get(d - 1).map(Vec::as_slice).unwrap_or(&[])
            };
            // 0-based step of this delta (valid for d >= 1).
            let step = d.saturating_sub(1) / phases;
            for &action in actions {
                match action {
                    Action::Control { sig, value } => {
                        if config.fold {
                            ops.push(MicroOp::Ctl {
                                sig: sig as u32,
                                v: value,
                            });
                        } else {
                            ops.push(MicroOp::Const {
                                dst: dst(sig, 0),
                                guard: NO_GUARD,
                                v: value,
                            });
                        }
                    }
                    Action::Assert {
                        src,
                        dst: d_sig,
                        slot,
                        guard,
                    } => {
                        let g = match guard {
                            None => NO_GUARD,
                            Some(gi) => match guard_static[gi as usize] {
                                Some(true) => NO_GUARD,
                                Some(false) => {
                                    // Statically disabled: the assert
                                    // still drives `DISC` every run.
                                    ops.push(MicroOp::Const {
                                        dst: dst(d_sig, slot),
                                        guard: NO_GUARD,
                                        v: Value::Disc,
                                    });
                                    continue;
                                }
                                None => gi,
                            },
                        };
                        let dst = dst(d_sig, slot);
                        ops.push(match src {
                            Source::Signal(s) => MicroOp::Copy {
                                dst,
                                guard: g,
                                src: s as u32,
                            },
                            Source::Const(v) => MicroOp::Const { dst, guard: g, v },
                            Source::MemRead { addr, base, len } => MicroOp::MemRead {
                                dst,
                                guard: g,
                                addr: addr as u32,
                                base: base as u32,
                                len,
                            },
                        });
                    }
                    Action::Release { dst: d_sig, slot } => ops.push(MicroOp::Const {
                        dst: dst(d_sig, slot),
                        guard: NO_GUARD,
                        v: Value::Disc,
                    }),
                    Action::Eval { module } => {
                        if eval_dead(module, step) {
                            // The push lands in the next delta; credit
                            // its pending/driver-update counters there.
                            phantom[d + 1] += 1;
                        } else {
                            ops.push(MicroOp::Eval {
                                module: module as u32,
                            });
                        }
                    }
                    Action::Commit { reg } => {
                        // Dead commit: the input port is provably `DISC`
                        // at `cr(s)`, so the generic engine would push
                        // nothing — elimination is free.
                        if !config.dse || reg_in_active[reg][step] {
                            ops.push(MicroOp::Commit { reg: reg as u32 });
                        }
                    }
                    Action::CommitMem { mem } => {
                        if !config.dse || mem_win_active[mem][step] {
                            ops.push(MicroOp::CommitMem { mem: mem as u32 });
                        }
                    }
                }
            }
            bounds.push(ops.len() as u32);
        }

        OptPlan {
            plan,
            config,
            needed,
            ops,
            bounds,
            phantom,
            span,
            dbuf_init,
        }
    }

    /// The pass toggles this plan was compiled under.
    pub fn config(&self) -> OptConfig {
        self.config
    }

    /// Number of micro-ops in the fused stream (diagnostics/benchmarks).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Walks the optimized stream and harvests the observable output —
    /// byte-identical to [`ExecPlan::execute`] on the source plan.
    ///
    /// # Errors
    ///
    /// Exactly [`ExecPlan::execute`]'s: [`KernelError::DeltaOverflow`]
    /// diagnosed up front from the static schedule length, and
    /// [`KernelError::WallBudgetExceeded`] when the deadline passes
    /// mid-walk.
    pub fn execute(&self, options: &ExecOptions) -> Result<ExecOutcome, KernelError> {
        let plan = &self.plan;
        let delta_limit = options.delta_limit.unwrap_or(100_000_000);
        let needed = self.needed;
        if needed > delta_limit {
            return Err(KernelError::DeltaOverflow {
                at: SimTime {
                    fs: 0,
                    delta: delta_limit,
                },
                limit: delta_limit,
            });
        }

        let mut values: Vec<Value> = plan.signals.iter().map(|s| s.init).collect();
        let mut dbuf: Vec<Value> = self.dbuf_init.clone();
        let mut pipes: Vec<VecDeque<Value>> = plan
            .modules
            .iter()
            .map(|m| VecDeque::from(vec![Value::Disc; m.timing.latency() as usize]))
            .collect();
        let mut busy: Vec<u32> = vec![0; plan.modules.len()];

        let mut trace: Option<Trace<Value>> = options.trace.then(Trace::new);
        let mut events: Vec<(u64, usize, Value)> = Vec::new();
        if let Some(t) = &mut trace {
            for (i, s) in plan.signals.iter().enumerate() {
                t.push(SimTime::ZERO, SignalId::from_index(i), s.init);
            }
        }
        // Control pushes are only elidable when nothing records them.
        let elide_ctl = self.config.fold && trace.is_none();

        let mut stats = SimStats {
            process_activations: plan.activations,
            wake_filter_hits: plan.wake_hits,
            wake_filter_misses: plan.wake_misses,
            peak_runnable: plan.process_count,
            ..SimStats::default()
        };

        // Double-buffered pending queue: the drained allocation is
        // reused every delta instead of freed (the generic walker
        // reallocates per delta).
        let mut cur: Vec<(u32, u32, Value)> = Vec::new();
        let mut nxt: Vec<(u32, u32, Value)> = Vec::new();
        // Counter credits for control pushes elided during the previous
        // delta's run phase: each would have been one pending entry, one
        // driver update and one event in this delta.
        let mut carry: u64 = 0;
        for d in 0..needed {
            let phantom = u64::from(self.phantom[d as usize]);
            stats.peak_pending_updates = stats
                .peak_pending_updates
                .max(cur.len() as u64 + carry + phantom);
            stats.driver_updates += carry + phantom;
            stats.events += carry;
            carry = 0;

            for &(sig, row, value) in &cur {
                stats.driver_updates += 1;
                let sig = sig as usize;
                let effective = if row == NO_ROW {
                    value
                } else {
                    dbuf[row as usize] = value;
                    let (start, len) = self.span[sig];
                    resolve(&dbuf[start as usize..(start + len) as usize])
                };
                if effective != values[sig] {
                    values[sig] = effective;
                    stats.events += 1;
                    if let Some(t) = &mut trace {
                        t.push(
                            SimTime { fs: 0, delta: d },
                            SignalId::from_index(sig),
                            effective,
                        );
                        events.push((d, sig, effective));
                    }
                }
            }
            cur.clear();

            let (lo, hi) = (
                self.bounds[d as usize] as usize,
                self.bounds[d as usize + 1] as usize,
            );
            for op in &self.ops[lo..hi] {
                match *op {
                    MicroOp::Ctl { sig, v } => {
                        if elide_ctl {
                            // Every control push is an event: CS strictly
                            // increments and PH always changes phase.
                            carry += 1;
                        } else {
                            nxt.push((sig, NO_ROW, v));
                        }
                    }
                    MicroOp::Const { dst, guard, v } => {
                        let v = if guard == NO_GUARD
                            || plan.guards[guard as usize].eval(|s| values[s])
                        {
                            v
                        } else {
                            Value::Disc
                        };
                        nxt.push((dst.sig, dst.row, v));
                    }
                    MicroOp::Copy { dst, guard, src } => {
                        let v = if guard == NO_GUARD
                            || plan.guards[guard as usize].eval(|s| values[s])
                        {
                            values[src as usize]
                        } else {
                            Value::Disc
                        };
                        nxt.push((dst.sig, dst.row, v));
                    }
                    MicroOp::MemRead {
                        dst,
                        guard,
                        addr,
                        base,
                        len,
                    } => {
                        let v = if guard == NO_GUARD
                            || plan.guards[guard as usize].eval(|s| values[s])
                        {
                            match values[addr as usize].num() {
                                Some(a) if (0..i64::from(len)).contains(&a) => {
                                    values[base as usize + a as usize]
                                }
                                _ => Value::Illegal,
                            }
                        } else {
                            Value::Disc
                        };
                        nxt.push((dst.sig, dst.row, v));
                    }
                    MicroOp::Eval { module } => {
                        let module = module as usize;
                        let m = &plan.modules[module];
                        let mut result = combine(
                            values[m.in1],
                            values[m.in2],
                            m.op.map(|p| values[p]),
                            &m.ops,
                        );
                        if let ModuleTiming::Sequential { latency } = m.timing {
                            if busy[module] > 0 {
                                busy[module] -= 1;
                                if result != Value::Disc {
                                    result = Value::Illegal;
                                    for v in pipes[module].iter_mut() {
                                        *v = Value::Illegal;
                                    }
                                }
                            } else if result != Value::Disc {
                                busy[module] = latency.saturating_sub(1);
                            }
                        }
                        let pipe = &mut pipes[module];
                        match pipe.pop_front() {
                            None => nxt.push((m.out as u32, NO_ROW, result)),
                            Some(due) => {
                                nxt.push((m.out as u32, NO_ROW, due));
                                pipe.push_back(result);
                            }
                        }
                    }
                    MicroOp::Commit { reg } => {
                        let r = &plan.regs[reg as usize];
                        let v = values[r.input];
                        if v != Value::Disc {
                            nxt.push((r.output as u32, NO_ROW, v));
                        }
                    }
                    MicroOp::CommitMem { mem } => {
                        let m = &plan.mems[mem as usize];
                        let v = values[m.win];
                        if v != Value::Disc {
                            match values[m.waddr].num() {
                                Some(a) if (0..m.words.len() as i64).contains(&a) => {
                                    nxt.push((m.words[a as usize] as u32, NO_ROW, v));
                                }
                                _ => {
                                    for &w in &m.words {
                                        nxt.push((w as u32, NO_ROW, Value::Illegal));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            std::mem::swap(&mut cur, &mut nxt);

            if let Some(deadline) = options.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(KernelError::WallBudgetExceeded {
                        at: SimTime {
                            fs: 0,
                            delta: d + 1,
                        },
                    });
                }
            }
        }
        stats.delta_cycles = needed;

        let mut registers: Vec<(String, Value)> = plan
            .regs
            .iter()
            .map(|r| (r.name.clone(), values[r.output]))
            .collect();
        for m in &plan.mems {
            for &w in &m.words {
                registers.push((plan.signals[w].name.clone(), values[w]));
            }
        }

        let conflicts = trace.as_ref().map(|_| plan.dynamic_conflicts(&events));
        let commits = trace.as_ref().map(|_| plan.commit_log(&events));
        let vcd = trace.as_ref().map(|t| {
            let names: Vec<String> = plan.signals.iter().map(|s| s.name.clone()).collect();
            t.to_vcd(&names)
        });

        Ok(ExecOutcome {
            summary: RunSummary {
                stats,
                registers,
                conflicts,
            },
            commits,
            vcd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::OptLevel;
    use crate::model::fig1_model;

    fn assert_outcomes_identical(model: &crate::model::RtModel, options: &ExecOptions) {
        let plan = ExecPlan::lower(model);
        let base = plan.execute(options).map_err(|e| e.to_string());
        for level in [OptLevel::O1, OptLevel::O2] {
            let opt = OptPlan::compile(&plan, level.config());
            let out = opt.execute(options).map_err(|e| e.to_string());
            match (&base, &out) {
                (Ok(b), Ok(o)) => {
                    assert_eq!(b.summary.registers, o.summary.registers, "{level}");
                    assert_eq!(b.summary.stats, o.summary.stats, "{level}");
                    assert_eq!(b.summary.conflicts, o.summary.conflicts, "{level}");
                    assert_eq!(b.commits, o.commits, "{level}");
                    assert_eq!(b.vcd, o.vcd, "{level}");
                }
                (Err(b), Err(o)) => assert_eq!(b, o, "{level}"),
                _ => panic!("outcome kind diverged at O{level}: {base:?} vs {out:?}"),
            }
        }
    }

    #[test]
    fn fig1_byte_identical_at_every_level_traced_and_untraced() {
        let model = fig1_model(3, 4);
        assert_outcomes_identical(&model, &ExecOptions::traced());
        assert_outcomes_identical(&model, &ExecOptions::default());
    }

    #[test]
    fn per_pass_configs_stay_byte_identical() {
        // Each pass toggled alone on top of fusion must already be
        // observable-preserving — the bench relies on this for per-pass
        // attribution.
        let model = fig1_model(3, 4);
        let plan = ExecPlan::lower(&model);
        let base = plan.execute(&ExecOptions::traced()).unwrap();
        for config in [
            OptConfig {
                fuse: true,
                ..Default::default()
            },
            OptConfig {
                fuse: true,
                specialize: true,
                ..Default::default()
            },
            OptConfig {
                fuse: true,
                fold: true,
                ..Default::default()
            },
            OptConfig {
                fuse: true,
                dse: true,
                ..Default::default()
            },
        ] {
            let out = OptPlan::compile(&plan, config)
                .execute(&ExecOptions::traced())
                .unwrap();
            assert_eq!(base.summary.stats, out.summary.stats, "{config:?}");
            assert_eq!(base.vcd, out.vcd, "{config:?}");
            assert_eq!(base.commits, out.commits, "{config:?}");
        }
    }

    #[test]
    fn delta_overflow_is_diagnosed_identically() {
        let model = fig1_model(3, 4);
        let options = ExecOptions {
            delta_limit: Some(10),
            ..Default::default()
        };
        assert_outcomes_identical(&model, &options);
    }

    #[test]
    fn dse_shrinks_the_stream_on_sparse_schedules() {
        // fig1 schedules one transfer at steps 5/6 of 7: most module
        // evaluations are provably dead.
        let model = fig1_model(3, 4);
        let plan = ExecPlan::lower(&model);
        let o1 = OptPlan::compile(&plan, OptLevel::O1.config());
        let o2 = OptPlan::compile(&plan, OptLevel::O2.config());
        assert!(
            o2.op_count() < o1.op_count(),
            "O2 stream ({} ops) not smaller than O1 ({} ops)",
            o2.op_count(),
            o1.op_count()
        );
    }
}
