//! Integration tests exercising kernel behaviours across modules:
//! tracing, mixed delta/physical timing, run control and stress shapes.

use std::sync::Arc;

use clockless_kernel::prelude::*;

#[test]
fn trace_records_initial_values_and_events() {
    let mut sim: Simulator<i64> = Simulator::new();
    sim.enable_trace();
    let a = sim.signal("a", 5);
    let b = sim.signal("b", 0);
    sim.process("copy", &[b], move |ctx: &mut ProcessCtx<'_, i64>| {
        let v = *ctx.value(a);
        ctx.assign(b, v * 2);
        Wait::Done
    });
    sim.initialize().unwrap();
    sim.run().unwrap();
    let trace = sim.trace().expect("tracing enabled");
    // Initial values for both signals plus b's change.
    assert_eq!(trace.events().len(), 3);
    assert_eq!(trace.last_value(a), Some(&5));
    assert_eq!(trace.last_value(b), Some(&10));
    // a never changed after initialization.
    assert_eq!(trace.events_for(a).count(), 1);
}

#[test]
fn run_until_stops_at_the_deadline() {
    let mut sim: Simulator<i64> = Simulator::new();
    let tick = sim.signal("tick", 0);
    let mut n = 0i64;
    sim.process("clock", &[tick], move |ctx: &mut ProcessCtx<'_, i64>| {
        n += 1;
        ctx.assign(tick, n);
        Wait::For(10 * NS)
    });
    sim.initialize().unwrap();
    sim.run_until(35 * NS).unwrap();
    // Ticks at 0, 10, 20, 30 ns have fired; the 40 ns one has not.
    assert_eq!(*sim.value(tick), 4);
    assert!(!sim.is_quiescent());
    sim.run_until(40 * NS).unwrap();
    assert_eq!(*sim.value(tick), 5);
}

#[test]
fn timed_updates_at_the_same_instant_apply_in_issue_order() {
    let mut sim: Simulator<i64> = Simulator::new();
    let s = sim.signal("s", 0);
    sim.process("d", &[s], move |ctx: &mut ProcessCtx<'_, i64>| {
        // Both land at t = 5ns; the later-issued write wins (it is the
        // driver's final scheduled value for that instant).
        ctx.assign_after(s, 1, 5 * NS);
        ctx.assign_after(s, 2, 5 * NS);
        Wait::Done
    });
    sim.initialize().unwrap();
    sim.run().unwrap();
    assert_eq!(*sim.value(s), 2);
}

#[test]
fn wait_for_zero_resumes_next_delta() {
    let mut sim: Simulator<i64> = Simulator::new();
    let s = sim.signal("s", 0);
    let mut fired = 0i64;
    sim.process("z", &[s], move |ctx: &mut ProcessCtx<'_, i64>| {
        fired += 1;
        ctx.assign(s, fired);
        if fired < 3 {
            Wait::For(0)
        } else {
            Wait::Done
        }
    });
    sim.initialize().unwrap();
    let stats = sim.run().unwrap();
    assert_eq!(*sim.value(s), 3);
    // Everything happened at physical time zero.
    assert_eq!(stats.time_advances, 0);
    assert_eq!(sim.now().fs, 0);
}

#[test]
fn resolved_bus_with_many_drivers_stress() {
    // 64 drivers on one bus, each active in its own delta window.
    let mut sim: Simulator<i64> = Simulator::new();
    let resolver: Resolver<i64> = Arc::new(|d: &[i64]| d.iter().copied().filter(|&v| v != 0).sum());
    let bus = sim.resolved_signal("bus", 0, resolver);
    for i in 0..64i64 {
        sim.process(
            format!("d{i}"),
            &[bus],
            move |ctx: &mut ProcessCtx<'_, i64>| {
                ctx.assign(bus, i + 1);
                Wait::Done
            },
        );
    }
    sim.initialize().unwrap();
    sim.run().unwrap();
    // Sum of 1..=64.
    assert_eq!(*sim.value(bus), 65 * 32);
}

#[test]
fn long_delta_chain_is_linear_and_exact() {
    // A 10_000-stage delta ripple: process i fires when s reaches i.
    let mut sim: Simulator<i64> = Simulator::new();
    let s = sim.signal("s", 0);
    let mut n = 0i64;
    sim.process("ripple", &[s], move |ctx: &mut ProcessCtx<'_, i64>| {
        n += 1;
        if n <= 10_000 {
            ctx.assign(s, n);
            Wait::on(s)
        } else {
            Wait::Done
        }
    });
    sim.initialize().unwrap();
    let stats = sim.run().unwrap();
    assert_eq!(*sim.value(s), 10_000);
    assert!(stats.delta_cycles >= 10_000);
    assert_eq!(stats.time_advances, 0);
}

#[test]
fn signal_and_process_names_are_queryable() {
    let mut sim: Simulator<i64> = Simulator::new();
    let a = sim.signal("alpha", 0);
    let pid = sim.process("worker", &[a], |_: &mut ProcessCtx<'_, i64>| Wait::Done);
    assert_eq!(sim.signal_name(a), "alpha");
    assert_eq!(sim.process_name(pid), "worker");
    assert_eq!(sim.signal_names().collect::<Vec<_>>(), vec!["alpha"]);
}

#[test]
fn mixed_delta_and_physical_activity() {
    // A physical-time producer and a delta-time follower interleave.
    let mut sim: Simulator<i64> = Simulator::new();
    let src = sim.signal("src", 0);
    let dst = sim.signal("dst", 0);
    let mut n = 0i64;
    sim.process("producer", &[src], move |ctx: &mut ProcessCtx<'_, i64>| {
        n += 1;
        ctx.assign(src, n);
        if n < 5 {
            Wait::For(7 * NS)
        } else {
            Wait::Done
        }
    });
    sim.process("follower", &[dst], move |ctx: &mut ProcessCtx<'_, i64>| {
        let v = *ctx.value(src);
        ctx.assign(dst, v * 10);
        Wait::on(src)
    });
    sim.initialize().unwrap();
    let stats = sim.run().unwrap();
    assert_eq!(*sim.value(dst), 50);
    assert_eq!(sim.now().fs, 4 * 7 * NS);
    assert_eq!(stats.time_advances, 4);
}

#[test]
fn force_after_quiescence_revives_the_simulation() {
    let mut sim: Simulator<i64> = Simulator::new();
    let input = sim.signal("in", 0);
    let acc = sim.signal("acc", 0);
    sim.process("sum", &[acc], move |ctx: &mut ProcessCtx<'_, i64>| {
        let v = *ctx.value(input) + *ctx.value(acc);
        if *ctx.value(input) != 0 {
            ctx.assign(acc, v);
        }
        Wait::on(input)
    });
    sim.initialize().unwrap();
    sim.run().unwrap();
    for v in [3, 4, 5] {
        sim.force(input, v).unwrap();
        sim.run().unwrap();
    }
    assert_eq!(*sim.value(acc), 12);
}

#[test]
fn vcd_export_of_a_real_run() {
    let mut sim: Simulator<i64> = Simulator::new();
    sim.enable_trace();
    let s = sim.signal("sig", 0);
    let mut n = 0i64;
    sim.process("count", &[s], move |ctx: &mut ProcessCtx<'_, i64>| {
        n += 1;
        ctx.assign(s, n);
        if n < 4 {
            Wait::on(s)
        } else {
            Wait::Done
        }
    });
    sim.initialize().unwrap();
    sim.run().unwrap();
    let names: Vec<String> = sim.signal_names().map(str::to_string).collect();
    let vcd = sim.trace().unwrap().to_vcd(&names);
    assert!(vcd.contains("$var wire 64 ! sig $end"));
    // Four value changes + initial: five timesteps at most.
    assert!(vcd.matches("\n#").count() <= 5);
    assert!(vcd.contains("s4 !"));
}

/// Per-instance isolation audit: the kernel keeps no hidden shared
/// state, so independent simulators running concurrently on separate
/// threads produce exactly the counters and values a serial run does.
/// This is the property the `clockless-fleet` batch engine builds its
/// determinism guarantee on.
#[test]
fn concurrent_instances_are_fully_isolated() {
    fn build_and_run(n_drivers: i64) -> (SimStats, i64) {
        let mut sim: Simulator<i64> = Simulator::new();
        let bus = sim.resolved_signal(
            "bus",
            0,
            Arc::new(|d: &[i64]| d.iter().copied().max().unwrap_or(0)),
        );
        for i in 1..=n_drivers {
            sim.process(
                format!("d{i}"),
                &[bus],
                move |ctx: &mut ProcessCtx<'_, i64>| {
                    ctx.assign(bus, i);
                    Wait::Done
                },
            );
        }
        sim.initialize().unwrap();
        let stats = sim.run().unwrap();
        (stats, *sim.value(bus))
    }

    // Serial reference runs…
    let reference: Vec<(SimStats, i64)> = (1..=8).map(build_and_run).collect();
    // …must match the same workloads executed concurrently.
    let concurrent: Vec<(SimStats, i64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..=8).map(|n| s.spawn(move || build_and_run(n))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(reference, concurrent);
}
