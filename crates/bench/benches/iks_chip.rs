//! Experiment E4 (§3, Fig. 3): the IKS chip — microcode translation and
//! full-chip simulation, with the paper's bottom-up verification against
//! the algorithmic level.

use clockless_bench::harness::Harness;
use clockless_core::RtSimulation;
use clockless_iks::prelude::*;
use clockless_iks::{
    build_fir_chip, build_fk_chip, chip_model, ik_microprogram, ik_opcode_maps, translate,
    FIR_OUT_REG, FK_X_REG, FK_Y_REG, IK_STEPS, THETA1_REG, THETA2_REG,
};
use std::hint::black_box;

fn report() {
    let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
    eprintln!("--- E4: IKS chip (microcode -> transfers -> simulation) ---");
    let chip = build_ik_chip(to_fx(1.0), to_fx(1.0), constants).expect("builds");
    eprintln!(
        "inventory: {} registers, {} buses, {} modules, {} transfers, {} steps",
        chip.model.registers().len(),
        chip.model.buses().len(),
        chip.model.modules().len(),
        chip.model.tuples().len(),
        chip.model.cs_max()
    );
    eprintln!(
        "{:>14} {:>10} {:>10} {:>10}",
        "pose", "θ1", "θ2", "bit-exact"
    );
    for (px, py) in [(1.0, 1.0), (1.5, 0.2), (-0.8, 1.1)] {
        let chip = build_ik_chip(to_fx(px), to_fx(py), constants).expect("builds");
        let mut sim = RtSimulation::new(&chip.model).expect("elaborates");
        let summary = sim.run_to_completion().expect("runs");
        let t1 = summary.register(THETA1_REG).unwrap().num().unwrap();
        let t2 = summary.register(THETA2_REG).unwrap().num().unwrap();
        let golden = solve_ik(to_fx(px), to_fx(py), &constants).expect("reachable");
        let exact = t1 == golden.theta1 && t2 == golden.theta2;
        eprintln!(
            "({px:>5.2},{py:>5.2}) {:>10.4} {:>10.4} {exact:>10}",
            from_fx(t1),
            from_fx(t2)
        );
        assert!(exact);
    }

    // The FK loop and the MACC FIR program on the same resources.
    let chip = build_ik_chip(to_fx(1.2), to_fx(0.7), constants).expect("builds");
    let mut sim = RtSimulation::new(&chip.model).expect("elaborates");
    let s = sim.run_to_completion().expect("runs");
    let t1 = s.register(THETA1_REG).unwrap().num().unwrap();
    let t2 = s.register(THETA2_REG).unwrap().num().unwrap();
    let fk = build_fk_chip(t1, t2, constants).expect("builds");
    let mut sim = RtSimulation::new(&fk.model).expect("elaborates");
    let s = sim.run_to_completion().expect("runs");
    let x = from_fx(s.register(FK_X_REG).unwrap().num().unwrap());
    let y = from_fx(s.register(FK_Y_REG).unwrap().num().unwrap());
    eprintln!("IK∘FK(1.20, 0.70) = ({x:.4}, {y:.4})  (closes the loop on chip)");
    assert!((x - 1.2).abs() < 2e-2 && (y - 0.7).abs() < 2e-2);

    let samples = [to_fx(0.5), to_fx(1.5), to_fx(-1.0), to_fx(2.0)];
    let coeffs = [to_fx(2.0), to_fx(-0.5), to_fx(0.25), to_fx(1.0)];
    let fir = build_fir_chip(samples, coeffs).expect("builds");
    let mut sim = RtSimulation::new(&fir).expect("elaborates");
    let s = sim.run_to_completion().expect("runs");
    use clockless_iks::fixed::mul_fx;
    let golden: i64 = samples
        .iter()
        .zip(&coeffs)
        .map(|(&a, &c)| mul_fx(a, c))
        .sum();
    eprintln!(
        "MACC FIR(4 taps) = {} (golden {golden}, {} steps)",
        s.register(FIR_OUT_REG).unwrap(),
        fir.cs_max()
    );
    assert_eq!(s.register(FIR_OUT_REG).unwrap().num(), Some(golden));
}

fn main() {
    report();
    let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
    let mut h = Harness::new();
    {
        let mut g = h.group("iks_chip");

        // The translator alone (the paper's "C program").
        let maps = ik_opcode_maps();
        let program = ik_microprogram();
        let skeleton = chip_model(IK_STEPS, &[]);
        g.bench("microcode_translation", || {
            translate(black_box(&program), black_box(&maps), black_box(&skeleton)).unwrap()
        });

        // Chip build (skeleton + preload + translation + insertion).
        g.bench("build_chip", || {
            build_ik_chip(to_fx(1.0), to_fx(1.0), constants).expect("builds")
        });

        // Full pose solve on the simulated chip.
        let chip = build_ik_chip(to_fx(1.0), to_fx(1.0), constants).expect("builds");
        g.bench("simulate_pose", || {
            let mut sim = RtSimulation::new(&chip.model).expect("elaborates");
            sim.run_to_completion().expect("runs")
        });

        // The algorithmic golden model for scale.
        g.bench("golden_algorithm", || {
            solve_ik(black_box(to_fx(1.0)), black_box(to_fx(1.0)), &constants).unwrap()
        });

        // The companion microprograms on the same resources.
        let fk = build_fk_chip(to_fx(0.3), to_fx(0.9), constants).expect("builds");
        g.bench("simulate_fk", || {
            let mut sim = RtSimulation::new(&fk.model).expect("elaborates");
            sim.run_to_completion().expect("runs")
        });
        let fir = build_fir_chip([to_fx(0.5); 4], [to_fx(0.25); 4]).expect("builds");
        g.bench("simulate_fir_macc", || {
            let mut sim = RtSimulation::new(&fir).expect("elaborates");
            sim.run_to_completion().expect("runs")
        });
    }
    h.print_table();
}
