//! Dataflow graphs: the input of high-level synthesis.
//!
//! §4 of the paper names high-level synthesis as a primary client of the
//! clock-free subset: "the result of scheduling and allocation is given as
//! a register transfer model. High level synthesis results are translated
//! into our subset and can then be simulated at a high level before the
//! next synthesis steps". A [`Dfg`] is the operation-level description
//! that scheduling and allocation start from.
//!
//! Graphs are DAGs by construction: a node can only reference nodes that
//! already exist. Leaves are named primary inputs or integer constants.

use std::collections::HashMap;
use std::fmt;

use clockless_core::{Arity, Op};

/// Identifies a node within one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One operand of a node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The result of another node.
    Node(NodeId),
    /// A named primary input.
    Input(String),
    /// An integer constant.
    Const(i64),
}

impl From<NodeId> for Operand {
    fn from(n: NodeId) -> Self {
        Operand::Node(n)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Self {
        Operand::Const(c)
    }
}

impl From<&str> for Operand {
    fn from(name: &str) -> Self {
        Operand::Input(name.to_string())
    }
}

/// One operation node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// First operand.
    pub a: Operand,
    /// Second operand (`None` for unary operations).
    pub b: Option<Operand>,
}

/// Errors from building or evaluating a dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DfgError {
    /// An operand referenced a node id not (yet) in the graph.
    UnknownNode(NodeId),
    /// Operand count does not match the operation's arity.
    ArityMismatch {
        /// The operation.
        op: Op,
        /// Human-readable description.
        detail: &'static str,
    },
    /// Evaluation was missing a primary input value.
    MissingInput(String),
    /// An output name was bound twice.
    DuplicateOutput(String),
    /// Evaluation produced a non-numeric result (e.g. shift overflow).
    IllegalResult(NodeId),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::UnknownNode(n) => write!(f, "operand references unknown node {n}"),
            DfgError::ArityMismatch { op, detail } => write!(f, "operands for `{op}`: {detail}"),
            DfgError::MissingInput(n) => write!(f, "no value supplied for input `{n}`"),
            DfgError::DuplicateOutput(n) => write!(f, "output `{n}` bound twice"),
            DfgError::IllegalResult(n) => write!(f, "node {n} evaluated to an illegal value"),
        }
    }
}

impl std::error::Error for DfgError {}

/// A dataflow graph: operations over primary inputs and constants, with
/// named outputs.
///
/// # Examples
///
/// `out = (a + b) * 2`:
///
/// ```
/// use clockless_hls::dfg::Dfg;
/// use clockless_core::Op;
///
/// let mut g = Dfg::new("demo");
/// let sum = g.node(Op::Add, "a", "b")?;
/// let scaled = g.node(Op::Mul, sum, 2)?;
/// g.output("out", scaled)?;
///
/// let r = g.evaluate(&[("a", 3), ("b", 4)].into_iter().collect())?;
/// assert_eq!(r["out"], 14);
/// # Ok::<(), clockless_hls::dfg::DfgError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
    outputs: Vec<(String, NodeId)>,
}

impl Dfg {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Dfg {
        Dfg {
            name: name.into(),
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a binary operation node.
    ///
    /// # Errors
    ///
    /// [`DfgError::UnknownNode`] if an operand references a node not yet
    /// added (this is what keeps the graph acyclic), or
    /// [`DfgError::ArityMismatch`] for unary operations.
    pub fn node(
        &mut self,
        op: Op,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Result<NodeId, DfgError> {
        if op.arity() != Arity::Binary {
            return Err(DfgError::ArityMismatch {
                op,
                detail: "operation is unary; use `unary`",
            });
        }
        let a = a.into();
        let b = b.into();
        self.check_operand(&a)?;
        self.check_operand(&b)?;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, a, b: Some(b) });
        Ok(id)
    }

    /// Adds a unary operation node.
    ///
    /// # Errors
    ///
    /// [`DfgError::UnknownNode`] for dangling operands or
    /// [`DfgError::ArityMismatch`] for binary operations.
    pub fn unary(&mut self, op: Op, a: impl Into<Operand>) -> Result<NodeId, DfgError> {
        if op.arity() == Arity::Binary {
            return Err(DfgError::ArityMismatch {
                op,
                detail: "operation is binary; use `node`",
            });
        }
        let a = a.into();
        self.check_operand(&a)?;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, a, b: None });
        Ok(id)
    }

    /// Binds a named output to a node's result.
    ///
    /// # Errors
    ///
    /// [`DfgError::DuplicateOutput`] or [`DfgError::UnknownNode`].
    pub fn output(&mut self, name: impl Into<String>, node: NodeId) -> Result<(), DfgError> {
        let name = name.into();
        if self.outputs.iter().any(|(n, _)| *n == name) {
            return Err(DfgError::DuplicateOutput(name));
        }
        if node.index() >= self.nodes.len() {
            return Err(DfgError::UnknownNode(node));
        }
        self.outputs.push((name, node));
        Ok(())
    }

    fn check_operand(&self, o: &Operand) -> Result<(), DfgError> {
        if let Operand::Node(n) = o {
            if n.index() >= self.nodes.len() {
                return Err(DfgError::UnknownNode(*n));
            }
        }
        Ok(())
    }

    /// The nodes, indexable by [`NodeId`] (already topologically ordered).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The named outputs.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// All distinct primary-input names, in first-use order.
    pub fn inputs(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for n in &self.nodes {
            for o in n.operands() {
                if let Operand::Input(name) = o {
                    if !seen.contains(name) {
                        seen.push(name.clone());
                    }
                }
            }
        }
        seen
    }

    /// All distinct constants, in first-use order.
    pub fn constants(&self) -> Vec<i64> {
        let mut seen = Vec::new();
        for n in &self.nodes {
            for o in n.operands() {
                if let Operand::Const(c) = o {
                    if !seen.contains(c) {
                        seen.push(*c);
                    }
                }
            }
        }
        seen
    }

    /// The node-predecessors of `n` (operands that are nodes).
    pub fn preds(&self, n: NodeId) -> Vec<NodeId> {
        self.nodes[n.index()]
            .operands()
            .iter()
            .filter_map(|o| match o {
                Operand::Node(p) => Some(*p),
                _ => None,
            })
            .collect()
    }

    /// The node-consumers of `n`.
    pub fn succs(&self, n: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| node.operands().iter().any(|o| **o == Operand::Node(n)))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Evaluates the graph over `i64` arithmetic, returning the named
    /// outputs. This is the *algorithmic-level* reference an emitted RT
    /// model is verified against.
    ///
    /// # Errors
    ///
    /// [`DfgError::MissingInput`] if an input has no value, or
    /// [`DfgError::IllegalResult`] if an operation's operand rules are
    /// violated (e.g. an out-of-range shift amount).
    pub fn evaluate(&self, inputs: &HashMap<&str, i64>) -> Result<HashMap<String, i64>, DfgError> {
        use clockless_core::Value;
        let mut values: Vec<i64> = Vec::with_capacity(self.nodes.len());
        for (idx, node) in self.nodes.iter().enumerate() {
            let fetch = |o: &Operand| -> Result<i64, DfgError> {
                match o {
                    Operand::Node(n) => Ok(values[n.index()]),
                    Operand::Input(name) => inputs
                        .get(name.as_str())
                        .copied()
                        .ok_or_else(|| DfgError::MissingInput(name.clone())),
                    Operand::Const(c) => Ok(*c),
                }
            };
            let a = Value::Num(fetch(&node.a)?);
            let b = match &node.b {
                Some(o) => Value::Num(fetch(o)?),
                None => Value::Disc,
            };
            match node.op.apply(a, b) {
                Value::Num(v) => values.push(v),
                _ => return Err(DfgError::IllegalResult(NodeId(idx as u32))),
            }
        }
        Ok(self
            .outputs
            .iter()
            .map(|(name, n)| (name.clone(), values[n.index()]))
            .collect())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for a graph with no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl Node {
    /// The node's operands (one or two).
    pub fn operands(&self) -> Vec<&Operand> {
        match &self.b {
            Some(b) => vec![&self.a, b],
            None => vec![&self.a],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dfg {
        let mut g = Dfg::new("s");
        let s = g.node(Op::Add, "a", "b").unwrap();
        let d = g.node(Op::Sub, s, "c").unwrap();
        let m = g.node(Op::Mul, s, d).unwrap();
        g.output("out", m).unwrap();
        g
    }

    #[test]
    fn evaluate_computes_expected() {
        let g = sample();
        let r = g
            .evaluate(&[("a", 5), ("b", 3), ("c", 2)].into_iter().collect())
            .unwrap();
        // s = 8, d = 6, m = 48
        assert_eq!(r["out"], 48);
    }

    #[test]
    fn inputs_and_constants_deduplicated() {
        let mut g = Dfg::new("c");
        let x = g.node(Op::Mul, "x", 3).unwrap();
        let y = g.node(Op::Add, x, 3).unwrap();
        let z = g.node(Op::Add, y, "x").unwrap();
        g.output("o", z).unwrap();
        assert_eq!(g.inputs(), vec!["x".to_string()]);
        assert_eq!(g.constants(), vec![3]);
    }

    #[test]
    fn preds_and_succs() {
        let g = sample();
        assert_eq!(g.preds(NodeId(0)), vec![]);
        assert_eq!(g.preds(NodeId(2)), vec![NodeId(0), NodeId(1)]);
        assert_eq!(g.succs(NodeId(0)), vec![NodeId(1), NodeId(2)]);
        assert_eq!(g.succs(NodeId(2)), vec![]);
    }

    #[test]
    fn dangling_operand_rejected() {
        let mut g = Dfg::new("d");
        let err = g.node(Op::Add, NodeId(7), 1).unwrap_err();
        assert_eq!(err, DfgError::UnknownNode(NodeId(7)));
    }

    #[test]
    fn arity_enforced() {
        let mut g = Dfg::new("a");
        assert!(matches!(
            g.node(Op::Neg, "a", "b"),
            Err(DfgError::ArityMismatch { .. })
        ));
        assert!(matches!(
            g.unary(Op::Add, "a"),
            Err(DfgError::ArityMismatch { .. })
        ));
        let n = g.unary(Op::Neg, "a").unwrap();
        let r = g.output("o", n);
        assert!(r.is_ok());
    }

    #[test]
    fn missing_input_detected() {
        let g = sample();
        let err = g
            .evaluate(&[("a", 1), ("b", 2)].into_iter().collect())
            .unwrap_err();
        assert_eq!(err, DfgError::MissingInput("c".into()));
    }

    #[test]
    fn duplicate_output_rejected() {
        let mut g = Dfg::new("o");
        let n = g.node(Op::Add, 1, 2).unwrap();
        g.output("x", n).unwrap();
        assert_eq!(g.output("x", n), Err(DfgError::DuplicateOutput("x".into())));
    }

    #[test]
    fn illegal_evaluation_surfaces() {
        let mut g = Dfg::new("i");
        let n = g.node(Op::Shr, "a", -1).unwrap();
        g.output("o", n).unwrap();
        let err = g.evaluate(&[("a", 8)].into_iter().collect()).unwrap_err();
        assert_eq!(err, DfgError::IllegalResult(n));
    }
}
