//! Shared hand-rolled JSON rendering helpers.
//!
//! Every machine-readable surface in the workspace (fleet reports, fault
//! campaigns, the serve daemon) writes JSON by hand so tier-1 resolves
//! with zero external crates. This module centralizes the two renderings
//! that must agree byte-for-byte across those surfaces — string escaping
//! and the flat [`SimStats`] counter object — plus the deterministic
//! single-run report the CLI's `run --json` and the daemon's `run` job
//! both print, and the small recursive-descent reader ([`Json`]) the
//! serve protocol and the invariant-artifact loader parse with.
//!
//! # Examples
//!
//! ```
//! use clockless_core::json::escape;
//!
//! assert_eq!(escape("plain"), "plain");
//! assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
//! ```

use std::fmt::Write as _;

use clockless_kernel::SimStats;

use crate::model::RtModel;
use crate::run::RunSummary;

/// A parsed JSON value, read by the workspace's small hand-rolled
/// recursive-descent parser (no external crates). The serve daemon's
/// request protocol and the invariant-artifact loader both consume it.
///
/// Numbers are kept as `f64`; the fields these surfaces read are small
/// integers, which `f64` represents exactly (see [`Json::as_u64`]).
///
/// # Examples
///
/// ```
/// use clockless_core::json::Json;
///
/// let v = Json::parse(r#"{"op":"run","id":3,"deep":[1,2,{"k":true}]}"#)?;
/// assert_eq!(v.get("op").and_then(Json::as_str), Some("run"));
/// assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document from `text`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer small
    /// enough for `f64` to hold exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as an `i64`, if this is an integer small enough for
    /// `f64` to hold exactly (invariant artifacts carry signed bounds).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX for the low half.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let lo = parse_hex4(bytes, *pos + 3)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err("lone high surrogate".into());
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| "invalid unicode escape".to_string())?,
                        );
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: re-borrow as str for one char.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let slice = bytes
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let text = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_string())?;
    u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        if !fields.iter().any(|(k, _)| *k == key) {
            fields.push((key, value));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders [`SimStats`] as a flat JSON object. Every counter is emitted
/// explicitly — including zeros — so downstream diffing sees a
/// value-independent key set.
///
/// # Examples
///
/// ```
/// use clockless_core::json::sim_stats;
/// use clockless_kernel::SimStats;
///
/// let j = sim_stats(&SimStats::default());
/// assert!(j.starts_with("{\"delta_cycles\": 0"));
/// assert!(j.contains("\"retries\": 0"));
/// ```
pub fn sim_stats(s: &SimStats) -> String {
    format!(
        "{{\"delta_cycles\": {}, \"process_activations\": {}, \"events\": {}, \
         \"driver_updates\": {}, \"time_advances\": {}, \"wake_filter_hits\": {}, \
         \"wake_filter_misses\": {}, \"peak_runnable\": {}, \"peak_pending_updates\": {}, \
         \"injected_faults\": {}, \"retries\": {}}}",
        s.delta_cycles,
        s.process_activations,
        s.events,
        s.driver_updates,
        s.time_advances,
        s.wake_filter_hits,
        s.wake_filter_misses,
        s.peak_runnable,
        s.peak_pending_updates,
        s.injected_faults,
        s.retries
    )
}

/// Renders one traced run as the deterministic JSON document printed by
/// `clockless run --json` — and, byte-identically, returned by the serve
/// daemon's `run` job. No wall-clock fields; identical runs produce
/// identical documents on any machine.
///
/// # Examples
///
/// ```
/// use clockless_core::backend::{Backend, ExecOptions};
/// use clockless_core::json::run_report;
/// use clockless_core::model::fig1_model;
///
/// let model = fig1_model(3, 4);
/// let outcome = Backend::Interpreted.execute(&model, &ExecOptions::traced())?;
/// let doc = run_report(&model, &outcome.summary);
/// assert!(doc.contains("\"model\": \"fig1_example\""));
/// assert!(doc.contains("{\"name\": \"R1\", \"value\": \"7\"}"));
/// # Ok::<(), clockless_kernel::KernelError>(())
/// ```
pub fn run_report(model: &RtModel, summary: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"run\": {{\"model\": \"{}\", \"cs_max\": {}, \"tuples\": {}}},",
        escape(model.name()),
        model.cs_max(),
        model.tuples().len()
    );
    let _ = writeln!(out, "  \"kernel\": {},", sim_stats(&summary.stats));
    out.push_str("  \"registers\": [");
    for (k, (name, value)) in summary.registers.iter().enumerate() {
        let comma = if k + 1 == summary.registers.len() {
            ""
        } else {
            ", "
        };
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"value\": \"{}\"}}{}",
            escape(name),
            value,
            comma
        );
    }
    out.push_str("],\n  \"conflicts\": [");
    let conflicts = summary
        .conflicts
        .as_ref()
        .map(|c| c.conflicts.as_slice())
        .unwrap_or(&[]);
    for (k, c) in conflicts.iter().enumerate() {
        let comma = if k + 1 == conflicts.len() { "" } else { ", " };
        let _ = write!(out, "\"{}\"{}", escape(&c.to_string()), comma);
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, ExecOptions};
    use crate::model::fig1_model;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\u{1}"), "x\\ny\\u0001");
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(Json::parse("null"), Ok(Json::Null));
        assert_eq!(Json::parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(Json::parse("-2.5e1"), Ok(Json::Num(-25.0)));
        let v = Json::parse(r#"{"a":[1,{"b":"c"}],"d":null}"#).expect("parses");
        let a = v.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b").and_then(Json::as_str), Some("c"));
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\there \"quoted\" back\\slash\nnewline \u{1} ünïcode 𝄞";
        let encoded = format!("\"{}\"", escape(original));
        assert_eq!(Json::parse(&encoded), Ok(Json::Str(original.to_string())));
        // And a surrogate pair spelled explicitly.
        assert_eq!(
            Json::parse("\"\\ud834\\udd1e\""),
            Ok(Json::Str("𝄞".to_string()))
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "{}x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn signed_integers_parse_exactly() {
        assert_eq!(Json::parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("2.5").unwrap().as_i64(), None);
    }

    #[test]
    fn run_report_is_deterministic_and_backend_independent() {
        let model = fig1_model(3, 4);
        let interp = Backend::Interpreted
            .execute(&model, &ExecOptions::traced())
            .expect("runs");
        let compiled = Backend::Compiled
            .execute(&model, &ExecOptions::traced())
            .expect("runs");
        let a = run_report(&model, &interp.summary);
        let b = run_report(&model, &compiled.summary);
        assert_eq!(a, b);
        assert!(a.contains("\"cs_max\": 7"), "{a}");
        assert!(a.contains("\"delta_cycles\": 43"), "{a}");
        assert!(a.ends_with("\"conflicts\": []\n}\n"), "{a}");
    }

    #[test]
    fn run_report_lists_conflicts_of_traced_runs() {
        use crate::text::parse_model;
        let text = "model clash steps 4\nregister A init 1\nregister B init 2\nregister T\n\
                    bus X\nbus Y\nbus Z\nmodule CPA ops passa comb\nmodule CPB ops passa comb\n\
                    transfer (A,X,-,-,2,CPA,2,Y,T)\ntransfer (B,X,-,-,2,CPB,2,Z,T)\n";
        let model = parse_model(text).expect("parses");
        let outcome = Backend::Interpreted
            .execute(&model, &ExecOptions::traced())
            .expect("runs");
        let doc = run_report(&model, &outcome.summary);
        assert!(doc.contains("ILLEGAL on bus `X`"), "{doc}");
    }
}
