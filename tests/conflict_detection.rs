//! Experiment E3: conflict detection and localization (§2.7).
//!
//! A matrix of injected scheduling errors, each checked for (a) a dynamic
//! `ILLEGAL` at exactly the predicted step and phase, (b) agreement with
//! the static analysis, (c) rejection by the clocked translation — three
//! independent detectors, one verdict.

use clockless::clocked::{ClockScheme, ClockedDesign};
use clockless::core::prelude::*;
use clockless::verify::{cross_check, static_conflicts};

/// A minimal playground: three loaded registers, two spares, three
/// buses, an adder and two copy units.
fn playground() -> RtModel {
    let mut m = RtModel::new("playground", 10);
    m.add_register_init("A", Value::Num(10)).unwrap();
    m.add_register_init("B", Value::Num(20)).unwrap();
    m.add_register_init("C", Value::Num(30)).unwrap();
    m.add_register("T1").unwrap();
    m.add_register("T2").unwrap();
    for b in ["X", "Y", "Z"] {
        m.add_bus(b).unwrap();
    }
    m.add_module(ModuleDecl::single(
        "ADD",
        Op::Add,
        ModuleTiming::Pipelined { latency: 1 },
    ))
    .unwrap();
    m.add_module(ModuleDecl::single(
        "CP1",
        Op::PassA,
        ModuleTiming::Combinational,
    ))
    .unwrap();
    m.add_module(ModuleDecl::single(
        "CP2",
        Op::PassA,
        ModuleTiming::Combinational,
    ))
    .unwrap();
    m
}

fn assert_conflict_at(model: &RtModel, name: &str, visible: PhaseTime) {
    // Dynamic detector.
    let mut sim = RtSimulation::traced(model).unwrap();
    sim.run_to_completion().unwrap();
    let report = sim.conflicts().unwrap();
    let first = report
        .first()
        .unwrap_or_else(|| panic!("no conflict found on {name}"));
    assert_eq!(first.name, name, "site: {report}");
    assert_eq!(first.visible_at, visible, "localization: {report}");

    // Static detector agrees.
    let cc = cross_check(model).unwrap();
    assert!(!cc.predicted.is_empty());
    assert!(cc.all_confirmed(), "unconfirmed: {:?}", cc.unconfirmed);

    // The clocked translation rejects the schedule.
    assert!(
        ClockedDesign::translate(model, ClockScheme::default()).is_err(),
        "clocked translation should reject the conflicting schedule"
    );
}

#[test]
fn bus_double_booked_in_read_phase() {
    let mut m = playground();
    m.add_transfer(
        TransferTuple::new(4, "ADD")
            .src_a("A", "X")
            .src_b("B", "Y")
            .write(5, "X", "T1"),
    )
    .unwrap();
    m.add_transfer(
        TransferTuple::new(4, "CP1")
            .src_a("C", "X")
            .write(4, "Z", "T2"),
    )
    .unwrap();
    // Both drive X at ra of step 4; visible at rb.
    assert_conflict_at(&m, "X", PhaseTime::new(4, Phase::Rb));
}

#[test]
fn bus_double_booked_in_write_phase() {
    let mut m = playground();
    m.add_transfer(
        TransferTuple::new(2, "CP1")
            .src_a("A", "X")
            .write(2, "Z", "T1"),
    )
    .unwrap();
    m.add_transfer(
        TransferTuple::new(2, "CP2")
            .src_a("B", "Y")
            .write(2, "Z", "T2"),
    )
    .unwrap();
    // Both results ride Z at wa of step 2; visible at wb.
    assert_conflict_at(&m, "Z", PhaseTime::new(2, Phase::Wb));
}

#[test]
fn module_port_fed_twice() {
    let mut m = playground();
    // Two different buses into ADD.in1 in the same step.
    m.add_transfer(
        TransferTuple::new(3, "ADD")
            .src_a("A", "X")
            .src_b("B", "Y")
            .write(4, "X", "T1"),
    )
    .unwrap();
    // A second tuple cannot reuse ADD.in1 at step 3 through the model
    // builder (it validates arity, not cross-tuple conflicts), so this
    // conflict *is* expressible:
    m.add_transfer(
        TransferTuple::new(3, "ADD")
            .src_a("C", "Z")
            .src_b("B", "Y")
            .write(4, "Z", "T2"),
    )
    .unwrap();
    // ADD.in1 receives X's and Z's values at rb of step 3; visible at cm.
    let mut sim = RtSimulation::traced(&m).unwrap();
    sim.run_to_completion().unwrap();
    let report = sim.conflicts().unwrap();
    assert!(
        report
            .conflicts
            .iter()
            .any(|c| c.site == ConflictSite::ModulePort
                && c.name == "ADD"
                && c.visible_at == PhaseTime::new(3, Phase::Cm)),
        "{report}"
    );
}

#[test]
fn register_written_twice() {
    let mut m = playground();
    m.add_transfer(
        TransferTuple::new(5, "CP1")
            .src_a("A", "X")
            .write(5, "X", "T1"),
    )
    .unwrap();
    m.add_transfer(
        TransferTuple::new(5, "CP2")
            .src_a("B", "Y")
            .write(5, "Y", "T1"),
    )
    .unwrap();
    // T1's input port gets both at wb of step 5; visible at cr, and the
    // register stores the ILLEGAL (§2.5: everything non-DISC is stored).
    assert_conflict_at(&m, "T1", PhaseTime::new(5, Phase::Cr));
    let mut sim = RtSimulation::new(&m).unwrap();
    sim.run_to_completion().unwrap();
    assert_eq!(sim.poisoned_registers(), vec!["T1".to_string()]);
}

#[test]
fn sequential_module_reinitiated_while_busy() {
    let mut m = RtModel::new("seqbusy", 8);
    m.add_register_init("A", Value::Num(3)).unwrap();
    m.add_register_init("B", Value::Num(4)).unwrap();
    m.add_register("T1").unwrap();
    m.add_register("T2").unwrap();
    for b in ["X", "Y", "Z", "W"] {
        m.add_bus(b).unwrap();
    }
    m.add_module(ModuleDecl::single(
        "MUL",
        Op::Mul,
        ModuleTiming::Sequential { latency: 3 },
    ))
    .unwrap();
    m.add_transfer(
        TransferTuple::new(1, "MUL")
            .src_a("A", "X")
            .src_b("B", "Y")
            .write(4, "Z", "T1"),
    )
    .unwrap();
    // Re-initiate at step 2 < 1 + 3: a busy conflict.
    m.add_transfer(
        TransferTuple::new(2, "MUL")
            .src_a("B", "X")
            .src_b("A", "Y")
            .write(5, "W", "T2"),
    )
    .unwrap();

    // Dynamically: the module poisons its in-flight results.
    let mut sim = RtSimulation::traced(&m).unwrap();
    sim.run_to_completion().unwrap();
    let poisoned = sim.poisoned_registers();
    assert!(
        poisoned.contains(&"T1".to_string()),
        "poisoned: {poisoned:?}"
    );
    assert!(
        poisoned.contains(&"T2".to_string()),
        "poisoned: {poisoned:?}"
    );

    // The clocked translation rejects it statically.
    let err = ClockedDesign::translate(&m, ClockScheme::default()).unwrap_err();
    assert!(matches!(
        err,
        clockless::clocked::TranslateError::SequentialOverlap { step: 2, .. }
    ));
}

#[test]
fn data_dependent_illegality_only_dynamic() {
    // A shift by a *data-dependent* out-of-range amount: statically the
    // schedule is clean; only the dynamic detector can see it (the
    // ablation DESIGN.md calls out).
    let mut m = RtModel::new("datadep", 4);
    m.add_register_init("V", Value::Num(1)).unwrap();
    m.add_register_init("S", Value::Num(99)).unwrap(); // shift amount > 63
    m.add_register("T").unwrap();
    m.add_bus("X").unwrap();
    m.add_bus("Y").unwrap();
    m.add_module(ModuleDecl::single(
        "SH",
        Op::Shr,
        ModuleTiming::Combinational,
    ))
    .unwrap();
    m.add_transfer(
        TransferTuple::new(2, "SH")
            .src_a("V", "X")
            .src_b("S", "Y")
            .write(2, "X", "T"),
    )
    .unwrap();

    assert!(static_conflicts(&m).is_empty(), "statically clean");
    assert!(
        ClockedDesign::translate(&m, ClockScheme::default()).is_ok(),
        "translation accepts it too"
    );
    let cc = cross_check(&m).unwrap();
    assert!(
        !cc.dynamic_only.is_empty(),
        "the dynamic detector alone catches the illegal shift"
    );
    let mut sim = RtSimulation::new(&m).unwrap();
    sim.run_to_completion().unwrap();
    assert_eq!(sim.poisoned_registers(), vec!["T".to_string()]);
}

#[test]
fn conflict_free_models_are_clean_everywhere() {
    let m = fig1_model(5, 9);
    assert!(static_conflicts(&m).is_empty());
    let cc = cross_check(&m).unwrap();
    assert!(cc.predicted.is_empty() && cc.dynamic_only.is_empty());
    assert!(ClockedDesign::translate(&m, ClockScheme::default()).is_ok());
}
