//! Elaboration: instantiating an [`RtModel`] onto the simulation kernel.
//!
//! Elaboration mirrors the paper's "concrete register transfer model"
//! (§2.7): signal declarations for `CS`/`PH`, the ports of the functional
//! units and the buses, then one controller process, one register process
//! per register, one module process per module and the transfer processes
//! derived from the tuples.

use clockless_kernel::{SignalId, Simulator};

use crate::model::RtModel;
use crate::phase::Phase;
use crate::processes::{
    Controller, GuardSrc, MemCommit, ModuleProc, Reg, Trans, TransGuard, TransSource,
};
use crate::tuples::{Endpoint, Guard, GuardOperand, MemAddr};
use crate::value::{kernel_resolver, Value};

/// Options controlling elaboration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ElaborateOptions {
    /// Record a full waveform (required for conflict localization and
    /// register-commit logs; costs memory and time).
    pub trace: bool,
    /// Keep transfer processes waking on every `CS`/`PH` event even after
    /// they have completed, exactly as a literal VHDL `wait until` would.
    /// Off by default: a completed transfer can never trigger again, so
    /// the kernel retires it. The style-comparison bench measures the
    /// difference.
    pub faithful_trans_wakeups: bool,
}

impl ElaborateOptions {
    /// Options with tracing enabled.
    pub fn traced() -> ElaborateOptions {
        ElaborateOptions {
            trace: true,
            ..Default::default()
        }
    }
}

/// Which model object a kernel signal implements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalRole {
    /// The control-step counter `CS`.
    ControlStep,
    /// The phase signal `PH`.
    PhaseSignal,
    /// A register's input port (resolved).
    RegIn(String),
    /// A register's output port.
    RegOut(String),
    /// A bus (resolved).
    Bus(String),
    /// A module's first operand port (resolved).
    ModIn1(String),
    /// A module's second operand port (resolved).
    ModIn2(String),
    /// A module's operation-select port (resolved).
    ModOp(String),
    /// A module's output port.
    ModOut(String),
    /// A memory's write-value port (resolved).
    MemWin(String),
    /// A memory's write-address port (resolved).
    MemWaddr(String),
    /// One word of a memory.
    MemWord {
        /// Memory name.
        mem: String,
        /// Word index.
        index: u32,
    },
}

impl SignalRole {
    /// The canonical signal name of a memory-word role (`M[3]`).
    pub fn mem_word_name(mem: &str, index: u32) -> String {
        format!("{mem}[{index}]")
    }
}

/// The signal map produced by elaboration.
#[derive(Debug, Clone)]
pub struct SignalLayout {
    /// The control-step signal.
    pub cs: SignalId,
    /// The phase signal.
    pub ph: SignalId,
    /// Register input ports, indexed like `RtModel::registers`.
    pub reg_in: Vec<SignalId>,
    /// Register output ports, indexed like `RtModel::registers`.
    pub reg_out: Vec<SignalId>,
    /// Buses, indexed like `RtModel::buses`.
    pub bus: Vec<SignalId>,
    /// Module first-operand ports, indexed like `RtModel::modules`.
    pub mod_in1: Vec<SignalId>,
    /// Module second-operand ports.
    pub mod_in2: Vec<SignalId>,
    /// Module operation-select ports (`None` for single-operation modules).
    pub mod_op: Vec<Option<SignalId>>,
    /// Module output ports.
    pub mod_out: Vec<SignalId>,
    /// Memory write-value ports, indexed like `RtModel::memories`.
    pub mem_win: Vec<SignalId>,
    /// Memory write-address ports, indexed like `RtModel::memories`.
    pub mem_waddr: Vec<SignalId>,
    /// Memory word signals, outer index like `RtModel::memories`.
    pub mem_word: Vec<Vec<SignalId>>,
    /// Role of every kernel signal, indexed by `SignalId::index()`.
    pub roles: Vec<SignalRole>,
}

impl SignalLayout {
    /// The role of a kernel signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this layout's simulator.
    pub fn role(&self, id: SignalId) -> &SignalRole {
        &self.roles[id.index()]
    }

    /// Resolves a tuple-level endpoint to its kernel signal.
    ///
    /// Returns `None` for unknown names or for [`Endpoint::ConstOp`],
    /// which has no signal.
    pub fn signal_of(&self, model: &RtModel, endpoint: &Endpoint) -> Option<SignalId> {
        match endpoint {
            Endpoint::RegOut(r) => model
                .register_by_name(r)
                .map(|id| self.reg_out[id.0 as usize]),
            Endpoint::RegIn(r) => model
                .register_by_name(r)
                .map(|id| self.reg_in[id.0 as usize]),
            Endpoint::Bus(b) => model.bus_by_name(b).map(|id| self.bus[id.0 as usize]),
            Endpoint::ModIn1(m) => model
                .module_by_name(m)
                .map(|id| self.mod_in1[id.0 as usize]),
            Endpoint::ModIn2(m) => model
                .module_by_name(m)
                .map(|id| self.mod_in2[id.0 as usize]),
            Endpoint::ModOut(m) => model
                .module_by_name(m)
                .map(|id| self.mod_out[id.0 as usize]),
            Endpoint::ModOp(m) => model
                .module_by_name(m)
                .and_then(|id| self.mod_op[id.0 as usize]),
            Endpoint::MemWin(m) => model
                .memory_by_name(m)
                .map(|id| self.mem_win[id.0 as usize]),
            Endpoint::MemWaddr(m) => model
                .memory_by_name(m)
                .map(|id| self.mem_waddr[id.0 as usize]),
            Endpoint::MemWord {
                mem,
                addr: MemAddr::Const(i),
            } => model
                .memory_by_name(mem)
                .and_then(|id| self.mem_word[id.0 as usize].get(*i as usize).copied()),
            // Register-indirect reads have no single signal; the transfer
            // process selects the word at activation time.
            Endpoint::MemWord {
                addr: MemAddr::Reg(_),
                ..
            } => None,
            Endpoint::ConstOp(_) | Endpoint::ConstVal(_) => None,
        }
    }
}

/// Resolves a model-level guard onto kernel signals.
fn resolve_guard(model: &RtModel, layout: &SignalLayout, guard: &Guard) -> TransGuard {
    let side = |op: &GuardOperand| match op {
        GuardOperand::Reg(r) => {
            let id = model
                .register_by_name(r)
                .expect("validated guard references known register");
            GuardSrc::Sig(layout.reg_out[id.0 as usize])
        }
        GuardOperand::Const(v) => GuardSrc::Const(*v),
    };
    TransGuard {
        negated: guard.negated,
        clauses: guard
            .clauses
            .iter()
            .map(|c| (side(&c.lhs), c.cmp, side(&c.rhs)))
            .collect(),
    }
}

/// Elaborates a model into a ready-to-initialize simulator plus its
/// signal layout.
///
/// The returned simulator has **not** been initialized; callers normally
/// use [`RtSimulation::new`](crate::run::RtSimulation::new) instead, which
/// wraps this and drives the run.
pub fn elaborate(model: &RtModel, options: ElaborateOptions) -> (Simulator<Value>, SignalLayout) {
    let mut sim: Simulator<Value> = Simulator::new();
    if options.trace {
        sim.enable_trace();
    }
    let mut roles = Vec::new();

    let cs = sim.signal("CS", Value::Num(0));
    roles.push(SignalRole::ControlStep);
    let ph = sim.signal("PH", Value::Num(Phase::LAST.index() as i64));
    roles.push(SignalRole::PhaseSignal);

    let mut reg_in = Vec::new();
    let mut reg_out = Vec::new();
    for r in model.registers() {
        let i = sim.resolved_signal(format!("{}_in", r.name), Value::Disc, kernel_resolver());
        roles.push(SignalRole::RegIn(r.name.clone()));
        let o = sim.signal(format!("{}_out", r.name), r.init);
        roles.push(SignalRole::RegOut(r.name.clone()));
        reg_in.push(i);
        reg_out.push(o);
    }

    let mut bus = Vec::new();
    for b in model.buses() {
        let s = sim.resolved_signal(b.name.clone(), Value::Disc, kernel_resolver());
        roles.push(SignalRole::Bus(b.name.clone()));
        bus.push(s);
    }

    let mut mod_in1 = Vec::new();
    let mut mod_in2 = Vec::new();
    let mut mod_op = Vec::new();
    let mut mod_out = Vec::new();
    for m in model.modules() {
        let i1 = sim.resolved_signal(format!("{}_in1", m.name), Value::Disc, kernel_resolver());
        roles.push(SignalRole::ModIn1(m.name.clone()));
        let i2 = sim.resolved_signal(format!("{}_in2", m.name), Value::Disc, kernel_resolver());
        roles.push(SignalRole::ModIn2(m.name.clone()));
        let op = if m.needs_op_port() {
            let s = sim.resolved_signal(format!("{}_op", m.name), Value::Disc, kernel_resolver());
            roles.push(SignalRole::ModOp(m.name.clone()));
            Some(s)
        } else {
            None
        };
        let o = sim.signal(format!("{}_out", m.name), Value::Disc);
        roles.push(SignalRole::ModOut(m.name.clone()));
        mod_in1.push(i1);
        mod_in2.push(i2);
        mod_op.push(op);
        mod_out.push(o);
    }

    let mut mem_win = Vec::new();
    let mut mem_waddr = Vec::new();
    let mut mem_word = Vec::new();
    for m in model.memories() {
        let win = sim.resolved_signal(format!("{}_win", m.name), Value::Disc, kernel_resolver());
        roles.push(SignalRole::MemWin(m.name.clone()));
        let waddr =
            sim.resolved_signal(format!("{}_waddr", m.name), Value::Disc, kernel_resolver());
        roles.push(SignalRole::MemWaddr(m.name.clone()));
        let mut words = Vec::with_capacity(m.len as usize);
        for i in 0..m.len {
            let w = sim.signal(m.word_name(i), m.init);
            roles.push(SignalRole::MemWord {
                mem: m.name.clone(),
                index: i,
            });
            words.push(w);
        }
        mem_win.push(win);
        mem_waddr.push(waddr);
        mem_word.push(words);
    }

    // Processes: controller, registers, modules, memories, transfers.
    sim.process(
        "CONTROL",
        &[cs, ph],
        Controller::new(model.cs_max(), cs, ph),
    );
    for (idx, r) in model.registers().iter().enumerate() {
        sim.process(
            format!("{}_proc", r.name),
            &[reg_out[idx]],
            Reg::new(ph, reg_in[idx], reg_out[idx]),
        );
    }
    for (idx, m) in model.modules().iter().enumerate() {
        sim.process(
            format!("{}_proc", m.name),
            &[mod_out[idx]],
            ModuleProc::new(
                ph,
                mod_in1[idx],
                mod_in2[idx],
                mod_op[idx],
                mod_out[idx],
                m.ops.clone(),
                m.timing,
            ),
        );
    }

    for (idx, m) in model.memories().iter().enumerate() {
        sim.process(
            format!("{}_proc", m.name),
            &mem_word[idx],
            MemCommit::new(ph, mem_win[idx], mem_waddr[idx], mem_word[idx].clone()),
        );
    }

    let layout = SignalLayout {
        cs,
        ph,
        reg_in,
        reg_out,
        bus,
        mod_in1,
        mod_in2,
        mod_op,
        mod_out,
        mem_win,
        mem_waddr,
        mem_word,
        roles,
    };

    for tuple in model.tuples() {
        for spec in tuple.expand_in(model) {
            let src = match &spec.src {
                Endpoint::ConstOp(op) => {
                    let mid = model
                        .module_by_name(&tuple.module)
                        .expect("validated tuple references known module");
                    let idx = model.modules()[mid.0 as usize]
                        .op_index(*op)
                        .expect("validated tuple selects supported op");
                    TransSource::Const(Value::Num(idx as i64))
                }
                Endpoint::ConstVal(v) => TransSource::Const(Value::Num(*v)),
                Endpoint::MemWord {
                    mem,
                    addr: MemAddr::Reg(r),
                } => {
                    let mid = model
                        .memory_by_name(mem)
                        .expect("validated tuple references known memory");
                    let addr = model
                        .register_by_name(r)
                        .expect("validated tuple addresses via known register");
                    TransSource::MemRead {
                        words: layout.mem_word[mid.0 as usize].clone(),
                        addr: layout.reg_out[addr.0 as usize],
                    }
                }
                other => TransSource::Signal(
                    layout
                        .signal_of(model, other)
                        .expect("validated tuple references known resources"),
                ),
            };
            let dst = layout
                .signal_of(model, &spec.dst)
                .expect("validated tuple references known resources");
            let guard = spec
                .guard
                .as_ref()
                .map(|g| resolve_guard(model, &layout, g));
            sim.process(
                spec.instance_name(),
                &[dst],
                Trans::new(
                    spec.step,
                    spec.phase,
                    cs,
                    ph,
                    src,
                    dst,
                    options.faithful_trans_wakeups,
                )
                .with_guard(guard),
            );
        }
    }

    (sim, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;

    #[test]
    fn fig1_elaborates_with_expected_inventory() {
        let model = fig1_model(3, 4);
        let (sim, layout) = elaborate(&model, ElaborateOptions::default());
        // Signals: CS, PH, 2 regs x 2 ports, 2 buses, module 3 ports
        // (single-op: no op port).
        assert_eq!(sim.signal_count(), 2 + 4 + 2 + 3);
        assert_eq!(layout.roles.len(), sim.signal_count());
        // Processes: controller + 2 regs + 1 module + 6 transfers.
        assert_eq!(sim.process_count(), 1 + 2 + 1 + 6);
        assert!(layout.mod_op[0].is_none());
    }

    #[test]
    fn roles_track_signals() {
        let model = fig1_model(1, 2);
        let (_sim, layout) = elaborate(&model, ElaborateOptions::default());
        assert_eq!(layout.role(layout.cs), &SignalRole::ControlStep);
        assert_eq!(
            layout.role(layout.reg_out[0]),
            &SignalRole::RegOut("R1".into())
        );
        assert_eq!(layout.role(layout.bus[1]), &SignalRole::Bus("B2".into()));
    }
}
