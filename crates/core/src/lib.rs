//! # clockless-core — register transfer level models without clocks
//!
//! This crate implements the contribution of *"Register Transfer Level
//! VHDL Models without Clocks"* (Matthias Mutz, DATE 1998): an executable
//! register-transfer modeling style whose timing is expressed in **control
//! steps** and **phases** advanced purely in delta time — no clock
//! signals, no physical delays.
//!
//! ## The model
//!
//! A model ([`RtModel`]) consists of registers, buses and functional
//! modules plus **register transfers**: 9-tuples like
//! `(R1,B1,R2,B2,5,ADD,6,B1,R1)` stating *which values move over which
//! buses at which control step*. Each control step runs through six
//! phases (`ra rb cm wa wb cr`, one delta cycle each — paper Fig. 2);
//! buses and ports are resolved signals whose resolution function turns
//! simultaneous drives into an observable `ILLEGAL` value, pinpointing
//! resource conflicts to an exact step and phase.
//!
//! ## Quick start
//!
//! The paper's Fig. 1 example — `R1 := R1 + R2` scheduled at steps 5/6:
//!
//! ```
//! use clockless_core::prelude::*;
//!
//! let mut model = RtModel::new("example", 7);
//! model.add_register_init("R1", Value::Num(3))?;
//! model.add_register_init("R2", Value::Num(4))?;
//! model.add_bus("B1")?;
//! model.add_bus("B2")?;
//! model.add_module(ModuleDecl::single(
//!     "ADD",
//!     Op::Add,
//!     ModuleTiming::Pipelined { latency: 1 },
//! ))?;
//! model.add_transfer(
//!     TransferTuple::new(5, "ADD")
//!         .src_a("R1", "B1")
//!         .src_b("R2", "B2")
//!         .write(6, "B1", "R1"),
//! )?;
//!
//! let mut sim = RtSimulation::new(&model)?;
//! let summary = sim.run_to_completion()?;
//! assert_eq!(summary.register("R1"), Some(Value::Num(7)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Module map
//!
//! * [`value`] — the `DISC`/`ILLEGAL`/number value domain and the
//!   resolution function (§2.3).
//! * [`phase`] — control steps and the six-phase scheme (§2.2, Fig. 2).
//! * [`op`] — module operations and their operand semantics (§2.6, §3).
//! * [`resource`] — register/bus/module declarations (§2.1).
//! * [`tuples`] — 9-tuple transfers and their process expansion (§2.4, §2.7).
//! * [`model`] — the validated model builder (§2.7).
//! * [`processes`] — controller/transfer/register/module processes on the
//!   simulation kernel (§2.2–2.6).
//! * [`mod@elaborate`], [`mod@run`] — instantiation and execution.
//! * [`plan`] — lowering to a compiled phase-schedule IR with a static
//!   conflict pre-pass (the six-phase scheme makes the schedule static).
//! * [`opt`] — the optimizing plan compiler: fuses the per-slot action
//!   tables into one specialized micro-op stream (`-O` pipeline) with
//!   byte-identical observables at every level.
//! * [`backend`] — the pluggable execution-engine layer: the interpreted
//!   delta kernel and the compiled plan walker behind one trait, with a
//!   byte-identical observable-output contract.
//! * [`check`] — value-checking programs (golden-run monitors and mined
//!   functional invariants) evaluated identically by both engines.
//! * [`diag`] — conflict localization (§2.7).
//! * [`json`] — shared hand-rolled JSON helpers (escaping, `SimStats`
//!   counters, the deterministic single-run report).
//! * [`text`] — a declarative text format standing in for the VHDL source.
//! * [`mod@transcript`] — phase-by-phase value tables (terminal waveforms).
//! * [`vhdl`] — emission of the model as VHDL source in the paper's own
//!   subset (package, component entities, §2.7 architecture).
//! * [`vhdl_parse`] — the inverse: parsing §2.7-style architectures back
//!   into resources and transfer processes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod check;
pub mod diag;
pub mod elaborate;
pub mod json;
pub mod model;
pub mod op;
pub mod opt;
pub mod phase;
pub mod plan;
pub mod processes;
pub mod resource;
pub mod run;
pub mod stats;
pub mod text;
pub mod transcript;
pub mod tuples;
pub mod value;
pub mod vhdl;
pub mod vhdl_parse;

pub use backend::{
    Backend, BatchOutcome, CompiledBackend, ExecBackend, ExecOptions, ExecOutcome,
    InterpretedBackend, OptConfig, OptLevel, ParseBackendError, ParseOptLevelError,
};
pub use check::{
    check_signals, execute_checked, record_table, CheckEval, CheckProgram, CheckReport,
    CheckSignal, CheckedError, Invariant, InvariantViolation, MonitorTable, MonitorViolation,
    SignalKind,
};
pub use diag::{Conflict, ConflictReport, ConflictSite};
pub use elaborate::{elaborate, ElaborateOptions, SignalLayout, SignalRole};
pub use model::{fig1_model, ModelError, RtModel};
pub use op::{Arity, Op};
pub use opt::OptPlan;
pub use phase::{Phase, PhaseTime, Step, PHASES_PER_STEP};
pub use plan::{Action, ExecPlan, PlanChecks, PlanDelta, Source, StaticConflict};
pub use resource::{
    ArrayDecl, BusDecl, BusId, MemoryDecl, MemoryId, ModuleDecl, ModuleId, ModuleTiming,
    RegisterDecl, RegisterId,
};
pub use run::{RegisterCommit, RtSimulation, RunSummary};
pub use stats::{model_stats, ModelStats, RunStatsReport};
pub use transcript::{transcript, TranscriptError};
pub use tuples::{
    CmpOp, Endpoint, Guard, GuardClause, GuardOperand, MemAddr, OperandRoute, ParseGuardError,
    TransferSpec, TransferTuple, WriteRoute,
};
pub use value::{resolve, Value};
pub use vhdl::{emit_vhdl, EmitVhdlError};
pub use vhdl_parse::{parse_vhdl, ParseVhdlError, ParsedDesign};

/// Convenient glob import for model builders.
pub mod prelude {
    pub use crate::backend::{Backend, ExecBackend, ExecOptions, ExecOutcome};
    pub use crate::diag::{Conflict, ConflictReport, ConflictSite};
    pub use crate::elaborate::ElaborateOptions;
    pub use crate::model::{fig1_model, ModelError, RtModel};
    pub use crate::op::Op;
    pub use crate::phase::{Phase, PhaseTime, Step, PHASES_PER_STEP};
    pub use crate::plan::ExecPlan;
    pub use crate::resource::{ModuleDecl, ModuleTiming};
    pub use crate::run::{RegisterCommit, RtSimulation, RunSummary};
    pub use crate::tuples::TransferTuple;
    pub use crate::value::Value;
}
