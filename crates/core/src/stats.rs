//! Model statistics: resource utilization of a schedule.
//!
//! "At this abstract level of timing resource conflicts can be detected"
//! (§2.1) — and, short of conflicts, resource *pressure* can be measured:
//! how many transfers each step carries, how hot each bus and module
//! runs. These are the numbers a designer iterating on a schedule (or an
//! allocator judging its own output) wants to see.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

use clockless_kernel::SimStats;

use crate::model::RtModel;
use crate::phase::Step;
use crate::tuples::Endpoint;

/// Utilization statistics for a model's schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// Total control steps (`CS_MAX`).
    pub steps: Step,
    /// Transfer tuples.
    pub tuples: usize,
    /// Transfer-process instances after expansion.
    pub processes: usize,
    /// Steps with no activity at all.
    pub idle_steps: usize,
    /// The busiest step and its transfer-process count.
    pub peak: (Step, usize),
    /// Per-bus number of carrying steps (a bus "carries" in a step when a
    /// transfer asserts onto it).
    pub bus_busy_steps: Vec<(String, usize)>,
    /// Per-module number of initiations.
    pub module_initiations: Vec<(String, usize)>,
}

impl ModelStats {
    /// Fraction of steps with at least one active transfer process.
    pub fn occupancy(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        1.0 - self.idle_steps as f64 / self.steps as f64
    }
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} steps, {} tuples, {} transfer processes, occupancy {:.0}% \
             (peak {} processes in step {})",
            self.steps,
            self.tuples,
            self.processes,
            self.occupancy() * 100.0,
            self.peak.1,
            self.peak.0
        )?;
        writeln!(f, "bus utilization (carrying steps):")?;
        for (name, n) in &self.bus_busy_steps {
            writeln!(f, "  {name:<12} {n}")?;
        }
        writeln!(f, "module initiations:")?;
        for (name, n) in &self.module_initiations {
            writeln!(f, "  {name:<12} {n}")?;
        }
        Ok(())
    }
}

/// Computes utilization statistics for a model.
pub fn model_stats(model: &RtModel) -> ModelStats {
    let mut per_step: HashMap<Step, usize> = HashMap::new();
    let mut bus_steps: HashMap<String, Vec<Step>> = HashMap::new();
    let mut initiations: HashMap<String, usize> = HashMap::new();
    let mut processes = 0usize;

    for tuple in model.tuples() {
        *initiations.entry(tuple.module.clone()).or_insert(0) += 1;
        for spec in tuple.expand() {
            processes += 1;
            *per_step.entry(spec.step).or_insert(0) += 1;
            if let Endpoint::Bus(b) = &spec.dst {
                bus_steps.entry(b.clone()).or_default().push(spec.step);
            }
        }
    }

    let idle_steps = (1..=model.cs_max())
        .filter(|s| !per_step.contains_key(s))
        .count();
    let peak = per_step
        .iter()
        .max_by_key(|(step, n)| (**n, std::cmp::Reverse(**step)))
        .map(|(s, n)| (*s, *n))
        .unwrap_or((0, 0));

    let mut bus_busy_steps: Vec<(String, usize)> = model
        .buses()
        .iter()
        .map(|b| {
            let mut steps = bus_steps.remove(&b.name).unwrap_or_default();
            steps.sort_unstable();
            steps.dedup();
            (b.name.clone(), steps.len())
        })
        .collect();
    bus_busy_steps.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut module_initiations: Vec<(String, usize)> = model
        .modules()
        .iter()
        .map(|m| {
            (
                m.name.clone(),
                initiations.get(&m.name).copied().unwrap_or(0),
            )
        })
        .collect();
    module_initiations.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    ModelStats {
        steps: model.cs_max(),
        tuples: model.tuples().len(),
        processes,
        idle_steps,
        peak,
        bus_busy_steps,
        module_initiations,
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A machine-readable report combining schedule utilization with the
/// kernel counters of a completed run — the payload behind
/// `clockless stats --json`.
///
/// Rendered by hand (the workspace carries no serialization crates so
/// tier-1 builds offline); the format is stable, flat JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStatsReport {
    /// The model's name.
    pub model: String,
    /// Static schedule utilization.
    pub schedule: ModelStats,
    /// Kernel counters after running to quiescence.
    pub kernel: SimStats,
    /// Per-process `(name, resumptions)` tallies, elaboration order.
    pub activations: Vec<(String, u64)>,
}

impl RunStatsReport {
    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"model\": \"{}\",", json_escape(&self.model));
        let s = &self.schedule;
        let _ = writeln!(
            out,
            "  \"schedule\": {{\"steps\": {}, \"tuples\": {}, \"transfer_processes\": {}, \
             \"idle_steps\": {}, \"occupancy\": {:.4}, \"peak_step\": {}, \"peak_processes\": {}}},",
            s.steps,
            s.tuples,
            s.processes,
            s.idle_steps,
            s.occupancy(),
            s.peak.0,
            s.peak.1
        );
        let k = &self.kernel;
        let _ = writeln!(
            out,
            "  \"kernel\": {{\"delta_cycles\": {}, \"process_activations\": {}, \"events\": {}, \
             \"driver_updates\": {}, \"time_advances\": {}, \"wake_filter_hits\": {}, \
             \"wake_filter_misses\": {}, \"peak_runnable\": {}, \"peak_pending_updates\": {}, \
             \"injected_faults\": {}, \"retries\": {}}},",
            k.delta_cycles,
            k.process_activations,
            k.events,
            k.driver_updates,
            k.time_advances,
            k.wake_filter_hits,
            k.wake_filter_misses,
            k.peak_runnable,
            k.peak_pending_updates,
            k.injected_faults,
            k.retries
        );
        out.push_str("  \"process_activations\": [\n");
        for (i, (name, n)) in self.activations.iter().enumerate() {
            let comma = if i + 1 == self.activations.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    {{\"process\": \"{}\", \"activations\": {}}}{}",
                json_escape(name),
                n,
                comma
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;

    #[test]
    fn fig1_statistics() {
        let s = model_stats(&fig1_model(1, 2));
        assert_eq!(s.steps, 7);
        assert_eq!(s.tuples, 1);
        assert_eq!(s.processes, 6);
        // Activity only in steps 5 and 6.
        assert_eq!(s.idle_steps, 5);
        assert_eq!(s.peak, (5, 4));
        assert!((s.occupancy() - 2.0 / 7.0).abs() < 1e-9);
        // B1 carries in steps 5 and 6; B2 only in step 5.
        assert_eq!(
            s.bus_busy_steps,
            vec![("B1".to_string(), 2), ("B2".to_string(), 1)]
        );
        assert_eq!(s.module_initiations, vec![("ADD".to_string(), 1)]);
    }

    #[test]
    fn empty_model_statistics() {
        let s = model_stats(&RtModel::new("empty", 4));
        assert_eq!(s.processes, 0);
        assert_eq!(s.idle_steps, 4);
        assert_eq!(s.occupancy(), 0.0);
        assert_eq!(s.peak, (0, 0));
    }

    #[test]
    fn display_renders_tables() {
        let text = model_stats(&fig1_model(1, 2)).to_string();
        assert!(text.contains("occupancy 29%"));
        assert!(text.contains("B1"));
        assert!(text.contains("ADD"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn zeroed_kernel_counters_serialize_explicitly() {
        // Every kernel counter must appear with an explicit `0` — a
        // consumer diffing reports across backends or kernel versions
        // relies on the key set being independent of the values.
        let report = RunStatsReport {
            model: "idle".to_string(),
            schedule: model_stats(&RtModel::new("idle", 1)),
            kernel: SimStats::default(),
            activations: Vec::new(),
        };
        let json = report.to_json();
        for key in [
            "delta_cycles",
            "process_activations",
            "events",
            "driver_updates",
            "time_advances",
            "wake_filter_hits",
            "wake_filter_misses",
            "peak_runnable",
            "peak_pending_updates",
            "injected_faults",
            "retries",
        ] {
            assert!(
                json.contains(&format!("\"{key}\": 0")),
                "missing zeroed counter {key} in {json}"
            );
        }
    }

    #[test]
    fn run_report_renders_json() {
        let mut sim = crate::run::RtSimulation::new(&fig1_model(3, 4)).unwrap();
        sim.run_to_completion().unwrap();
        let json = sim.stats_report().to_json();
        assert!(json.contains("\"model\": \"fig1_example\""));
        assert!(json.contains("\"delta_cycles\": 43"));
        assert!(json.contains("\"wake_filter_hits\""));
        assert!(json.contains("\"peak_runnable\""));
        assert!(json.contains("\"process\": \"CONTROL\""));
        // Every activation is attributed to exactly one process.
        let total: u64 = sim.activation_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(total, sim.stats().process_activations);
    }
}
