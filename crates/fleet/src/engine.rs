//! The parallel batch engine: a thin, deterministic caller of the
//! generic job-queue executor in [`crate::executor`].
//!
//! The design follows the shape Strauch's *Deriving AOC C-Models … for
//! Single- or Multi-Threaded Execution* derives for RT-level simulation:
//! jobs are fully independent simulation units, so the engine needs no
//! synchronization beyond the queue handing out work and the emission
//! channel carrying results back. Each worker elaborates and runs its
//! jobs on private kernel instances — the kernel has no shared mutable
//! state (enforced by `#![forbid(unsafe_code)]` plus the cross-thread
//! isolation test in `clockless-kernel`) — so the engine is
//! **deterministic by construction**: emissions arrive in completion
//! order, are reordered by ticket into spec order, and are bit-identical
//! for any worker count.
//!
//! Fault tolerance is layered on top of that determinism rather than
//! against it. Every job runs behind the executor's
//! [`std::panic::catch_unwind`] fence, failures are retried up to a
//! configured bound and then **quarantined** as [`JobOutcome::Failed`]
//! rows instead of aborting the batch, and the shared queue recovers
//! from lock poisoning (a panicking peer cannot take it down). Budgets —
//! a delta-cycle cap and a wall-clock deadline — turn runaway jobs into
//! classified failures. The legacy fail-fast behaviour remains available
//! via [`FleetConfig::fail_fast`].

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use clockless_core::{Backend, CheckProgram, OptLevel};

use crate::executor::{execute_job, Emission, JobExecutor, ResolvedJob, ThreadPool};
use crate::report::{FailureKind, FleetReport, JobFailure, JobOutcome};
use crate::spec::{BatchSpec, FleetError};

/// Execution policy for a batch: failure handling and budgets.
///
/// The default is the fault-tolerant mode: keep going past failures
/// (quarantining them), no retries, no budgets beyond the kernel's own
/// runaway delta limit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetConfig {
    /// Abort the batch on the first failure (lowest spec index wins, so
    /// even the error is deterministic) instead of quarantining it.
    pub fail_fast: bool,
    /// How many times a failing job is re-executed before quarantine.
    /// Build failures are never retried — re-parsing the same text is
    /// deterministic.
    pub max_retries: u32,
    /// Delta-cycle budget per job. When a job also carries its own
    /// `budget` in the spec, the smaller of the two wins. Exhausting it
    /// classifies the job as [`FailureKind::DeltaBudget`].
    pub delta_budget: Option<u64>,
    /// Wall-clock budget per job attempt. Exhausting it classifies the
    /// job as [`FailureKind::WallBudget`].
    pub wall_budget: Option<Duration>,
    /// Execution backend for every job (the CLI's `--backend` flag). When
    /// set it overrides per-job `backend` spec options; `None` lets each
    /// job pick its own, defaulting to [`Backend::Interpreted`]. Both
    /// engines produce byte-identical reports — the deterministic JSON of
    /// a batch does not depend on this choice.
    pub backend: Option<Backend>,
    /// Value-checking program evaluated alongside every job (golden
    /// monitors and/or mined invariants). The verdict lands in
    /// [`JobResult::check`](crate::report::JobResult::check) for callers
    /// such as fault campaigns; it is **not** part of the fleet's
    /// deterministic JSON, which stays byte-identical with or without
    /// checking. Shared by `Arc` — workers read it concurrently.
    pub check: Option<Arc<CheckProgram>>,
    /// Optimization level for compiled-backend jobs (the CLI's `--opt`
    /// flag; ignored by the interpreter). Every level produces
    /// byte-identical reports — like [`FleetConfig::backend`], this
    /// choice never leaks into the deterministic JSON.
    pub opt: OptLevel,
}

/// Runs every job of `spec` with the default fault-tolerant
/// [`FleetConfig`] (keep going, no retries, no budgets).
///
/// Failed jobs are quarantined as [`JobOutcome::Failed`] rows; the batch
/// itself only errors on an empty spec. See [`run_batch_with`] for the
/// configurable variant (including the legacy fail-fast behaviour).
///
/// # Errors
///
/// * [`FleetError::EmptyBatch`] for a spec with no jobs.
///
/// # Examples
///
/// ```
/// use clockless_fleet::{run_batch, BatchSpec, HlsWorkload, JobSource, JobSpec};
///
/// let spec = BatchSpec {
///     jobs: vec![
///         JobSpec::new("fir", JobSource::Hls(HlsWorkload::Fir { taps: 4 })),
///         JobSpec::new("poly", JobSource::Hls(HlsWorkload::Horner { degree: 3 })),
///     ],
/// };
/// let one = run_batch(&spec, 1)?;
/// let four = run_batch(&spec, 4)?;
/// // Bit-identical and identically ordered regardless of worker count.
/// assert_eq!(one.to_json(false), four.to_json(false));
/// # Ok::<(), clockless_fleet::FleetError>(())
/// ```
pub fn run_batch(spec: &BatchSpec, workers: usize) -> Result<FleetReport, FleetError> {
    run_batch_with(spec, workers, &FleetConfig::default())
}

/// Runs every job of `spec` on a pool of `workers` threads under the
/// given [`FleetConfig`] and aggregates the results.
///
/// Jobs are resolved to models up front (sequentially — parse errors
/// carry clean line/job attribution), then submitted to a
/// [`ThreadPool`] executor under their spec
/// index as the ticket. Emissions arrive in completion order and are
/// reordered by ticket, so the report is identical at any worker count
/// apart from the machine-local wall-clock fields. Passing
/// `workers == 0` or `1` runs the batch on a single worker.
///
/// In the default keep-going mode a failing job — build error, kernel
/// error, panic, or exhausted budget — is retried up to
/// `config.max_retries` times (builds excepted) and then quarantined,
/// while every other job completes normally. `JobResult::stats.retries`
/// records the re-executions a flaky-but-eventually-green job consumed.
///
/// # Errors
///
/// * [`FleetError::EmptyBatch`] for a spec with no jobs.
/// * With `config.fail_fast`: the failure of the failing job with the
///   lowest spec index, translated per kind — [`FleetError::Io`] /
///   [`FleetError::Build`] for materialization failures,
///   [`FleetError::Run`], [`FleetError::Panicked`], or
///   [`FleetError::Budget`] for execution failures.
pub fn run_batch_with(
    spec: &BatchSpec,
    workers: usize,
    config: &FleetConfig,
) -> Result<FleetReport, FleetError> {
    if spec.jobs.is_empty() {
        return Err(FleetError::EmptyBatch);
    }
    let mut resolved = Vec::with_capacity(spec.jobs.len());
    for j in &spec.jobs {
        let job = ResolvedJob::from_spec(j, config);
        if config.fail_fast {
            // Preserve the legacy contract: resolution errors (Io/Build,
            // with line/job attribution) abort before anything runs.
            if let Err(e) = &job.model {
                return Err(e.clone());
            }
        }
        resolved.push(job);
    }

    let job_count = resolved.len();
    let worker_count = workers.max(1).min(job_count);
    let t0 = Instant::now();
    let (sink, emissions) = mpsc::channel();
    let pool: ThreadPool<JobOutcome> = ThreadPool::new(worker_count, sink, |_, msg| {
        // Belt and braces: `execute_job` fences panics itself, so this
        // only fires if the retry loop's own bookkeeping panics.
        JobOutcome::Failed(JobFailure {
            name: String::new(),
            kind: FailureKind::Panicked,
            error: msg,
            retries: 0,
            stats: clockless_kernel::SimStats::default(),
        })
    });
    for (i, job) in resolved.into_iter().enumerate() {
        let cfg = config.clone();
        pool.submit(i as u64, Box::new(move || execute_job(&job, &cfg)));
    }

    // Drain incrementally: collect exactly one emission per submitted
    // job, then reorder by ticket into spec order.
    let mut slots: Vec<Option<JobOutcome>> = (0..job_count).map(|_| None).collect();
    for Emission { ticket, payload } in emissions.iter().take(job_count) {
        slots[ticket as usize] = Some(payload);
    }
    pool.shutdown();
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let jobs: Vec<JobOutcome> = slots
        .into_iter()
        .map(|s| s.expect("every submitted job emits exactly once"))
        .collect();

    if config.fail_fast {
        // Deterministic even under parallel execution: the *lowest-index*
        // failure is reported, whatever order the workers hit them in.
        if let Some(q) = jobs.iter().find_map(|j| j.failure()) {
            return Err(failure_to_error(q));
        }
    }

    let mut totals = clockless_kernel::SimStats::default();
    for j in &jobs {
        match j {
            JobOutcome::Ok(r) => totals.merge(&r.stats),
            JobOutcome::Failed(q) => totals.merge(&q.stats),
        }
    }
    Ok(FleetReport {
        jobs,
        totals,
        workers: worker_count,
        elapsed_ns,
    })
}

/// Translates a quarantined failure into the legacy fail-fast error.
fn failure_to_error(q: &JobFailure) -> FleetError {
    let job = q.name.clone();
    let msg = q.error.clone();
    match q.kind {
        FailureKind::Build => FleetError::Build { job, msg },
        FailureKind::Run => FleetError::Run { job, msg },
        FailureKind::Panicked => FleetError::Panicked { job, msg },
        FailureKind::DeltaBudget | FailureKind::WallBudget => FleetError::Budget { job, msg },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChaosProbe, HlsWorkload, JobSource, JobSpec};
    use clockless_core::model::fig1_model;
    use clockless_core::Value;

    fn mixed_spec() -> BatchSpec {
        let mut jobs = vec![
            JobSpec::new("fig1", JobSource::Model(Box::new(fig1_model(3, 4)))),
            JobSpec::new("fir", JobSource::Hls(HlsWorkload::Fir { taps: 6 })),
            JobSpec::new(
                "dag",
                JobSource::Hls(HlsWorkload::Random {
                    seed: 7,
                    nodes: 18,
                    inputs: 4,
                }),
            ),
        ];
        let mut stim = JobSpec::new("fig1_stim", JobSource::Model(Box::new(fig1_model(3, 4))));
        stim.overrides = vec![("R2".into(), 39)];
        jobs.push(stim);
        BatchSpec { jobs }
    }

    /// A batch mixing clean jobs with every failure mode the engine
    /// quarantines: a panicking chaos probe, a delta-budget blowout, and
    /// a build failure.
    fn hostile_spec() -> BatchSpec {
        let mut tight = JobSpec::new("tight", JobSource::Model(Box::new(fig1_model(3, 4))));
        tight.delta_budget = Some(10);
        BatchSpec {
            jobs: vec![
                JobSpec::new("clean_a", JobSource::Model(Box::new(fig1_model(3, 4)))),
                JobSpec::new("boom", JobSource::Chaos(ChaosProbe::Panic)),
                tight,
                JobSpec::new("broken", JobSource::RtlText("not a model".into())),
                JobSpec::new("clean_b", JobSource::Hls(HlsWorkload::Fir { taps: 4 })),
            ],
        }
    }

    #[test]
    fn empty_batch_is_rejected() {
        assert_eq!(
            run_batch(&BatchSpec::default(), 2),
            Err(FleetError::EmptyBatch)
        );
    }

    #[test]
    fn results_keep_spec_order_and_values() {
        let report = run_batch(&mixed_spec(), 3).expect("runs");
        let names: Vec<&str> = report.jobs.iter().map(|j| j.name()).collect();
        assert_eq!(names, ["fig1", "fir", "dag", "fig1_stim"]);
        assert!(report.jobs.iter().all(|j| j.is_ok()));
        assert_eq!(
            report.job("fig1").unwrap().register("R1"),
            Some(Value::Num(7))
        );
        assert_eq!(
            report.job("fig1_stim").unwrap().register("R1"),
            Some(Value::Num(42))
        );
        assert_eq!(report.conflicted_jobs(), 0);
        // Totals are the sum of per-job counters.
        let deltas: u64 = report.results().map(|j| j.stats.delta_cycles).sum();
        assert_eq!(report.totals.delta_cycles, deltas);
    }

    #[test]
    fn one_worker_and_many_workers_agree_bit_for_bit() {
        let spec = mixed_spec();
        let one = run_batch(&spec, 1).expect("runs");
        for workers in [2, 4, 8, 64] {
            let many = run_batch(&spec, workers).expect("runs");
            assert_eq!(one.to_json(false), many.to_json(false), "{workers} workers");
            // Beyond JSON: the structured rows agree except wall time.
            for (a, b) in one.results().zip(many.results()) {
                let mut b = b.clone();
                b.wall_ns = a.wall_ns;
                assert_eq!(*a, b);
            }
        }
    }

    #[test]
    fn worker_count_caps_at_job_count() {
        let spec = BatchSpec {
            jobs: vec![JobSpec::new(
                "only",
                JobSource::Model(Box::new(fig1_model(1, 1))),
            )],
        };
        let report = run_batch(&spec, 16).expect("runs");
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn conflicted_jobs_are_reported_not_fatal() {
        let text = "model clash steps 4\nregister A init 1\nregister B init 2\nregister T\n\
                    bus X\nbus Y\nbus Z\nmodule CPA ops passa comb\nmodule CPB ops passa comb\n\
                    transfer (A,X,-,-,2,CPA,2,Y,T)\ntransfer (B,X,-,-,2,CPB,2,Z,T)\n";
        let spec = BatchSpec {
            jobs: vec![
                JobSpec::new("clean", JobSource::Model(Box::new(fig1_model(1, 1)))),
                JobSpec::new("clash", JobSource::RtlText(text.into())),
            ],
        };
        let report = run_batch(&spec, 2).expect("runs");
        assert_eq!(report.conflicted_jobs(), 1);
        assert!(report.job("clean").unwrap().conflicts.is_clean());
        let first = report
            .job("clash")
            .unwrap()
            .conflicts
            .first()
            .expect("conflict found");
        assert_eq!(first.name, "X");
        let json = report.to_json(false);
        assert!(json.contains("ILLEGAL on bus `X`"), "{json}");
    }

    #[test]
    fn build_failures_are_quarantined_by_default() {
        let spec = BatchSpec {
            jobs: vec![JobSpec::new(
                "broken",
                JobSource::RtlText("not a model".into()),
            )],
        };
        let report = run_batch(&spec, 2).expect("keep-going survives builds");
        assert_eq!(report.failed_jobs(), 1);
        let q = report.quarantined().next().expect("quarantine row");
        assert_eq!(q.name, "broken");
        assert_eq!(q.kind, FailureKind::Build);
        assert_eq!(q.retries, 0, "builds are never retried");
    }

    #[test]
    fn fail_fast_restores_the_legacy_build_error() {
        let spec = BatchSpec {
            jobs: vec![JobSpec::new(
                "broken",
                JobSource::RtlText("not a model".into()),
            )],
        };
        let config = FleetConfig {
            fail_fast: true,
            ..FleetConfig::default()
        };
        let err = run_batch_with(&spec, 2, &config).expect_err("fails");
        assert!(matches!(err, FleetError::Build { ref job, .. } if job == "broken"));
    }

    #[test]
    fn hostile_batch_quarantines_failures_and_keeps_clean_results() {
        let report = run_batch(&hostile_spec(), 4).expect("keep-going survives");
        assert_eq!(report.jobs.len(), 5);
        assert_eq!(report.failed_jobs(), 3);
        // Clean jobs are intact with their real results.
        assert_eq!(
            report.job("clean_a").unwrap().register("R1"),
            Some(Value::Num(7))
        );
        assert!(report.job("clean_b").is_some());
        // Failures are classified, in spec order.
        let rows: Vec<(&str, FailureKind)> = report
            .quarantined()
            .map(|q| (q.name.as_str(), q.kind))
            .collect();
        assert_eq!(
            rows,
            [
                ("boom", FailureKind::Panicked),
                ("tight", FailureKind::DeltaBudget),
                ("broken", FailureKind::Build),
            ]
        );
        let boom = report.quarantined().next().unwrap();
        assert!(boom.error.contains("chaos probe"), "{}", boom.error);
    }

    #[test]
    fn hostile_batch_json_is_identical_across_worker_counts() {
        let spec = hostile_spec();
        let one = run_batch(&spec, 1).expect("runs");
        for workers in [2, 4, 8] {
            let many = run_batch(&spec, workers).expect("runs");
            assert_eq!(one.to_json(false), many.to_json(false), "{workers} workers");
        }
        let json = one.to_json(false);
        assert!(json.contains("\"quarantine\""), "{json}");
        assert!(json.contains("\"status\": \"panicked\""), "{json}");
        assert!(
            json.contains("\"status\": \"delta-budget-exceeded\""),
            "{json}"
        );
        assert!(json.contains("\"status\": \"build-failed\""), "{json}");
    }

    #[test]
    fn quarantined_budget_blowouts_still_count_in_totals() {
        let report = run_batch(&hostile_spec(), 1).expect("runs");
        let tight = report
            .quarantined()
            .find(|q| q.name == "tight")
            .expect("tight overflows");
        assert_eq!(tight.kind, FailureKind::DeltaBudget);
        // The failed job burned exactly its configured budget…
        assert_eq!(tight.stats.delta_cycles, 10);
        // …and the batch totals include it alongside the clean jobs.
        let ok: u64 = report.results().map(|j| j.stats.delta_cycles).sum();
        assert_eq!(report.totals.delta_cycles, ok + 10);
        // Non-budget failures contribute no phantom counters.
        let boom = report.quarantined().find(|q| q.name == "boom").unwrap();
        assert_eq!(boom.stats, clockless_kernel::SimStats::default());
    }

    #[test]
    fn retries_are_bounded_and_recorded() {
        let spec = BatchSpec {
            jobs: vec![JobSpec::new("boom", JobSource::Chaos(ChaosProbe::Panic))],
        };
        let config = FleetConfig {
            max_retries: 2,
            ..FleetConfig::default()
        };
        let report = run_batch_with(&spec, 1, &config).expect("quarantines");
        let q = report.quarantined().next().expect("quarantine row");
        assert_eq!(q.kind, FailureKind::Panicked);
        assert_eq!(q.retries, 2, "all retries consumed before quarantine");
        // Failed-job retries still show up in the merged totals.
        assert_eq!(report.totals.retries, 2);
    }

    #[test]
    fn successful_jobs_record_zero_retries() {
        let report = run_batch(&mixed_spec(), 2).expect("runs");
        for job in report.results() {
            assert_eq!(job.stats.retries, 0, "{}", job.name);
        }
        assert_eq!(report.totals.retries, 0);
    }

    #[test]
    fn fail_fast_reports_the_lowest_index_failure() {
        // Two failing jobs; whichever worker finishes first, the reported
        // error must be the lowest spec index ("boom", index 1).
        let spec = BatchSpec {
            jobs: vec![
                JobSpec::new("clean", JobSource::Model(Box::new(fig1_model(1, 1)))),
                JobSpec::new("boom", JobSource::Chaos(ChaosProbe::Panic)),
                JobSpec::new("boom_too", JobSource::Chaos(ChaosProbe::Panic)),
            ],
        };
        let config = FleetConfig {
            fail_fast: true,
            ..FleetConfig::default()
        };
        for workers in [1, 3] {
            let err = run_batch_with(&spec, workers, &config).expect_err("fails");
            assert!(
                matches!(err, FleetError::Panicked { ref job, .. } if job == "boom"),
                "{err}"
            );
        }
    }

    #[test]
    fn batch_delta_budget_takes_the_minimum_with_job_budgets() {
        // Batch budget 10 throttles even jobs without their own budget.
        let spec = BatchSpec {
            jobs: vec![JobSpec::new(
                "fig1",
                JobSource::Model(Box::new(fig1_model(3, 4))),
            )],
        };
        let config = FleetConfig {
            delta_budget: Some(10),
            ..FleetConfig::default()
        };
        let report = run_batch_with(&spec, 1, &config).expect("quarantines");
        let q = report.quarantined().next().expect("quarantine row");
        assert_eq!(q.kind, FailureKind::DeltaBudget);
        // A generous batch budget lets fig1 (43 deltas) finish.
        let config = FleetConfig {
            delta_budget: Some(1 + 6 * 7),
            ..FleetConfig::default()
        };
        let report = run_batch_with(&spec, 1, &config).expect("runs");
        assert_eq!(report.failed_jobs(), 0);
    }

    #[test]
    fn wall_budget_zero_classifies_as_wall_budget_exceeded() {
        let spec = BatchSpec {
            jobs: vec![JobSpec::new(
                "fig1",
                JobSource::Model(Box::new(fig1_model(3, 4))),
            )],
        };
        let config = FleetConfig {
            wall_budget: Some(Duration::ZERO),
            ..FleetConfig::default()
        };
        let report = run_batch_with(&spec, 1, &config).expect("quarantines");
        let q = report.quarantined().next().expect("quarantine row");
        assert_eq!(q.kind, FailureKind::WallBudget);
        assert!(q.error.contains("wall-clock budget"), "{}", q.error);
    }

    #[test]
    fn compiled_backend_reports_are_byte_identical_to_interpreted() {
        let spec = mixed_spec();
        let interp = run_batch(&spec, 2).expect("runs");
        let config = FleetConfig {
            backend: Some(Backend::Compiled),
            ..FleetConfig::default()
        };
        let compiled = run_batch_with(&spec, 2, &config).expect("runs");
        assert_eq!(interp.to_json(false), compiled.to_json(false));
    }

    #[test]
    fn quarantine_semantics_survive_the_compiled_backend() {
        // Panics, budget blowouts and build failures classify and render
        // identically whichever engine runs the jobs — including the
        // error text of the delta-budget diagnosis.
        let spec = hostile_spec();
        let interp = run_batch(&spec, 1).expect("runs");
        let config = FleetConfig {
            backend: Some(Backend::Compiled),
            ..FleetConfig::default()
        };
        let compiled = run_batch_with(&spec, 4, &config).expect("runs");
        assert_eq!(interp.to_json(false), compiled.to_json(false));
        assert_eq!(compiled.failed_jobs(), 3);
    }

    #[test]
    fn per_job_backend_options_are_honored_and_equivalent() {
        let mut fast = JobSpec::new("fig1", JobSource::Model(Box::new(fig1_model(3, 4))));
        fast.backend = Some(Backend::Compiled);
        let spec = BatchSpec { jobs: vec![fast] };
        let report = run_batch(&spec, 1).expect("runs");
        assert_eq!(
            report.job("fig1").unwrap().register("R1"),
            Some(Value::Num(7))
        );
        // A batch-wide backend overrides the per-job option; the
        // deterministic JSON is identical either way.
        let config = FleetConfig {
            backend: Some(Backend::Interpreted),
            ..FleetConfig::default()
        };
        let forced = run_batch_with(&spec, 1, &config).expect("runs");
        assert_eq!(report.to_json(false), forced.to_json(false));
    }
}
