#!/usr/bin/env bash
# Stress harness for `clockless serve`: one long-lived daemon on a Unix
# socket, hammered across many client connections with a mix of clean
# jobs, hostile batches (panicking chaos probes), and malformed garbage.
# Asserts the daemon survives it all, answers every request, keeps RSS
# bounded, and shuts down cleanly. Entirely offline.
#
# Usage: scripts/stress_serve.sh [rounds]   (default 20)
set -euo pipefail
cd "$(dirname "$0")/.."

ROUNDS="${1:-20}"
CLI=target/release/clockless
[ -x "$CLI" ] || cargo build --release -q
SOCK="$(mktemp -d)/stress.sock"

"$CLI" serve --socket "$SOCK" 2>/dev/null &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true; rm -rf "$(dirname "$SOCK")"' EXIT
for _ in $(seq 1 200); do [ -S "$SOCK" ] && break; sleep 0.05; done
[ -S "$SOCK" ] || { echo "FAIL: daemon never opened $SOCK"; exit 1; }

rss_kb() { awk '/VmRSS:/ {print $2}' "/proc/$DAEMON/status"; }
RSS_START="$(rss_kb)"

for round in $(seq 1 "$ROUNDS"); do
  # One connection per round: clean runs, a fault campaign, a hostile
  # fleet batch, malformed junk, an unknown op, and a stats probe.
  GOT="$({
    echo '{"id":1,"op":"run","path":"models/fig1.rtl"}'
    echo '{"id":2,"op":"run","path":"models/fig1.rtl","backend":"compiled"}'
    echo '{"id":3,"op":"faults","path":"models/fig1.rtl","seed":'"$round"'}'
    echo '{"id":4,"op":"fleet","path":"models/chaos.fleet","jobs":2}'
    echo 'this is not json'
    echo '{"id":6,"op":"frobnicate"}'
    echo '{"id":7,"op":"stats"}'
  } | "$CLI" client "$SOCK")"
  LINES="$(printf '%s\n' "$GOT" | grep -c .)"
  [ "$LINES" -eq 7 ] || { echo "FAIL: round $round got $LINES/7 responses"; exit 1; }
  printf '%s\n' "$GOT" | grep -q '"code":"bad-json"' \
    || { echo "FAIL: round $round missing bad-json envelope"; exit 1; }
  printf '%s\n' "$GOT" | grep -q '"code":"unknown-op"' \
    || { echo "FAIL: round $round missing unknown-op envelope"; exit 1; }
  kill -0 "$DAEMON" 2>/dev/null || { echo "FAIL: daemon died in round $round"; exit 1; }
done

RSS_END="$(rss_kb)"
# The plan cache is capped (LRU), so RSS must not grow without bound.
# Allow generous slack for allocator noise: 64 MiB over the baseline.
GROWTH=$((RSS_END - RSS_START))
[ "$GROWTH" -lt 65536 ] || { echo "FAIL: RSS grew ${GROWTH} kB over $ROUNDS rounds"; exit 1; }

STATS="$(echo '{"id":1,"op":"stats"}' | "$CLI" client "$SOCK" --payload)"
echo '{"id":1,"op":"shutdown"}' | "$CLI" client "$SOCK" >/dev/null
wait "$DAEMON" || { echo "FAIL: daemon exited non-zero"; exit 1; }
[ ! -e "$SOCK" ] || { echo "FAIL: socket file not cleaned up"; exit 1; }
trap 'rm -rf "$(dirname "$SOCK")"' EXIT

echo "stress_serve OK: $ROUNDS rounds, rss ${RSS_START}->${RSS_END} kB"
echo "final stats: $STATS"
