//! Property-based tests over the core data structures and invariants.

use std::collections::HashMap;

use clockless::core::prelude::*;
use clockless::core::{resolve, Endpoint, TransferTuple};
use clockless::hls::{random_dag, synthesize, ResourceClass, ResourceSet};
use clockless::verify::{concrete_check, roundtrip_check, verify_synthesis};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Disc),
        Just(Value::Illegal),
        any::<i64>().prop_map(Value::Num),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Min),
        Just(Op::Max),
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Shr),
        Just(Op::Shl),
        Just(Op::PassA),
        Just(Op::PassB),
        Just(Op::Neg),
        Just(Op::Abs),
        (0u8..32).prop_map(Op::MulFx),
    ]
}

proptest! {
    /// The resolution function is order-independent (any permutation of
    /// drivers resolves identically) — essential, since VHDL leaves the
    /// driver order unspecified.
    #[test]
    fn resolution_is_permutation_invariant(mut drivers in prop::collection::vec(arb_value(), 0..6), seed in any::<u64>()) {
        let original = resolve(&drivers);
        // Deterministic shuffle from the seed.
        let mut s = seed | 1;
        for i in (1..drivers.len()).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            drivers.swap(i, (s as usize) % (i + 1));
        }
        prop_assert_eq!(resolve(&drivers), original);
    }

    /// Resolution yields a number only when exactly one driver is a
    /// number and none is ILLEGAL.
    #[test]
    fn resolution_numeric_iff_unique_driver(drivers in prop::collection::vec(arb_value(), 0..6)) {
        let nums = drivers.iter().filter(|v| v.is_num()).count();
        let illegal = drivers.iter().any(|v| v.is_illegal());
        let r = resolve(&drivers);
        match (illegal, nums) {
            (true, _) => prop_assert_eq!(r, Value::Illegal),
            (false, 0) => prop_assert_eq!(r, Value::Disc),
            (false, 1) => prop_assert!(r.is_num()),
            (false, _) => prop_assert_eq!(r, Value::Illegal),
        }
    }

    /// Resolution is associative under nesting: resolving a sublist first
    /// and splicing the result in gives the same outcome. (This is what
    /// lets buses and ports be resolved independently.)
    #[test]
    fn resolution_nests(a in prop::collection::vec(arb_value(), 0..4), b in prop::collection::vec(arb_value(), 0..4)) {
        let flat: Vec<Value> = a.iter().chain(b.iter()).copied().collect();
        let nested = {
            let ra = resolve(&a);
            let mut v = vec![ra];
            v.extend(b.iter().copied());
            resolve(&v)
        };
        prop_assert_eq!(resolve(&flat), nested);
    }

    /// ILLEGAL is absorbing for every operation.
    #[test]
    fn illegal_absorbs(op in arb_op(), v in arb_value()) {
        prop_assert_eq!(op.apply(Value::Illegal, v), Value::Illegal);
        prop_assert_eq!(op.apply(v, Value::Illegal), Value::Illegal);
    }

    /// All-DISC operands always yield DISC ("no operation this step").
    #[test]
    fn disc_in_disc_out(op in arb_op()) {
        prop_assert_eq!(op.apply(Value::Disc, Value::Disc), Value::Disc);
    }

    /// Op mnemonics round-trip through parsing.
    #[test]
    fn op_mnemonic_roundtrip(op in arb_op()) {
        prop_assert_eq!(op.mnemonic().parse::<Op>().unwrap(), op);
    }

    /// Value encoding round-trips for non-negative payloads.
    #[test]
    fn value_encoding_roundtrip(n in 0i64..i64::MAX) {
        let v = Value::Num(n);
        prop_assert_eq!(Value::from_encoded(v.to_encoded().unwrap()), v);
    }

    /// Transfer tuples round-trip through the paper's textual notation.
    #[test]
    fn tuple_text_roundtrip(
        read_step in 1u32..50,
        latency in 0u32..3,
        has_b in any::<bool>(),
        has_write in any::<bool>(),
    ) {
        let mut t = TransferTuple::new(read_step, "M").src_a("Ra", "Ba");
        if has_b {
            t = t.src_b("Rb", "Bb");
        }
        if has_write {
            t = t.write(read_step + latency, "Bw", "Rw");
        }
        let text = t.to_string();
        prop_assert_eq!(text.parse::<TransferTuple>().unwrap(), t);
    }

    /// Expansion emits specs in strictly increasing phase order per step,
    /// and each sink is driven exactly once by the tuple.
    #[test]
    fn expansion_shape(read_step in 1u32..20, latency in 0u32..3) {
        let t = TransferTuple::new(read_step, "M")
            .src_a("Ra", "Ba")
            .src_b("Rb", "Bb")
            .write(read_step + latency, "Bw", "Rw");
        let specs = t.expand();
        prop_assert_eq!(specs.len(), 6);
        // Sinks are unique per (endpoint, step, phase).
        let mut sinks: Vec<(String, u32)> = specs
            .iter()
            .map(|s| (format!("{}", s.dst), s.step))
            .collect();
        sinks.sort();
        let before = sinks.len();
        sinks.dedup();
        // Bw and Ba may coincide as strings only if names equal — they
        // don't here.
        prop_assert_eq!(sinks.len(), before);
        // Reads at the read step, writes at the write step.
        for s in &specs {
            match &s.dst {
                Endpoint::Bus(b) if b == "Bw" => prop_assert_eq!(s.step, read_step + latency),
                Endpoint::Bus(_) => prop_assert_eq!(s.step, read_step),
                Endpoint::RegIn(_) => prop_assert_eq!(s.step, read_step + latency),
                _ => prop_assert_eq!(s.step, read_step),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flagship end-to-end property: any random DAG synthesized under
    /// random resource budgets simulates to the dataflow evaluator's
    /// values, passes the automatic prover, and its tuples round-trip
    /// through the §2.7 process semantics.
    #[test]
    fn synthesized_random_dags_are_correct(
        seed in any::<u64>(),
        nodes in 4usize..28,
        n_inputs in 1usize..5,
        muls in 1usize..3,
        alus in 1usize..3,
        input_vals in prop::collection::vec(-1000i64..1000, 5),
    ) {
        let g = random_dag(seed, nodes, n_inputs);
        let names: Vec<String> = (0..n_inputs).map(|i| format!("in{i}")).collect();
        let inputs: HashMap<&str, i64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), input_vals[i]))
            .collect();
        let resources = ResourceSet::new([
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, muls),
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub, Op::Min, Op::Max, Op::Xor],
                ModuleTiming::Pipelined { latency: 1 },
                alus,
            ),
        ]);
        let syn = synthesize(&g, &resources, &inputs).expect("synthesis succeeds");
        prop_assert!(concrete_check(&g, &syn, &inputs).expect("simulates"));
        let report = verify_synthesis(&g, &syn, 8).expect("verifier runs");
        prop_assert!(report.passed(), "{}", report);
        roundtrip_check(&syn.model).expect("roundtrip");
    }

    /// Symbolic simulation agrees with concrete simulation on random
    /// models (soundness of the abstract interpreter).
    #[test]
    fn symbolic_matches_concrete(r1 in -1000i64..1000, r2 in -1000i64..1000) {
        let model = fig1_model(r1, r2);
        let out = clockless::verify::symbolic_run(&model, &HashMap::new()).unwrap();
        let mut sim = RtSimulation::new(&model).unwrap();
        let summary = sim.run_to_completion().unwrap();
        let expected = summary.register("R1").unwrap().num().unwrap();
        prop_assert_eq!(&*out["R1"], &clockless::verify::Expr::Const(expected));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Source-level round trip: any synthesized model emits as the
    /// paper's VHDL subset and reads back identically.
    #[test]
    fn vhdl_roundtrip_on_random_models(
        seed in any::<u64>(),
        nodes in 3usize..16,
    ) {
        let g = random_dag(seed, nodes, 3);
        let names: Vec<String> = (0..3).map(|i| format!("in{i}")).collect();
        let inputs: HashMap<&str, i64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as i64 + 1))
            .collect();
        let resources = ResourceSet::new([
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 2),
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub, Op::Min, Op::Max],
                ModuleTiming::Pipelined { latency: 1 },
                2,
            ),
        ]);
        // Random DAGs may contain Xor (no VHDL expression in the subset):
        // skip those seeds.
        if g.nodes().iter().any(|n| n.op == Op::Xor) {
            return Ok(());
        }
        let syn = synthesize(&g, &resources, &inputs).expect("synthesis");
        let text = clockless::core::emit_vhdl(&syn.model).expect("emits");
        let back = clockless::verify::model_from_vhdl(&text).expect("imports");
        prop_assert_eq!(back.registers(), syn.model.registers());
        prop_assert_eq!(back.modules(), syn.model.modules());
        let mut a = back.tuples().to_vec();
        let mut b = syn.model.tuples().to_vec();
        let key = |t: &clockless::core::TransferTuple| (t.module.clone(), t.read_step);
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
    }

    /// The kernel is deterministic: identical models produce identical
    /// statistics and results on every run.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>(), nodes in 3usize..20) {
        let g = random_dag(seed, nodes, 3);
        let names: Vec<String> = (0..3).map(|i| format!("in{i}")).collect();
        let inputs: HashMap<&str, i64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as i64 * 3 - 1))
            .collect();
        let resources = ResourceSet::new([
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 1),
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub, Op::Min, Op::Max, Op::Xor],
                ModuleTiming::Pipelined { latency: 1 },
                1,
            ),
        ]);
        let syn = synthesize(&g, &resources, &inputs).expect("synthesis");
        let mut s1 = RtSimulation::new(&syn.model).expect("elaborates");
        let mut s2 = RtSimulation::new(&syn.model).expect("elaborates");
        let r1 = s1.run_to_completion().expect("runs");
        let r2 = s2.run_to_completion().expect("runs");
        prop_assert_eq!(r1.stats, r2.stats);
        prop_assert_eq!(r1.registers, r2.registers);
    }
}

// ---- Normalization soundness -------------------------------------------

/// A small random expression generator over three variables.
fn arb_expr() -> impl Strategy<Value = std::rc::Rc<clockless::verify::Expr>> {
    use clockless::verify::Expr;
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Expr::constant),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::var),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        (
            prop_oneof![
                Just(Op::Add),
                Just(Op::Sub),
                Just(Op::Mul),
                Just(Op::Min),
                Just(Op::Max),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| {
                clockless::verify::Expr::apply(op, vec![a, b]).expect("no illegal constants")
            })
    })
}

/// Recursively commutes every Add/Mul — an equivalence-preserving rewrite.
fn commuted(e: &std::rc::Rc<clockless::verify::Expr>) -> std::rc::Rc<clockless::verify::Expr> {
    use clockless::verify::Expr;
    match &**e {
        Expr::Apply(op, args) if args.len() == 2 => {
            let a = commuted(&args[0]);
            let b = commuted(&args[1]);
            let swapped = matches!(op, Op::Add | Op::Mul);
            let args = if swapped { vec![b, a] } else { vec![a, b] };
            Expr::apply(*op, args).expect("no illegal constants")
        }
        Expr::Apply(op, args) => {
            let args = args.iter().map(commuted).collect();
            Expr::apply(*op, args).expect("no illegal constants")
        }
        _ => e.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Commuting Add/Mul everywhere preserves the normal form — except
    /// inside opaque operations (Min/Max), where commuted *children*
    /// still normalize but a commuted opaque node itself may not compare
    /// equal; so the property is checked semantically as well.
    #[test]
    fn normalization_is_sound(e in arb_expr(), xs in prop::collection::vec(-100i64..100, 3)) {
        use clockless::verify::equivalent;
        let c = commuted(&e);
        let env: HashMap<String, i64> = ["x", "y", "z"]
            .iter()
            .zip(&xs)
            .map(|(n, v)| (n.to_string(), *v))
            .collect();
        // Semantic agreement always holds for the rewrite.
        let ev_e = e.eval(&env);
        let ev_c = c.eval(&env);
        prop_assert_eq!(ev_e.clone(), ev_c);
        // And if the prover says "equivalent", evaluation must agree —
        // soundness of the normal form.
        if equivalent(&e, &c) {
            prop_assert_eq!(ev_e, c.eval(&env));
        }
    }

    /// The ring fragment (no opaque ops) normalizes commutations away
    /// completely.
    #[test]
    fn ring_fragment_proves_commutativity(
        a in -20i64..20,
        b in -20i64..20,
        c in -20i64..20,
    ) {
        use clockless::verify::{equivalent, Expr};
        let x = Expr::var("x");
        let y = Expr::var("y");
        // (a·x + b·y)·(x + c) vs its fully commuted form.
        let e1 = Expr::apply(
            Op::Mul,
            vec![
                Expr::apply(
                    Op::Add,
                    vec![
                        Expr::apply(Op::Mul, vec![Expr::constant(a), x.clone()]).unwrap(),
                        Expr::apply(Op::Mul, vec![Expr::constant(b), y.clone()]).unwrap(),
                    ],
                )
                .unwrap(),
                Expr::apply(Op::Add, vec![x.clone(), Expr::constant(c)]).unwrap(),
            ],
        )
        .unwrap();
        let e2 = Expr::apply(
            Op::Mul,
            vec![
                Expr::apply(Op::Add, vec![Expr::constant(c), x.clone()]).unwrap(),
                Expr::apply(
                    Op::Add,
                    vec![
                        Expr::apply(Op::Mul, vec![y, Expr::constant(b)]).unwrap(),
                        Expr::apply(Op::Mul, vec![x, Expr::constant(a)]).unwrap(),
                    ],
                )
                .unwrap(),
            ],
        )
        .unwrap();
        prop_assert!(equivalent(&e1, &e2));
    }

    /// Transcript rendering and model statistics never fail on random
    /// synthesized models, and the statistics satisfy their invariants.
    #[test]
    fn transcript_and_stats_total_on_random_models(seed in any::<u64>(), nodes in 3usize..16) {
        let g = random_dag(seed, nodes, 3);
        let names: Vec<String> = (0..3).map(|i| format!("in{i}")).collect();
        let inputs: HashMap<&str, i64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as i64 + 1))
            .collect();
        let resources = ResourceSet::new([
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 2),
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub, Op::Min, Op::Max, Op::Xor],
                ModuleTiming::Pipelined { latency: 1 },
                2,
            ),
        ]);
        let syn = synthesize(&g, &resources, &inputs).expect("synthesis");
        let s = clockless::core::model_stats(&syn.model);
        prop_assert_eq!(s.tuples, syn.model.tuples().len());
        prop_assert!(s.occupancy() >= 0.0 && s.occupancy() <= 1.0);
        prop_assert!(s.peak.1 as u64 >= 1);
        let first_reg = syn.model.registers()[0].name.clone();
        let text = clockless::core::transcript(&syn.model, &[&first_reg]).expect("renders");
        prop_assert!(text.contains("step.ph"));
        // Lints: emitted schedules have no dataflow lints.
        let lints = clockless::verify::lint_model(&syn.model);
        prop_assert!(
            !lints.iter().any(|l| matches!(
                l,
                clockless::verify::Lint::DeadWrite { .. }
                    | clockless::verify::Lint::ReadOfUndefined { .. }
            )),
            "{:?}",
            lints
        );
    }
}
