//! Pluggable execution backends: one semantics, two engines.
//!
//! An [`ExecBackend`] turns an [`RtModel`] into its observable run output
//! — final registers, conflict diagnoses, kernel-compatible statistics,
//! commit log and waveform. Two engines implement the contract:
//!
//! * [`InterpretedBackend`] — the delta-cycle event kernel
//!   ([`RtSimulation`]): processes, sensitivity lists, wake filters. This
//!   is the faithful rendering of the paper's VHDL construction.
//! * [`CompiledBackend`] — the phase-schedule engine
//!   ([`ExecPlan`]): the model is lowered to dense
//!   per-`(step, phase)` action tables and walked in a fixed number of
//!   iterations with no event machinery at all, exploiting the paper's
//!   central observation that six-phase delta timing makes the schedule
//!   *static*.
//!
//! Both backends produce **byte-identical observable output** (registers,
//! conflicts with exact step and phase, trace/VCD, `SimStats`); the
//! differential obligation is enforced by `clockless-verify`'s
//! `backend_equiv` over the whole corpus.
//!
//! # Examples
//!
//! ```
//! use clockless_core::backend::{Backend, ExecOptions};
//! use clockless_core::model::fig1_model;
//! use clockless_core::value::Value;
//!
//! let model = fig1_model(3, 4);
//! let interp = Backend::Interpreted.execute(&model, &ExecOptions::traced())?;
//! let compiled = Backend::Compiled.execute(&model, &ExecOptions::traced())?;
//! assert_eq!(interp.summary.register("R1"), Some(Value::Num(7)));
//! assert_eq!(interp.summary.registers, compiled.summary.registers);
//! assert_eq!(interp.summary.stats, compiled.summary.stats);
//! assert_eq!(interp.vcd, compiled.vcd);
//! # Ok::<(), clockless_kernel::KernelError>(())
//! ```

use std::fmt;
use std::str::FromStr;
use std::time::Instant;

use clockless_kernel::{KernelError, SimStats};

use crate::diag::Conflict;
use crate::elaborate::ElaborateOptions;
use crate::model::RtModel;
use crate::plan::ExecPlan;
use crate::run::{RegisterCommit, RtSimulation, RunSummary};
use crate::value::Value;

/// Options for one backend execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Record the full waveform. Required for conflict localization, the
    /// commit log and VCD export; costs memory and time.
    pub trace: bool,
    /// Per-instant delta-cycle budget; `None` uses the kernel default
    /// (10^8). Exceeding it fails the run with
    /// [`KernelError::DeltaOverflow`].
    pub delta_limit: Option<u64>,
    /// Wall-clock deadline; passing it fails the run with
    /// [`KernelError::WallBudgetExceeded`]. Checked after every delta
    /// cycle by both backends.
    pub deadline: Option<Instant>,
}

impl ExecOptions {
    /// Options with tracing enabled.
    pub fn traced() -> ExecOptions {
        ExecOptions {
            trace: true,
            ..Default::default()
        }
    }
}

/// The complete observable output of one model execution.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Run summary: kernel statistics, final registers and (when traced)
    /// the conflict report.
    pub summary: RunSummary,
    /// The register-commit log (`None` when not traced).
    pub commits: Option<Vec<RegisterCommit>>,
    /// The waveform as a VCD document (`None` when not traced).
    pub vcd: Option<String>,
}

/// Per-column result of [`ExecPlan::execute_batch`]: exactly the
/// observables a fault-campaign classifier needs, without the solo
/// engines' trace/VCD machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Final register values, in declaration order.
    pub registers: Vec<(String, Value)>,
    /// The run's first `ILLEGAL` transition, localized like the traced
    /// engines' conflict report (`ConflictReport::first`).
    pub first_conflict: Option<Conflict>,
    /// The column's kernel counters — identical to the stats a solo run
    /// of the same mutant reports.
    pub stats: SimStats,
    /// The column's schedule exceeded the delta budget: nothing ran, and
    /// `stats` records only the exhausted budget as `delta_cycles`.
    pub overflowed: bool,
    /// Check verdict when the batch ran with value checkers
    /// ([`ExecPlan::execute_batch_checked`]); `None` on unchecked runs
    /// and on overflowed columns (which never execute).
    pub check: Option<crate::check::CheckReport>,
}

/// An execution engine for clock-free RT models.
///
/// Implementations must agree byte-for-byte on every field of
/// [`ExecOutcome`] for every valid model — the equivalence
/// `clockless-verify` checks differentially.
pub trait ExecBackend {
    /// Short lowercase name of the engine (`"interpreted"`,
    /// `"compiled"`).
    fn label(&self) -> &'static str;

    /// Runs `model` to quiescence and harvests the observable output.
    ///
    /// # Errors
    ///
    /// [`KernelError::DeltaOverflow`] when the delta budget is exceeded,
    /// [`KernelError::WallBudgetExceeded`] when the wall deadline passes,
    /// plus any elaboration error.
    fn execute(&self, model: &RtModel, options: &ExecOptions) -> Result<ExecOutcome, KernelError>;
}

/// The delta-cycle event-kernel engine (the paper's VHDL semantics,
/// executed by `clockless-kernel`).
#[derive(Debug, Clone, Copy, Default)]
pub struct InterpretedBackend;

impl ExecBackend for InterpretedBackend {
    fn label(&self) -> &'static str {
        "interpreted"
    }

    fn execute(&self, model: &RtModel, options: &ExecOptions) -> Result<ExecOutcome, KernelError> {
        let elaborate = ElaborateOptions {
            trace: options.trace,
            ..Default::default()
        };
        let mut sim = RtSimulation::with_options(model, elaborate)?;
        if let Some(limit) = options.delta_limit {
            sim.set_delta_limit(limit);
        }
        let summary = match options.deadline {
            Some(deadline) => sim.run_to_completion_deadlined(deadline)?,
            None => sim.run_to_completion()?,
        };
        Ok(ExecOutcome {
            summary,
            commits: sim.register_commits(),
            vcd: sim.to_vcd(),
        })
    }
}

/// The compiled phase-schedule engine: lowers the model to an
/// [`ExecPlan`] and walks the dense slot tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompiledBackend;

impl ExecBackend for CompiledBackend {
    fn label(&self) -> &'static str {
        "compiled"
    }

    fn execute(&self, model: &RtModel, options: &ExecOptions) -> Result<ExecOutcome, KernelError> {
        ExecPlan::lower(model).execute(options)
    }
}

/// A backend selector — the value CLI flags and `.fleet` specs carry.
///
/// # Examples
///
/// ```
/// use clockless_core::backend::Backend;
///
/// let b: Backend = "compiled".parse()?;
/// assert_eq!(b, Backend::Compiled);
/// assert_eq!(b.to_string(), "compiled");
/// assert_eq!(Backend::default(), Backend::Interpreted);
/// # Ok::<(), clockless_core::backend::ParseBackendError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The delta-cycle event kernel ([`InterpretedBackend`]).
    #[default]
    Interpreted,
    /// The compiled phase-schedule engine ([`CompiledBackend`]).
    Compiled,
}

impl Backend {
    /// The engine implementing this selector.
    pub fn backend(self) -> &'static dyn ExecBackend {
        match self {
            Backend::Interpreted => &InterpretedBackend,
            Backend::Compiled => &CompiledBackend,
        }
    }

    /// Short lowercase name (`"interpreted"` / `"compiled"`).
    pub fn label(self) -> &'static str {
        self.backend().label()
    }

    /// Runs `model` on the selected engine
    /// (shorthand for `self.backend().execute(model, options)`).
    ///
    /// # Errors
    ///
    /// See [`ExecBackend::execute`].
    pub fn execute(
        self,
        model: &RtModel,
        options: &ExecOptions,
    ) -> Result<ExecOutcome, KernelError> {
        self.backend().execute(model, options)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error parsing a [`Backend`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError(pub String);

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend `{}` (expected interpreted|compiled)",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for Backend {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "interpreted" => Ok(Backend::Interpreted),
            "compiled" => Ok(Backend::Compiled),
            other => Err(ParseBackendError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;
    use crate::value::Value;

    #[test]
    fn parse_and_display_roundtrip() {
        for b in [Backend::Interpreted, Backend::Compiled] {
            assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
        }
        assert_eq!("COMPILED".parse::<Backend>().unwrap(), Backend::Compiled);
        let err = "jit".parse::<Backend>().unwrap_err();
        assert!(err.to_string().contains("jit"));
    }

    #[test]
    fn labels_match_selectors() {
        assert_eq!(Backend::Interpreted.label(), "interpreted");
        assert_eq!(Backend::Compiled.label(), "compiled");
    }

    #[test]
    fn untraced_outcome_has_no_waveform_artifacts() {
        let model = fig1_model(1, 2);
        for b in [Backend::Interpreted, Backend::Compiled] {
            let out = b.execute(&model, &ExecOptions::default()).unwrap();
            assert_eq!(out.summary.register("R1"), Some(Value::Num(3)), "{b}");
            assert!(out.summary.conflicts.is_none(), "{b}");
            assert!(out.commits.is_none(), "{b}");
            assert!(out.vcd.is_none(), "{b}");
        }
    }

    #[test]
    fn both_backends_respect_the_wall_deadline() {
        let model = fig1_model(3, 4);
        let past = Instant::now() - std::time::Duration::from_secs(1);
        for b in [Backend::Interpreted, Backend::Compiled] {
            let opts = ExecOptions {
                deadline: Some(past),
                ..Default::default()
            };
            let err = b.execute(&model, &opts).unwrap_err();
            assert!(
                matches!(err, KernelError::WallBudgetExceeded { .. }),
                "{b}: {err}"
            );
        }
    }
}
