//! Allocation: binding values to registers (left-edge algorithm) and
//! routes to buses.
//!
//! Lifetime rules follow from the model's phase semantics:
//!
//! * a node's value is **born** at its commit step (stored at that step's
//!   `cr` phase) and must survive until its **last read** step (read at
//!   that step's `ra` phase);
//! * two values may share a register when the second is born no earlier
//!   than the first's last read — a same-step read-then-commit is safe
//!   because `ra` precedes `cr` within the step;
//! * a bus carries at most one operand route (`ra`/`rb` phases) and at
//!   most one result route (`wa`/`wb` phases) per step; the two uses never
//!   collide, so operand and result routes are counted independently
//!   (exactly how Fig. 1's `B1` carries an operand in step 5 and the
//!   result in step 6).

use std::collections::HashMap;

use clockless_core::Step;

use crate::dfg::{Dfg, NodeId, Operand};
use crate::schedule::Schedule;

/// A value that needs a register: a node result, a primary input or a
/// constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueId {
    /// A node's result.
    Node(NodeId),
    /// A primary input (preloaded).
    Input(String),
    /// A constant (preloaded).
    Const(i64),
}

/// The allocation result: registers for every value, buses for every
/// route.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// Register index per value.
    pub register_of: HashMap<ValueId, usize>,
    /// Total registers allocated.
    pub register_count: usize,
    /// Operand-route buses per node: `(bus_a, bus_b)`; `usize::MAX`
    /// marks an absent operand.
    pub operand_bus: Vec<(usize, usize)>,
    /// Result-route bus per node.
    pub result_bus: Vec<usize>,
    /// Total buses allocated.
    pub bus_count: usize,
}

impl Allocation {
    /// The register index assigned to a value.
    ///
    /// # Panics
    ///
    /// Panics if the value was not part of the allocated design.
    pub fn register(&self, v: &ValueId) -> usize {
        *self
            .register_of
            .get(v)
            .unwrap_or_else(|| panic!("value {v:?} was not allocated"))
    }
}

/// Computes the last step at which each value is read (0 = never read).
fn last_reads(dfg: &Dfg, schedule: &Schedule) -> HashMap<ValueId, Step> {
    let mut last: HashMap<ValueId, Step> = HashMap::new();
    for (idx, node) in dfg.nodes().iter().enumerate() {
        let t = schedule.read_step[idx];
        for o in node.operands() {
            let v = match o {
                Operand::Node(n) => ValueId::Node(*n),
                Operand::Input(n) => ValueId::Input(n.clone()),
                Operand::Const(c) => ValueId::Const(*c),
            };
            let e = last.entry(v).or_insert(0);
            *e = (*e).max(t);
        }
    }
    last
}

/// Allocates registers (left-edge) and buses for a scheduled graph.
///
/// Output values are kept alive past the end of the schedule so they can
/// be observed after the run.
pub fn allocate(dfg: &Dfg, schedule: &Schedule) -> Allocation {
    let last = last_reads(dfg, schedule);
    let horizon = schedule.length + 1;

    // Gather (value, birth, death) triples.
    let mut values: Vec<(ValueId, Step, Step)> = Vec::new();
    for name in dfg.inputs() {
        let death = last
            .get(&ValueId::Input(name.clone()))
            .copied()
            .unwrap_or(0);
        values.push((ValueId::Input(name), 0, death));
    }
    for c in dfg.constants() {
        let death = last.get(&ValueId::Const(c)).copied().unwrap_or(0);
        values.push((ValueId::Const(c), 0, death));
    }
    for idx in 0..dfg.len() {
        let id = NodeId(idx as u32);
        let birth = schedule.commit_step(id);
        let mut death = last.get(&ValueId::Node(id)).copied().unwrap_or(birth);
        if dfg.outputs().iter().any(|(_, n)| *n == id) {
            death = horizon; // outputs survive to the end
        }
        death = death.max(birth);
        values.push((ValueId::Node(id), birth, death));
    }

    // Left-edge: sort by birth, pack into the first register free at
    // birth time. `free_at[r]` is the step from which register r may be
    // overwritten (its current occupant's last read). Two values born in
    // the same step may never share even if one is dead on arrival —
    // their `cr`-phase commits would collide — hence the strict
    // `last_birth` guard.
    values.sort_by_key(|a| (a.1, a.2));
    let mut register_of = HashMap::new();
    let mut free_at: Vec<Step> = Vec::new();
    let mut last_birth: Vec<Option<Step>> = Vec::new();
    for (v, birth, death) in values {
        let slot =
            (0..free_at.len()).find(|&r| free_at[r] <= birth && last_birth[r] != Some(birth));
        let r = match slot {
            Some(r) => r,
            None => {
                free_at.push(0);
                last_birth.push(None);
                free_at.len() - 1
            }
        };
        free_at[r] = death;
        last_birth[r] = Some(birth);
        register_of.insert(v, r);
    }
    let register_count = free_at.len();

    // Bus assignment: operand routes and result routes counted per step,
    // independently (different phases of the step).
    let n = dfg.len();
    let mut operand_bus = vec![(usize::MAX, usize::MAX); n];
    let mut result_bus = vec![usize::MAX; n];
    let mut reads_in_step: HashMap<Step, usize> = HashMap::new();
    let mut writes_in_step: HashMap<Step, usize> = HashMap::new();
    for idx in 0..n {
        let id = NodeId(idx as u32);
        let t = schedule.read_step[idx];
        let reads = reads_in_step.entry(t).or_insert(0);
        let a = *reads;
        *reads += 1;
        let b = if dfg.nodes()[idx].b.is_some() {
            let b = *reads;
            *reads += 1;
            b
        } else {
            usize::MAX
        };
        operand_bus[idx] = (a, b);

        let w = schedule.commit_step(id);
        let writes = writes_in_step.entry(w).or_insert(0);
        result_bus[idx] = *writes;
        *writes += 1;
    }
    let max_reads = reads_in_step.values().copied().max().unwrap_or(0);
    let max_writes = writes_in_step.values().copied().max().unwrap_or(0);
    let bus_count = max_reads.max(max_writes);

    Allocation {
        register_of,
        register_count,
        operand_bus,
        result_bus,
        bus_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{list_schedule, ResourceClass, ResourceSet};
    use clockless_core::{ModuleTiming, Op};

    fn chain() -> (Dfg, Schedule) {
        // t1 = a+b; t2 = t1+c; t3 = t2+d  (one ALU, fully serial)
        let mut g = Dfg::new("chain");
        let t1 = g.node(Op::Add, "a", "b").unwrap();
        let t2 = g.node(Op::Add, t1, "c").unwrap();
        let t3 = g.node(Op::Add, t2, "d").unwrap();
        g.output("out", t3).unwrap();
        let r = ResourceSet::new([ResourceClass::new(
            "ALU",
            [Op::Add],
            ModuleTiming::Pipelined { latency: 1 },
            1,
        )]);
        let s = list_schedule(&g, &r).unwrap();
        (g, s)
    }

    #[test]
    fn chain_reuses_registers_for_dead_temporaries() {
        let (g, s) = chain();
        let a = allocate(&g, &s);
        // 4 inputs alive at various times + temporaries. t1 dies when t2
        // reads it; its register can host t2's result (born same step as
        // a later commit). The output gets a register that is never
        // reclaimed.
        assert!(a.register_count <= 6, "got {}", a.register_count);
        // Every value allocated.
        assert_eq!(a.register_of.len(), 4 + 3);
    }

    #[test]
    fn disjoint_lifetimes_share_same_register() {
        let (g, s) = chain();
        let a = allocate(&g, &s);
        // t1 is born at commit(t1) and last read by t2; t2's result is
        // born strictly later than that read, so sharing is possible.
        // (Left-edge guarantees no *overlap*; we check soundness.)
        let mut by_reg: HashMap<usize, Vec<ValueId>> = HashMap::new();
        for (v, r) in &a.register_of {
            by_reg.entry(*r).or_default().push(v.clone());
        }
        // Recompute lifetimes and check pairwise disjointness.
        let last = super::last_reads(&g, &s);
        let lifetime = |v: &ValueId| -> (Step, Step) {
            match v {
                ValueId::Node(n) => {
                    let birth = s.commit_step(*n);
                    let mut death = last.get(v).copied().unwrap_or(birth);
                    if g.outputs().iter().any(|(_, o)| o == n) {
                        death = s.length + 1;
                    }
                    (birth, death.max(birth))
                }
                _ => (0, last.get(v).copied().unwrap_or(0)),
            }
        };
        for values in by_reg.values() {
            for i in 0..values.len() {
                for j in i + 1..values.len() {
                    let (b1, d1) = lifetime(&values[i]);
                    let (b2, d2) = lifetime(&values[j]);
                    let disjoint = d1 <= b2 || d2 <= b1;
                    assert!(disjoint, "{:?} and {:?} overlap", values[i], values[j]);
                }
            }
        }
    }

    #[test]
    fn bus_counts_cover_busiest_step() {
        let (g, s) = chain();
        let a = allocate(&g, &s);
        // Serial chain: 2 operand routes and 1 result route per step.
        assert_eq!(a.bus_count, 2);
        for idx in 0..g.len() {
            assert!(a.operand_bus[idx].0 < a.bus_count);
            assert!(a.result_bus[idx] < a.bus_count);
        }
    }

    #[test]
    fn unary_nodes_use_single_operand_bus() {
        let mut g = Dfg::new("u");
        let n = g.unary(Op::Neg, "a").unwrap();
        g.output("o", n).unwrap();
        let r = ResourceSet::new([ResourceClass::new(
            "NEG",
            [Op::Neg],
            ModuleTiming::Pipelined { latency: 1 },
            1,
        )]);
        let s = list_schedule(&g, &r).unwrap();
        let a = allocate(&g, &s);
        assert_eq!(a.operand_bus[0].1, usize::MAX);
        assert_eq!(a.bus_count, 1);
    }
}
