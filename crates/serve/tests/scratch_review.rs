use clockless_serve::protocol::Json;

#[test]
fn bad_low_surrogate_does_not_panic() {
    let r = Json::parse("\"\\ud834\\u0041\"");
    assert!(r.is_err(), "{r:?}");
}
