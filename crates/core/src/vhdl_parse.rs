//! Parsing the paper's VHDL subset back into model structure.
//!
//! The inverse of [`crate::vhdl`]: a §2.7-style "concrete register
//! transfer model" — the top-level architecture instantiating
//! `CONTROLLER`, `TRANS`, `REG` and module entities — is parsed back into
//! resources and [`TransferSpec`]s. Together with the tuple
//! reconstruction of `clockless-verify` this closes the loop the paper's
//! formal semantics promise: VHDL source ↔ transfer processes ↔ tuples,
//! in both directions.
//!
//! The accepted grammar is the emitted subset (§2 conventions):
//! module entities carry their timing in the
//! `-- Section 2.6 style module: NAME (timing)` header comment and their
//! operations as the `r := <expr>` bodies this library generates; the
//! top architecture is recognized as the one instantiating
//! `work.CONTROLLER`.

use std::fmt;

use crate::op::Op;
use crate::phase::{Phase, Step};
use crate::resource::{ArrayDecl, MemoryDecl, ModuleDecl, ModuleTiming};
use crate::tuples::{indexed_parts, Endpoint, Guard, TransferSpec};
use crate::value::Value;

/// A design parsed from VHDL: resources plus raw transfer processes
/// (turn the specs into tuples with
/// `clockless_verify::semantics::reconstruct_partials`/`merge_partials`,
/// or via `clockless_verify::model_from_vhdl`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedDesign {
    /// The top entity's name.
    pub name: String,
    /// The controller's `CS_MAX` generic.
    pub cs_max: Step,
    /// Registers with their initial values (from the `_out` signal
    /// defaults).
    pub registers: Vec<(String, Value)>,
    /// Bus names.
    pub buses: Vec<String>,
    /// Module declarations (operations and timing recovered from the
    /// module entities).
    pub modules: Vec<ModuleDecl>,
    /// Register arrays, restored from the emitter's `-- array:` storage
    /// map comments. Their element registers also appear in
    /// [`ParsedDesign::registers`] (they are ordinary `REG` instances).
    pub arrays: Vec<ArrayDecl>,
    /// Memories, restored from the `-- memory:` storage map comments.
    /// Their word signals are *not* listed in
    /// [`ParsedDesign::registers`].
    pub memories: Vec<MemoryDecl>,
    /// One entry per `TRANS`/`TRANSG` instantiation.
    pub specs: Vec<TransferSpec>,
}

/// Errors from parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseVhdlError {
    /// No architecture instantiating `work.CONTROLLER` was found.
    NoTopArchitecture,
    /// A statement could not be parsed.
    Malformed {
        /// The offending statement (trimmed).
        statement: String,
        /// What went wrong.
        reason: String,
    },
    /// A module entity's operation expression is not in the subset.
    UnknownExpression(String),
    /// A `TRANS` port refers to a name that is neither a declared
    /// register port, module port nor bus.
    UnknownSignal(String),
}

impl fmt::Display for ParseVhdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseVhdlError::NoTopArchitecture => {
                write!(f, "no architecture instantiates work.CONTROLLER")
            }
            ParseVhdlError::Malformed { statement, reason } => {
                write!(f, "cannot parse `{statement}`: {reason}")
            }
            ParseVhdlError::UnknownExpression(e) => {
                write!(f, "operation expression `{e}` is not in the subset")
            }
            ParseVhdlError::UnknownSignal(s) => {
                write!(f, "`{s}` is not a declared port or bus")
            }
        }
    }
}

impl std::error::Error for ParseVhdlError {}

/// Reverse of the emitter's operation table.
fn expr_op(expr: &str) -> Option<Op> {
    let e = expr.trim();
    Some(match e {
        "a + b" => Op::Add,
        "a - b" => Op::Sub,
        "a * b" => Op::Mul,
        "a" => Op::PassA,
        "b" => Op::PassB,
        "-a" => Op::Neg,
        "abs a" => Op::Abs,
        "minimum(a, b)" => Op::Min,
        "maximum(a, b)" => Op::Max,
        "to_integer(shift_right(to_signed(a, 64), b))" => Op::Shr,
        "to_integer(shift_left(to_signed(a, 64), b))" => Op::Shl,
        _ => {
            if let Some(scaled) = e.strip_prefix("(a * b) / ") {
                let div: i64 = scaled.parse().ok()?;
                if div.count_ones() == 1 {
                    return Some(Op::MulFx(div.trailing_zeros() as u8));
                }
                return None;
            }
            // Opaque IP-core call emitted for declared-but-never-initiated
            // DSP operations: `<mnemonic>(a, b)` / `(a)` / `(b)`.
            let mnemonic = e
                .strip_suffix("(a, b)")
                .or_else(|| e.strip_suffix("(a)"))
                .or_else(|| e.strip_suffix("(b)"))?;
            return mnemonic.parse::<Op>().ok();
        }
    })
}

/// Strips `--` comments and normalizes whitespace.
fn clean(line: &str) -> &str {
    match line.find("--") {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    }
}

/// Parses a VHDL document in the subset.
///
/// # Errors
///
/// Any [`ParseVhdlError`] describing the first unparseable construct.
pub fn parse_vhdl(text: &str) -> Result<ParsedDesign, ParseVhdlError> {
    // ---- Pass 1: module entities (timing from the header comment, ----
    // ---- operations from the process body).                        ----
    let mut modules: Vec<ModuleDecl> = Vec::new();
    {
        let lines: Vec<&str> = text.lines().collect();
        let mut i = 0;
        while i < lines.len() {
            let line = lines[i].trim();
            if let Some(rest) = line.strip_prefix("-- Section 2.6 style module: ") {
                // "NAME (timing...)".
                let (name, timing_txt) =
                    rest.split_once(" (")
                        .ok_or_else(|| ParseVhdlError::Malformed {
                            statement: line.to_string(),
                            reason: "expected `NAME (timing)`".into(),
                        })?;
                let timing_txt = timing_txt.trim_end_matches(&[')', '.'][..]);
                let timing = parse_timing(timing_txt).ok_or_else(|| ParseVhdlError::Malformed {
                    statement: line.to_string(),
                    reason: format!("unknown timing `{timing_txt}`"),
                })?;
                // Scan the entity/architecture body for operations until
                // `end transfer;`.
                let mut ops: Vec<(usize, Op)> = Vec::new();
                let mut single: Option<Op> = None;
                let mut j = i + 1;
                while j < lines.len() {
                    let l = clean(lines[j]);
                    if l == "end transfer;" {
                        break;
                    }
                    if let Some(rest) = l.strip_prefix("when ") {
                        // `when <idx> =>` of the multi-op case.
                        if let Some((idx, _)) = rest.split_once(" =>") {
                            if let Ok(idx) = idx.trim().parse::<usize>() {
                                // The expression is on this or the next line:
                                // `if <guard> then r := <expr>;`.
                                for line in lines.iter().skip(j).take(3) {
                                    if let Some(expr) = extract_assignment(clean(line)) {
                                        let op = expr_op(&expr)
                                            .ok_or(ParseVhdlError::UnknownExpression(expr))?;
                                        ops.push((idx, op));
                                        break;
                                    }
                                }
                            }
                        }
                    } else if let Some(expr) = extract_assignment(l) {
                        // Skip the sentinels and the pipeline-stage
                        // variables (`m1`, `m2`, …) — but not operation
                        // expressions that merely start with `m`, like
                        // `minimum(a, b)`.
                        let is_pipe_var = expr.strip_prefix('m').is_some_and(|d| {
                            !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit())
                        });
                        if expr != "ILLEGAL" && expr != "DISC" && !is_pipe_var {
                            single = Some(
                                expr_op(&expr).ok_or(ParseVhdlError::UnknownExpression(expr))?,
                            );
                        }
                    }
                    j += 1;
                }
                let op_list = if ops.is_empty() {
                    vec![single.ok_or_else(|| ParseVhdlError::Malformed {
                        statement: format!("module {name}"),
                        reason: "no operation expression found".into(),
                    })?]
                } else {
                    let mut sorted = ops;
                    sorted.sort_by_key(|(i, _)| *i);
                    sorted.into_iter().map(|(_, op)| op).collect()
                };
                modules.push(ModuleDecl {
                    name: name.trim().to_string(),
                    ops: op_list,
                    timing,
                });
                i = j;
            }
            i += 1;
        }
    }

    // ---- Pass 2: the top architecture. ----
    let top_start = text
        .match_indices("architecture transfer of ")
        .map(|(pos, _)| pos)
        .find(|&pos| {
            let end = text[pos..]
                .find("end transfer;")
                .map(|e| pos + e)
                .unwrap_or(text.len());
            text[pos..end].contains("work.CONTROLLER")
        })
        .ok_or(ParseVhdlError::NoTopArchitecture)?;
    let top_text = &text[top_start..];
    let name = top_text["architecture transfer of ".len()..]
        .split_whitespace()
        .next()
        .unwrap_or("top")
        .to_string();
    let decl_end = top_text.find("\nbegin").unwrap_or(top_text.len());
    let decls = &top_text[..decl_end];
    let body_end = top_text.find("end transfer;").unwrap_or(top_text.len());
    let body = &top_text[decl_end..body_end];

    // Storage map comments: `-- array: A length 2 init 1`,
    // `-- memory: M length 4 init 0`, `-- memory port: M[R1]`. These
    // restore the bracketed storage names behind the sanitized signal
    // identifiers.
    let mut arrays: Vec<ArrayDecl> = Vec::new();
    let mut memories: Vec<MemoryDecl> = Vec::new();
    let mut mem_ports: Vec<String> = Vec::new();
    for raw in decls.lines() {
        let l = raw.trim();
        if let Some(rest) = l.strip_prefix("-- array: ") {
            let (name, len, init) =
                parse_storage_comment(rest).ok_or_else(|| malformed(l, "array storage map"))?;
            arrays.push(ArrayDecl { name, len, init });
        } else if let Some(rest) = l.strip_prefix("-- memory: ") {
            let (name, len, init) =
                parse_storage_comment(rest).ok_or_else(|| malformed(l, "memory storage map"))?;
            memories.push(MemoryDecl { name, len, init });
        } else if let Some(rest) = l.strip_prefix("-- memory port: ") {
            mem_ports.push(rest.trim().to_string());
        }
    }

    // Sanitized identifier → original bracketed name.
    let mut renames: Vec<(String, String)> = Vec::new();
    {
        let mut add = |orig: String| {
            let san = crate::vhdl::sanitize(&orig);
            if san != orig {
                renames.push((san, orig));
            }
        };
        for a in &arrays {
            for i in 0..a.len {
                add(format!("{}[{}]", a.name, i));
            }
        }
        for m in &memories {
            for i in 0..m.len {
                add(m.word_name(i));
            }
        }
        for p in &mem_ports {
            add(p.clone());
        }
    }
    let desan = |port: &str| -> String {
        for (san, orig) in &renames {
            if port == san {
                return orig.clone();
            }
            if let Some(rest) = port.strip_prefix(san.as_str()) {
                if rest == "_in" || rest == "_out" {
                    return format!("{orig}{rest}");
                }
            }
        }
        port.to_string()
    };
    let is_mem_name =
        |x: &str| indexed_parts(x).is_some_and(|(b, _)| memories.iter().any(|m| m.name == b));

    // Signal declarations: collect (name, resolved, init).
    let mut signals: Vec<(String, bool, Option<i64>)> = Vec::new();
    for raw in decls.lines() {
        let l = clean(raw);
        let Some(rest) = l.strip_prefix("signal ") else {
            continue;
        };
        let Some((names, ty)) = rest.split_once(':') else {
            continue;
        };
        let ty = ty.trim().trim_end_matches(';');
        let (ty, init) = match ty.split_once(":=") {
            Some((t, v)) => (t.trim(), v.trim().parse::<i64>().ok()),
            None => (ty, None),
        };
        let resolved = ty == "RInteger";
        if ty != "RInteger" && ty != "Integer" {
            continue; // CS : Natural, PH : Phase
        }
        for n in names.split(',') {
            signals.push((n.trim().to_string(), resolved, init));
        }
    }

    // ---- Pass 3: instantiations. ----
    let mut registers: Vec<(String, Value)> = Vec::new();
    let mut used_modules: Vec<String> = Vec::new();
    let mut trans_raw: Vec<(Step, Phase, String, String, Option<String>)> = Vec::new();
    let mut guard_defs: Vec<(String, String)> = Vec::new();
    let mut cs_max: Step = 0;
    for stmt in body.split(';') {
        let s: String = stmt.split_whitespace().collect::<Vec<_>>().join(" ");
        if s.contains("entity work.REG ") {
            // `X_proc : entity work.REG port map (PH, X_in, X_out)`
            let ports = port_list(&s)?;
            let san = ports
                .get(1)
                .and_then(|p| p.strip_suffix("_in"))
                .ok_or_else(|| malformed(&s, "REG port map"))?;
            let init = signals
                .iter()
                .find(|(n, _, _)| n == &format!("{san}_out"))
                .and_then(|(_, _, i)| *i)
                .map(Value::Num)
                .unwrap_or(Value::Disc);
            let orig = desan(san);
            // Memory words and indirect memory ports are REG-backed
            // signals, not model registers — the memory declaration
            // from the storage map covers them.
            if !is_mem_name(&orig) {
                registers.push((orig, init));
            }
        } else if s.contains("entity work.TRANS ") {
            let (step, phase) = generic_pair(&s)?;
            let ports = port_list(&s)?;
            if ports.len() != 4 {
                return Err(malformed(&s, "TRANS takes (CS, PH, src, dst)"));
            }
            trans_raw.push((step, phase, ports[2].clone(), ports[3].clone(), None));
        } else if s.contains("entity work.TRANSG ") {
            let (step, phase) = generic_pair(&s)?;
            let ports = port_list(&s)?;
            if ports.len() != 5 {
                return Err(malformed(&s, "TRANSG takes (CS, PH, G, src, dst)"));
            }
            trans_raw.push((
                step,
                phase,
                ports[3].clone(),
                ports[4].clone(),
                Some(ports[2].clone()),
            ));
        } else if let Some((gname, rest)) = s.split_once(" <= 1 when ") {
            // A guard definition: `g_0 <= 1 when <cond> else 0`. The
            // statement may start with leftover comment text from the
            // preceding line; the signal name is the last token before
            // the assignment.
            let gname = gname
                .split_whitespace()
                .last()
                .ok_or_else(|| malformed(&s, "guard assignment needs a signal name"))?;
            let cond = rest
                .strip_suffix(" else 0")
                .ok_or_else(|| malformed(&s, "guard assignment must end in `else 0`"))?;
            guard_defs.push((gname.to_string(), cond.trim().to_string()));
        } else if s.contains("entity work.CONTROLLER ") {
            let inner = between(&s, "generic map (", ")")
                .ok_or_else(|| malformed(&s, "CONTROLLER generic map"))?;
            cs_max = inner
                .trim()
                .parse()
                .map_err(|_| malformed(&s, "CS_MAX must be a number"))?;
        } else if let Some(pos) = s.find("entity work.") {
            let entity: String = s[pos + "entity work.".len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if modules.iter().any(|m| m.name == entity) {
                used_modules.push(entity);
            }
        }
    }
    if cs_max == 0 {
        return Err(ParseVhdlError::NoTopArchitecture);
    }

    // Buses: resolved signals that are not register inputs, memory word
    // inputs or module ports.
    let mut buses: Vec<String> = Vec::new();
    for (n, resolved, _) in &signals {
        if !resolved {
            continue;
        }
        let n = desan(n);
        let is_reg_in = n.strip_suffix("_in").is_some_and(|r| {
            registers.iter().any(|(name, _)| name == r)
                || is_mem_name(r)
                || arrays
                    .iter()
                    .any(|a| indexed_parts(r).is_some_and(|(b, _)| b == a.name))
        });
        let is_mod_port = ["_in1", "_in2", "_op"].iter().any(|suf| {
            n.strip_suffix(suf)
                .is_some_and(|m| modules.iter().any(|d| d.name == m))
        });
        if !is_reg_in && !is_mod_port {
            buses.push(n.clone());
        }
    }

    // Guard definitions: turn the VHDL condition back into a [`Guard`]
    // by stripping the `_out` suffix (and the sanitization) from every
    // register operand.
    let mut guards: Vec<(String, Guard)> = Vec::new();
    for (gname, cond) in guard_defs {
        let text = cond
            .split_whitespace()
            .map(|tok| {
                let open = tok.len() - tok.trim_start_matches('(').len();
                let close_start = tok.trim_end_matches(')').len().max(open);
                let (pre, rest) = tok.split_at(open);
                let (core, post) = rest.split_at(close_start - open);
                let core = match core.strip_suffix("_out") {
                    Some(base) => desan(base),
                    None => core.to_string(),
                };
                format!("{pre}{core}{post}")
            })
            .collect::<Vec<_>>()
            .join(" ");
        let guard = Guard::parse(&text).map_err(|e| ParseVhdlError::Malformed {
            statement: cond.clone(),
            reason: e.msg,
        })?;
        guards.push((gname, guard));
    }

    // Resolve TRANS ports into endpoints.
    let modules: Vec<ModuleDecl> = modules
        .into_iter()
        .filter(|m| used_modules.contains(&m.name))
        .collect();
    let to_endpoint = |port: &str, dst_hint: Option<&str>| -> Result<Endpoint, ParseVhdlError> {
        let port = desan(port);
        let port = port.as_str();
        if let Ok(idx) = port.parse::<usize>() {
            // A constant operation code; the destination names the module.
            let module = dst_hint
                .and_then(|d| d.strip_suffix("_op"))
                .ok_or_else(|| ParseVhdlError::UnknownSignal(port.to_string()))?;
            let decl = modules
                .iter()
                .find(|m| m.name == module)
                .ok_or_else(|| ParseVhdlError::UnknownSignal(port.to_string()))?;
            let op = decl
                .ops
                .get(idx)
                .ok_or_else(|| ParseVhdlError::UnknownSignal(port.to_string()))?;
            return Ok(Endpoint::ConstOp(*op));
        }
        for (suf, make) in [
            ("_in1", Endpoint::ModIn1 as fn(String) -> Endpoint),
            ("_in2", Endpoint::ModIn2),
            ("_op", Endpoint::ModOp),
        ] {
            if let Some(m) = port.strip_suffix(suf) {
                if modules.iter().any(|d| d.name == m) {
                    return Ok(make(m.to_string()));
                }
            }
        }
        if let Some(x) = port.strip_suffix("_out") {
            if registers.iter().any(|(n, _)| n == x) || is_mem_name(x) {
                return Ok(Endpoint::RegOut(x.to_string()));
            }
            if modules.iter().any(|d| d.name == x) {
                return Ok(Endpoint::ModOut(x.to_string()));
            }
        }
        if let Some(r) = port.strip_suffix("_in") {
            if registers.iter().any(|(n, _)| n == r) || is_mem_name(r) {
                return Ok(Endpoint::RegIn(r.to_string()));
            }
        }
        if buses.iter().any(|b| b == port) {
            return Ok(Endpoint::Bus(port.to_string()));
        }
        Err(ParseVhdlError::UnknownSignal(port.to_string()))
    };

    let mut specs = Vec::new();
    for (step, phase, src, dst, gsig) in trans_raw {
        let dst_ep = to_endpoint(&dst, None)?;
        let src_ep = to_endpoint(&src, Some(&dst))?;
        let guard = match gsig {
            Some(g) => Some(
                guards
                    .iter()
                    .find(|(n, _)| *n == g)
                    .map(|(_, guard)| guard.clone())
                    .ok_or(ParseVhdlError::UnknownSignal(g))?,
            ),
            None => None,
        };
        specs.push(TransferSpec {
            step,
            phase,
            src: src_ep,
            dst: dst_ep,
            guard,
        });
    }

    Ok(ParsedDesign {
        name,
        cs_max,
        registers,
        buses,
        modules,
        arrays,
        memories,
        specs,
    })
}

/// Parses a storage map comment body: `NAME length N [init V]`.
fn parse_storage_comment(rest: &str) -> Option<(String, u32, Value)> {
    let toks: Vec<&str> = rest.split_whitespace().collect();
    match toks.as_slice() {
        [name, "length", len] => Some((name.to_string(), len.parse().ok()?, Value::Disc)),
        [name, "length", len, "init", v] => Some((
            name.to_string(),
            len.parse().ok()?,
            Value::Num(v.parse().ok()?),
        )),
        _ => None,
    }
}

fn parse_timing(s: &str) -> Option<ModuleTiming> {
    if s == "combinational" {
        return Some(ModuleTiming::Combinational);
    }
    if let Some(l) = s.strip_prefix("pipelined, latency ") {
        return Some(ModuleTiming::Pipelined {
            latency: l.parse().ok()?,
        });
    }
    if let Some(l) = s.strip_prefix("sequential, latency ") {
        return Some(ModuleTiming::Sequential {
            latency: l.parse().ok()?,
        });
    }
    None
}

/// Extracts `<expr>` from a `r := <expr>;` fragment anywhere in the line
/// (`r` must be a standalone identifier — `Integer := DISC` is not an
/// assignment to `r`).
fn extract_assignment(line: &str) -> Option<String> {
    let mut search = 0;
    while let Some(rel) = line[search..].find("r := ") {
        let pos = search + rel;
        let boundary = pos == 0
            || !line[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            let rest = &line[pos + "r := ".len()..];
            let end = rest.find(';')?;
            return Some(rest[..end].trim().to_string());
        }
        search = pos + 1;
    }
    None
}

fn between<'a>(s: &'a str, open: &str, close: &str) -> Option<&'a str> {
    let start = s.find(open)? + open.len();
    let end = s[start..].find(close)? + start;
    Some(&s[start..end])
}

fn malformed(stmt: &str, reason: &str) -> ParseVhdlError {
    ParseVhdlError::Malformed {
        statement: stmt.chars().take(80).collect(),
        reason: reason.to_string(),
    }
}

/// Parses `generic map (5, ra)`.
fn generic_pair(s: &str) -> Result<(Step, Phase), ParseVhdlError> {
    let inner =
        between(s, "generic map (", ")").ok_or_else(|| malformed(s, "TRANS generic map"))?;
    let (step, phase) = inner
        .split_once(',')
        .ok_or_else(|| malformed(s, "generic map needs (step, phase)"))?;
    let step: Step = step
        .trim()
        .parse()
        .map_err(|_| malformed(s, "step must be a number"))?;
    let phase: Phase = phase
        .trim()
        .parse()
        .map_err(|_| malformed(s, "unknown phase"))?;
    Ok((step, phase))
}

/// Parses the last `port map (...)` of a statement into its elements.
fn port_list(s: &str) -> Result<Vec<String>, ParseVhdlError> {
    let inner = between(s, "port map (", ")").ok_or_else(|| malformed(s, "port map"))?;
    Ok(inner.split(',').map(|p| p.trim().to_string()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;
    use crate::vhdl::emit_vhdl;

    #[test]
    fn fig1_roundtrips_through_vhdl() {
        let model = fig1_model(3, 4);
        let vhdl = emit_vhdl(&model).unwrap();
        let parsed = parse_vhdl(&vhdl).unwrap();
        assert_eq!(parsed.cs_max, 7);
        assert_eq!(
            parsed.registers,
            vec![
                ("R1".to_string(), Value::Num(3)),
                ("R2".to_string(), Value::Num(4))
            ]
        );
        assert_eq!(parsed.buses, vec!["B1".to_string(), "B2".to_string()]);
        assert_eq!(parsed.modules.len(), 1);
        assert_eq!(parsed.modules[0].ops, vec![Op::Add]);
        assert_eq!(
            parsed.modules[0].timing,
            ModuleTiming::Pipelined { latency: 1 }
        );
        // All six transfer processes recovered, matching the expansion.
        let expected: Vec<TransferSpec> = model.tuples().iter().flat_map(|t| t.expand()).collect();
        assert_eq!(parsed.specs, expected);
    }

    #[test]
    fn paper_style_fragment_parses() {
        // A hand-written §2.7-style architecture (not emitted by us):
        // whitespace and ordering differ from the generator's.
        let vhdl = r#"
-- Section 2.6 style module: ADD (pipelined, latency 1).
entity ADD is
  port (PH : in Phase; M_in1, M_in2 : in Integer; M_out : out Integer := DISC);
end ADD;
architecture transfer of ADD is
begin
  process
    variable m1 : Integer := DISC;
    variable r : Integer;
    variable a, b : Integer;
  begin
    wait until PH = cm;
    M_out <= m1;
    a := M_in1;  b := M_in2;
    if a = ILLEGAL or b = ILLEGAL then
      r := ILLEGAL;
    elsif a = DISC and b = DISC then
      r := DISC;
    elsif a /= DISC and b /= DISC then
      r := a + b;
    else
      r := ILLEGAL;
    end if;
    m1 := r;
  end process;
end transfer;

entity example is
end example;

architecture transfer of example is
  signal CS : Natural;
  signal PH : Phase;
  signal ADD_in1, ADD_in2 : RInteger;
  signal ADD_out : Integer;
  signal R1_in, R2_in : RInteger;
  signal R1_out : Integer := 3;
  signal R2_out : Integer := 4;
  signal B1 : RInteger;
  signal B2 : RInteger;
begin
  ADD_proc : entity work.ADD port map (PH, ADD_in1, ADD_in2, ADD_out);
  R1_proc : entity work.REG port map (PH, R1_in, R1_out);
  R2_proc : entity work.REG port map (PH, R2_in, R2_out);
  R1_out_B1_5 : entity work.TRANS generic map (5, ra) port map (CS, PH, R1_out, B1);
  B1_ADD_in1_5 : entity work.TRANS generic map (5, rb) port map (CS, PH, B1, ADD_in1);
  R2_out_B2_5 : entity work.TRANS generic map (5, ra) port map (CS, PH, R2_out, B2);
  B2_ADD_in2_5 : entity work.TRANS generic map (5, rb) port map (CS, PH, B2, ADD_in2);
  ADD_out_B1_6 : entity work.TRANS generic map (6, wa) port map (CS, PH, ADD_out, B1);
  B1_R1_in_6 : entity work.TRANS generic map (6, wb) port map (CS, PH, B1, R1_in);
  CONTROL : entity work.CONTROLLER generic map (7) port map (CS, PH);
end transfer;
"#;
        let parsed = parse_vhdl(vhdl).unwrap();
        assert_eq!(parsed.name, "example");
        assert_eq!(parsed.cs_max, 7);
        assert_eq!(parsed.specs.len(), 6);
        assert_eq!(parsed.registers.len(), 2);
        assert_eq!(parsed.buses, vec!["B1".to_string(), "B2".to_string()]);
    }

    #[test]
    fn missing_controller_is_rejected() {
        assert_eq!(
            parse_vhdl("architecture transfer of x is\nbegin\nend transfer;"),
            Err(ParseVhdlError::NoTopArchitecture)
        );
    }

    #[test]
    fn unknown_trans_signal_is_rejected() {
        let vhdl = r#"
architecture transfer of broken is
  signal CS : Natural;
  signal PH : Phase;
begin
  X : entity work.TRANS generic map (1, ra) port map (CS, PH, nowhere, nothing);
  CONTROL : entity work.CONTROLLER generic map (3) port map (CS, PH);
end transfer;
"#;
        assert!(matches!(
            parse_vhdl(vhdl),
            Err(ParseVhdlError::UnknownSignal(_))
        ));
    }
}
