//! A minimal wall-clock benchmarking harness.
//!
//! The workspace ships no external benchmarking crates (tier-1 must
//! resolve offline), so the experiment benches measure time themselves:
//! each benchmark is calibrated to a batch long enough for the OS timer
//! to be meaningful, then sampled several times; the table reports the
//! mean of the best sample (criterion's "best estimate" spirit without
//! the statistics machinery).
//!
//! Numbers from this harness are for tracking trends between commits on
//! one machine, not for cross-machine comparison.

use std::time::Instant;

/// How long one calibrated batch should at least run.
const TARGET_BATCH_NS: u128 = 20_000_000; // 20 ms
/// Samples taken per benchmark after calibration.
const SAMPLES: usize = 3;
/// Upper bound on iterations per batch (very fast bodies).
const MAX_ITERS: u64 = 1 << 22;

/// One benchmark's result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Group this measurement belongs to.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Iterations per sampled batch.
    pub iters: u64,
    /// Mean nanoseconds per iteration of the best (fastest) sample.
    pub best_ns: f64,
    /// Mean nanoseconds per iteration across all samples.
    pub mean_ns: f64,
}

impl Measurement {
    fn human(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    }
}

/// Collects measurements across groups and prints the result table.
#[derive(Debug, Default)]
pub struct Harness {
    results: Vec<Measurement>,
}

impl Harness {
    /// Creates an empty harness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a named benchmark group.
    pub fn group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            name: name.into(),
            harness: self,
        }
    }

    /// All measurements taken so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints the result table to stderr (stdout stays machine-usable).
    pub fn print_table(&self) {
        eprintln!();
        eprintln!(
            "{:<24} {:<32} {:>12} {:>12} {:>10}",
            "group", "benchmark", "best/iter", "mean/iter", "iters"
        );
        for m in &self.results {
            eprintln!(
                "{:<24} {:<32} {:>12} {:>12} {:>10}",
                m.group,
                m.id,
                Measurement::human(m.best_ns),
                Measurement::human(m.mean_ns),
                m.iters
            );
        }
    }
}

/// A named group of benchmarks; measurements land in the owning
/// [`Harness`].
pub struct Group<'h> {
    name: String,
    harness: &'h mut Harness,
}

impl Group<'_> {
    /// Measures `f`, storing the result under `id`.
    pub fn bench<T>(&mut self, id: impl Into<String>, mut f: impl FnMut() -> T) -> &Measurement {
        // Calibrate: grow the batch until it runs long enough to time.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed().as_nanos();
            if elapsed >= TARGET_BATCH_NS || iters >= MAX_ITERS {
                break;
            }
            // Aim straight for the target with a growth cap.
            let scale = (TARGET_BATCH_NS / elapsed.max(1)).clamp(2, 16) as u64;
            iters = (iters * scale).min(MAX_ITERS);
        }
        // Sample.
        let mut per_iter = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        let best_ns = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        self.harness.results.push(Measurement {
            group: self.name.clone(),
            id: id.into(),
            iters,
            best_ns,
            mean_ns,
        });
        self.harness.results.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut h = Harness::new();
        let mut g = h.group("t");
        let m = g.bench("spin", || {
            let mut x = 0u64;
            for i in 0..100 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert!(m.best_ns > 0.0);
        assert!(m.mean_ns >= m.best_ns);
        assert_eq!(h.measurements().len(), 1);
        assert_eq!(h.measurements()[0].id, "spin");
    }

    #[test]
    fn human_formatting() {
        assert_eq!(Measurement::human(12.0), "12.0 ns");
        assert_eq!(Measurement::human(1_500.0), "1.500 µs");
        assert_eq!(Measurement::human(2_000_000.0), "2.000 ms");
        assert_eq!(Measurement::human(3.1e9), "3.100 s");
    }
}
