//! Waveform recording and VCD export.
//!
//! When tracing is enabled the kernel records every signal event. Because
//! clock-free models live entirely in delta time, the exporter maps each
//! distinct `(physical time, delta)` instant to one VCD timestep, so delta
//! cycles are visible as consecutive ticks — which is exactly how the paper
//! suggests locating resource conflicts: "ILLEGAL values of resolved
//! signals in specific simulation cycles".

use std::fmt::{self, Display, Write as _};

use crate::signal::SignalId;
use crate::time::SimTime;

/// One recorded value change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent<V> {
    /// When the change took effect.
    pub at: SimTime,
    /// The changed signal.
    pub signal: SignalId,
    /// The new effective value.
    pub value: V,
}

/// A recorded waveform: the ordered list of all signal events.
#[derive(Debug, Clone, Default)]
pub struct Trace<V> {
    events: Vec<TraceEvent<V>>,
}

impl<V> Trace<V> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    pub(crate) fn record(&mut self, at: SimTime, signal: SignalId, value: V) {
        self.events.push(TraceEvent { at, signal, value });
    }

    /// Appends an event. Events must be pushed in chronological order for
    /// [`to_vcd`](Self::to_vcd) to render correct timesteps.
    ///
    /// The kernel records its own events internally; this entry point
    /// exists for alternative execution engines that reconstruct a
    /// kernel-compatible waveform without running the event loop.
    pub fn push(&mut self, at: SimTime, signal: SignalId, value: V) {
        self.record(at, signal, value);
    }

    /// All recorded events in chronological order.
    pub fn events(&self) -> &[TraceEvent<V>] {
        &self.events
    }

    /// Events affecting one signal, in chronological order.
    pub fn events_for(&self, signal: SignalId) -> impl Iterator<Item = &TraceEvent<V>> {
        self.events.iter().filter(move |e| e.signal == signal)
    }

    /// The last recorded value of a signal, if any.
    pub fn last_value(&self, signal: SignalId) -> Option<&V> {
        self.events
            .iter()
            .rev()
            .find(|e| e.signal == signal)
            .map(|e| &e.value)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl<V: Display> Trace<V> {
    /// Renders the trace as a Value Change Dump (VCD) document.
    ///
    /// `names` supplies one identifier per signal id (index = id). Each
    /// distinct simulation instant — physical time *or* delta cycle — maps
    /// to one VCD timestep, making the delta structure of clock-free
    /// models directly visible in a waveform viewer.
    ///
    /// Values are emitted as VCD `real` changes via their `Display` form
    /// when numeric, or as string changes otherwise.
    pub fn to_vcd(&self, names: &[String]) -> String {
        let mut out = String::new();
        out.push_str("$date clockless $end\n$version clockless-kernel $end\n");
        out.push_str("$timescale 1fs $end\n$scope module top $end\n");
        for (i, name) in names.iter().enumerate() {
            let ident = vcd_ident(i);
            let clean: String = name
                .chars()
                .map(|c| if c.is_whitespace() { '_' } else { c })
                .collect();
            let _ = writeln!(out, "$var wire 64 {ident} {clean} $end");
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");

        let mut step: u64 = 0;
        let mut last_at: Option<SimTime> = None;
        for e in &self.events {
            if last_at != Some(e.at) {
                if last_at.is_some() {
                    step += 1;
                }
                let _ = writeln!(out, "#{step}");
                last_at = Some(e.at);
            }
            let ident = vcd_ident(e.signal.index());
            let _ = writeln!(out, "s{} {}", e.value, ident);
        }
        out
    }
}

/// Short printable VCD identifier for a dense index.
fn vcd_ident(mut i: usize) -> String {
    // Identifiers use printable ASCII 33..=126.
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

impl<V: fmt::Debug> Display for TraceEvent<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} = {:?}", self.at, self.signal, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t: Trace<i64> = Trace::new();
        t.record(SimTime::ZERO, SignalId(0), 1);
        t.record(SimTime::ZERO.next_delta(), SignalId(1), 2);
        t.record(SimTime::ZERO.next_delta(), SignalId(0), 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.events_for(SignalId(0)).count(), 2);
        assert_eq!(t.last_value(SignalId(0)), Some(&3));
        assert_eq!(t.last_value(SignalId(9)), None);
    }

    #[test]
    fn vcd_has_headers_and_steps() {
        let mut t: Trace<i64> = Trace::new();
        t.record(SimTime::ZERO, SignalId(0), 1);
        t.record(SimTime::ZERO.next_delta(), SignalId(0), 2);
        let vcd = t.to_vcd(&["sig a".to_string()]);
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("sig_a"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#1"));
    }

    #[test]
    fn idents_are_unique_and_printable() {
        let a = vcd_ident(0);
        let b = vcd_ident(93);
        let c = vcd_ident(94);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(c.len() > 1);
    }
}
