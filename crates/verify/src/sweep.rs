//! Parallel conflict sweeps: the static/dynamic cross-check at batch
//! scale.
//!
//! [`cross_check`](crate::conflicts::cross_check) validates one model.
//! When an allocator (or a fuzzer) produces dozens of schedule
//! candidates, running those checks serially wastes the independence of
//! the jobs — exactly the shape the `clockless-fleet` engine exists for.
//! [`conflict_sweep`] farms the traced dynamic runs over a fleet worker
//! pool and folds each result back against its static prediction.

use clockless_core::RtModel;
use clockless_fleet::{run_batch_with, BatchSpec, FleetConfig, FleetError, JobSource, JobSpec};
use clockless_kernel::SimStats;

use crate::conflicts::static_conflicts;

/// One model's verdict within a [`ConflictSweep`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRow {
    /// The model's name.
    pub model: String,
    /// Statically predicted conflict sites.
    pub predicted: usize,
    /// Dynamically observed conflict sites (includes downstream
    /// propagation of a root conflict).
    pub observed: usize,
    /// `true` when every static prediction was confirmed by a dynamic
    /// `ILLEGAL` at the predicted step and phase — the paper's claim
    /// that the two detectors agree.
    pub all_confirmed: bool,
}

/// Results of a parallel conflict sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictSweep {
    /// Per-model rows, in input order.
    pub rows: Vec<SweepRow>,
    /// Merged kernel counters of every dynamic run.
    pub totals: SimStats,
}

impl ConflictSweep {
    /// `true` when no model showed any conflict, statically or
    /// dynamically.
    pub fn all_clean(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.predicted == 0 && r.observed == 0)
    }

    /// `true` when every static prediction across the sweep was
    /// dynamically confirmed (models may still have conflicts — they
    /// just must be *consistent* ones).
    pub fn detectors_agree(&self) -> bool {
        self.rows.iter().all(|r| r.all_confirmed)
    }

    /// Renders the sweep as deterministic JSON (the serve daemon's
    /// `sweep` job payload): per-model rows in input order plus merged
    /// kernel totals, no wall-clock fields.
    ///
    /// # Examples
    ///
    /// ```
    /// use clockless_core::model::fig1_model;
    /// use clockless_verify::sweep::conflict_sweep;
    ///
    /// let sweep = conflict_sweep(&[fig1_model(1, 2)], 1)?;
    /// let json = sweep.to_json();
    /// assert!(json.contains("\"all_clean\": true"), "{json}");
    /// assert!(json.contains("\"model\": \"fig1_example\""), "{json}");
    /// # Ok::<(), clockless_fleet::FleetError>(())
    /// ```
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\n  \"sweep\": {{\"models\": {}, \"all_clean\": {}, \"detectors_agree\": {}}},",
            self.rows.len(),
            self.all_clean(),
            self.detectors_agree()
        );
        let _ = writeln!(
            out,
            "  \"totals\": {},",
            clockless_core::json::sim_stats(&self.totals)
        );
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"model\": \"{}\", \"predicted\": {}, \"observed\": {}, \
                 \"all_confirmed\": {}}}{}",
                clockless_core::json::escape(&r.model),
                r.predicted,
                r.observed,
                r.all_confirmed,
                comma
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the dynamic conflict detector over every model on `workers`
/// fleet threads and compares against the static analysis.
///
/// # Errors
///
/// Propagates [`FleetError`] from the batch engine (empty input, failed
/// elaboration or simulation).
///
/// # Examples
///
/// ```
/// use clockless_core::model::fig1_model;
/// use clockless_verify::sweep::conflict_sweep;
///
/// let candidates = vec![fig1_model(1, 2), fig1_model(3, 4)];
/// let sweep = conflict_sweep(&candidates, 2)?;
/// assert!(sweep.all_clean());
/// assert!(sweep.detectors_agree());
/// # Ok::<(), clockless_fleet::FleetError>(())
/// ```
pub fn conflict_sweep(models: &[RtModel], workers: usize) -> Result<ConflictSweep, FleetError> {
    let jobs = models
        .iter()
        .enumerate()
        .map(|(i, m)| JobSpec::new(format!("sweep_{i}"), JobSource::Model(Box::new(m.clone()))))
        .collect();
    // A sweep wants errors, not quarantine rows: run fail-fast so a bad
    // candidate aborts with its attributed FleetError.
    let config = FleetConfig {
        fail_fast: true,
        ..FleetConfig::default()
    };
    let report = run_batch_with(&BatchSpec { jobs }, workers, &config)?;

    let rows = models
        .iter()
        .zip(&report.jobs)
        .map(|(model, job)| {
            let job = job
                .result()
                .expect("fail-fast batches only return completed jobs");
            let predicted = static_conflicts(model);
            let all_confirmed = predicted.iter().all(|p| {
                job.conflicts
                    .conflicts
                    .iter()
                    .any(|c| c.name == p.name && c.visible_at == p.visible_at())
            });
            SweepRow {
                model: model.name().to_string(),
                predicted: predicted.len(),
                observed: job.conflicts.conflicts.len(),
                all_confirmed,
            }
        })
        .collect();
    Ok(ConflictSweep {
        rows,
        totals: report.totals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;
    use clockless_core::text::parse_model;

    fn conflicted() -> RtModel {
        parse_model(
            "model clash steps 4\nregister A init 1\nregister B init 2\nregister T\n\
             bus X\nbus Y\nbus Z\nmodule CPA ops passa comb\nmodule CPB ops passa comb\n\
             transfer (A,X,-,-,2,CPA,2,Y,T)\ntransfer (B,X,-,-,2,CPB,2,Z,T)\n",
        )
        .expect("parses")
    }

    #[test]
    fn sweep_confirms_static_predictions_in_parallel() {
        let models = vec![fig1_model(1, 2), conflicted(), fig1_model(5, 6)];
        let sweep = conflict_sweep(&models, 4).expect("runs");
        assert_eq!(sweep.rows.len(), 3);
        assert!(!sweep.all_clean());
        // Every static prediction is dynamically confirmed — including
        // in the deliberately double-booked model.
        assert!(sweep.detectors_agree());
        let clash = &sweep.rows[1];
        // Bus `X` is double-driven at ra, and both transfers write back
        // into register `T` at wa — two predicted sites.
        assert_eq!(clash.predicted, 2);
        assert!(clash.observed >= 2, "dynamic sees both root sites");
        // Worker count does not change the verdict.
        assert_eq!(sweep, conflict_sweep(&models, 1).expect("runs"));
    }
}
