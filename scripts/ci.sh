#!/usr/bin/env bash
# Local CI gate, offline-safe: everything here resolves without registry
# access. Run from the repo root (or anywhere inside it).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "== workspace tests"
cargo test -q --workspace --offline

echo "== examples build"
cargo build --examples --offline

echo "== rustdoc (workspace, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "== bench crate (build + unit tests; benches run via 'cargo bench')"
cargo test -q --manifest-path crates/bench/Cargo.toml --offline
cargo build --benches --manifest-path crates/bench/Cargo.toml --offline

echo "CI OK"
