//! Force-directed scheduling (Paulin & Knight) — the classic
//! time-constrained scheduler of the paper's era.
//!
//! Where list scheduling answers "how fast under these resources?",
//! force-directed scheduling answers the dual question: "how few
//! resources under this deadline?". Operations keep their ASAP–ALAP
//! mobility windows; *distribution graphs* estimate the expected number
//! of concurrent operations per resource class and step; each iteration
//! pins the (operation, step) placement with the lowest **force**
//! (distribution at the step minus the window average), balancing
//! concurrency and thereby minimizing the instance count.
//!
//! This simplified FDS recomputes windows and distributions after each
//! placement (self-forces only; the window recomputation plays the role
//! of predecessor/successor forces).

use clockless_core::Step;

use crate::dfg::{Dfg, NodeId};
use crate::schedule::{alap, asap, critical_path, ResourceSet, Schedule, ScheduleError};

/// Result of force-directed scheduling: the schedule plus the number of
/// instances each resource class needs to realize it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdsResult {
    /// The schedule (read steps, bindings, latencies, length).
    pub schedule: Schedule,
    /// Instances used per resource class (indexed like
    /// `ResourceSet::classes`).
    pub instances: Vec<usize>,
}

/// Schedules `dfg` within `deadline` steps, minimizing concurrency per
/// resource class. Instance counts in `resources` are ignored — FDS
/// *derives* them.
///
/// # Errors
///
/// [`ScheduleError::DeadlineTooTight`] when the deadline is below the
/// critical path, or [`ScheduleError::NoResourceFor`] for uncovered
/// operations.
pub fn force_directed_schedule(
    dfg: &Dfg,
    resources: &ResourceSet,
    deadline: Step,
) -> Result<FdsResult, ScheduleError> {
    let n = dfg.len();
    let cp = critical_path(dfg, resources)?;
    if deadline < cp {
        return Err(ScheduleError::DeadlineTooTight {
            deadline,
            critical_path: cp,
        });
    }
    let class_of: Vec<usize> = dfg
        .nodes()
        .iter()
        .map(|node| {
            resources
                .class_for(node.op)
                .ok_or(ScheduleError::NoResourceFor(node.op))
        })
        .collect::<Result<_, _>>()?;
    let lat: Vec<u32> = class_of
        .iter()
        .map(|&c| resources.classes()[c].timing.latency())
        .collect();

    // `fixed[i] = Some(step)` once pinned.
    let mut fixed: Vec<Option<Step>> = vec![None; n];

    // Windows honoring both precedence and already-pinned placements.
    let windows = |fixed: &[Option<Step>]| -> Result<Vec<(Step, Step)>, ScheduleError> {
        let mut lo = asap(dfg, resources)?;
        let mut hi = alap(dfg, resources, deadline)?;
        // Tighten around pinned nodes, propagating forward and backward.
        for _ in 0..n {
            let mut changed = false;
            for i in 0..n {
                if let Some(s) = fixed[i] {
                    if lo[i] != s || hi[i] != s {
                        lo[i] = s;
                        hi[i] = s;
                        changed = true;
                    }
                }
                let id = NodeId(i as u32);
                for p in dfg.preds(id) {
                    let min = lo[p.index()] + lat[p.index()] + 1;
                    if lo[i] < min {
                        lo[i] = min;
                        changed = true;
                    }
                    let max = hi[i].saturating_sub(lat[p.index()] + 1);
                    if hi[p.index()] > max {
                        hi[p.index()] = max;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Ok(lo.into_iter().zip(hi).collect())
    };

    // Pin all nodes, lowest-force first.
    for _ in 0..n {
        let win = windows(&fixed)?;
        // Distribution graphs: expected initiations per (class, step).
        let classes = resources.classes().len();
        let mut dg = vec![vec![0.0f64; deadline as usize + 1]; classes];
        for i in 0..n {
            let (lo, hi) = win[i];
            let w = (hi - lo + 1) as f64;
            for t in lo..=hi {
                dg[class_of[i]][t as usize] += 1.0 / w;
            }
        }
        // Lowest self-force placement among unscheduled nodes.
        let mut best: Option<(usize, Step, f64)> = None;
        for i in 0..n {
            if fixed[i].is_some() {
                continue;
            }
            let (lo, hi) = win[i];
            let class = class_of[i];
            let avg: f64 =
                (lo..=hi).map(|t| dg[class][t as usize]).sum::<f64>() / (hi - lo + 1) as f64;
            for t in lo..=hi {
                // Placing here raises DG(t) by (1 - 1/w); the self-force
                // relative to the window average ranks the placements.
                let force = dg[class][t as usize] - avg;
                let better = match &best {
                    None => true,
                    Some((_, _, f)) => {
                        force < *f - 1e-12
                            || ((force - *f).abs() <= 1e-12
                                && (i, t) < (best.as_ref().unwrap().0, best.as_ref().unwrap().1))
                    }
                };
                if better {
                    best = Some((i, t, force));
                }
            }
        }
        let (i, t, _) = best.expect("an unscheduled node exists each iteration");
        fixed[i] = Some(t);
    }

    // Bind instances per class: earliest-free scan, like the list
    // scheduler, growing the instance pool on demand.
    let read_step: Vec<Step> = fixed.iter().map(|s| s.expect("all pinned")).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (read_step[i], i));
    let mut pools: Vec<Vec<Step>> = vec![Vec::new(); resources.classes().len()];
    let mut binding = vec![(0usize, 0usize); n];
    for i in order {
        let class = class_of[i];
        let ii = resources.classes()[class].timing.initiation_interval() as Step;
        let t = read_step[i];
        let inst = match pools[class].iter().position(|&free| free <= t) {
            Some(inst) => inst,
            None => {
                pools[class].push(1);
                pools[class].len() - 1
            }
        };
        pools[class][inst] = t + ii;
        binding[i] = (class, inst);
    }
    let instances = pools.iter().map(Vec::len).collect();
    let length = (0..n).map(|i| read_step[i] + lat[i]).max().unwrap_or(0);
    Ok(FdsResult {
        schedule: Schedule {
            read_step,
            binding,
            latency: lat,
            length,
        },
        instances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ResourceClass;
    use crate::workloads::diffeq;
    use clockless_core::{ModuleTiming, Op};
    use std::collections::HashMap;

    fn classes() -> ResourceSet {
        ResourceSet::new([
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 99),
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub],
                ModuleTiming::Pipelined { latency: 1 },
                99,
            ),
        ])
    }

    fn check_valid(dfg: &Dfg, r: &FdsResult, deadline: Step) {
        let s = &r.schedule;
        assert!(s.length <= deadline);
        for i in 0..dfg.len() {
            let id = NodeId(i as u32);
            for p in dfg.preds(id) {
                assert!(
                    s.read_step[i] > s.commit_step(p),
                    "node {i} reads before producer {} commits",
                    p.index()
                );
            }
        }
        // Binding consistency: no instance double-booked within its II.
        let mut by_inst: HashMap<(usize, usize), Vec<Step>> = HashMap::new();
        for i in 0..dfg.len() {
            by_inst
                .entry(s.binding[i])
                .or_default()
                .push(s.read_step[i]);
        }
        for ((class, _), mut steps) in by_inst {
            steps.sort();
            let ii = classes().classes()[class].timing.initiation_interval() as Step;
            for w in steps.windows(2) {
                assert!(w[1] - w[0] >= ii, "initiations too close: {w:?}");
            }
        }
    }

    #[test]
    fn diffeq_at_critical_path_is_valid() {
        let g = diffeq();
        let r = classes();
        let cp = critical_path(&g, &r).unwrap();
        let fds = force_directed_schedule(&g, &r, cp).unwrap();
        check_valid(&g, &fds, cp);
    }

    #[test]
    fn relaxed_deadline_needs_fewer_multipliers() {
        let g = diffeq();
        let r = classes();
        let cp = critical_path(&g, &r).unwrap();
        let tight = force_directed_schedule(&g, &r, cp).unwrap();
        let relaxed = force_directed_schedule(&g, &r, cp + 6).unwrap();
        check_valid(&g, &relaxed, cp + 6);
        // The resource/latency trade: more time, fewer units.
        assert!(
            relaxed.instances[0] <= tight.instances[0],
            "tight {:?} vs relaxed {:?}",
            tight.instances,
            relaxed.instances
        );
        assert!(
            relaxed.instances[0] < 6,
            "FDS must balance the 6 multiplies"
        );
    }

    #[test]
    fn fds_never_beats_its_own_deadline_promise() {
        let g = crate::workloads::fir(&[1, 2, 3, 4, 5, 6]);
        let r = classes();
        let cp = critical_path(&g, &r).unwrap();
        for slack in [0, 2, 5] {
            let fds = force_directed_schedule(&g, &r, cp + slack).unwrap();
            check_valid(&g, &fds, cp + slack);
        }
    }

    #[test]
    fn too_tight_deadline_rejected() {
        let g = diffeq();
        let r = classes();
        let cp = critical_path(&g, &r).unwrap();
        assert!(matches!(
            force_directed_schedule(&g, &r, cp - 1),
            Err(ScheduleError::DeadlineTooTight { .. })
        ));
    }

    #[test]
    fn fds_schedule_emits_and_verifies() {
        use crate::alloc::allocate;
        use crate::emit::emit;
        let g = diffeq();
        let r = classes();
        let cp = critical_path(&g, &r).unwrap();
        let fds = force_directed_schedule(&g, &r, cp + 3).unwrap();
        let alloc = allocate(&g, &fds.schedule);
        let inputs: HashMap<&str, i64> = [("x", 4), ("y", -3), ("u", 7), ("dx", 2)]
            .into_iter()
            .collect();
        let syn = emit(&g, &fds.schedule, &alloc, &r, &inputs).unwrap();
        let mut sim = clockless_core::RtSimulation::new(&syn.model).unwrap();
        let summary = sim.run_to_completion().unwrap();
        let reference = g.evaluate(&inputs).unwrap();
        for (name, reg) in &syn.output_registers {
            assert_eq!(
                summary.register(reg),
                Some(clockless_core::Value::Num(reference[name])),
                "output {name}"
            );
        }
    }

    #[test]
    fn fds_balances_better_than_asap_packing() {
        // Eight independent multiplies, deadline allows 4 waves: ASAP
        // would pile all 8 into step 1 (8 instances); FDS spreads them.
        let mut g = Dfg::new("m8");
        for i in 0..8 {
            let a = format!("a{i}");
            let b = format!("b{i}");
            let n = g.node(Op::Mul, a.as_str(), b.as_str()).unwrap();
            g.output(format!("o{i}"), n).unwrap();
        }
        let r = classes();
        let cp = critical_path(&g, &r).unwrap(); // 3 (read 1, commit 3)
        let fds = force_directed_schedule(&g, &r, cp + 3).unwrap();
        check_valid(&g, &fds, cp + 3);
        assert!(
            fds.instances[0] <= 2,
            "expected ~2 multipliers over 4 initiation slots, got {:?}",
            fds.instances
        );
    }
}
