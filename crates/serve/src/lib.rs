//! Simulation as a service: the `clockless serve` daemon.
//!
//! One-shot CLI invocations pay the full pipeline on every call — spawn,
//! parse, elaborate, lower — before a single delta cycle runs. For
//! clock-free models the *execution* is the cheap part (the `1 + 6·CS_MAX`
//! quiescence bound keeps runs short), so the fixed costs dominate
//! exactly the workloads that issue many small jobs: allocator search
//! loops, fault drills, regression sweeps. This crate keeps a process
//! resident and amortizes those costs:
//!
//! * **Plan cache** ([`cache`]): models are parsed and lowered to
//!   [`ExecPlan`](clockless_core::plan::ExecPlan)s once, keyed by a
//!   content hash of the source text, with LRU eviction and
//!   hit/miss/eviction counters surfaced through the `stats` job.
//! * **NDJSON protocol** ([`protocol`]): one JSON request per line in,
//!   one response envelope per line out, over a Unix socket or
//!   stdin/stdout. `docs/PROTOCOL.md` is the wire reference.
//! * **Job execution** ([`daemon`]): every job runs on the same
//!   job-queue executor ([`clockless_fleet::ThreadPool`]) the batch
//!   engine uses, inheriting its panic fence — a malformed or hostile
//!   job produces an error envelope, never a dead daemon.
//!
//! The payload of every successful `run`/`faults`/`fleet` response is
//! **byte-identical** to what the corresponding one-shot CLI command
//! prints. That is the crate's contract: a client can switch between
//! `clockless run --json` and a daemon `run` job and diff clean.
//!
//! # Examples
//!
//! A complete in-memory session:
//!
//! ```
//! use clockless_serve::{decode_payload, Daemon, ServeConfig};
//!
//! let daemon = Daemon::new(ServeConfig::default());
//! let requests = concat!(
//!     "{\"id\":1,\"op\":\"run\",\"model\":\"model t steps 1\\nregister R init 3\\n\"}\n",
//!     "{\"id\":2,\"op\":\"stats\"}\n",
//! );
//! let mut replies = Vec::new();
//! daemon.serve_connection(requests.as_bytes(), &mut replies);
//! let text = String::from_utf8(replies).unwrap();
//! let lines: Vec<&str> = text.lines().collect();
//! let run_doc = decode_payload(lines[0]).unwrap();
//! assert!(run_doc.contains("\"model\": \"t\""));
//! let stats_doc = decode_payload(lines[1]).unwrap();
//! assert!(stats_doc.contains("\"misses\": 1"));
//! ```

pub mod cache;
pub mod client;
pub mod daemon;
mod jobs;
pub mod protocol;

pub use cache::{content_hash, CacheStats, CachedPlan, PlanCache};
pub use client::run_client;
pub use daemon::{ConnectionOutcome, Daemon, ServeConfig, ServeStats};
pub use protocol::{
    decode_payload, render_error, render_ok, ErrorCode, JobError, Json, Request, PROTOCOL_VERSION,
};
