//! VHDL import: from §2.7 source text to a runnable [`RtModel`].
//!
//! Combines the subset parser of `clockless_core::vhdl_parse` with the
//! tuple reconstruction of [`crate::semantics`]: the `TRANS`
//! instantiations become transfer specs, the specs become partial tuples,
//! the partials merge into full tuples against the parsed module
//! timings — the paper's reverse mapping applied to actual VHDL source.

use std::fmt;

use clockless_core::vhdl_parse::{parse_vhdl, ParseVhdlError, ParsedDesign};
use clockless_core::{ModelError, RtModel};

use crate::semantics::{merge_partials, reconstruct_partials, SemanticsError};

/// Errors from importing a VHDL design.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImportVhdlError {
    /// The source text could not be parsed.
    Parse(ParseVhdlError),
    /// The transfer processes could not be reassembled into tuples.
    Semantics(SemanticsError),
    /// The reconstructed model failed validation.
    Model(ModelError),
}

impl fmt::Display for ImportVhdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportVhdlError::Parse(e) => write!(f, "parse error: {e}"),
            ImportVhdlError::Semantics(e) => write!(f, "reconstruction failed: {e}"),
            ImportVhdlError::Model(e) => write!(f, "invalid model: {e}"),
        }
    }
}

impl std::error::Error for ImportVhdlError {}

impl From<ParseVhdlError> for ImportVhdlError {
    fn from(e: ParseVhdlError) -> Self {
        ImportVhdlError::Parse(e)
    }
}
impl From<SemanticsError> for ImportVhdlError {
    fn from(e: SemanticsError) -> Self {
        ImportVhdlError::Semantics(e)
    }
}
impl From<ModelError> for ImportVhdlError {
    fn from(e: ModelError) -> Self {
        ImportVhdlError::Model(e)
    }
}

/// Builds a validated model from a parsed design.
///
/// # Errors
///
/// [`ImportVhdlError`] when reconstruction or validation fails.
pub fn model_from_design(design: &ParsedDesign) -> Result<RtModel, ImportVhdlError> {
    let mut model = RtModel::new(design.name.clone(), design.cs_max);
    // Registers in REG-instance order; an array is declared at its first
    // element's position (recreating the original declaration order),
    // with element inits restored from the signal defaults.
    for (name, init) in &design.registers {
        let array = clockless_core::tuples::indexed_parts(name)
            .and_then(|(base, _)| design.arrays.iter().find(|a| a.name == base));
        match array {
            Some(a) => {
                if model.array_by_name(&a.name).is_none() {
                    model.add_array(a.name.clone(), a.len, a.init)?;
                }
                if *init != a.init {
                    model.set_register_init(name, *init)?;
                }
            }
            None => {
                model.add_register_init(name.clone(), *init)?;
            }
        }
    }
    for m in &design.memories {
        model.add_memory(m.name.clone(), m.len, m.init)?;
    }
    for b in &design.buses {
        model.add_bus(b.clone())?;
    }
    for m in &design.modules {
        model.add_module(m.clone())?;
    }
    let partials = reconstruct_partials(&design.specs)?;
    let tuples = merge_partials(partials, &model)?;
    for t in tuples {
        model.add_transfer(t)?;
    }
    Ok(model)
}

/// Parses VHDL source in the paper's subset and reassembles the model.
///
/// # Errors
///
/// [`ImportVhdlError`] describing the first failure.
///
/// # Examples
///
/// A full round trip — the model prints as the paper's VHDL and the VHDL
/// reads back as the model:
///
/// ```
/// use clockless_core::model::fig1_model;
/// use clockless_core::vhdl::emit_vhdl;
/// use clockless_verify::model_from_vhdl;
///
/// let model = fig1_model(3, 4);
/// let vhdl = emit_vhdl(&model)?;
/// let back = model_from_vhdl(&vhdl)?;
/// assert_eq!(back.tuples(), model.tuples());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn model_from_vhdl(text: &str) -> Result<RtModel, ImportVhdlError> {
    let design = parse_vhdl(text)?;
    model_from_design(&design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;
    use clockless_core::prelude::*;
    use clockless_core::vhdl::emit_vhdl;

    fn assert_roundtrip(model: &RtModel) {
        let vhdl = emit_vhdl(model).expect("emits");
        let back = model_from_vhdl(&vhdl).expect("imports");
        assert_eq!(back.cs_max(), model.cs_max());
        assert_eq!(back.registers(), model.registers());
        assert_eq!(back.buses(), model.buses());
        assert_eq!(back.modules(), model.modules());
        assert_eq!(back.arrays(), model.arrays());
        assert_eq!(back.memories(), model.memories());
        let mut a = back.tuples().to_vec();
        let mut b = model.tuples().to_vec();
        let key = |t: &TransferTuple| (t.module.clone(), t.read_step);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn fig1_roundtrips() {
        assert_roundtrip(&fig1_model(3, 4));
    }

    #[test]
    fn multi_op_model_roundtrips() {
        let mut m = RtModel::new("alu_demo", 6);
        m.add_register_init("A", Value::Num(12)).unwrap();
        m.add_register_init("B", Value::Num(5)).unwrap();
        m.add_register("T").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_bus("W").unwrap();
        m.add_module(ModuleDecl::multi(
            "ALU",
            [Op::Add, Op::Sub, Op::Min],
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "ALU")
                .src_a("A", "X")
                .src_b("B", "Y")
                .op(Op::Sub)
                .write(2, "W", "T"),
        )
        .unwrap();
        m.add_transfer(
            TransferTuple::new(4, "ALU")
                .src_a("T", "X")
                .src_b("B", "Y")
                .op(Op::Min)
                .write(4, "W", "T"),
        )
        .unwrap();
        assert_roundtrip(&m);
    }

    #[test]
    fn sequential_module_roundtrips() {
        let mut m = RtModel::new("seq", 8);
        m.add_register_init("A", Value::Num(3)).unwrap();
        m.add_register_init("B", Value::Num(4)).unwrap();
        m.add_register("T").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_bus("W").unwrap();
        m.add_module(ModuleDecl::single(
            "MUL",
            Op::Mul,
            ModuleTiming::Sequential { latency: 3 },
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "MUL")
                .src_a("A", "X")
                .src_b("B", "Y")
                .write(5, "W", "T"),
        )
        .unwrap();
        assert_roundtrip(&m);
    }

    #[test]
    fn guarded_model_roundtrips() {
        let model = clockless_core::text::parse_model(
            "model gv steps 3\nregister R1 init 1\nregister R2 init 5\n\
             bus B1\nbus B2\nmodule CP ops passa comb\n\
             transfer if R1 /= 0 then (R2,B1,-,-,1,CP,1,B2,R1)\n\
             transfer if not (R2 < 3 and R1 >= 0) then (R1,B1,-,-,2,CP,2,B2,R2)\n",
        )
        .unwrap();
        let vhdl = emit_vhdl(&model).unwrap();
        assert!(vhdl.contains("entity work.TRANSG"), "{vhdl}");
        assert!(vhdl.contains("g_0 <= 1 when R1_out /= 0 else 0;"), "{vhdl}");
        assert!(
            vhdl.contains("g_1 <= 1 when not (R2_out < 3 and R1_out >= 0) else 0;"),
            "{vhdl}"
        );
        assert_roundtrip(&model);
    }

    #[test]
    fn array_and_memory_model_roundtrips() {
        let model = clockless_core::text::parse_model(
            "model store steps 4\nregister R init 1\narray A[2] init 7\n\
             memory M[3] init 0\nbus B1\nbus B2\nmodule CP ops passa comb\n\
             transfer if A[1] >= 3 then (A[0],B1,-,-,1,CP,1,B2,M[1])\n\
             transfer (M[0],B1,-,-,2,CP,2,B2,R)\n\
             transfer (R,B1,-,-,3,CP,3,B2,M[R])\n",
        )
        .unwrap();
        let vhdl = emit_vhdl(&model).unwrap();
        assert!(vhdl.contains("-- array: A length 2 init 7"), "{vhdl}");
        assert!(vhdl.contains("-- memory: M length 3 init 0"), "{vhdl}");
        assert!(vhdl.contains("-- memory port: M[R]"), "{vhdl}");
        assert!(
            vhdl.contains("A_0__proc : entity work.REG port map (PH, A_0__in, A_0__out);"),
            "{vhdl}"
        );
        assert_roundtrip(&model);
    }

    #[test]
    fn imported_model_simulates_identically() {
        let model = fig1_model(21, 21);
        let vhdl = emit_vhdl(&model).unwrap();
        let imported = model_from_vhdl(&vhdl).unwrap();
        let mut a = RtSimulation::new(&model).unwrap();
        let mut b = RtSimulation::new(&imported).unwrap();
        let ra = a.run_to_completion().unwrap();
        let rb = b.run_to_completion().unwrap();
        assert_eq!(a.registers(), b.registers());
        assert_eq!(ra.stats, rb.stats);
    }

    #[test]
    fn hls_output_roundtrips_through_vhdl() {
        use clockless_hls::prelude::*;
        let g = diffeq();
        let inputs = [("x", 1), ("y", 2), ("u", 3), ("dx", 1)]
            .into_iter()
            .collect();
        let resources = clockless_hls::ResourceSet::new([
            clockless_hls::ResourceClass::new(
                "MUL",
                [Op::Mul],
                ModuleTiming::Pipelined { latency: 2 },
                2,
            ),
            clockless_hls::ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub],
                ModuleTiming::Pipelined { latency: 1 },
                2,
            ),
        ]);
        let syn = synthesize(&g, &resources, &inputs).unwrap();
        assert_roundtrip(&syn.model);
    }
}
