//! # clockless-verify — formal semantics, conflict checking, equivalence
//!
//! §2.7 of the DATE 1998 paper argues that the clock-free subset's "easy
//! mappings lead to simple formal semantics, which form the basis for
//! automatic verification tools". This crate is that verification layer:
//!
//! * [`semantics`] — the bidirectional tuple ↔ transfer-process mapping
//!   of §2.7: expansion is in `clockless-core`; reconstruction (via the
//!   paper's *partial tuples*) and the round-trip consistency check live
//!   here.
//! * [`conflicts`] — a static resource-conflict analysis over the tuples,
//!   cross-checked against the dynamic `ILLEGAL` detector of the
//!   simulation (both must agree, and the dynamic one additionally sees
//!   data-dependent illegality).
//! * [`symbolic`] — symbolic simulation: registers as expression trees,
//!   executed with exact control-step semantics.
//! * [`mod@normalize`] — polynomial normal forms over wrapping `i64` (the
//!   "computer algebra simplification" of the verification flow).
//! * [`equiv`] — the automatic proving procedure for high-level-synthesis
//!   results: RT model vs dataflow graph, proven by normalization with
//!   randomized concrete testing as fallback — plus [`backend_equiv`],
//!   the differential check that the interpreted delta kernel and the
//!   compiled phase-schedule engine are observationally byte-identical.
//! * [`vhdl_import`] — VHDL source in the paper's subset reassembled
//!   into runnable models (parser + tuple reconstruction).
//! * [`lint`] — schedule lints: dead writes, undefined reads, unused
//!   resources.
//! * [`sweep`] — the static/dynamic cross-check at batch scale, farming
//!   traced runs over the `clockless-fleet` worker pool.
//! * [`faults`] — seeded fault-injection campaigns: deterministic model
//!   mutants (stuck registers, double drivers, dropped/skewed transfers,
//!   corrupted inits) run on private kernels and classified against the
//!   golden run, measuring how much of the fault space the `ILLEGAL`
//!   detector actually observes.
//! * [`monitor`] — golden-run value monitors: checker-mode selection and
//!   one-recording construction of the check program campaigns arm to
//!   catch the silent value corruption the resolution function misses.
//! * [`invariants`] — mined functional invariants (ranges, reachable
//!   sets, pair relations) learned from the clean run and carried in a
//!   deterministic JSON artifact (`clockless mine` / `run --check`).
//!
//! ## Example
//!
//! ```
//! use clockless_verify::semantics::roundtrip_check;
//! use clockless_core::model::fig1_model;
//!
//! // Tuples -> processes -> tuples is the identity (§2.7).
//! roundtrip_check(&fig1_model(3, 4))?;
//! # Ok::<(), clockless_verify::semantics::SemanticsError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conflicts;
pub mod equiv;
pub mod faults;
pub mod fuzz;
pub mod invariants;
pub mod lint;
pub mod monitor;
pub mod normalize;
pub mod semantics;
pub mod sweep;
pub mod symbolic;
pub mod vhdl_import;

pub use conflicts::{cross_check, static_conflicts, CrossCheck, PredictedConflict};
pub use equiv::{
    backend_equiv, concrete_check, dfg_expressions, verify_synthesis, BackendDivergence,
    OutputVerdict, SynthesisVerification, VerifyError,
};
pub use faults::{
    generate_faults, run_campaign, run_campaign_with_faults, CampaignConfig, CampaignEngine,
    CampaignReport, CampaignRow, ClassCoverage, FaultClass, FaultKind, FaultOutcome, FaultsError,
    ALL_CLASSES,
};
pub use fuzz::{generate_hls_model, generate_model, run_fuzz, FuzzDivergence, FuzzReport};
pub use invariants::{
    mine_artifact, mine_invariants, mine_program, parse_artifact, render_artifact, REACHABLE_MAX,
};
pub use lint::{lint_model, Lint};
pub use monitor::{build_checkers, CheckerMode, ParseCheckerModeError};
pub use normalize::{equivalent, normalize, Atom, Poly};
pub use semantics::{merge_partials, reconstruct_partials, roundtrip_check, SemanticsError};
pub use sweep::{conflict_sweep, ConflictSweep, SweepRow};
pub use symbolic::{symbolic_run, Expr, SymbolicError};
pub use vhdl_import::{model_from_design, model_from_vhdl, ImportVhdlError};
