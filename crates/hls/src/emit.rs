//! Emission: from a scheduled, allocated dataflow graph to a clock-free
//! RT model.
//!
//! This is the paper's §4 flow made executable: "High level synthesis
//! results are translated into our subset and can then be simulated at a
//! high level before the next synthesis steps translate to a more
//! concrete implementation." Each node becomes one transfer tuple; the
//! register/bus/module names come from the allocation and binding.

use std::collections::HashMap;
use std::fmt;

use clockless_core::{ModelError, ModuleDecl, RtModel, TransferTuple, Value};

use crate::alloc::{allocate, Allocation, ValueId};
use crate::dfg::{Dfg, DfgError, NodeId, Operand};
use crate::schedule::{list_schedule, ResourceSet, Schedule, ScheduleError};

/// A synthesized design: the emitted model plus the maps needed to
/// interpret it.
#[derive(Debug, Clone)]
pub struct Synthesized {
    /// The clock-free RT model.
    pub model: RtModel,
    /// Output name → register name holding the result after the run.
    pub output_registers: HashMap<String, String>,
    /// The schedule the model implements.
    pub schedule: Schedule,
    /// The allocation the model implements.
    pub allocation: Allocation,
}

/// Errors from the synthesis flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// Scheduling failed.
    Schedule(ScheduleError),
    /// The emitted model was rejected by validation — indicates an
    /// internal inconsistency between scheduler, allocator and emitter.
    Emit(ModelError),
    /// An input value was missing at emission time (registers are
    /// preloaded with concrete inputs).
    MissingInput(String),
    /// The graph was invalid.
    Dfg(DfgError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            SynthesisError::Emit(e) => write!(f, "emission produced invalid model: {e}"),
            SynthesisError::MissingInput(n) => write!(f, "no value supplied for input `{n}`"),
            SynthesisError::Dfg(e) => write!(f, "invalid dataflow graph: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<ScheduleError> for SynthesisError {
    fn from(e: ScheduleError) -> Self {
        SynthesisError::Schedule(e)
    }
}
impl From<ModelError> for SynthesisError {
    fn from(e: ModelError) -> Self {
        SynthesisError::Emit(e)
    }
}
impl From<DfgError> for SynthesisError {
    fn from(e: DfgError) -> Self {
        SynthesisError::Dfg(e)
    }
}

/// Emits the RT model for a scheduled and allocated graph, preloading
/// input registers with the concrete `inputs`.
///
/// # Errors
///
/// [`SynthesisError::MissingInput`] if an input value is absent, or
/// [`SynthesisError::Emit`] if the emitted tuples fail model validation
/// (which would indicate a scheduler/allocator bug).
pub fn emit(
    dfg: &Dfg,
    schedule: &Schedule,
    allocation: &Allocation,
    resources: &ResourceSet,
    inputs: &HashMap<&str, i64>,
) -> Result<Synthesized, SynthesisError> {
    let mut model = RtModel::new(dfg.name(), schedule.length);

    // Registers, preloaded where they first host an input or constant.
    let mut init_of: Vec<Value> = vec![Value::Disc; allocation.register_count];
    for (v, &r) in &allocation.register_of {
        match v {
            ValueId::Input(name) => {
                let val = inputs
                    .get(name.as_str())
                    .copied()
                    .ok_or_else(|| SynthesisError::MissingInput(name.clone()))?;
                init_of[r] = Value::Num(val);
            }
            ValueId::Const(c) => init_of[r] = Value::Num(*c),
            ValueId::Node(_) => {}
        }
    }
    for (r, init) in init_of.iter().enumerate() {
        model.add_register_init(reg_name(r), *init)?;
    }

    // Buses.
    for b in 0..allocation.bus_count {
        model.add_bus(bus_name(b))?;
    }

    // Module instances actually used by the binding.
    let mut instantiated: Vec<(usize, usize)> = Vec::new();
    for idx in 0..dfg.len() {
        let (class, inst) = schedule.binding[idx];
        if !instantiated.contains(&(class, inst)) {
            instantiated.push((class, inst));
            let c = &resources.classes()[class];
            model.add_module(ModuleDecl {
                name: instance_name(resources, class, inst),
                ops: c.ops.clone(),
                timing: c.timing,
            })?;
        }
    }

    // One transfer per node.
    let reg_of_operand = |o: &Operand| -> String {
        let v = match o {
            Operand::Node(n) => ValueId::Node(*n),
            Operand::Input(n) => ValueId::Input(n.clone()),
            Operand::Const(c) => ValueId::Const(*c),
        };
        reg_name(allocation.register(&v))
    };
    for idx in 0..dfg.len() {
        let id = NodeId(idx as u32);
        let node = &dfg.nodes()[idx];
        let (class, inst) = schedule.binding[idx];
        let cdecl = &resources.classes()[class];
        let mut tuple = TransferTuple::new(
            schedule.read_step[idx],
            instance_name(resources, class, inst),
        );
        let (bus_a, bus_b) = allocation.operand_bus[idx];
        tuple = tuple.src_a(reg_of_operand(&node.a), bus_name(bus_a));
        if let Some(b) = &node.b {
            tuple = tuple.src_b(reg_of_operand(b), bus_name(bus_b));
        }
        if cdecl.ops.len() > 1 {
            tuple = tuple.op(node.op);
        }
        let dst = reg_name(allocation.register(&ValueId::Node(id)));
        tuple = tuple.write(
            schedule.commit_step(id),
            bus_name(allocation.result_bus[idx]),
            dst,
        );
        model.add_transfer(tuple)?;
    }

    let output_registers = dfg
        .outputs()
        .iter()
        .map(|(name, n)| {
            (
                name.clone(),
                reg_name(allocation.register(&ValueId::Node(*n))),
            )
        })
        .collect();

    Ok(Synthesized {
        model,
        output_registers,
        schedule: schedule.clone(),
        allocation: allocation.clone(),
    })
}

/// The full flow: list scheduling, allocation, emission.
///
/// # Errors
///
/// Propagates scheduling, allocation and emission errors.
///
/// # Examples
///
/// ```
/// use clockless_hls::prelude::*;
/// use clockless_core::prelude::*;
///
/// let mut g = Dfg::new("demo");
/// let s = g.node(Op::Add, "a", "b")?;
/// let m = g.node(Op::Mul, s, 3)?;
/// g.output("out", m)?;
///
/// let resources = ResourceSet::unconstrained(&g);
/// let inputs = [("a", 4), ("b", 6)].into_iter().collect();
/// let syn = synthesize(&g, &resources, &inputs)?;
///
/// let mut sim = RtSimulation::new(&syn.model)?;
/// let summary = sim.run_to_completion()?;
/// let out_reg = &syn.output_registers["out"];
/// assert_eq!(summary.register(out_reg), Some(Value::Num(30)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn synthesize(
    dfg: &Dfg,
    resources: &ResourceSet,
    inputs: &HashMap<&str, i64>,
) -> Result<Synthesized, SynthesisError> {
    let schedule = list_schedule(dfg, resources)?;
    let allocation = allocate(dfg, &schedule);
    emit(dfg, &schedule, &allocation, resources, inputs)
}

fn reg_name(idx: usize) -> String {
    format!("r{idx}")
}

fn bus_name(idx: usize) -> String {
    format!("bus{idx}")
}

fn instance_name(resources: &ResourceSet, class: usize, inst: usize) -> String {
    format!("{}{}", resources.classes()[class].name, inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ResourceClass;
    use clockless_core::{ModuleTiming, Op, RtSimulation};

    fn diamond() -> Dfg {
        let mut g = Dfg::new("diamond");
        let s = g.node(Op::Add, "a", "b").unwrap();
        let d = g.node(Op::Sub, "c", "d").unwrap();
        let m = g.node(Op::Mul, s, d).unwrap();
        g.output("out", m).unwrap();
        g
    }

    fn check_against_reference(g: &Dfg, resources: &ResourceSet, inputs: &[(&str, i64)]) {
        let map: HashMap<&str, i64> = inputs.iter().copied().collect();
        let syn = synthesize(g, resources, &map).expect("synthesis succeeds");
        let mut sim = RtSimulation::traced(&syn.model).expect("elaborates");
        let summary = sim.run_to_completion().expect("runs");
        assert!(
            summary.conflicts.as_ref().unwrap().is_clean(),
            "emitted model must be conflict-free: {}",
            summary.conflicts.unwrap()
        );
        let reference = g.evaluate(&map).expect("reference evaluation");
        for (name, reg) in &syn.output_registers {
            assert_eq!(
                summary.register(reg),
                Some(clockless_core::Value::Num(reference[name])),
                "output `{name}` in register `{reg}`"
            );
        }
    }

    #[test]
    fn diamond_constrained_matches_reference() {
        let g = diamond();
        let r = ResourceSet::new([
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub],
                ModuleTiming::Pipelined { latency: 1 },
                1,
            ),
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 1),
        ]);
        check_against_reference(&g, &r, &[("a", 5), ("b", 3), ("c", 10), ("d", 4)]);
    }

    #[test]
    fn diamond_unconstrained_matches_reference() {
        let g = diamond();
        let r = ResourceSet::unconstrained(&g);
        check_against_reference(&g, &r, &[("a", -2), ("b", 9), ("c", 0), ("d", 1)]);
    }

    #[test]
    fn multi_op_alu_gets_op_selectors() {
        let g = diamond();
        let r = ResourceSet::new([
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub],
                ModuleTiming::Pipelined { latency: 1 },
                1,
            ),
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 1),
        ]);
        let map = [("a", 1), ("b", 2), ("c", 3), ("d", 4)]
            .into_iter()
            .collect();
        let syn = synthesize(&g, &r, &map).unwrap();
        // The ALU tuples carry explicit ops; the MUL tuple does not.
        let add_tuple = &syn.model.tuples()[0];
        assert!(add_tuple.op.is_some());
        let mul_tuple = syn
            .model
            .tuples()
            .iter()
            .find(|t| t.module.starts_with("MUL"))
            .unwrap();
        assert!(mul_tuple.op.is_none());
    }

    #[test]
    fn missing_input_reported() {
        let g = diamond();
        let r = ResourceSet::unconstrained(&g);
        let map = [("a", 1)].into_iter().collect();
        assert!(matches!(
            synthesize(&g, &r, &map),
            Err(SynthesisError::MissingInput(_))
        ));
    }

    #[test]
    fn unary_and_shift_nodes_emit() {
        let mut g = Dfg::new("u");
        let n = g.unary(Op::Neg, "x").unwrap();
        let s = g.node(Op::Shr, "x", 2).unwrap();
        let o = g.node(Op::Add, n, s).unwrap();
        g.output("y", o).unwrap();
        let r = ResourceSet::unconstrained(&g);
        check_against_reference(&g, &r, &[("x", 40)]);
        // -40 + 10 = -30
        let map = [("x", 40)].into_iter().collect();
        let syn = synthesize(&g, &r, &map).unwrap();
        let mut sim = RtSimulation::new(&syn.model).unwrap();
        let summary = sim.run_to_completion().unwrap();
        assert_eq!(
            summary.register(&syn.output_registers["y"]),
            Some(clockless_core::Value::Num(-30))
        );
    }

    #[test]
    fn sequential_multiplier_flow() {
        let mut g = Dfg::new("seqmul");
        let m1 = g.node(Op::Mul, "a", "b").unwrap();
        let m2 = g.node(Op::Mul, "c", "d").unwrap();
        let s = g.node(Op::Add, m1, m2).unwrap();
        g.output("out", s).unwrap();
        let r = ResourceSet::new([
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Sequential { latency: 2 }, 1),
            ResourceClass::new("ADD", [Op::Add], ModuleTiming::Pipelined { latency: 1 }, 1),
        ]);
        check_against_reference(&g, &r, &[("a", 3), ("b", 4), ("c", 5), ("d", 6)]);
    }
}
