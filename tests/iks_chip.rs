//! Experiment E4: the IKS chip application (§3, Fig. 3) across the whole
//! flow — microcode → transfers → clock-free simulation → equivalence
//! with the algorithmic level, plus translation to clocked RTL.

use clockless::clocked::{check_clocked_equivalence, ClockScheme, HandshakeSim};
use clockless::core::RtSimulation;
use clockless::iks::prelude::*;
use clockless::iks::{ik_microprogram, ik_opcode_maps, THETA1_REG, THETA2_REG};
use clockless::verify::{cross_check, roundtrip_check};

fn constants() -> IkConstants {
    IkConstants::new(ArmGeometry::new(1.0, 1.0))
}

fn chip_angles(px: f64, py: f64) -> (i64, i64) {
    let chip = build_ik_chip(to_fx(px), to_fx(py), constants()).expect("chip builds");
    let mut sim = RtSimulation::new(&chip.model).expect("elaborates");
    let summary = sim.run_to_completion().expect("runs");
    (
        summary
            .register(THETA1_REG)
            .unwrap()
            .num()
            .expect("θ1 number"),
        summary
            .register(THETA2_REG)
            .unwrap()
            .num()
            .expect("θ2 number"),
    )
}

#[test]
fn pose_grid_matches_golden_model_bit_exactly() {
    let consts = constants();
    let mut checked = 0;
    for ix in -4..=4 {
        for iy in -4..=4 {
            let (px, py) = (ix as f64 * 0.4, iy as f64 * 0.4);
            let r = (px * px + py * py).sqrt();
            if !(0.4..=1.8).contains(&r) {
                continue;
            }
            let Ok(golden) = solve_ik(to_fx(px), to_fx(py), &consts) else {
                continue;
            };
            let (t1, t2) = chip_angles(px, py);
            assert_eq!(t1, golden.theta1, "θ1 at ({px},{py})");
            assert_eq!(t2, golden.theta2, "θ2 at ({px},{py})");
            checked += 1;
        }
    }
    assert!(checked >= 20, "checked only {checked} poses");
}

#[test]
fn chip_works_for_other_geometries() {
    for (l1, l2) in [(2.0, 1.5), (0.8, 1.3), (1.0, 0.5)] {
        let consts = IkConstants::new(ArmGeometry::new(l1, l2));
        let (px, py) = (l1 * 0.7, l2 * 0.9);
        let chip = build_ik_chip(to_fx(px), to_fx(py), consts).unwrap();
        let mut sim = RtSimulation::new(&chip.model).unwrap();
        let summary = sim.run_to_completion().unwrap();
        let golden = solve_ik(to_fx(px), to_fx(py), &consts).unwrap();
        assert_eq!(
            summary.register(THETA1_REG).unwrap().num(),
            Some(golden.theta1)
        );
        assert_eq!(
            summary.register(THETA2_REG).unwrap().num(),
            Some(golden.theta2)
        );
    }
}

#[test]
fn chip_microprogram_is_conflict_free() {
    let chip = build_ik_chip(to_fx(1.0), to_fx(0.8), constants()).unwrap();
    let cc = cross_check(&chip.model).unwrap();
    assert!(cc.predicted.is_empty(), "static: {:?}", cc.predicted);
    assert!(cc.dynamic_only.is_empty(), "dynamic: {:?}", cc.dynamic_only);
}

#[test]
fn chip_tuples_roundtrip_through_processes() {
    let chip = build_ik_chip(to_fx(1.0), to_fx(0.8), constants()).unwrap();
    roundtrip_check(&chip.model).expect("§2.7 mappings invert on the chip model");
}

#[test]
fn chip_translates_to_clocked_rtl_equivalently() {
    let chip = build_ik_chip(to_fx(0.9), to_fx(1.1), constants()).unwrap();
    for scheme in [
        ClockScheme::OneCyclePerStep {
            period_fs: clockless::kernel::NS,
        },
        ClockScheme::TwoCyclesPerStep {
            period_fs: clockless::kernel::NS,
        },
    ] {
        let report = check_clocked_equivalence(&chip.model, scheme).unwrap();
        assert!(report.equivalent(), "{report}");
    }
}

#[test]
fn chip_handshake_rendering_computes_the_same_angles() {
    let chip = build_ik_chip(to_fx(1.3), to_fx(0.4), constants()).unwrap();
    let mut hs = HandshakeSim::new(&chip.model).unwrap();
    hs.run_to_completion().unwrap();
    let golden = solve_ik(to_fx(1.3), to_fx(0.4), &constants()).unwrap();
    assert_eq!(
        hs.register_value(THETA1_REG).unwrap().num(),
        Some(golden.theta1)
    );
    assert_eq!(
        hs.register_value(THETA2_REG).unwrap().num(),
        Some(golden.theta2)
    );
}

/// The §2.7 verification story taken to its conclusion: the chip model
/// is simulated **symbolically** with the pose as variables, and the
/// resulting expressions for θ1/θ2 are proven equal (by normalization)
/// to the algorithmic model's expressions — for *all* inputs, not just
/// the tested poses. `mulfx`/`atan2`/`sqrt` are opaque atoms, so the
/// equality is structural on those and polynomial on the ring fragment.
#[test]
fn ik_microprogram_proven_symbolically_for_all_poses() {
    use clockless::core::Op;
    use clockless::verify::{equivalent, symbolic_run, Expr};
    use std::collections::HashMap;
    use std::rc::Rc;

    let consts = constants();
    let chip = build_ik_chip(to_fx(1.0), to_fx(1.0), consts).unwrap();

    // Bind the pose registers to variables; constants stay concrete.
    let bindings: HashMap<String, Rc<Expr>> = [
        ("M0".to_string(), Expr::var("px")),
        ("M1".to_string(), Expr::var("py")),
    ]
    .into_iter()
    .collect();
    let state = symbolic_run(&chip.model, &bindings).expect("symbolic run");

    // The golden model as expressions, mirroring algorithm::solve_ik
    // step for step with the same operations.
    let frac = clockless::iks::fixed::FRAC;
    let apply = |op: Op, args: Vec<Rc<Expr>>| Expr::apply(op, args).expect("no illegal consts");
    let px = Expr::var("px");
    let py = Expr::var("py");
    let mulfx = |a: &Rc<Expr>, b: &Rc<Expr>| apply(Op::MulFx(frac), vec![a.clone(), b.clone()]);
    let add = |a: Rc<Expr>, b: Rc<Expr>| apply(Op::Add, vec![a, b]);
    let sub = |a: Rc<Expr>, b: Rc<Expr>| apply(Op::Sub, vec![a, b]);
    let g = consts.geometry;
    let (l1, l2) = (Expr::constant(g.l1), Expr::constant(g.l2));
    let one = Expr::constant(clockless::iks::fixed::ONE);

    let r2 = add(mulfx(&px, &px), mulfx(&py, &py));
    let num = sub(r2, Expr::constant(consts.k_sum));
    let c2 = mulfx(&num, &Expr::constant(consts.inv_2l1l2));
    let s2sq = sub(one, mulfx(&c2, &c2));
    let s2 = apply(Op::SqrtFx(frac), vec![s2sq]);
    let theta2 = apply(Op::Atan2Fx(frac), vec![s2.clone(), c2.clone()]);
    let k1 = add(l1, mulfx(&l2, &c2));
    let k2 = mulfx(&l2, &s2);
    let phi = apply(Op::Atan2Fx(frac), vec![py, px]);
    let psi = apply(Op::Atan2Fx(frac), vec![k2, k1]);
    let theta1 = sub(phi, psi);

    assert!(
        equivalent(&state[THETA2_REG], &theta2),
        "θ2: chip {} vs golden {theta2}",
        state[THETA2_REG]
    );
    assert!(
        equivalent(&state[THETA1_REG], &theta1),
        "θ1: chip {} vs golden {theta1}",
        state[THETA1_REG]
    );
}

#[test]
fn microprogram_decode_table_is_total() {
    // Every row of the microprogram decodes against the maps — the
    // paper's "code maps exist" invariant.
    let maps = ik_opcode_maps();
    for row in ik_microprogram() {
        let ops = row.decode(&maps).expect("row decodes");
        assert!(
            !ops.is_empty() || (row.opc1 == 0 && row.opc2 == 0),
            "active row {row:?} decodes to nothing"
        );
    }
}

#[test]
fn unreachable_pose_never_reaches_the_chip() {
    // The reachability check lives in the algorithmic level; the chip
    // model would compute sqrt of a negative number (ILLEGAL).
    assert_eq!(
        solve_ik(to_fx(3.0), to_fx(3.0), &constants()),
        Err(clockless::iks::IkError::Unreachable)
    );
    // Building the chip for such a pose still works structurally…
    let chip = build_ik_chip(to_fx(3.0), to_fx(3.0), constants()).unwrap();
    let mut sim = RtSimulation::traced(&chip.model).unwrap();
    let summary = sim.run_to_completion().unwrap();
    // …and the sqrt of the negative discriminant poisons the datapath:
    // the conflict report localizes the ILLEGAL to the CORDIC core.
    let conflicts = summary.conflicts.unwrap();
    assert!(
        conflicts.conflicts.iter().any(|c| c.name == "CORDIC"),
        "expected CORDIC ILLEGAL, got {conflicts}"
    );
}

#[test]
fn fir_macc_chip_full_flow() {
    use clockless::iks::fixed::mul_fx;
    use clockless::iks::{build_fir_chip, FIR_OUT_REG};

    let samples = [to_fx(0.5), to_fx(1.5), to_fx(-1.0), to_fx(2.0)];
    let coeffs = [to_fx(2.0), to_fx(-0.5), to_fx(0.25), to_fx(1.0)];
    let model = build_fir_chip(samples, coeffs).expect("fir chip builds");

    // Clock-free result equals the fixed-point dot product.
    let mut sim = RtSimulation::new(&model).unwrap();
    let summary = sim.run_to_completion().unwrap();
    let golden: i64 = samples
        .iter()
        .zip(&coeffs)
        .map(|(&x, &c)| mul_fx(x, c))
        .sum();
    assert_eq!(summary.register(FIR_OUT_REG).unwrap().num(), Some(golden));

    // Static + dynamic conflict detectors agree it is clean, the §2.7
    // semantics invert, and no dataflow lints fire.
    let cc = cross_check(&model).unwrap();
    assert!(cc.predicted.is_empty() && cc.dynamic_only.is_empty());
    roundtrip_check(&model).unwrap();
    let lints = clockless::verify::lint_model(&model);
    assert!(
        !lints.iter().any(|l| matches!(
            l,
            clockless::verify::Lint::DeadWrite { .. }
                | clockless::verify::Lint::ReadOfUndefined { .. }
        )),
        "{lints:?}"
    );

    // The clocked translation is commit-trace equivalent.
    let report = check_clocked_equivalence(
        &model,
        ClockScheme::OneCyclePerStep {
            period_fs: clockless::kernel::NS,
        },
    )
    .unwrap();
    assert!(report.equivalent(), "{report}");

    // And the handshake rendering computes the same sum.
    let mut hs = HandshakeSim::new(&model).unwrap();
    hs.run_to_completion().unwrap();
    assert_eq!(hs.register_value(FIR_OUT_REG).unwrap().num(), Some(golden));
}
