//! `clockless` — command-line driver for clock-free RT models.
//!
//! ```text
//! clockless run <model.rtl> [--json] [--trace] [--vcd <out.vcd>] [--transcript <sig,sig,…>]
//!               [--backend interpreted|compiled] [--opt 0|1|2] [--check <invariants.json>]
//! clockless check <model.rtl>
//! clockless mine <model.rtl>
//! clockless stats <model.rtl> [--json]
//! clockless fleet <spec.fleet | model.rtl…> [--jobs <N>] [--json] [--timing]
//!                 [--fail-fast] [--retries <N>] [--delta-budget <N>] [--wall-budget-ms <N>]
//!                 [--backend interpreted|compiled] [--opt 0|1|2]
//! clockless faults <model.rtl> [--seed <N>] [--classes <c,c,…>] [--max <N>] [--jobs <N>] [--json]
//!                  [--backend interpreted|compiled] [--opt 0|1|2] [--engine batched|legacy]
//!                  [--checkers off|golden|invariants|all]
//! clockless fuzz [--seed <N>] [--count <N>] [--json]
//! clockless serve [--socket <path>] [--jobs <N>] [--cache <N>]
//! clockless client <socket> [--payload]
//! clockless translate <model.rtl> [--scheme one|two] [--period-ns <N>]
//! clockless vhdl <model.rtl> [--clocked]
//! clockless explain "<tuple>"
//! ```
//!
//! `fleet` is fault-tolerant by default: failing jobs (build errors,
//! kernel errors, panics, blown budgets) are quarantined in the report
//! and the command exits 1, while the other jobs' results stay intact;
//! `--fail-fast` restores the abort-on-first-failure behaviour.
//! `faults` runs a seeded fault-injection campaign (classes: stuck,
//! drivers, drops, skews, inits) and reports detection coverage;
//! `--engine` picks the mutant machinery — the plan-sharing batched
//! executor (default, one lowered plan, all mutants in lockstep) or the
//! legacy one-fleet-job-per-mutant path. Reports are byte-identical
//! across engines. `--checkers` arms the value-checking detection
//! layer on top of the baseline `ILLEGAL`/overflow detectors: `golden`
//! replays each mutant against the clean run's commit trace, `invariants`
//! re-asserts functional laws mined from the clean run, `all` does both
//! (closing the silent-corruption gap), `off` (default) keeps the
//! baseline-only verdicts.
//!
//! `fuzz` runs the seeded differential campaign of `clockless-verify`:
//! generated guarded/array/memory models and randomly synthesized HLS
//! schedules pushed through every oracle the repo has (backend
//! byte-identity, text and VHDL round trips, clocked and handshake
//! equivalence). Any divergence prints its seed and the command exits 1.
//!
//! `mine` learns those functional invariants from a model's clean run
//! and prints them as a deterministic JSON artifact; `run --check`
//! re-asserts a previously mined artifact against a (possibly edited)
//! model and fails the run on the first violation.
//!
//! `--backend` selects the execution engine — the interpreted delta
//! kernel (default) or the compiled phase-schedule walker. Both are
//! observationally byte-identical (`clockless-verify` enforces it), so
//! every report is the same either way; the compiled engine is simply
//! faster. On `fleet` the flag overrides any per-job `backend` spec
//! options. `--opt` sets the compiled engine's optimization level
//! (default `2`): `0` walks the lowered plan directly, `1` adds slot
//! fusion and resolution specialization, `2` adds control-trajectory
//! folding and dead-spur elimination. Every level is byte-identical
//! too — the flag only changes how fast the same report is produced.
//! The interpreter ignores it.
//!
//! `serve` keeps the process resident as a simulation daemon: jobs
//! arrive as NDJSON lines (one JSON request per line — see
//! `docs/PROTOCOL.md`) over a Unix socket (`--socket`) or stdin/stdout,
//! models are lowered once into a plan cache, and every
//! `run`/`faults`/`fleet` payload is byte-identical to the matching
//! one-shot command. `client` is the bundled socket client (the image
//! has no `nc`): it pipes stdin to the daemon and prints response lines;
//! `--payload` unwraps success envelopes to their raw CLI documents.
//!
//! Models use the declarative text format of `clockless_core::text`
//! (see `models/` for examples); files ending in `.vhd`/`.vhdl` are read
//! as VHDL source in the paper's subset instead.

use std::process::ExitCode;

use clockless::clocked::{check_clocked_equivalence, ClockScheme, ClockedDesign};
use clockless::core::text::parse_model;
use clockless::core::transcript::transcript;
use clockless::core::{Backend, ExecOptions, OptLevel, RtModel, RtSimulation, TransferTuple};
use clockless::fleet::BatchSpec;
use clockless::kernel::NS;
use clockless::verify::{cross_check, roundtrip_check};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  clockless run <model.rtl> [--json] [--trace] [--vcd <out.vcd>] [--transcript <sig,sig,…>]\n                \
         [--backend interpreted|compiled] [--opt 0|1|2] [--check <invariants.json>]\n  \
         clockless check <model.rtl>\n  \
         clockless mine <model.rtl>\n  \
         clockless stats <model.rtl> [--json]\n  \
         clockless fleet <spec.fleet | model.rtl…> [--jobs <N>] [--json] [--timing]\n                  \
         [--fail-fast] [--retries <N>] [--delta-budget <N>] [--wall-budget-ms <N>]\n                  \
         [--backend interpreted|compiled] [--opt 0|1|2]\n  \
         clockless faults <model.rtl> [--seed <N>] [--classes <c,c,…>] [--max <N>] [--jobs <N>] [--json]\n                   \
         [--backend interpreted|compiled] [--opt 0|1|2] [--engine batched|legacy]\n                   \
         [--checkers off|golden|invariants|all]\n  \
         clockless fuzz [--seed <N>] [--count <N>] [--json]\n  \
         clockless serve [--socket <path>] [--jobs <N>] [--cache <N>]\n  \
         clockless client <socket> [--payload]\n  \
         clockless translate <model.rtl> [--scheme one|two] [--period-ns <N>]\n  \
         clockless vhdl <model.rtl> [--clocked]\n  \
         clockless explain \"<tuple>\""
    );
    ExitCode::from(2)
}

/// Flags that take a value (so `positional_args` skips the value word).
const VALUED_FLAGS: [&str; 17] = [
    "--check",
    "--opt",
    "--count",
    "--checkers",
    "--jobs",
    "--retries",
    "--delta-budget",
    "--wall-budget-ms",
    "--seed",
    "--max",
    "--classes",
    "--backend",
    "--engine",
    "--socket",
    "--cache",
    "--vcd",
    "--transcript",
];

/// Result of looking up `--flag <value>` in the argument list.
enum FlagValue<T> {
    /// The flag is not present.
    Absent,
    /// The flag is present with a parseable value.
    Parsed(T),
    /// The flag is present but the value is missing or unparseable.
    Malformed,
}

fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> FlagValue<T> {
    match args.iter().position(|a| a == flag) {
        None => FlagValue::Absent,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(v) => FlagValue::Parsed(v),
            None => FlagValue::Malformed,
        },
    }
}

/// Positional inputs: everything after the subcommand that is neither a
/// flag nor the value following a valued flag.
fn positional_args(args: &[String]) -> Vec<&str> {
    let value_positions: Vec<usize> = VALUED_FLAGS
        .iter()
        .filter_map(|f| args.iter().position(|a| a == f).map(|i| i + 1))
        .collect();
    args.iter()
        .enumerate()
        .skip(1)
        .filter(|(i, a)| !a.starts_with("--") && !value_positions.contains(i))
        .map(|(_, a)| a.as_str())
        .collect()
}

fn load(path: &str) -> Result<RtModel, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".vhd") || path.ends_with(".vhdl") {
        // VHDL source in the paper's subset: parse + reconstruct.
        clockless::verify::model_from_vhdl(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        parse_model(&text).map_err(|e| format!("{path}:{e}"))
    }
}

/// Loads and validates a mined-invariant artifact for `--check`.
fn load_check_program(
    artifact: &str,
    model: &RtModel,
) -> Result<clockless::core::CheckProgram, String> {
    let text =
        std::fs::read_to_string(artifact).map_err(|e| format!("cannot read {artifact}: {e}"))?;
    let (mined_from, program) =
        clockless::verify::parse_artifact(&text).map_err(|e| format!("{artifact}: {e}"))?;
    if mined_from != model.name() {
        return Err(format!(
            "{artifact}: artifact was mined from `{mined_from}` but the model is `{}`",
            model.name()
        ));
    }
    Ok(program)
}

/// The `"check"` member spliced into the `--json` run report when
/// `--check` is given (the plain report stays byte-identical).
fn check_report_json(artifact: &str, report: &clockless::core::CheckReport) -> String {
    use clockless::core::json::escape;
    let mut violations = Vec::new();
    if let Some(v) = &report.invariant {
        violations.push(v.to_string());
    }
    if let Some(v) = &report.monitor {
        violations.push(v.to_string());
    }
    let rendered: Vec<String> = violations
        .iter()
        .map(|v| format!("\"{}\"", escape(v)))
        .collect();
    format!(
        "{{\"artifact\": \"{}\", \"status\": \"{}\", \"violations\": [{}]}}",
        escape(artifact),
        if report.is_clean() {
            "clean"
        } else {
            "violated"
        },
        rendered.join(", ")
    )
}

#[allow(clippy::too_many_arguments)]
fn cmd_run(
    path: &str,
    json: bool,
    trace: bool,
    vcd: Option<&str>,
    transcript_cols: Option<&str>,
    backend: Backend,
    opt: OptLevel,
    check: Option<&str>,
) -> Result<(), String> {
    let model = load(path)?;
    let options = ExecOptions {
        // JSON reports always trace: the document includes conflict
        // sites, and the serve daemon's `run` payload (always traced)
        // must diff clean against this output.
        trace: trace || json || vcd.is_some(),
        opt,
        ..Default::default()
    };
    let (outcome, verdict) = match check {
        Some(artifact) => {
            let program = load_check_program(artifact, &model)?;
            let (outcome, report) =
                clockless::core::execute_checked(&model, backend, &options, &program)
                    .map_err(|e| e.to_string())?;
            (outcome, Some((artifact, report)))
        }
        None => {
            let outcome = backend
                .execute(&model, &options)
                .map_err(|e| e.to_string())?;
            (outcome, None)
        }
    };
    let summary = &outcome.summary;

    if json {
        let doc = clockless::core::json::run_report(&model, summary);
        match &verdict {
            // Splice the check verdict in as a trailing member; without
            // `--check` the document is byte-identical to before.
            Some((artifact, report)) => {
                let body = doc.strip_suffix("\n}\n").expect("run report shape");
                print!(
                    "{body},\n  \"check\": {}\n}}\n",
                    check_report_json(artifact, report)
                );
            }
            None => print!("{doc}"),
        }
        if let Some(out) = vcd {
            let doc = outcome.vcd.as_deref().expect("traced run exports VCD");
            std::fs::write(out, doc).map_err(|e| format!("cannot write {out}: {e}"))?;
        }
        return match &verdict {
            Some((artifact, report)) if !report.is_clean() => {
                Err(format!("{artifact}: value checks failed"))
            }
            _ => Ok(()),
        };
    }
    println!(
        "model `{}`: {} steps, {} transfers — {}",
        model.name(),
        model.cs_max(),
        model.tuples().len(),
        summary.stats
    );
    println!("final register values:");
    for (name, value) in &summary.registers {
        println!("  {name:<16} {value}");
    }
    if let Some(conflicts) = &summary.conflicts {
        print!("{conflicts}");
    }
    if let Some(out) = vcd {
        let doc = outcome.vcd.as_deref().expect("traced run exports VCD");
        std::fs::write(out, doc).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("waveform written to {out}");
    }
    if let Some(cols) = transcript_cols {
        let names: Vec<&str> = cols.split(',').map(str::trim).collect();
        let table = transcript(&model, &names).map_err(|e| e.to_string())?;
        println!("\nphase transcript:\n{table}");
    }
    if let Some((artifact, report)) = &verdict {
        if report.is_clean() {
            println!("value checks against {artifact}: clean");
        } else {
            if let Some(v) = &report.invariant {
                println!("value checks against {artifact}: {v}");
            }
            if let Some(v) = &report.monitor {
                println!("value checks against {artifact}: {v}");
            }
            return Err(format!("{artifact}: value checks failed"));
        }
    }
    Ok(())
}

fn cmd_mine(path: &str) -> Result<(), String> {
    let model = load(path)?;
    let artifact = clockless::verify::mine_artifact(&model).map_err(|e| e.to_string())?;
    print!("{artifact}");
    Ok(())
}

fn cmd_check(path: &str) -> Result<(), String> {
    let model = load(path)?;
    let cc = cross_check(&model).map_err(|e| e.to_string())?;
    if cc.predicted.is_empty() && cc.dynamic_only.is_empty() {
        println!("conflict analysis: clean (static and dynamic agree)");
        // The round trip is only meaningful on conflict-free schedules
        // (colliding routes make the reconstruction ambiguous).
        roundtrip_check(&model).map_err(|e| format!("semantics round trip failed: {e}"))?;
        println!(
            "tuple/process round trip: ok ({} tuples)",
            model.tuples().len()
        );
        let lints = clockless::verify::lint_model(&model);
        if lints.is_empty() {
            println!("lints: clean");
        } else {
            println!("lints ({}):", lints.len());
            for l in &lints {
                println!("  warning: {l}");
            }
        }
        return Ok(());
    }
    println!("static predictions ({}):", cc.predicted.len());
    for p in &cc.predicted {
        println!("  {p}  -> visible at {}", p.visible_at());
    }
    if !cc.unconfirmed.is_empty() {
        return Err(format!(
            "{} static prediction(s) were not confirmed dynamically",
            cc.unconfirmed.len()
        ));
    }
    println!(
        "all predictions confirmed dynamically; {} additional dynamic site(s) are propagation",
        cc.dynamic_only.len()
    );
    Err("model has resource conflicts".into())
}

fn cmd_translate(path: &str, scheme: &str, period_ns: u64) -> Result<(), String> {
    let model = load(path)?;
    let scheme = match scheme {
        "one" => ClockScheme::OneCyclePerStep {
            period_fs: period_ns * NS,
        },
        "two" => ClockScheme::TwoCyclesPerStep {
            period_fs: period_ns * NS,
        },
        other => return Err(format!("unknown scheme `{other}` (expected one|two)")),
    };
    let design = ClockedDesign::translate(&model, scheme).map_err(|e| e.to_string())?;
    println!(
        "translated `{}`: {} cycles @ {period_ns} ns, {} control signals",
        model.name(),
        design.total_cycles(),
        design.tables().control_signal_count()
    );
    let report = check_clocked_equivalence(&model, scheme).map_err(|e| e.to_string())?;
    if report.equivalent() {
        println!("commit-trace equivalence vs. the clock-free model: ok");
        Ok(())
    } else {
        Err(format!("translation NOT equivalent:\n{report}"))
    }
}

fn cmd_stats(path: &str, json: bool) -> Result<(), String> {
    let model = load(path)?;
    if json {
        // The JSON report includes kernel counters, so it runs the model.
        let mut sim = RtSimulation::new(&model).map_err(|e| e.to_string())?;
        sim.run_to_completion().map_err(|e| e.to_string())?;
        print!("{}", sim.stats_report().to_json());
    } else {
        print!("{}", clockless::core::model_stats(&model));
    }
    Ok(())
}

fn cmd_fleet(
    inputs: &[&str],
    jobs: usize,
    json: bool,
    timing: bool,
    config: &clockless::fleet::FleetConfig,
) -> Result<(), String> {
    let spec = match inputs {
        [] => return Err("fleet needs a .fleet spec or .rtl model files".into()),
        [single] if single.ends_with(".fleet") => {
            BatchSpec::load(single).map_err(|e| e.to_string())?
        }
        paths => {
            if let Some(bad) = paths.iter().find(|p| p.ends_with(".fleet")) {
                return Err(format!("spec file {bad} cannot be mixed with model paths"));
            }
            BatchSpec::from_rtl_paths(paths.iter().copied())
        }
    };
    let report =
        clockless::fleet::run_batch_with(&spec, jobs, config).map_err(|e| e.to_string())?;
    if json {
        print!("{}", report.to_json(timing));
    } else {
        print!("{report}");
        let conflicted = report.conflicted_jobs();
        if conflicted > 0 {
            println!("{conflicted} job(s) reported resource conflicts (see --json for sites)");
        }
    }
    let failed = report.failed_jobs();
    if failed > 0 {
        // The report (stdout) stays byte-identical at any worker count;
        // the failure signal goes to stderr + the exit code.
        return Err(format!("{failed} job(s) quarantined"));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn cmd_faults(
    path: &str,
    seed: Option<u64>,
    classes: Option<&str>,
    max: Option<usize>,
    jobs: usize,
    json: bool,
    backend: Backend,
    opt: OptLevel,
    engine: clockless::verify::CampaignEngine,
    checkers: clockless::verify::CheckerMode,
) -> Result<(), String> {
    let model = load(path)?;
    let mut config = clockless::verify::CampaignConfig {
        workers: jobs,
        max_faults: max,
        backend,
        opt,
        engine,
        checkers,
        ..Default::default()
    };
    if let Some(seed) = seed {
        config.seed = seed;
    }
    if let Some(list) = classes {
        for part in list.split(',') {
            config.classes.push(part.trim().parse()?);
        }
    }
    let report = clockless::verify::run_campaign(&model, &config).map_err(|e| e.to_string())?;
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    Ok(())
}

fn cmd_fuzz(seed: u64, count: usize, json: bool) -> Result<(), String> {
    let report = clockless::verify::run_fuzz(seed, count);
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    if report.clean() {
        Ok(())
    } else {
        Err(format!(
            "{} divergence(s) found (re-run with the printed seeds)",
            report.divergence_count
        ))
    }
}

fn cmd_serve(socket: Option<&str>, workers: usize, cache: usize) -> Result<(), String> {
    let daemon = clockless::serve::Daemon::new(clockless::serve::ServeConfig {
        workers,
        cache_capacity: cache,
    });
    match socket {
        Some(path) => {
            eprintln!(
                "clockless serve: listening on {path} (send {{\"op\":\"shutdown\"}} to stop)"
            );
            daemon
                .serve_unix(std::path::Path::new(path))
                .map_err(|e| format!("serve: {e}"))
        }
        None => {
            // stdio mode: one session over the process pipes.
            daemon.serve_stdio();
            Ok(())
        }
    }
}

fn cmd_client(socket: &str, payload_only: bool) -> Result<(), String> {
    // StdinLock is not Send (the client forwards input from a second
    // thread); a BufReader over the raw handle is.
    let input = std::io::BufReader::new(std::io::stdin());
    clockless::serve::run_client(
        std::path::Path::new(socket),
        input,
        std::io::stdout(),
        payload_only,
    )
    .map_err(|e| format!("client: {e}"))
}

fn cmd_vhdl(path: &str, clocked: bool) -> Result<(), String> {
    let model = load(path)?;
    let text = if clocked {
        let design =
            ClockedDesign::translate(&model, ClockScheme::default()).map_err(|e| e.to_string())?;
        clockless::clocked::emit_clocked_vhdl(&design).map_err(|e| e.to_string())?
    } else {
        clockless::core::emit_vhdl(&model).map_err(|e| e.to_string())?
    };
    print!("{text}");
    Ok(())
}

fn cmd_explain(tuple: &str) -> Result<(), String> {
    let t: TransferTuple = tuple.parse().map_err(|e| format!("{e}"))?;
    println!("tuple {t} expands into the transfer processes:");
    for spec in t.expand() {
        println!("  {:<24} {spec}", spec.instance_name());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "run" => {
            let positional = positional_args(&args);
            let [path] = positional.as_slice() else {
                return usage();
            };
            let json = args.iter().any(|a| a == "--json");
            let trace = args.iter().any(|a| a == "--trace");
            let vcd = args
                .iter()
                .position(|a| a == "--vcd")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            let cols = args
                .iter()
                .position(|a| a == "--transcript")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            let backend = match flag_value(&args, "--backend") {
                FlagValue::Absent => Backend::default(),
                FlagValue::Parsed(b) => b,
                FlagValue::Malformed => return usage(),
            };
            let opt = match flag_value(&args, "--opt") {
                FlagValue::Absent => OptLevel::default(),
                FlagValue::Parsed(o) => o,
                FlagValue::Malformed => return usage(),
            };
            let check = args
                .iter()
                .position(|a| a == "--check")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            cmd_run(path, json, trace, vcd, cols, backend, opt, check)
        }
        "check" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            cmd_check(path)
        }
        "mine" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            cmd_mine(path)
        }
        "stats" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let json = args.iter().any(|a| a == "--json");
            cmd_stats(path, json)
        }
        "fleet" => {
            let json = args.iter().any(|a| a == "--json");
            let timing = args.iter().any(|a| a == "--timing");
            let jobs = match flag_value(&args, "--jobs") {
                FlagValue::Absent => std::thread::available_parallelism().map_or(1, |n| n.get()),
                FlagValue::Parsed(n) if n >= 1 => n,
                _ => return usage(),
            };
            let mut config = clockless::fleet::FleetConfig {
                fail_fast: args.iter().any(|a| a == "--fail-fast"),
                ..clockless::fleet::FleetConfig::default()
            };
            match flag_value(&args, "--retries") {
                FlagValue::Absent => {}
                FlagValue::Parsed(n) => config.max_retries = n,
                FlagValue::Malformed => return usage(),
            }
            match flag_value(&args, "--delta-budget") {
                FlagValue::Absent => {}
                FlagValue::Parsed(n) => config.delta_budget = Some(n),
                FlagValue::Malformed => return usage(),
            }
            match flag_value(&args, "--wall-budget-ms") {
                FlagValue::Absent => {}
                FlagValue::Parsed(ms) => {
                    config.wall_budget = Some(std::time::Duration::from_millis(ms))
                }
                FlagValue::Malformed => return usage(),
            }
            match flag_value(&args, "--backend") {
                FlagValue::Absent => {}
                FlagValue::Parsed(b) => config.backend = Some(b),
                FlagValue::Malformed => return usage(),
            }
            match flag_value(&args, "--opt") {
                FlagValue::Absent => {}
                FlagValue::Parsed(o) => config.opt = o,
                FlagValue::Malformed => return usage(),
            }
            let positional = positional_args(&args);
            if positional.is_empty() {
                return usage();
            }
            cmd_fleet(&positional, jobs, json, timing, &config)
        }
        "faults" => {
            let json = args.iter().any(|a| a == "--json");
            let jobs = match flag_value(&args, "--jobs") {
                FlagValue::Absent => 1,
                FlagValue::Parsed(n) if n >= 1 => n,
                _ => return usage(),
            };
            let seed = match flag_value(&args, "--seed") {
                FlagValue::Absent => None,
                FlagValue::Parsed(n) => Some(n),
                FlagValue::Malformed => return usage(),
            };
            let max = match flag_value(&args, "--max") {
                FlagValue::Absent => None,
                FlagValue::Parsed(n) => Some(n),
                FlagValue::Malformed => return usage(),
            };
            let classes = args
                .iter()
                .position(|a| a == "--classes")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            let backend = match flag_value(&args, "--backend") {
                FlagValue::Absent => Backend::default(),
                FlagValue::Parsed(b) => b,
                FlagValue::Malformed => return usage(),
            };
            let engine = match flag_value(&args, "--engine") {
                FlagValue::Absent => clockless::verify::CampaignEngine::default(),
                FlagValue::Parsed(e) => e,
                FlagValue::Malformed => return usage(),
            };
            let checkers = match flag_value(&args, "--checkers") {
                FlagValue::Absent => clockless::verify::CheckerMode::default(),
                FlagValue::Parsed(c) => c,
                FlagValue::Malformed => return usage(),
            };
            let opt = match flag_value(&args, "--opt") {
                FlagValue::Absent => OptLevel::default(),
                FlagValue::Parsed(o) => o,
                FlagValue::Malformed => return usage(),
            };
            let positional = positional_args(&args);
            let [path] = positional.as_slice() else {
                return usage();
            };
            cmd_faults(
                path, seed, classes, max, jobs, json, backend, opt, engine, checkers,
            )
        }
        "fuzz" => {
            let seed = match flag_value(&args, "--seed") {
                FlagValue::Absent => 0xC10C_1E55,
                FlagValue::Parsed(n) => n,
                FlagValue::Malformed => return usage(),
            };
            let count = match flag_value(&args, "--count") {
                FlagValue::Absent => 1000,
                FlagValue::Parsed(n) if n >= 1 => n,
                _ => return usage(),
            };
            let json = args.iter().any(|a| a == "--json");
            cmd_fuzz(seed, count, json)
        }
        "serve" => {
            let workers = match flag_value(&args, "--jobs") {
                FlagValue::Absent => 1,
                FlagValue::Parsed(n) if n >= 1 => n,
                _ => return usage(),
            };
            let cache = match flag_value(&args, "--cache") {
                FlagValue::Absent => 64,
                FlagValue::Parsed(n) if n >= 1 => n,
                _ => return usage(),
            };
            let socket = args
                .iter()
                .position(|a| a == "--socket")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            cmd_serve(socket, workers, cache)
        }
        "client" => {
            let positional = positional_args(&args);
            let [socket] = positional.as_slice() else {
                return usage();
            };
            let payload = args.iter().any(|a| a == "--payload");
            cmd_client(socket, payload)
        }
        "translate" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let scheme = args
                .iter()
                .position(|a| a == "--scheme")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("one");
            let period_ns: u64 = args
                .iter()
                .position(|a| a == "--period-ns")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            cmd_translate(path, scheme, period_ns)
        }
        "vhdl" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let clocked = args.iter().any(|a| a == "--clocked");
            cmd_vhdl(path, clocked)
        }
        "explain" => {
            let Some(tuple) = args.get(1) else {
                return usage();
            };
            cmd_explain(tuple)
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
