//! Signals, drivers and resolution functions.
//!
//! A signal carries a value of the kernel's value type. Every process that
//! assigns to a signal owns a *driver* for it; the signal's *effective*
//! value is computed from all driver values. Signals with more than one
//! driver must declare a [`Resolver`] — exactly the VHDL rule the paper
//! leans on to detect resource conflicts: the clock-free RT subset resolves
//! colliding bus drivers to an `ILLEGAL` value.

use std::fmt;
use std::sync::Arc;

/// Identifies a signal within one [`Simulator`](crate::sim::Simulator).
///
/// Ids are small dense indices; they are only meaningful for the simulator
/// that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// The dense index of this signal.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a signal id from a dense index.
    ///
    /// Ids built this way are only meaningful against the simulator (or
    /// trace) whose declaration order produced that index; this is the
    /// inverse of [`index`](Self::index) for alternative execution
    /// engines that reconstruct kernel-compatible traces.
    pub fn from_index(index: usize) -> Self {
        SignalId(index as u32)
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig#{}", self.0)
    }
}

/// A resolution function: combines the values of all drivers of a signal
/// into one effective value.
///
/// The function receives one entry per driver (including the implicit
/// external driver if the signal has been [`force`](crate::sim::Simulator::force)d)
/// in an unspecified but stable order.
pub type Resolver<V> = Arc<dyn Fn(&[V]) -> V + Send + Sync>;

/// Internal storage for one signal.
pub(crate) struct SignalSlot<V> {
    pub(crate) name: String,
    /// Current effective value.
    pub(crate) value: V,
    /// One value per attached driver.
    pub(crate) drivers: Vec<V>,
    /// Optional resolution function (required when `drivers.len() > 1`).
    pub(crate) resolver: Option<Resolver<V>>,
    /// Processes waiting for an event on this signal: `(process, token)`.
    /// Entries whose token no longer matches the process's current wait
    /// token are stale and removed lazily.
    pub(crate) waiters: Vec<(u32, u64)>,
    /// Processes waiting until this signal equals a specific value
    /// (`Wait::UntilEq`), bucketed by the awaited value so an event only
    /// ever touches the waiters whose predicate just became true. The
    /// value type carries no `Hash` bound, so the bucket key lookup is a
    /// linear scan — the number of distinct awaited values per signal is
    /// small (control steps, phases). Entries are `(process, token)` like
    /// [`waiters`](Self::waiters) and stale entries are compacted away
    /// whenever their bucket fires.
    pub(crate) pred_buckets: Vec<(V, Vec<(u32, u64)>)>,
    /// Delta/time at which the last event (value change) occurred, as a
    /// monotonically increasing tick; used by `ProcessCtx::had_event`.
    pub(crate) last_event_tick: u64,
}

impl<V: fmt::Debug> fmt::Debug for SignalSlot<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SignalSlot")
            .field("name", &self.name)
            .field("value", &self.value)
            .field("drivers", &self.drivers.len())
            .field("resolved", &self.resolver.is_some())
            .finish()
    }
}

impl<V: Clone> SignalSlot<V> {
    pub(crate) fn new(name: String, init: V, resolver: Option<Resolver<V>>) -> Self {
        SignalSlot {
            name,
            value: init,
            drivers: Vec::new(),
            resolver,
            waiters: Vec::new(),
            pred_buckets: Vec::new(),
            last_event_tick: 0,
        }
    }

    /// Computes the effective value from the drivers.
    ///
    /// With zero drivers the current value is kept (the signal only changes
    /// via `force`). With one driver and no resolver the driver value is
    /// used directly. Otherwise the resolution function is applied.
    pub(crate) fn effective(&self) -> V {
        match (&self.resolver, self.drivers.len()) {
            (_, 0) => self.value.clone(),
            (None, 1) => self.drivers[0].clone(),
            (Some(r), _) => r(&self.drivers),
            (None, _) => unreachable!("multiple drivers without resolver rejected at elaboration"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_driver_passthrough() {
        let mut s: SignalSlot<i64> = SignalSlot::new("s".into(), 0, None);
        s.drivers.push(42);
        assert_eq!(s.effective(), 42);
    }

    #[test]
    fn zero_drivers_keeps_value() {
        let s: SignalSlot<i64> = SignalSlot::new("s".into(), 7, None);
        assert_eq!(s.effective(), 7);
    }

    #[test]
    fn resolver_combines_all_drivers() {
        let sum: Resolver<i64> = Arc::new(|vs: &[i64]| vs.iter().sum());
        let mut s = SignalSlot::new("bus".into(), 0, Some(sum));
        s.drivers.extend([1, 2, 3]);
        assert_eq!(s.effective(), 6);
    }

    #[test]
    fn resolver_applies_even_with_one_driver() {
        let neg: Resolver<i64> = Arc::new(|vs: &[i64]| -vs[0]);
        let mut s = SignalSlot::new("bus".into(), 0, Some(neg));
        s.drivers.push(5);
        assert_eq!(s.effective(), -5);
    }
}
