//! Writes `BENCH_opt.json` at the repository root: end-to-end wall
//! time of the plan optimizer's `-O` pipeline, pass by pass, on the
//! IKS chips and a 48-node HLS dataflow graph.
//!
//! Each model is timed at five stages of the cumulative pipeline —
//! interpreted, `-O0` (the generic schedule walker), fusion only,
//! `-O1` (fusion + resolution specialization), `-O1` + constant
//! folding, and `-O2` (everything plus dead-spur elimination) — so the
//! JSON attributes the total win to individual passes. Counters
//! (`cs_max`, `tuples`, `micro_ops_*`) are machine-independent; `*_ns`
//! and the derived ratios are machine-local.
//!
//! Equivalence comes first: every model passes
//! `clockless_verify::backend_equiv` (which sweeps all three `-O`
//! levels against the interpreter, traced and untraced) before a single
//! timing sample is taken. The acceptance gates — `-O2` at least 1.7×
//! over `-O0` and at least 3× over the interpreter, as geometric means
//! across the corpus — are asserted, not just recorded.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use clockless_core::{Backend, ExecOptions, ExecPlan, OptConfig, OptPlan, RtModel};
use clockless_hls::{random_dag, synthesize, ResourceSet};
use clockless_iks::prelude::*;
use clockless_iks::{build_fir_chip, build_ik_chip};
use clockless_verify::backend_equiv;

/// One model's stage-by-stage timings, all in nanoseconds per run.
struct Row {
    model: &'static str,
    cs_max: u32,
    tuples: usize,
    micro_ops_o1: usize,
    micro_ops_o2: usize,
    compile_o2_ns: u64,
    interpreted_ns: u64,
    o0_ns: u64,
    fuse_ns: u64,
    o1_ns: u64,
    fold_ns: u64,
    o2_ns: u64,
}

/// Best-of-5 mean wall time of `f`, amortized over `iters` calls.
fn time_ns(iters: u32, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as u64 / u64::from(iters));
    }
    best
}

/// Times one `OptPlan` stage (compile once, execute many).
fn time_stage(plan: &ExecPlan, config: OptConfig, iters: u32) -> u64 {
    let opt = OptPlan::compile(plan, config);
    let options = ExecOptions::default();
    time_ns(iters, || {
        std::hint::black_box(opt.execute(&options).expect("runs"));
    })
}

fn geomean(ratios: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = ratios.fold((0.0, 0u32), |(s, n), r| (s + r.ln(), n + 1));
    (sum / f64::from(n.max(1))).exp()
}

fn main() {
    let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
    let ik = build_ik_chip(to_fx(1.0), to_fx(1.0), constants)
        .expect("builds")
        .model;
    let samples = [to_fx(0.5), to_fx(1.5), to_fx(-1.0), to_fx(2.0)];
    let coeffs = [to_fx(2.0), to_fx(-0.5), to_fx(0.25), to_fx(1.0)];
    let fir = build_fir_chip(samples, coeffs).expect("builds");
    let dag = random_dag(48, 48, 4);
    let resources = ResourceSet::unconstrained(&dag);
    let names = dag.inputs();
    let inputs: HashMap<&str, i64> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as i64 + 1))
        .collect();
    let dag48 = synthesize(&dag, &resources, &inputs)
        .expect("synthesis")
        .model;

    let targets: [(&'static str, RtModel, u32); 3] = [
        ("iks_ik", ik, 40),
        ("iks_fir", fir, 40),
        ("dag48", dag48, 20),
    ];

    // The cumulative pipeline, one toggle at a time. `fuse` is the
    // stream representation itself, so every later pass implies it.
    let off = OptConfig {
        fuse: false,
        specialize: false,
        fold: false,
        dse: false,
    };
    let fuse_only = OptConfig { fuse: true, ..off };
    let o1 = OptConfig {
        specialize: true,
        ..fuse_only
    };
    let o1_fold = OptConfig { fold: true, ..o1 };
    let o2 = OptConfig {
        dse: true,
        ..o1_fold
    };

    let mut rows: Vec<Row> = Vec::new();
    for (name, model, iters) in &targets {
        // Equivalence before timing: a fast wrong answer is worthless.
        backend_equiv(model).unwrap_or_else(|d| panic!("{name}: {d}"));

        let plan = ExecPlan::lower(model);
        let stream_o1 = OptPlan::compile(&plan, o1);
        let stream_o2 = OptPlan::compile(&plan, o2);
        let compile_o2_ns = time_ns(*iters, || {
            std::hint::black_box(OptPlan::compile(&plan, o2));
        });

        let options = ExecOptions::default();
        let interpreted_ns = time_ns(*iters, || {
            std::hint::black_box(Backend::Interpreted.execute(model, &options).expect("runs"));
        });
        let o0_ns = time_ns(*iters, || {
            std::hint::black_box(plan.execute(&options).expect("runs"));
        });
        let fuse_ns = time_stage(&plan, fuse_only, *iters);
        let o1_ns = time_stage(&plan, o1, *iters);
        let fold_ns = time_stage(&plan, o1_fold, *iters);
        let o2_ns = time_stage(&plan, o2, *iters);

        eprintln!(
            "{name:<8} interp={interpreted_ns:>9} ns  O0={o0_ns:>9} ns  fuse={fuse_ns:>9} ns  \
             O1={o1_ns:>9} ns  +fold={fold_ns:>9} ns  O2={o2_ns:>9} ns  \
             (O2 vs O0 {:.2}x, vs interp {:.2}x)",
            o0_ns as f64 / o2_ns as f64,
            interpreted_ns as f64 / o2_ns as f64,
        );
        rows.push(Row {
            model: name,
            cs_max: model.cs_max().into(),
            tuples: model.tuples().len(),
            micro_ops_o1: stream_o1.op_count(),
            micro_ops_o2: stream_o2.op_count(),
            compile_o2_ns,
            interpreted_ns,
            o0_ns,
            fuse_ns,
            o1_ns,
            fold_ns,
            o2_ns,
        });
    }

    let vs_o0 = geomean(rows.iter().map(|r| r.o0_ns as f64 / r.o2_ns as f64));
    let vs_interp = geomean(
        rows.iter()
            .map(|r| r.interpreted_ns as f64 / r.o2_ns as f64),
    );
    eprintln!("geomean: O2 vs O0 {vs_o0:.2}x, O2 vs interpreted {vs_interp:.2}x");
    assert!(
        vs_o0 >= 1.7,
        "optimizer gate failed: O2 is only {vs_o0:.2}x over O0 (need 1.7x)"
    );
    assert!(
        vs_interp >= 3.0,
        "optimizer gate failed: O2 is only {vs_interp:.2}x over interpreted (need 3x)"
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"generated_by\": \"cargo bench --manifest-path crates/bench/Cargo.toml \
         --bench opt_pipeline\",\n",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    let _ = writeln!(
        out,
        "  \"gates\": {{\"o2_vs_o0_geomean_min\": 1.7, \"o2_vs_interpreted_geomean_min\": 3.0}},"
    );
    let _ = writeln!(
        out,
        "  \"geomean\": {{\"o2_vs_o0\": {vs_o0:.2}, \"o2_vs_interpreted\": {vs_interp:.2}}},"
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        // Per-pass attribution: the marginal speedup of enabling each
        // pass on top of the previous stage.
        let _ = writeln!(
            out,
            "    {{\"model\": \"{}\", \"cs_max\": {}, \"tuples\": {}, \
             \"micro_ops_o1\": {}, \"micro_ops_o2\": {}, \"compile_o2_ns\": {}, \
             \"interpreted_ns\": {}, \"o0_ns\": {}, \"fuse_ns\": {}, \"o1_ns\": {}, \
             \"fold_ns\": {}, \"o2_ns\": {}, \"pass_attribution\": {{\
             \"fusion\": {:.2}, \"specialization\": {:.2}, \"folding\": {:.2}, \
             \"dse\": {:.2}}}, \"o2_vs_o0\": {:.2}, \"o2_vs_interpreted\": {:.2}}}{}",
            r.model,
            r.cs_max,
            r.tuples,
            r.micro_ops_o1,
            r.micro_ops_o2,
            r.compile_o2_ns,
            r.interpreted_ns,
            r.o0_ns,
            r.fuse_ns,
            r.o1_ns,
            r.fold_ns,
            r.o2_ns,
            r.o0_ns as f64 / r.fuse_ns as f64,
            r.fuse_ns as f64 / r.o1_ns as f64,
            r.o1_ns as f64 / r.fold_ns as f64,
            r.fold_ns as f64 / r.o2_ns as f64,
            r.o0_ns as f64 / r.o2_ns as f64,
            r.interpreted_ns as f64 / r.o2_ns as f64,
            comma
        );
    }
    out.push_str("  ]\n}\n");

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_opt.json");
    std::fs::write(&path, out).expect("writes BENCH_opt.json");
    eprintln!(
        "opt pipeline: {} rows written to {}",
        rows.len(),
        path.canonicalize().unwrap_or(path).display()
    );
}
