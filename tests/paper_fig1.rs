//! Experiment E1: the paper's Fig. 1 / §2.7 example, reproduced exactly
//! and checked across every implementation style.

use clockless::clocked::{
    check_clocked_equivalence, check_handshake_equivalence, ClockScheme, ClockedDesign,
    ClockedSimulation, HandshakeSim,
};
use clockless::core::prelude::*;
use clockless::core::text::{parse_model, to_text};
use clockless::verify::roundtrip_check;

/// The paper's model, written in the declarative text format exactly as
/// §2.7's VHDL architecture declares it.
const FIG1_TEXT: &str = "
# concrete register transfer model of paper Fig. 1 / §2.7
model example steps 7
register R1 init 3
register R2 init 4
bus B1
bus B2
module ADD ops add pipelined 1
transfer (R1,B1,R2,B2,5,ADD,6,B1,R1)
";

#[test]
fn fig1_text_description_runs_and_computes() {
    let model = parse_model(FIG1_TEXT).expect("fig1 text parses");
    let mut sim = RtSimulation::new(&model).expect("elaborates");
    let summary = sim.run_to_completion().expect("runs");
    assert_eq!(summary.register("R1"), Some(Value::Num(7)));
    assert_eq!(summary.register("R2"), Some(Value::Num(4)));
}

#[test]
fn fig1_text_roundtrips() {
    let model = parse_model(FIG1_TEXT).unwrap();
    let text = to_text(&model);
    let model2 = parse_model(&text).unwrap();
    assert_eq!(model.tuples(), model2.tuples());
    assert_eq!(model.registers(), model2.registers());
}

#[test]
fn fig1_matches_helper_constructor() {
    let a = parse_model(FIG1_TEXT).unwrap();
    let b = fig1_model(3, 4);
    assert_eq!(a.cs_max(), b.cs_max());
    assert_eq!(a.tuples(), b.tuples());
}

#[test]
fn fig1_expands_to_the_paper_six_processes() {
    let model = fig1_model(3, 4);
    let names: Vec<String> = model.tuples()[0]
        .expand()
        .iter()
        .map(|s| s.instance_name())
        .collect();
    // §2.7 lists exactly these six instance derivations.
    assert_eq!(
        names,
        [
            "R1_out_B1_5",
            "B1_ADD_in1_5",
            "R2_out_B2_5",
            "B2_ADD_in2_5",
            "ADD_out_B1_6",
            "B1_R1_in_6",
        ]
    );
}

#[test]
fn fig1_tuple_process_roundtrip() {
    roundtrip_check(&fig1_model(3, 4)).expect("the §2.7 mappings invert");
}

#[test]
fn fig1_all_styles_agree() {
    let model = fig1_model(17, 25);

    // Clock-free.
    let mut cf = RtSimulation::new(&model).unwrap();
    let cf_summary = cf.run_to_completion().unwrap();
    assert_eq!(cf_summary.register("R1"), Some(Value::Num(42)));

    // Clocked (both architectures).
    for scheme in [
        ClockScheme::OneCyclePerStep {
            period_fs: clockless::kernel::NS,
        },
        ClockScheme::TwoCyclesPerStep {
            period_fs: clockless::kernel::NS,
        },
    ] {
        let design = ClockedDesign::translate(&model, scheme).unwrap();
        let mut clocked = ClockedSimulation::new(&design, false).unwrap();
        clocked.run_to_completion().unwrap();
        assert_eq!(clocked.register_value("R1"), Some(Value::Num(42)));
        assert!(check_clocked_equivalence(&model, scheme)
            .unwrap()
            .equivalent());
    }

    // Handshake.
    let mut hs = HandshakeSim::new(&model).unwrap();
    hs.run_to_completion().unwrap();
    assert_eq!(hs.register_value("R1"), Some(Value::Num(42)));
    assert!(check_handshake_equivalence(&model).unwrap().equivalent());
}

#[test]
fn fig1_bus_b1_reused_across_steps() {
    // Fig. 1's B1 carries the operand in step 5 and the result in step 6
    // — the defining bus-sharing pattern of the model.
    let model = fig1_model(1, 1);
    let mut sim = RtSimulation::traced(&model).unwrap();
    sim.run_to_completion().unwrap();
    // The trace shows B1 carrying a value during both steps.
    let layout = sim.layout();
    let b1 = layout.bus[0];
    let trace = sim.kernel().trace().unwrap();
    let carried: Vec<(u64, Value)> = trace
        .events_for(b1)
        .map(|e| (e.at.delta, e.value))
        .filter(|(_, v)| v.is_num())
        .collect();
    assert_eq!(carried.len(), 2, "B1 carries a value twice: {carried:?}");
    let step5_rb = PhaseTime::new(5, Phase::Rb).active_delta();
    let step6_wb = PhaseTime::new(6, Phase::Wb).active_delta();
    assert_eq!(carried[0].0, step5_rb);
    assert_eq!(carried[1].0, step6_wb);
}
