//! Experiment E8 (§4 high-level synthesis): scheduling + allocation +
//! emission over the classic workloads and resource budgets, the
//! abstract-level simulation of the results, and the automatic prover.

use std::collections::HashMap;

use clockless_bench::harness::Harness;
use clockless_core::{ModuleTiming, Op, RtSimulation};
use clockless_hls::{
    critical_path, diffeq, fir, force_directed_schedule, random_dag, synthesize, ResourceClass,
    ResourceSet,
};
use clockless_verify::verify_synthesis;

fn resources(muls: usize, alus: usize) -> ResourceSet {
    ResourceSet::new([
        ResourceClass::new(
            "MUL",
            [Op::Mul],
            ModuleTiming::Pipelined { latency: 2 },
            muls,
        ),
        ResourceClass::new(
            "ALU",
            [Op::Add, Op::Sub, Op::Min, Op::Max, Op::Xor],
            ModuleTiming::Pipelined { latency: 1 },
            alus,
        ),
    ])
}

fn fir_inputs(n: usize) -> (Vec<String>, Vec<i64>) {
    (
        (0..n).map(|i| format!("x{i}")).collect(),
        (0..n).map(|i| i as i64 * 3 - 4).collect(),
    )
}

fn report() {
    eprintln!("--- E8: high-level synthesis onto the clock-free subset ---");
    eprintln!(
        "{:<14} {:>5} {:>5} {:>6} {:>6} {:>6} {:>9}",
        "workload", "muls", "alus", "steps", "regs", "buses", "verified"
    );
    let diffeq_inputs: HashMap<&str, i64> = [("x", 1), ("y", 2), ("u", 3), ("dx", 1)]
        .into_iter()
        .collect();
    let (fir_names, fir_vals) = fir_inputs(8);
    let fir_map: HashMap<&str, i64> = fir_names
        .iter()
        .zip(&fir_vals)
        .map(|(n, v)| (n.as_str(), *v))
        .collect();
    let fir8 = fir(&[1, -2, 3, -4, 5, -6, 7, -8]);
    let deq = diffeq();

    let cases: Vec<(&str, &clockless_hls::Dfg, &HashMap<&str, i64>)> =
        vec![("fir8", &fir8, &fir_map), ("diffeq", &deq, &diffeq_inputs)];
    for (name, g, inputs) in cases {
        for (muls, alus) in [(1usize, 1usize), (2, 2)] {
            let syn = synthesize(g, &resources(muls, alus), inputs).expect("synthesis");
            let mut sim = RtSimulation::new(&syn.model).expect("elaborates");
            sim.run_to_completion().expect("runs");
            let verified = verify_synthesis(g, &syn, 8).expect("verifies").passed();
            eprintln!(
                "{name:<14} {muls:>5} {alus:>5} {:>6} {:>6} {:>6} {verified:>9}",
                syn.model.cs_max(),
                syn.model.registers().len(),
                syn.model.buses().len()
            );
            assert!(verified);
        }
    }
}

fn report_fds() {
    // The dual scheduler: resource minimization under a deadline.
    eprintln!("\n--- E8b: force-directed scheduling (resource/latency trade) ---");
    eprintln!(
        "{:<14} {:>9} {:>6} {:>6}",
        "workload", "deadline", "muls", "alus"
    );
    let deq = diffeq();
    let r = resources(99, 99);
    let cp = critical_path(&deq, &r).expect("critical path");
    for slack in [0u32, 3, 6] {
        let fds = force_directed_schedule(&deq, &r, cp + slack).expect("schedules");
        eprintln!(
            "{:<14} {:>9} {:>6} {:>6}",
            "diffeq",
            cp + slack,
            fds.instances[0],
            fds.instances[1]
        );
    }
}

fn main() {
    report();
    report_fds();
    let mut h = Harness::new();
    {
        let mut g = h.group("hls_flow");

        // Scheduling + allocation + emission cost over graph size.
        for nodes in [10usize, 40, 160] {
            let graph = random_dag(99, nodes, 4);
            let names: Vec<String> = (0..4).map(|i| format!("in{i}")).collect();
            let inputs: HashMap<&str, i64> = names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), i as i64 + 1))
                .collect();
            let res = resources(2, 2);
            g.bench(format!("synthesize/{nodes}"), || {
                synthesize(&graph, &res, &inputs).expect("synthesis")
            });
            let syn = synthesize(&graph, &res, &inputs).expect("synthesis");
            g.bench(format!("simulate_result/{nodes}"), || {
                let mut sim = RtSimulation::new(&syn.model).expect("elaborates");
                sim.run_to_completion().expect("runs")
            });
            g.bench(format!("verify/{nodes}"), || {
                verify_synthesis(&graph, &syn, 4).expect("verifies")
            });

            let cp = critical_path(&graph, &res).expect("critical path");
            g.bench(format!("force_directed/{nodes}"), || {
                force_directed_schedule(&graph, &res, cp + 4).expect("schedules")
            });
        }
    }
    h.print_table();
}
