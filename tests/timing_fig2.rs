//! Experiment E2: the Fig. 2 timing scheme — six phases per control step,
//! advanced purely in delta time.
//!
//! §2.2: "the simulation of each control step takes 6 delta simulation
//! cycles. The complete simulation takes CS_MAX × 6 delta simulation
//! cycles." (Our kernel additionally counts the initialization cycle and,
//! when the very last step commits a register, the one trailing delta
//! that applies the commit.)

use clockless::core::prelude::*;
use clockless::kernel::StepOutcome;

fn empty_model(cs_max: Step) -> RtModel {
    RtModel::new("empty", cs_max)
}

#[test]
fn controller_costs_exactly_six_deltas_per_step() {
    for cs_max in [1u32, 2, 10, 100, 1000] {
        let model = empty_model(cs_max);
        let mut sim = RtSimulation::new(&model).unwrap();
        let summary = sim.run_to_completion().unwrap();
        assert_eq!(
            summary.stats.delta_cycles,
            1 + PHASES_PER_STEP * cs_max as u64,
            "cs_max = {cs_max}"
        );
        // No physical time ever passes.
        assert_eq!(summary.stats.time_advances, 0);
        assert_eq!(sim.kernel().now().fs, 0);
    }
}

#[test]
fn busy_models_cost_the_same_deltas() {
    // Delta count depends only on CS_MAX, not on how many transfers run:
    // all phase activity folds into the same six deltas.
    let sparse = fig1_model(1, 2); // one transfer in 7 steps
    let mut m = RtModel::new("busier", 7);
    m.add_register_init("R1", Value::Num(1)).unwrap();
    m.add_register_init("R2", Value::Num(2)).unwrap();
    m.add_register("R3").unwrap();
    m.add_register("R4").unwrap();
    for b in ["B1", "B2", "B3", "B4"] {
        m.add_bus(b).unwrap();
    }
    for a in ["A1", "A2"] {
        m.add_module(ModuleDecl::single(
            a,
            Op::Add,
            ModuleTiming::Pipelined { latency: 1 },
        ))
        .unwrap();
    }
    m.add_transfer(
        TransferTuple::new(2, "A1")
            .src_a("R1", "B1")
            .src_b("R2", "B2")
            .write(3, "B1", "R3"),
    )
    .unwrap();
    m.add_transfer(
        TransferTuple::new(2, "A2")
            .src_a("R2", "B3")
            .src_b("R1", "B4")
            .write(3, "B3", "R4"),
    )
    .unwrap();
    m.add_transfer(
        TransferTuple::new(4, "A1")
            .src_a("R3", "B1")
            .src_b("R4", "B2")
            .write(5, "B1", "R1"),
    )
    .unwrap();

    let mut s1 = RtSimulation::new(&sparse).unwrap();
    let mut s2 = RtSimulation::new(&m).unwrap();
    let sum1 = s1.run_to_completion().unwrap();
    let sum2 = s2.run_to_completion().unwrap();
    assert_eq!(sum1.stats.delta_cycles, sum2.stats.delta_cycles);
    assert_eq!(sum2.register("R1"), Some(Value::Num(6)));
}

#[test]
fn phase_sequence_is_cyclic_ra_to_cr() {
    let model = empty_model(3);
    let mut sim = RtSimulation::new(&model).unwrap();
    let mut phases = Vec::new();
    loop {
        match sim.step_delta().unwrap() {
            StepOutcome::Quiescent => break,
            _ => {
                if let Some(pt) = sim.phase_time() {
                    phases.push((pt.step, pt.phase));
                }
            }
        }
    }
    let expected: Vec<(Step, Phase)> = (1..=3)
        .flat_map(|s| Phase::ALL.iter().map(move |&p| (s, p)))
        .collect();
    assert_eq!(phases, expected);
}

#[test]
fn last_step_commit_adds_one_trailing_delta() {
    // A write at the last step leaves one pending register update after
    // the controller quiesces — exactly one extra delta.
    let mut m = RtModel::new("lastwrite", 2);
    m.add_register_init("A", Value::Num(5)).unwrap();
    m.add_register("B").unwrap();
    m.add_bus("X").unwrap();
    m.add_bus("Y").unwrap();
    m.add_module(ModuleDecl::single(
        "CP",
        Op::PassA,
        ModuleTiming::Combinational,
    ))
    .unwrap();
    m.add_transfer(
        TransferTuple::new(2, "CP")
            .src_a("A", "X")
            .write(2, "Y", "B"),
    )
    .unwrap();
    let mut sim = RtSimulation::new(&m).unwrap();
    let summary = sim.run_to_completion().unwrap();
    assert_eq!(summary.stats.delta_cycles, 1 + 6 * 2 + 1);
    assert_eq!(summary.register("B"), Some(Value::Num(5)));
}

#[test]
fn active_delta_mapping_matches_observed_phases() {
    // PhaseTime::active_delta is the inverse of what the controller does.
    let model = empty_model(4);
    let mut sim = RtSimulation::new(&model).unwrap();
    let mut delta: u64 = 0;
    loop {
        match sim.step_delta().unwrap() {
            StepOutcome::Quiescent => break,
            _ => {
                if let Some(pt) = sim.phase_time() {
                    assert_eq!(PhaseTime::from_active_delta(delta), Some(pt));
                    assert_eq!(pt.active_delta(), delta);
                } else {
                    assert_eq!(PhaseTime::from_active_delta(delta), None);
                }
            }
        }
        delta += 1;
    }
}

/// Phase-granularity ablation (DESIGN.md §6): the six-phase split is what
/// delivers per-phase conflict localization; its delta cost is exactly
/// `PHASES_PER_STEP` per step — this test pins the constant so any future
/// change to the phase enum shows up here.
#[test]
fn phase_count_ablation_constant() {
    assert_eq!(Phase::ALL.len() as u64, PHASES_PER_STEP);
    assert_eq!(PHASES_PER_STEP, 6);
    // The per-step delta cost of alternative splits would be:
    //   2-phase (read/write):   2 deltas/step, but conflicts localize
    //                           only to half-steps;
    //   6-phase (the paper's):  6 deltas/step, full localization.
    // The trade-off is linear in the phase count by construction.
}
