//! Job implementations: one function per `op`, each returning the
//! byte-exact document the one-shot CLI would print for the same job.
//!
//! Byte-identity is the contract this module exists to keep: `run`
//! renders through [`clockless_core::json::run_report`], `faults`
//! through `CampaignReport::to_json`, `fleet` through
//! `FleetReport::to_json` — the same functions the CLI calls — so a
//! daemon payload diffs clean against the corresponding one-shot
//! command (`scripts/ci.sh` enforces exactly that).

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use clockless_core::text::parse_model;
use clockless_core::{Backend, ExecOptions, OptLevel};
use clockless_fleet::{run_batch_with, BatchSpec, FleetConfig};
use clockless_verify::{conflict_sweep, model_from_vhdl, run_campaign, CampaignConfig};

use crate::cache::{cache_key, CachedPlan, PlanCache};
use crate::daemon::ServeStats;
use crate::protocol::{render_error, render_ok, ErrorCode, JobError, Json, Request};

/// What a job closure gets to work with: the daemon's shared state plus
/// per-submission snapshots.
pub(crate) struct JobCtx {
    pub cache: Arc<Mutex<PlanCache>>,
    pub stats: Arc<ServeStats>,
    /// Queue depth sampled when this job was accepted (reported by
    /// `stats`; a job cannot observe the pool it runs inside).
    pub queue_depth: usize,
    pub workers: usize,
}

/// Executes one parsed request to a complete, newline-terminated
/// response envelope, updating the daemon counters.
pub(crate) fn dispatch(req: &Request, ctx: &JobCtx) -> String {
    let result = match req.op.as_str() {
        "run" => job_run(&req.body, ctx),
        "faults" => job_faults(&req.body, ctx),
        "fleet" => job_fleet(&req.body),
        "sweep" => job_sweep(&req.body, ctx),
        "stats" => Ok(stats_document(ctx)),
        "ping" => Ok("pong\n".to_string()),
        other => Err(JobError::new(
            ErrorCode::UnknownOp,
            format!("unknown op `{other}` (expected run|faults|fleet|sweep|stats|ping|shutdown)"),
        )),
    };
    match result {
        Ok(payload) => {
            ctx.stats.completed.fetch_add(1, Ordering::Relaxed);
            render_ok(req.id, &req.op, &payload)
        }
        Err(e) => {
            ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
            render_error(Some(req.id), Some(&req.op), e.code, &e.message)
        }
    }
}

// ---------------------------------------------------------------- fields

fn bad(message: impl Into<String>) -> JobError {
    JobError::new(ErrorCode::BadRequest, message)
}

fn opt_str<'a>(body: &'a Json, key: &str) -> Result<Option<&'a str>, JobError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a string"))),
    }
}

fn opt_u64(body: &Json, key: &str) -> Result<Option<u64>, JobError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
    }
}

fn opt_bool(body: &Json, key: &str) -> Result<Option<bool>, JobError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a boolean"))),
    }
}

/// String field parsed through `FromStr` (backend/engine selectors).
fn opt_parse<T: std::str::FromStr>(body: &Json, key: &str) -> Result<Option<T>, JobError> {
    match opt_str(body, key)? {
        None => Ok(None),
        Some(s) => s
            .parse()
            .map(Some)
            .map_err(|_| bad(format!("invalid `{key}` value `{s}`"))),
    }
}

/// The request's optimization level (`"opt"`, a number `0..=2`); absent
/// means the daemon default, `-O2` — warm runs execute the fully
/// optimized stream unless a client asks for a lower level.
fn opt_level(body: &Json) -> Result<OptLevel, JobError> {
    match opt_u64(body, "opt")? {
        None => Ok(OptLevel::default()),
        Some(0) => Ok(OptLevel::O0),
        Some(1) => Ok(OptLevel::O1),
        Some(2) => Ok(OptLevel::O2),
        Some(n) => Err(bad(format!("`opt` must be 0, 1 or 2 (got {n})"))),
    }
}

/// Worker-thread count for the job's own internal parallelism
/// (`faults`/`fleet`/`sweep`); defaults to 1 so a job never oversubscribes
/// the daemon's pool unless asked to.
fn job_threads(body: &Json) -> Result<usize, JobError> {
    match opt_u64(body, "jobs")? {
        None => Ok(1),
        Some(0) => Err(bad("`jobs` must be >= 1")),
        Some(n) => Ok(n as usize),
    }
}

// ----------------------------------------------------------- model source

/// Resolves the job's model source text: inline `model` text, or a
/// `path` read from the daemon's filesystem (`.vhd`/`.vhdl` paths are
/// parsed as the paper's VHDL subset, like the CLI).
fn model_source(body: &Json) -> Result<(String, bool), JobError> {
    if let Some(text) = opt_str(body, "model")? {
        return Ok((text.to_string(), false));
    }
    if let Some(path) = opt_str(body, "path")? {
        let text = std::fs::read_to_string(path).map_err(|e| {
            JobError::new(ErrorCode::BuildFailed, format!("cannot read {path}: {e}"))
        })?;
        return Ok((text, path.ends_with(".vhd") || path.ends_with(".vhdl")));
    }
    Err(bad(
        "needs `model` (inline text) or `path` (file on the daemon host)",
    ))
}

/// Parses + lowers + optimizes through the daemon's plan cache. The
/// cache key is the content hash of the source text mixed with the
/// source flavor (VHDL sources parse differently from the same bytes)
/// and the optimization level (each level caches its own compiled
/// stream).
fn cache_get(
    ctx: &JobCtx,
    text: &str,
    vhdl: bool,
    opt: OptLevel,
) -> Result<Arc<CachedPlan>, JobError> {
    let key = cache_key(text.as_bytes(), vhdl, opt);
    let mut cache = ctx.cache.lock().unwrap_or_else(|e| e.into_inner());
    cache
        .get_or_insert(key, opt, || {
            if vhdl {
                model_from_vhdl(text).map_err(|e| e.to_string())
            } else {
                parse_model(text).map_err(|e| e.to_string())
            }
        })
        .map_err(|e| JobError::new(ErrorCode::BuildFailed, e))
}

// ------------------------------------------------------------------ jobs

/// `run`: one traced simulation, rendered as the `clockless run --json`
/// document. The warm path executes the cached
/// [`ExecPlan`](clockless_core::plan::ExecPlan) directly —
/// no parse, no lowering — which is where the daemon's >=5x speedup over
/// one-shot CLI runs comes from. Backends are observationally
/// byte-identical, so an explicit `"backend":"interpreted"` changes the
/// engine but never the payload.
fn job_run(body: &Json, ctx: &JobCtx) -> Result<String, JobError> {
    let (text, vhdl) = model_source(body)?;
    let backend: Option<Backend> = opt_parse(body, "backend")?;
    let opt = opt_level(body)?;
    let cached = cache_get(ctx, &text, vhdl, opt)?;
    let options = ExecOptions::traced().at_opt(opt);
    let outcome = match backend {
        Some(Backend::Interpreted) => Backend::Interpreted.execute(&cached.model, &options),
        _ => cached.execute(&options),
    }
    .map_err(|e| JobError::new(ErrorCode::RunFailed, e.to_string()))?;
    Ok(clockless_core::json::run_report(
        &cached.model,
        &outcome.summary,
    ))
}

/// `faults`: a seeded fault-injection campaign, rendered as the
/// `clockless faults --json` document.
fn job_faults(body: &Json, ctx: &JobCtx) -> Result<String, JobError> {
    let (text, vhdl) = model_source(body)?;
    let opt = opt_level(body)?;
    let cached = cache_get(ctx, &text, vhdl, opt)?;
    let mut config = CampaignConfig {
        workers: job_threads(body)?,
        max_faults: opt_u64(body, "max")?.map(|n| n as usize),
        backend: opt_parse(body, "backend")?.unwrap_or_default(),
        engine: opt_parse(body, "engine")?.unwrap_or_default(),
        checkers: opt_parse(body, "checkers")?.unwrap_or_default(),
        opt,
        ..Default::default()
    };
    if let Some(seed) = opt_u64(body, "seed")? {
        config.seed = seed;
    }
    if let Some(list) = opt_str(body, "classes")? {
        for part in list.split(',') {
            config
                .classes
                .push(part.trim().parse().map_err(|e: String| bad(e))?);
        }
    }
    let report = run_campaign(&cached.model, &config)
        .map_err(|e| JobError::new(ErrorCode::RunFailed, e.to_string()))?;
    Ok(report.to_json())
}

/// `fleet`: a batch over the shared job-queue executor, rendered as the
/// `clockless fleet --json` document. Quarantined jobs stay *inside* the
/// payload (the report rows), exactly as on the CLI — the envelope is
/// still `ok:true`, because the batch itself completed.
fn job_fleet(body: &Json) -> Result<String, JobError> {
    let jobs = job_threads(body)?;
    let timing = opt_bool(body, "timing")?.unwrap_or(false);
    let mut config = FleetConfig {
        fail_fast: opt_bool(body, "fail_fast")?.unwrap_or(false),
        ..FleetConfig::default()
    };
    if let Some(n) = opt_u64(body, "retries")? {
        config.max_retries = n as u32;
    }
    if let Some(n) = opt_u64(body, "delta_budget")? {
        config.delta_budget = Some(n);
    }
    if let Some(ms) = opt_u64(body, "wall_budget_ms")? {
        config.wall_budget = Some(std::time::Duration::from_millis(ms));
    }
    config.backend = opt_parse(body, "backend")?;
    config.opt = opt_level(body)?;

    let spec = if let Some(text) = opt_str(body, "spec")? {
        BatchSpec::parse(text, ".")
            .map_err(|e| JobError::new(ErrorCode::BuildFailed, e.to_string()))?
    } else if let Some(path) = opt_str(body, "path")? {
        BatchSpec::load(path).map_err(|e| JobError::new(ErrorCode::BuildFailed, e.to_string()))?
    } else if let Some(models) = body.get("models").and_then(Json::as_array) {
        let paths: Vec<&str> = models
            .iter()
            .map(|m| {
                m.as_str()
                    .ok_or_else(|| bad("`models` must be an array of paths"))
            })
            .collect::<Result<_, _>>()?;
        BatchSpec::from_rtl_paths(paths)
    } else {
        return Err(bad(
            "needs `spec` (inline text), `path` (.fleet file) or `models` (paths)",
        ));
    };
    let report = run_batch_with(&spec, jobs, &config)
        .map_err(|e| JobError::new(ErrorCode::RunFailed, e.to_string()))?;
    Ok(report.to_json(timing))
}

/// `sweep`: the static/dynamic conflict cross-check over a set of model
/// paths, rendered by `ConflictSweep::to_json`. Models load through the
/// plan cache, so repeated sweeps over the same candidates stay warm.
fn job_sweep(body: &Json, ctx: &JobCtx) -> Result<String, JobError> {
    let Some(paths) = body.get("paths").and_then(Json::as_array) else {
        return Err(bad("needs `paths` (array of model paths)"));
    };
    if paths.is_empty() {
        return Err(bad("`paths` must not be empty"));
    }
    let opt = opt_level(body)?;
    let mut models = Vec::with_capacity(paths.len());
    for p in paths {
        let path = p
            .as_str()
            .ok_or_else(|| bad("`paths` must be an array of strings"))?;
        let text = std::fs::read_to_string(path).map_err(|e| {
            JobError::new(ErrorCode::BuildFailed, format!("cannot read {path}: {e}"))
        })?;
        let vhdl = path.ends_with(".vhd") || path.ends_with(".vhdl");
        models.push(cache_get(ctx, &text, vhdl, opt)?.model.clone());
    }
    let sweep = conflict_sweep(&models, job_threads(body)?)
        .map_err(|e| JobError::new(ErrorCode::RunFailed, e.to_string()))?;
    Ok(sweep.to_json())
}

/// `stats`: the daemon introspection document — cache counters, job
/// tallies, queue depth (sampled at submission).
fn stats_document(ctx: &JobCtx) -> String {
    let cache = ctx.cache.lock().unwrap_or_else(|e| e.into_inner()).stats();
    ctx.stats.document(cache, ctx.queue_depth, ctx.workers)
}
