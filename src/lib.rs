//! # clockless — register transfer level models without clocks
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! *"Register Transfer Level VHDL Models without Clocks"* (Matthias Mutz,
//! DATE 1998) as a Rust library family.
//!
//! ## A guided tour
//!
//! 1. Describe a model — via the builder ([`core::RtModel`]), the `.rtl`
//!    text format ([`core::text`]) or VHDL in the paper's subset
//!    ([`verify::model_from_vhdl`]).
//! 2. Simulate it clock-free ([`core::RtSimulation`]): six delta cycles
//!    per control step, conflicts localized to step + phase.
//! 3. Produce models from dataflow graphs ([`hls::synthesize`],
//!    [`hls::force_directed_schedule`]) and prove them against the
//!    algorithmic description ([`verify::verify_synthesis`]).
//! 4. Hand off to clocked RTL ([`clocked::ClockedDesign`]), check
//!    commit-trace equivalence ([`clocked::check_clocked_equivalence`]),
//!    emit synthesizable VHDL ([`clocked::emit_clocked_vhdl`]).
//! 5. Or run the paper's own application: the IKS chip from microcode
//!    ([`iks::build_ik_chip`]).
//! 6. Sweep many models/stimuli at once with the parallel batch engine
//!    ([`fleet::run_batch`]) — deterministic results on any worker count.
//! 7. Keep a simulation server resident ([`serve::Daemon`]): models are
//!    lowered once into a plan cache and jobs stream over NDJSON, with
//!    payloads byte-identical to the one-shot CLI.
//!
//! ```
//! use clockless::core::model::fig1_model;
//! use clockless::core::{RtSimulation, Value};
//!
//! let mut sim = RtSimulation::new(&fig1_model(3, 4))?;
//! let summary = sim.run_to_completion()?;
//! assert_eq!(summary.register("R1"), Some(Value::Num(7)));
//! # Ok::<(), clockless::kernel::KernelError>(())
//! ```
//!
//! The individual crates are re-exported here under short names:
//!
//! * [`kernel`] — delta-cycle discrete-event simulation kernel.
//! * [`core`] — the paper's contribution: clock-free RT models on control
//!   steps and six phases.
//! * [`hls`] — high-level-synthesis front end emitting RT models.
//! * [`clocked`] — translation to clocked RTL plus the handshake baseline.
//! * [`iks`] — the inverse-kinematics-solution chip application.
//! * [`verify`] — formal semantics, conflict checking and equivalence.
//! * [`fleet`] — deterministic parallel batch runs over job queues.
//! * [`serve`] — the long-lived simulation daemon and its NDJSON
//!   protocol (see `docs/PROTOCOL.md`).

pub use clockless_clocked as clocked;
pub use clockless_core as core;
pub use clockless_fleet as fleet;
pub use clockless_hls as hls;
pub use clockless_iks as iks;
pub use clockless_kernel as kernel;
pub use clockless_serve as serve;
pub use clockless_verify as verify;
