//! Cross-style equivalence helpers.
//!
//! The paper's flow relies on translations preserving behaviour: the same
//! register-transfer schedule executed as a clock-free model, as a clocked
//! design or as a handshake network must commit the same values into the
//! same registers at the same control steps. These helpers run the styles
//! side by side and compare.

use std::fmt;

use clockless_core::{RtModel, RtSimulation, Step, Value};
use clockless_kernel::KernelError;

use crate::handshake::HandshakeSim;
use crate::sim::ClockedSimulation;
use crate::translate::{ClockScheme, ClockedDesign, TranslateError};

/// One disagreement between two styles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// The register whose values disagree.
    pub register: String,
    /// The control step of the disagreement (`None` for final-value
    /// comparisons).
    pub step: Option<Step>,
    /// Value in the reference (clock-free) run.
    pub reference: Option<Value>,
    /// Value in the compared run.
    pub compared: Option<Value>,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step {
            Some(s) => write!(
                f,
                "register `{}` at step {}: reference {:?} vs compared {:?}",
                self.register, s, self.reference, self.compared
            ),
            None => write!(
                f,
                "register `{}` final value: reference {:?} vs compared {:?}",
                self.register, self.reference, self.compared
            ),
        }
    }
}

/// Result of an equivalence run.
#[derive(Debug, Clone, Default)]
pub struct EquivalenceReport {
    /// All found disagreements (empty = equivalent).
    pub mismatches: Vec<Mismatch>,
}

impl EquivalenceReport {
    /// `true` when no disagreement was found.
    pub fn equivalent(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for EquivalenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.equivalent() {
            return writeln!(f, "equivalent");
        }
        writeln!(f, "{} mismatch(es):", self.mismatches.len())?;
        for m in &self.mismatches {
            writeln!(f, "  {m}")?;
        }
        Ok(())
    }
}

/// Errors while running an equivalence comparison.
#[derive(Debug)]
#[non_exhaustive]
pub enum EquivError {
    /// A simulation failed.
    Kernel(KernelError),
    /// The clocked translation was rejected (static conflict).
    Translate(TranslateError),
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::Kernel(e) => write!(f, "simulation failed: {e}"),
            EquivError::Translate(e) => write!(f, "translation failed: {e}"),
        }
    }
}

impl std::error::Error for EquivError {}

impl From<KernelError> for EquivError {
    fn from(e: KernelError) -> Self {
        EquivError::Kernel(e)
    }
}

impl From<TranslateError> for EquivError {
    fn from(e: TranslateError) -> Self {
        EquivError::Translate(e)
    }
}

fn compare_final(reference: &[(String, Value)], compared: &[(String, Value)]) -> EquivalenceReport {
    let mut report = EquivalenceReport::default();
    for (name, ref_v) in reference {
        let comp_v = compared.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        if comp_v != Some(*ref_v) {
            report.mismatches.push(Mismatch {
                register: name.clone(),
                step: None,
                reference: Some(*ref_v),
                compared: comp_v,
            });
        }
    }
    report
}

/// Runs the clock-free model and its clocked translation under `scheme`
/// and compares the *commit traces* (register, step, value) as well as
/// final register values.
///
/// # Errors
///
/// Returns [`EquivError`] when translation or either simulation fails.
pub fn check_clocked_equivalence(
    model: &RtModel,
    scheme: ClockScheme,
) -> Result<EquivalenceReport, EquivError> {
    let mut abstract_sim = RtSimulation::traced(model)?;
    abstract_sim.run_to_completion()?;
    let design = ClockedDesign::translate(model, scheme)?;
    let mut clocked = ClockedSimulation::new(&design, true)?;
    clocked.run_to_completion()?;

    let mut report = compare_final(&abstract_sim.registers(), &clocked.registers());

    let ref_commits = abstract_sim
        .register_commits()
        .expect("traced simulation records commits");
    let comp_commits = clocked
        .register_commits()
        .expect("traced simulation records commits");
    // Commit traces must match exactly, in order, per register.
    for (name, _) in abstract_sim.registers() {
        let r: Vec<(Step, Value)> = ref_commits
            .iter()
            .filter(|c| c.register == name)
            .map(|c| (c.step, c.value))
            .collect();
        let c: Vec<(Step, Value)> = comp_commits
            .iter()
            .filter(|c| c.register == name)
            .map(|c| (c.step, c.value))
            .collect();
        if r != c {
            // Report the first diverging position.
            let pos = r.iter().zip(&c).take_while(|(a, b)| a == b).count();
            report.mismatches.push(Mismatch {
                register: name.clone(),
                step: r.get(pos).or(c.get(pos)).map(|(s, _)| *s),
                reference: r.get(pos).map(|(_, v)| *v),
                compared: c.get(pos).map(|(_, v)| *v),
            });
        }
    }
    Ok(report)
}

/// Runs the clock-free model and its handshake rendering and compares
/// final register values (the handshake network has no step timing, so
/// only functional results are comparable).
///
/// # Errors
///
/// Returns [`EquivError`] when either simulation fails.
pub fn check_handshake_equivalence(model: &RtModel) -> Result<EquivalenceReport, EquivError> {
    if let Some(m) = model.memories().first() {
        return Err(EquivError::Translate(TranslateError::UnsupportedMemory {
            memory: m.name.clone(),
        }));
    }
    let mut abstract_sim = RtSimulation::new(model)?;
    abstract_sim.run_to_completion()?;
    let mut hs = HandshakeSim::new(model)?;
    hs.run_to_completion()?;
    Ok(compare_final(&abstract_sim.registers(), &hs.registers()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;
    use clockless_kernel::NS;

    #[test]
    fn fig1_equivalent_under_both_schemes() {
        let model = fig1_model(3, 4);
        for scheme in [
            ClockScheme::OneCyclePerStep { period_fs: 10 * NS },
            ClockScheme::TwoCyclesPerStep { period_fs: 10 * NS },
        ] {
            let report = check_clocked_equivalence(&model, scheme).unwrap();
            assert!(report.equivalent(), "{report}");
        }
    }

    #[test]
    fn fig1_handshake_equivalent() {
        let model = fig1_model(9, 33);
        let report = check_handshake_equivalence(&model).unwrap();
        assert!(report.equivalent(), "{report}");
    }

    #[test]
    fn guarded_models_equivalent_across_styles() {
        // Step 1 clears R1; the step-2 guard must see the cleared value
        // and leave R3 untouched. A guard-unaware rendering writes 5.
        let gated = clockless_core::text::parse_model(
            "model g1 steps 3\nregister Z init 0\nregister R1 init 1\n\
             register R2 init 5\nregister R3 init 9\nbus B1\nbus B2\n\
             module CP ops passa comb\n\
             transfer (Z,B1,-,-,1,CP,1,B2,R1)\n\
             transfer if R1 /= 0 then (R2,B1,-,-,2,CP,2,B2,R3)\n",
        )
        .unwrap();
        // Same schedule with a guard that stays true: R3 becomes 5.
        let open = clockless_core::text::parse_model(
            "model g1 steps 3\nregister Z init 0\nregister R1 init 1\n\
             register R2 init 5\nregister R3 init 9\nbus B1\nbus B2\n\
             module CP ops passa comb\n\
             transfer (Z,B1,-,-,1,CP,1,B2,R1)\n\
             transfer if R1 >= 0 then (R2,B1,-,-,2,CP,2,B2,R3)\n",
        )
        .unwrap();
        for (model, r3) in [(&gated, 9), (&open, 5)] {
            let mut abs = RtSimulation::new(model).unwrap();
            abs.run_to_completion().unwrap();
            assert_eq!(
                abs.registers().iter().find(|(n, _)| n == "R3").unwrap().1,
                Value::Num(r3)
            );
            for scheme in [
                ClockScheme::OneCyclePerStep { period_fs: 10 * NS },
                ClockScheme::TwoCyclesPerStep { period_fs: 10 * NS },
            ] {
                let report = check_clocked_equivalence(model, scheme).unwrap();
                assert!(report.equivalent(), "{report}");
            }
            let report = check_handshake_equivalence(model).unwrap();
            assert!(report.equivalent(), "{report}");
        }
    }

    #[test]
    fn same_step_write_does_not_leak_into_guard() {
        // Both writes land in step 1. The guard on the second write reads
        // R1, which the first write clears *in the same step* — the
        // abstract wb phase still sees the pre-commit value 1, so the
        // guarded write must go through. A serialized rendering that
        // evaluates guards write-by-write would see 0 and skip it.
        let model = clockless_core::text::parse_model(
            "model g2 steps 2\nregister Z init 0\nregister R1 init 1\n\
             register R2 init 5\nregister R3 init 9\n\
             bus B1\nbus B2\nbus B3\nbus B4\n\
             module CP ops passa comb\nmodule CQ ops passa comb\n\
             transfer (Z,B1,-,-,1,CP,1,B2,R1)\n\
             transfer if R1 /= 0 then (R2,B3,-,-,1,CQ,1,B4,R3)\n",
        )
        .unwrap();
        let mut abs = RtSimulation::new(&model).unwrap();
        abs.run_to_completion().unwrap();
        assert_eq!(
            abs.registers().iter().find(|(n, _)| n == "R3").unwrap().1,
            Value::Num(5)
        );
        let report =
            check_clocked_equivalence(&model, ClockScheme::OneCyclePerStep { period_fs: 10 * NS })
                .unwrap();
        assert!(report.equivalent(), "{report}");
        let report = check_handshake_equivalence(&model).unwrap();
        assert!(report.equivalent(), "{report}");
    }

    #[test]
    fn memory_models_are_rejected_not_mistranslated() {
        let model = clockless_core::text::parse_model(
            "model mm steps 2\nregister R init 1\nmemory M[4] init 0\n\
             bus B1\nbus B2\nmodule CP ops passa comb\n\
             transfer (R,B1,-,-,1,CP,1,B2,M[2])\n",
        )
        .unwrap();
        let err = check_clocked_equivalence(&model, ClockScheme::default()).unwrap_err();
        assert!(
            matches!(
                &err,
                EquivError::Translate(TranslateError::UnsupportedMemory { memory }) if memory == "M"
            ),
            "{err}"
        );
        let err = check_handshake_equivalence(&model).unwrap_err();
        assert!(
            matches!(
                err,
                EquivError::Translate(TranslateError::UnsupportedMemory { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn mismatch_display_names_register() {
        let m = Mismatch {
            register: "R1".into(),
            step: Some(4),
            reference: Some(Value::Num(1)),
            compared: Some(Value::Num(2)),
        };
        assert!(m.to_string().contains("R1"));
        assert!(m.to_string().contains("step 4"));
    }
}
