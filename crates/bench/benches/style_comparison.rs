//! Experiment E5 (§2.7 speed claim): "Execution is very fast, because we
//! need not deal with asynchronous handshake." The same schedules are
//! executed as (a) the clock-free control-step model, (b) the 4-phase
//! handshake network, (c) the clocked translation — wall time via
//! criterion, kernel counters in the report. The expected shape: the
//! clock-free style's cost scales with steps, the handshake style's with
//! (serialized) transfers; dense schedules make the gap grow with width.

use clockless_bench::dense_model;
use clockless_clocked::{ClockScheme, ClockedDesign, ClockedSimulation, HandshakeSim};
use clockless_core::{ElaborateOptions, RtSimulation};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn report() {
    eprintln!("--- E5: modeling-style cost comparison (depth 8) ---");
    eprintln!(
        "{:>6} {:>22} {:>22} {:>22}",
        "width", "clock-free (δ/act/ev)", "handshake (δ/act/ev)", "clocked (δ/act/ev)"
    );
    for width in [1usize, 4, 16] {
        let model = dense_model(width, 8);

        let mut cf = RtSimulation::new(&model).expect("elaborates");
        let cf_stats = cf.run_to_completion().expect("runs").stats;

        let mut hs = HandshakeSim::new(&model).expect("builds");
        let hs_stats = hs.run_to_completion().expect("runs");

        let design = ClockedDesign::translate(&model, ClockScheme::default()).expect("translates");
        let mut ck = ClockedSimulation::new(&design, false).expect("elaborates");
        let ck_stats = ck.run_to_completion().expect("runs");

        eprintln!(
            "{width:>6} {:>22} {:>22} {:>22}",
            format!(
                "{}/{}/{}",
                cf_stats.delta_cycles, cf_stats.process_activations, cf_stats.events
            ),
            format!(
                "{}/{}/{}",
                hs_stats.delta_cycles, hs_stats.process_activations, hs_stats.events
            ),
            format!(
                "{}/{}/{}",
                ck_stats.delta_cycles, ck_stats.process_activations, ck_stats.events
            ),
        );
        // Results agree across styles.
        assert_eq!(cf.registers(), hs.registers());
        assert_eq!(cf.registers(), ck.registers());
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut g = c.benchmark_group("style_comparison");

    // Simulation-only timings (elaboration excluded via iter_batched,
    // so the comparison isolates the event-loop cost of each style).
    for width in [1usize, 4, 16] {
        let model = dense_model(width, 8);

        g.bench_with_input(BenchmarkId::new("clock_free", width), &model, |b, m| {
            b.iter_batched(
                || RtSimulation::new(m).expect("elaborates"),
                |mut sim| sim.run_to_completion().expect("runs"),
                BatchSize::SmallInput,
            )
        });

        g.bench_with_input(
            BenchmarkId::new("clock_free_faithful_wakeups", width),
            &model,
            |b, m| {
                b.iter_batched(
                    || {
                        RtSimulation::with_options(
                            m,
                            ElaborateOptions {
                                trace: false,
                                faithful_trans_wakeups: true,
                            },
                        )
                        .expect("elaborates")
                    },
                    |mut sim| sim.run_to_completion().expect("runs"),
                    BatchSize::SmallInput,
                )
            },
        );

        g.bench_with_input(BenchmarkId::new("handshake", width), &model, |b, m| {
            b.iter_batched(
                || HandshakeSim::new(m).expect("builds"),
                |mut sim| sim.run_to_completion().expect("runs"),
                BatchSize::SmallInput,
            )
        });

        let design = ClockedDesign::translate(&model, ClockScheme::default()).expect("translates");
        g.bench_with_input(BenchmarkId::new("clocked", width), &design, |b, d| {
            b.iter_batched(
                || ClockedSimulation::new(d, false).expect("elaborates"),
                |mut sim| sim.run_to_completion().expect("runs"),
                BatchSize::SmallInput,
            )
        });

        // Elaboration cost, reported separately.
        g.bench_with_input(
            BenchmarkId::new("clock_free_elaborate", width),
            &model,
            |b, m| b.iter(|| RtSimulation::new(m).expect("elaborates")),
        );
        g.bench_with_input(
            BenchmarkId::new("handshake_elaborate", width),
            &model,
            |b, m| b.iter(|| HandshakeSim::new(m).expect("builds")),
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
