//! Operations performed by functional modules.
//!
//! The paper's base model shows a single-operation pipelined adder; the
//! IKS application (§3) required the extension that "a register transfer
//! also defines the operation to be performed by the module". [`Op`]
//! enumerates the operations our modules support — enough for the paper's
//! examples, the HLS workloads and the IKS chip (including fixed-point
//! multiply and the `Rshift` used by the IKS opcode maps).
//!
//! Operand semantics follow §2.6: a module combines its operands only when
//! *all required* operands are regular numbers; an all-`DISC` input yields
//! `DISC`; any partial or `ILLEGAL` input yields `ILLEGAL`.

use std::fmt;
use std::str::FromStr;

use crate::value::Value;

/// An operation a functional module can perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// `a + b` (the paper's `ADD`).
    Add,
    /// `a - b`.
    Sub,
    /// `a * b`.
    Mul,
    /// Fixed-point multiply: `(a * b) >> frac` with an `i128` intermediate,
    /// used by the IKS MACC datapath.
    MulFx(u8),
    /// Arithmetic shift right by the second operand: `a >> b`
    /// (the IKS opcode maps' `Rshift(x, i)`).
    Shr,
    /// Shift left by the second operand: `a << b`.
    Shl,
    /// Pass the first operand through unchanged (unary). Used for the
    /// copy modules the paper introduces for register-to-register links.
    PassA,
    /// Pass the second operand through unchanged (unary on port B).
    PassB,
    /// Negate the first operand (unary).
    Neg,
    /// Absolute value of the first operand (unary).
    Abs,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Fixed-point four-quadrant arctangent: `atan2(a, b)` in radians,
    /// all values in Q`frac` fixed point. Computed by integer CORDIC
    /// vectoring — this is the `cordic core` resource of the IKS chip
    /// (§3), modeled at the operation level.
    Atan2Fx(u8),
    /// Fixed-point square root (unary): `sqrt(a)` with `a` and the result
    /// in Q`frac`. `ILLEGAL` for negative operands. The IKS chip computes
    /// this on its CORDIC core (hyperbolic mode); we use an exact integer
    /// Newton iteration.
    SqrtFx(u8),
    /// Fixed-point sine (unary): `sin(a)` with the angle and result in
    /// Q`frac`; integer CORDIC rotation mode with full range reduction.
    SinFx(u8),
    /// Fixed-point cosine (unary); see [`Op::SinFx`].
    CosFx(u8),
}

/// How many operand ports an [`Op`] consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Uses only the first operand port; the second must stay `DISC`.
    UnaryA,
    /// Uses only the second operand port; the first must stay `DISC`.
    UnaryB,
    /// Uses both operand ports.
    Binary,
}

impl Op {
    /// The operand ports this operation consumes.
    pub fn arity(self) -> Arity {
        match self {
            Op::PassA | Op::Neg | Op::Abs | Op::SqrtFx(_) | Op::SinFx(_) | Op::CosFx(_) => {
                Arity::UnaryA
            }
            Op::PassB => Arity::UnaryB,
            _ => Arity::Binary,
        }
    }

    /// Applies the operation to the module's operand port values,
    /// following the paper's §2.6 rules:
    ///
    /// * any `ILLEGAL` operand → `ILLEGAL`;
    /// * all *required* operands `DISC` (and unused ports `DISC`) → `DISC`
    ///   ("no operation this step");
    /// * all required operands numeric (and unused ports `DISC`) → result;
    /// * anything else (partial operands, or a value on an unused port) →
    ///   `ILLEGAL`.
    ///
    /// Arithmetic wraps on overflow (two's-complement behaviour of the
    /// eventual hardware); shifts with negative or oversized amounts and
    /// shifts of negative values yield `ILLEGAL`.
    pub fn apply(self, a: Value, b: Value) -> Value {
        use Value::*;
        if a == Illegal || b == Illegal {
            return Illegal;
        }
        match self.arity() {
            Arity::UnaryA => match (a, b) {
                (Disc, Disc) => Disc,
                (Num(x), Disc) => self.unary(x),
                _ => Illegal,
            },
            Arity::UnaryB => match (a, b) {
                (Disc, Disc) => Disc,
                (Disc, Num(y)) => Num(y),
                _ => Illegal,
            },
            Arity::Binary => match (a, b) {
                (Disc, Disc) => Disc,
                (Num(x), Num(y)) => self.binary(x, y),
                _ => Illegal,
            },
        }
    }

    fn unary(self, x: i64) -> Value {
        match self {
            Op::PassA => Value::Num(x),
            Op::Neg => Value::Num(x.wrapping_neg()),
            Op::Abs => Value::Num(x.wrapping_abs()),
            Op::SqrtFx(frac) => {
                if x < 0 {
                    Value::Illegal
                } else {
                    Value::Num(sqrt_fx(x, frac))
                }
            }
            Op::SinFx(frac) => Value::Num(sincos_fx(x, frac).0),
            Op::CosFx(frac) => Value::Num(sincos_fx(x, frac).1),
            _ => unreachable!("unary() called for non-unary op {self:?}"),
        }
    }

    fn binary(self, x: i64, y: i64) -> Value {
        match self {
            Op::Add => Value::Num(x.wrapping_add(y)),
            Op::Sub => Value::Num(x.wrapping_sub(y)),
            Op::Mul => Value::Num(x.wrapping_mul(y)),
            Op::MulFx(frac) => {
                let wide = (x as i128) * (y as i128);
                Value::Num((wide >> frac) as i64)
            }
            Op::Shr => {
                if !(0..64).contains(&y) {
                    Value::Illegal
                } else {
                    Value::Num(x >> y)
                }
            }
            Op::Shl => {
                if !(0..64).contains(&y) {
                    Value::Illegal
                } else {
                    Value::Num(x.wrapping_shl(y as u32))
                }
            }
            Op::Min => Value::Num(x.min(y)),
            Op::Max => Value::Num(x.max(y)),
            Op::And => Value::Num(x & y),
            Op::Or => Value::Num(x | y),
            Op::Xor => Value::Num(x ^ y),
            Op::Atan2Fx(frac) => Value::Num(atan2_fx(x, y, frac)),
            _ => unreachable!("binary() called for non-binary op {self:?}"),
        }
    }

    /// A short lowercase mnemonic, parseable by [`FromStr`].
    pub fn mnemonic(self) -> String {
        match self {
            Op::Add => "add".into(),
            Op::Sub => "sub".into(),
            Op::Mul => "mul".into(),
            Op::MulFx(f) => format!("mulfx{f}"),
            Op::Shr => "shr".into(),
            Op::Shl => "shl".into(),
            Op::PassA => "passa".into(),
            Op::PassB => "passb".into(),
            Op::Neg => "neg".into(),
            Op::Abs => "abs".into(),
            Op::Min => "min".into(),
            Op::Max => "max".into(),
            Op::And => "and".into(),
            Op::Or => "or".into(),
            Op::Xor => "xor".into(),
            Op::Atan2Fx(f) => format!("atan2fx{f}"),
            Op::SqrtFx(f) => format!("sqrtfx{f}"),
            Op::SinFx(f) => format!("sinfx{f}"),
            Op::CosFx(f) => format!("cosfx{f}"),
        }
    }
}

/// Integer CORDIC vectoring: four-quadrant `atan2(y, x)` where `y`, `x`
/// and the returned angle (radians) are Q`frac` fixed-point values.
///
/// This is the reference semantics of [`Op::Atan2Fx`], exposed so golden
/// models (the IKS algorithm level) share the exact same arithmetic.
/// Accuracy is limited by the 48 CORDIC iterations and the output
/// quantization, i.e. well below one ulp of reasonable `frac` (< 30).
pub fn atan2_fx(y: i64, x: i64, frac: u8) -> i64 {
    // Work in Q60 inside i128: comfortably exact for |inputs| < 2^63.
    const WORK: u32 = 60;
    let pi: i128 = (std::f64::consts::PI * 2f64.powi(WORK as i32)) as i128;

    if x == 0 && y == 0 {
        return 0;
    }
    let (mut xw, mut yw) = (x as i128, y as i128);
    // Pre-rotate into the right half plane.
    let mut z: i128 = 0;
    if xw < 0 {
        z = if yw >= 0 { pi } else { -pi };
        xw = -xw;
        yw = -yw;
    }
    // Scale up for precision through the 48 right-shifting iterations.
    xw <<= 32;
    yw <<= 32;
    let tab = cordic_atan_table();
    for (i, &a) in tab.iter().enumerate() {
        let (xo, yo) = (xw, yw);
        if yw <= 0 {
            xw -= yo >> i;
            yw += xo >> i;
            z -= a;
        } else {
            xw += yo >> i;
            yw -= xo >> i;
            z += a;
        }
    }
    // z is Q60; rescale to Qfrac, rounding to nearest.
    let scale = WORK - frac as u32;
    ((z + (1i128 << (scale - 1))) >> scale) as i64
}

/// Integer CORDIC rotation: `(sin θ, cos θ)` for an angle in Q`frac`
/// radians (any magnitude; full range reduction modulo 2π is applied).
/// Reference semantics of [`Op::SinFx`]/[`Op::CosFx`].
///
/// Accuracy follows the 48 iterations and the Q`frac` output
/// quantization — a few ulps for `frac ≤ 30`.
pub fn sincos_fx(theta: i64, frac: u8) -> (i64, i64) {
    const WORK: u32 = 60;
    const ITERS: usize = 48;
    let scale = WORK - frac as u32;
    let pi: i128 = (std::f64::consts::PI * 2f64.powi(WORK as i32)) as i128;
    let pi_half = pi / 2;
    let two_pi = pi * 2;

    // Range reduction into (-π, π], then into [-π/2, π/2] with a sign
    // flip (sin/cos are both negated by a ±π shift).
    let mut z = (theta as i128) << scale;
    z %= two_pi;
    if z > pi {
        z -= two_pi;
    } else if z < -pi {
        z += two_pi;
    }
    let mut sign: i128 = 1;
    if z > pi_half {
        z -= pi;
        sign = -1;
    } else if z < -pi_half {
        z += pi;
        sign = -1;
    }

    // Rotation mode from (1/K, 0): the CORDIC gain cancels and the final
    // vector is (cos z, sin z) in Q60.
    let k_inv: i128 = (0.607_252_935_008_881_3_f64 * 2f64.powi(WORK as i32)) as i128;
    let (mut x, mut y) = (k_inv, 0i128);
    let tab = cordic_atan_table();
    for (i, &a) in tab.iter().enumerate().take(ITERS) {
        let (xo, yo) = (x, y);
        if z >= 0 {
            x -= yo >> i;
            y += xo >> i;
            z -= a;
        } else {
            x += yo >> i;
            y -= xo >> i;
            z += a;
        }
    }
    // Round to nearest on the way down to Q`frac` (plain flooring turns
    // sin 0 into -1 ulp because the residual oscillates around zero).
    let round = |v: i128| -> i64 { ((v + (1i128 << (scale - 1))) >> scale) as i64 };
    (round(sign * y), round(sign * x))
}

/// `atan(2^-i)` in Q60 radians, shared by the vectoring and rotation
/// CORDIC modes.
fn cordic_atan_table() -> &'static [i128; 48] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[i128; 48]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0i128; 48];
        for (i, e) in t.iter_mut().enumerate() {
            *e = ((2f64.powi(-(i as i32))).atan() * 2f64.powi(60)) as i128;
        }
        t
    })
}

/// Fixed-point square root: `sqrt(a)` with `a` and the result in Q`frac`
/// (exact floor). Reference semantics of [`Op::SqrtFx`].
///
/// # Panics
///
/// Panics if `a` is negative (the operation maps negatives to
/// `ILLEGAL` before calling this).
pub fn sqrt_fx(a: i64, frac: u8) -> i64 {
    assert!(a >= 0, "sqrt_fx needs a non-negative operand");
    // result = floor(sqrt(a << frac)): (r/2^f)^2 <= a/2^f.
    let wide = (a as u128) << frac;
    isqrt_u128(wide) as i64
}

/// Floor integer square root of a `u128` (Newton's method).
fn isqrt_u128(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    let mut x = 1u128 << (n.ilog2() / 2 + 1);
    loop {
        let y = (x + n / x) / 2;
        if y >= x {
            return x;
        }
        x = y;
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// Error parsing an [`Op`] from its mnemonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpError(pub String);

impl fmt::Display for ParseOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown operation mnemonic `{}`", self.0)
    }
}

impl std::error::Error for ParseOpError {}

impl FromStr for Op {
    type Err = ParseOpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.to_ascii_lowercase();
        if let Some(frac) = s.strip_prefix("mulfx") {
            let f: u8 = frac.parse().map_err(|_| ParseOpError(s.clone()))?;
            return Ok(Op::MulFx(f));
        }
        if let Some(frac) = s.strip_prefix("atan2fx") {
            let f: u8 = frac.parse().map_err(|_| ParseOpError(s.clone()))?;
            return Ok(Op::Atan2Fx(f));
        }
        if let Some(frac) = s.strip_prefix("sqrtfx") {
            let f: u8 = frac.parse().map_err(|_| ParseOpError(s.clone()))?;
            return Ok(Op::SqrtFx(f));
        }
        if let Some(frac) = s.strip_prefix("sinfx") {
            let f: u8 = frac.parse().map_err(|_| ParseOpError(s.clone()))?;
            return Ok(Op::SinFx(f));
        }
        if let Some(frac) = s.strip_prefix("cosfx") {
            let f: u8 = frac.parse().map_err(|_| ParseOpError(s.clone()))?;
            return Ok(Op::CosFx(f));
        }
        Ok(match s.as_str() {
            "add" => Op::Add,
            "sub" => Op::Sub,
            "mul" => Op::Mul,
            "shr" => Op::Shr,
            "shl" => Op::Shl,
            "passa" | "copy" => Op::PassA,
            "passb" => Op::PassB,
            "neg" => Op::Neg,
            "abs" => Op::Abs,
            "min" => Op::Min,
            "max" => Op::Max,
            "and" => Op::And,
            "or" => Op::Or,
            "xor" => Op::Xor,
            _ => return Err(ParseOpError(s)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Value::*;

    #[test]
    fn binary_disc_rules_match_paper() {
        // §2.6: "either both operand values are natural values or both are DISC".
        assert_eq!(Op::Add.apply(Disc, Disc), Disc);
        assert_eq!(Op::Add.apply(Num(2), Num(3)), Num(5));
        assert_eq!(Op::Add.apply(Num(2), Disc), Illegal);
        assert_eq!(Op::Add.apply(Disc, Num(3)), Illegal);
        assert_eq!(Op::Add.apply(Illegal, Num(3)), Illegal);
        assert_eq!(Op::Add.apply(Num(1), Illegal), Illegal);
    }

    #[test]
    fn unary_ops_require_quiet_other_port() {
        assert_eq!(Op::PassA.apply(Num(7), Disc), Num(7));
        assert_eq!(Op::PassA.apply(Num(7), Num(1)), Illegal);
        assert_eq!(Op::PassA.apply(Disc, Disc), Disc);
        assert_eq!(Op::PassB.apply(Disc, Num(9)), Num(9));
        assert_eq!(Op::PassB.apply(Num(1), Num(9)), Illegal);
        assert_eq!(Op::Neg.apply(Num(4), Disc), Num(-4));
        assert_eq!(Op::Abs.apply(Num(-4), Disc), Num(4));
    }

    #[test]
    fn arithmetic_results() {
        assert_eq!(Op::Sub.apply(Num(10), Num(4)), Num(6));
        assert_eq!(Op::Mul.apply(Num(6), Num(7)), Num(42));
        assert_eq!(Op::Min.apply(Num(3), Num(-2)), Num(-2));
        assert_eq!(Op::Max.apply(Num(3), Num(-2)), Num(3));
        assert_eq!(Op::And.apply(Num(0b1100), Num(0b1010)), Num(0b1000));
        assert_eq!(Op::Or.apply(Num(0b1100), Num(0b1010)), Num(0b1110));
        assert_eq!(Op::Xor.apply(Num(0b1100), Num(0b1010)), Num(0b0110));
    }

    #[test]
    fn shifts_validate_amounts() {
        assert_eq!(Op::Shr.apply(Num(16), Num(2)), Num(4));
        assert_eq!(Op::Shr.apply(Num(16), Num(-1)), Illegal);
        assert_eq!(Op::Shr.apply(Num(16), Num(64)), Illegal);
        assert_eq!(Op::Shl.apply(Num(1), Num(4)), Num(16));
        // Arithmetic right shift of negatives keeps sign (CORDIC needs it).
        assert_eq!(Op::Shr.apply(Num(-8), Num(1)), Num(-4));
    }

    #[test]
    fn fixed_point_multiply_scales() {
        // 1.5 * 2.0 in Q4: 24 * 32 = 768; >> 4 = 48 = 3.0 in Q4.
        assert_eq!(Op::MulFx(4).apply(Num(24), Num(32)), Num(48));
        // Large intermediates do not overflow thanks to i128.
        let big = 1i64 << 40;
        assert_eq!(Op::MulFx(40).apply(Num(big), Num(big)), Num(big));
    }

    #[test]
    fn add_wraps_on_overflow() {
        assert_eq!(Op::Add.apply(Num(i64::MAX), Num(1)), Num(i64::MIN));
    }

    #[test]
    fn mnemonic_roundtrip() {
        for op in [
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::MulFx(12),
            Op::Shr,
            Op::Shl,
            Op::PassA,
            Op::PassB,
            Op::Neg,
            Op::Abs,
            Op::Min,
            Op::Max,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Atan2Fx(16),
            Op::SqrtFx(20),
            Op::SinFx(16),
            Op::CosFx(8),
        ] {
            assert_eq!(op.mnemonic().parse::<Op>().unwrap(), op);
        }
        assert!("frobnicate".parse::<Op>().is_err());
        assert_eq!("copy".parse::<Op>().unwrap(), Op::PassA);
    }

    #[test]
    fn sqrt_fx_matches_floats() {
        let frac = 16u8;
        for v in [0.0f64, 1.0, 2.0, 0.25, 100.0, 12345.678] {
            let fx = (v * 65536.0) as i64;
            let got = sqrt_fx(fx, frac) as f64 / 65536.0;
            assert!(
                (got - v.sqrt()).abs() < 1e-4,
                "sqrt({v}) = {got}, expected {}",
                v.sqrt()
            );
        }
    }

    #[test]
    fn sqrt_fx_is_exact_floor() {
        // (r)^2 <= a<<frac < (r+1)^2 must hold exactly.
        for a in [0i64, 1, 2, 3, 65536, 65537, 1 << 40, (1 << 40) + 12345] {
            let r = sqrt_fx(a, 16) as u128;
            let target = (a as u128) << 16;
            assert!(r * r <= target);
            assert!((r + 1) * (r + 1) > target);
        }
    }

    #[test]
    fn sqrt_op_rejects_negatives() {
        assert_eq!(Op::SqrtFx(16).apply(Num(-1), Disc), Illegal);
        assert_eq!(Op::SqrtFx(16).apply(Num(4 << 16), Disc), Num(2 << 16));
    }

    #[test]
    fn atan2_fx_matches_floats_in_all_quadrants() {
        let frac = 16u8;
        let cases = [
            (1.0f64, 1.0f64),
            (1.0, -1.0),
            (-1.0, 1.0),
            (-1.0, -1.0),
            (0.0, 1.0),
            (0.0, -1.0),
            (1.0, 0.0),
            (-1.0, 0.0),
            (0.3, 2.7),
            (-123.0, 4.5),
        ];
        for (y, x) in cases {
            let fy = (y * 65536.0) as i64;
            let fx = (x * 65536.0) as i64;
            let got = atan2_fx(fy, fx, frac) as f64 / 65536.0;
            let expect = y.atan2(x);
            assert!(
                (got - expect).abs() < 1e-3,
                "atan2({y}, {x}) = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn atan2_fx_origin_is_zero() {
        assert_eq!(atan2_fx(0, 0, 16), 0);
    }

    #[test]
    fn sincos_fx_matches_floats_over_the_circle() {
        let frac = 16u8;
        for deg in (-720..=720).step_by(15) {
            let theta = (deg as f64).to_radians();
            let fx = (theta * 65536.0) as i64;
            let (s, c) = sincos_fx(fx, frac);
            let (sf, cf) = (s as f64 / 65536.0, c as f64 / 65536.0);
            assert!(
                (sf - theta.sin()).abs() < 2e-3,
                "sin({deg}°) = {sf}, expected {}",
                theta.sin()
            );
            assert!(
                (cf - theta.cos()).abs() < 2e-3,
                "cos({deg}°) = {cf}, expected {}",
                theta.cos()
            );
        }
    }

    #[test]
    fn sincos_fx_pythagorean_identity() {
        let frac = 16u8;
        let one = 1i64 << frac;
        for k in -20..=20 {
            let theta = k * one / 7;
            let (s, c) = sincos_fx(theta, frac);
            let norm = (s as i128 * s as i128 + c as i128 * c as i128) >> frac;
            let err = (norm - one as i128).abs();
            assert!(err < 64, "|sin²+cos² - 1| = {err} at theta {theta}");
        }
    }

    #[test]
    fn sincos_ops_are_unary() {
        assert_eq!(Op::SinFx(16).apply(Num(0), Disc), Num(0));
        assert_eq!(Op::CosFx(16).apply(Num(0), Disc), Num(1 << 16));
        assert_eq!(Op::SinFx(16).apply(Num(1), Num(1)), Illegal);
        assert_eq!(Op::CosFx(16).apply(Disc, Disc), Disc);
    }

    #[test]
    fn atan2_op_applies_paper_operand_rules() {
        assert_eq!(Op::Atan2Fx(16).apply(Disc, Disc), Disc);
        assert_eq!(Op::Atan2Fx(16).apply(Num(1), Disc), Illegal);
        assert!(Op::Atan2Fx(16).apply(Num(65536), Num(65536)).is_num());
    }
}
