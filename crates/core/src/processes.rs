//! Kernel processes implementing the paper's building blocks.
//!
//! Each type here is the Rust state-machine rendering of one VHDL process
//! of §2: [`Controller`] (§2.2), [`Trans`] (§2.4), [`Reg`] (§2.5) and
//! [`ModuleProc`] (§2.6, generalized to selectable operations and three
//! timing disciplines as required by §3).
//!
//! Signal conventions: the control-step signal `CS` carries
//! `Value::Num(step)` and the phase signal `PH` carries
//! `Value::Num(phase index)`; both are regular (single-driver) signals
//! owned by the controller.

use std::collections::VecDeque;

use clockless_kernel::{ProcessCtx, SignalId, Wait};

use crate::op::Op;
use crate::phase::{Phase, Step};
use crate::resource::ModuleTiming;
use crate::value::Value;

/// Reads a `Num` payload from a control signal.
///
/// # Panics
///
/// Panics if the signal does not carry a number — control signals are
/// driven only by the controller, so anything else is a wiring bug.
fn num_of(ctx: &ProcessCtx<'_, Value>, sig: SignalId) -> i64 {
    ctx.value(sig)
        .num()
        .expect("control signal carries a number")
}

/// The controller process (§2.2): cycles `PH` through the six phases and
/// increments `CS` at each wrap, with delta delay only, until
/// `CS = cs_max` completes — after which nothing is assigned and the
/// simulation quiesces.
///
/// Initial state (set at elaboration): `CS = 0`, `PH = cr` (`Phase'High`),
/// exactly as in the paper's entity declaration.
#[derive(Debug)]
pub struct Controller {
    cs_max: Step,
    cs: SignalId,
    ph: SignalId,
    started: bool,
}

impl Controller {
    /// Creates a controller driving `cs` and `ph` for `cs_max` steps.
    pub fn new(cs_max: Step, cs: SignalId, ph: SignalId) -> Controller {
        Controller {
            cs_max,
            cs,
            ph,
            started: false,
        }
    }
}

impl clockless_kernel::Process<Value> for Controller {
    fn resume(&mut self, ctx: &mut ProcessCtx<'_, Value>) -> Wait<Value> {
        let ph = Phase::from_index(num_of(ctx, self.ph) as u8);
        if ph == Phase::LAST {
            let cs = num_of(ctx, self.cs) as Step;
            if cs < self.cs_max {
                ctx.assign(self.cs, Value::Num(cs as i64 + 1));
                ctx.assign(self.ph, Value::Num(Phase::FIRST.index() as i64));
            }
            // else: no assignment; the model quiesces (end of simulation).
        } else {
            ctx.assign(self.ph, Value::Num(ph.succ().index() as i64));
        }
        if self.started {
            Wait::Same
        } else {
            self.started = true;
            Wait::Event(vec![self.ph])
        }
    }
}

/// Where a transfer process takes its value from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransSource {
    /// Read a signal (register/module output port or bus) at the
    /// activation phase.
    Signal(SignalId),
    /// Drive a constant — used for operation-select transfers, whose
    /// "source" is the operation code named by the tuple.
    Const(Value),
    /// Read one word of a memory, selected by an address register at the
    /// activation phase. A non-numeric or out-of-range address reads
    /// `ILLEGAL`.
    MemRead {
        /// The memory's word signals, in address order.
        words: Vec<SignalId>,
        /// The register output carrying the address.
        addr: SignalId,
    },
}

/// One side of a resolved guard clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardSrc {
    /// A register-output signal.
    Sig(SignalId),
    /// An integer literal.
    Const(i64),
}

/// A transfer guard resolved onto kernel signals; see
/// [`Guard`](crate::tuples::Guard) for the semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransGuard {
    /// Whether the conjunction is negated as a whole.
    pub negated: bool,
    /// The comparison clauses.
    pub clauses: Vec<(GuardSrc, crate::tuples::CmpOp, GuardSrc)>,
}

impl TransGuard {
    /// Evaluates the guard over the current signal values.
    pub fn eval(&self, ctx: &ProcessCtx<'_, Value>) -> bool {
        let conj = self.clauses.iter().all(|(l, cmp, r)| {
            let side = |s: &GuardSrc| match s {
                GuardSrc::Sig(id) => ctx.value(*id).num(),
                GuardSrc::Const(v) => Some(*v),
            };
            match (side(l), side(r)) {
                (Some(a), Some(b)) => cmp.holds(a, b),
                _ => false,
            }
        });
        conj != self.negated
    }
}

/// A transfer process (§2.4): at phase `phase` of step `step` it assigns
/// the source value to the sink; at the succeeding phase it assigns
/// `DISC`, releasing its drive on the resolved sink.
///
/// Two observations allow an exact-semantics optimization over a literal
/// VHDL `wait until CS = S and PH = P` (which would resume the process on
/// *every* `CS`/`PH` event, i.e. every delta cycle):
///
/// 1. `CS` increases monotonically, so until `CS = S` the process can
///    sleep on `CS` alone — one wake-up per control step instead of six;
/// 2. after the release, the activation condition can never hold again,
///    so the process terminates.
///
/// `faithful_wakeups` disables both and reproduces byte-for-byte VHDL
/// `wait until` behaviour; the style-comparison benches quantify the
/// difference.
#[derive(Debug)]
pub struct Trans {
    step: Step,
    phase: Phase,
    cs: SignalId,
    ph: SignalId,
    src: TransSource,
    dst: SignalId,
    guard: Option<TransGuard>,
    state: TransState,
    faithful_wakeups: bool,
    started: bool,
}

/// Control state of a [`Trans`] process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransState {
    /// Sleeping on `CS` until the activation step arrives.
    AwaitStep,
    /// In the activation step, following `PH` to the activation phase.
    AwaitPhase,
    /// Asserted; following `PH` to the release phase.
    AwaitRelease,
    /// Released; nothing left to do.
    Finished,
}

impl Trans {
    /// Creates a transfer process active at `(step, phase)`.
    pub fn new(
        step: Step,
        phase: Phase,
        cs: SignalId,
        ph: SignalId,
        src: TransSource,
        dst: SignalId,
        faithful_wakeups: bool,
    ) -> Trans {
        Trans {
            step,
            phase,
            cs,
            ph,
            src,
            dst,
            guard: None,
            state: TransState::AwaitStep,
            faithful_wakeups,
            started: false,
        }
    }

    /// Attaches a guard: when it evaluates false at the activation phase,
    /// the process drives `DISC` instead of the source value. The driver
    /// update (and release) still happen, so event counts and schedule
    /// statistics are guard-independent.
    pub fn with_guard(mut self, guard: Option<TransGuard>) -> Trans {
        self.guard = guard;
        self
    }

    /// The step and phase at which the sink is released again.
    fn release_at(&self) -> (Step, Phase) {
        if self.phase == Phase::LAST {
            (self.step + 1, Phase::FIRST)
        } else {
            (self.step, self.phase.succ())
        }
    }
}

impl Trans {
    /// Performs the assert action.
    fn assert_value(&self, ctx: &mut ProcessCtx<'_, Value>) {
        let enabled = self.guard.as_ref().is_none_or(|g| g.eval(ctx));
        let v = if !enabled {
            Value::Disc
        } else {
            match &self.src {
                TransSource::Signal(s) => *ctx.value(*s),
                TransSource::Const(v) => *v,
                TransSource::MemRead { words, addr } => match ctx.value(*addr).num() {
                    Some(a) if (0..words.len() as i64).contains(&a) => {
                        *ctx.value(words[a as usize])
                    }
                    _ => Value::Illegal,
                },
            }
        };
        ctx.assign(self.dst, v);
    }

    /// Literal VHDL semantics: wake on every `CS`/`PH` event and re-check
    /// the full condition.
    fn resume_faithful(&mut self, ctx: &mut ProcessCtx<'_, Value>) -> Wait<Value> {
        let cs = num_of(ctx, self.cs) as Step;
        let ph = Phase::from_index(num_of(ctx, self.ph) as u8);
        match self.state {
            TransState::AwaitStep | TransState::AwaitPhase => {
                if cs == self.step && ph == self.phase {
                    self.assert_value(ctx);
                    self.state = TransState::AwaitRelease;
                }
            }
            TransState::AwaitRelease => {
                let (rs, rp) = self.release_at();
                if cs == rs && ph == rp {
                    ctx.assign(self.dst, Value::Disc);
                    self.state = TransState::Finished;
                }
            }
            TransState::Finished => {}
        }
        if self.started {
            Wait::Same
        } else {
            self.started = true;
            Wait::Event(vec![self.cs, self.ph])
        }
    }
}

impl clockless_kernel::Process<Value> for Trans {
    fn resume(&mut self, ctx: &mut ProcessCtx<'_, Value>) -> Wait<Value> {
        if self.faithful_wakeups {
            return self.resume_faithful(ctx);
        }
        // Optimized path: in-kernel wake filters mean each resumption
        // coincides with its awaited condition; a transfer process runs
        // exactly three or four times over the whole simulation.
        let cs = num_of(ctx, self.cs) as Step;
        let until_phase = |p: Phase| Wait::UntilEq(self.ph, Value::Num(p.index() as i64));
        match self.state {
            TransState::AwaitStep => {
                if cs != self.step {
                    // Initialization resume (or a spurious early wake):
                    // sleep until CS reaches our step.
                    return Wait::UntilEq(self.cs, Value::Num(self.step as i64));
                }
                // Step boundary delta: PH is at ra. Activate now or
                // follow PH to our phase.
                if self.phase == Phase::Ra {
                    self.assert_value(ctx);
                    self.state = TransState::AwaitRelease;
                    until_phase(self.release_at().1)
                } else {
                    self.state = TransState::AwaitPhase;
                    until_phase(self.phase)
                }
            }
            TransState::AwaitPhase => {
                self.assert_value(ctx);
                self.state = TransState::AwaitRelease;
                until_phase(self.release_at().1)
            }
            TransState::AwaitRelease => {
                ctx.assign(self.dst, Value::Disc);
                self.state = TransState::Finished;
                Wait::Done
            }
            TransState::Finished => Wait::Done,
        }
    }
}

/// A register process (§2.5): at each `cr` phase, if the input port is
/// not `DISC`, the value is stored and driven on the output port.
///
/// `ILLEGAL` inputs are stored like any other non-`DISC` value — exactly
/// the paper's `if R_in /= DISC then R_out <= R_in` — so a bus conflict
/// visibly poisons the destination register.
#[derive(Debug)]
pub struct Reg {
    ph: SignalId,
    input: SignalId,
    output: SignalId,
    started: bool,
}

impl Reg {
    /// Creates a register process between `input` and `output` ports.
    pub fn new(ph: SignalId, input: SignalId, output: SignalId) -> Reg {
        Reg {
            ph,
            input,
            output,
            started: false,
        }
    }
}

impl clockless_kernel::Process<Value> for Reg {
    fn resume(&mut self, ctx: &mut ProcessCtx<'_, Value>) -> Wait<Value> {
        let ph = Phase::from_index(num_of(ctx, self.ph) as u8);
        if ph == Phase::Cr {
            let v = *ctx.value(self.input);
            if v != Value::Disc {
                ctx.assign(self.output, v);
            }
        }
        // The store happens only at cr; the in-kernel filter skips the
        // five other phases entirely (VHDL's implicit `wait until PH=cR`
        // loop, evaluated by the scheduler).
        if self.started {
            Wait::Same
        } else {
            self.started = true;
            Wait::UntilEq(self.ph, Value::Num(Phase::Cr.index() as i64))
        }
    }
}

/// A memory-commit process: at each `cr` phase, if the memory's resolved
/// write-value port is not `DISC`, the value is stored into the word the
/// write-address port selects.
///
/// Mirrors [`Reg`] — memories commit once per control step — with the
/// extra address indirection: an address that is not a regular number in
/// `0..len` (including the ports having resolved to `ILLEGAL` under
/// conflicting writers) poisons **every** word `ILLEGAL`, because which
/// word was corrupted is unknowable.
#[derive(Debug)]
pub struct MemCommit {
    ph: SignalId,
    win: SignalId,
    waddr: SignalId,
    words: Vec<SignalId>,
    started: bool,
}

impl MemCommit {
    /// Creates a memory-commit process over the given word signals.
    pub fn new(ph: SignalId, win: SignalId, waddr: SignalId, words: Vec<SignalId>) -> MemCommit {
        MemCommit {
            ph,
            win,
            waddr,
            words,
            started: false,
        }
    }
}

impl clockless_kernel::Process<Value> for MemCommit {
    fn resume(&mut self, ctx: &mut ProcessCtx<'_, Value>) -> Wait<Value> {
        let ph = Phase::from_index(num_of(ctx, self.ph) as u8);
        if ph == Phase::Cr {
            let v = *ctx.value(self.win);
            if v != Value::Disc {
                match ctx.value(self.waddr).num() {
                    Some(a) if (0..self.words.len() as i64).contains(&a) => {
                        ctx.assign(self.words[a as usize], v);
                    }
                    _ => {
                        for &w in &self.words {
                            ctx.assign(w, Value::Illegal);
                        }
                    }
                }
            }
        }
        if self.started {
            Wait::Same
        } else {
            self.started = true;
            Wait::UntilEq(self.ph, Value::Num(Phase::Cr.index() as i64))
        }
    }
}

/// A functional-module process (§2.6), generalized:
///
/// * **operation selection** — multi-operation modules read an operation
///   code from their `op` port (the IKS extension of §3);
/// * **timing** — combinational (result this step), pipelined (result
///   `latency` steps later, new operands every step; the paper's `ADD` is
///   `latency = 1`), or sequential (non-pipelined: new operands while busy
///   are a conflict and poison the in-flight computation).
///
/// At each `cm` phase the module emits the result due this step and
/// inserts the combination of the current operand ports into its internal
/// pipeline — the generalization of the paper's `M_out <= M; M := …`
/// idiom.
#[derive(Debug)]
pub struct ModuleProc {
    ph: SignalId,
    in1: SignalId,
    in2: SignalId,
    op_port: Option<SignalId>,
    out: SignalId,
    ops: Vec<Op>,
    timing: ModuleTiming,
    /// Results in flight; `pipe.len() == latency` (empty if combinational).
    pipe: VecDeque<Value>,
    /// Remaining busy steps (sequential modules only).
    busy: u32,
    started: bool,
}

impl ModuleProc {
    /// Creates a module process.
    ///
    /// `op_port` must be `Some` exactly when `ops.len() > 1`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty or the op-port presence contradicts the
    /// operation count.
    pub fn new(
        ph: SignalId,
        in1: SignalId,
        in2: SignalId,
        op_port: Option<SignalId>,
        out: SignalId,
        ops: Vec<Op>,
        timing: ModuleTiming,
    ) -> ModuleProc {
        assert!(!ops.is_empty(), "module needs at least one operation");
        assert_eq!(
            op_port.is_some(),
            ops.len() > 1,
            "op port present iff multiple operations"
        );
        let latency = timing.latency() as usize;
        ModuleProc {
            ph,
            in1,
            in2,
            op_port,
            out,
            ops,
            timing,
            pipe: std::iter::repeat_n(Value::Disc, latency).collect(),
            busy: 0,
            started: false,
        }
    }

    /// Combines the current operand ports per §2.6.
    fn combine(&self, ctx: &ProcessCtx<'_, Value>) -> Value {
        let a = *ctx.value(self.in1);
        let b = *ctx.value(self.in2);
        let op = match self.op_port {
            None => self.ops[0],
            Some(port) => match *ctx.value(port) {
                Value::Disc => {
                    // No operation selected: only legal if idle.
                    if a == Value::Disc && b == Value::Disc {
                        return Value::Disc;
                    }
                    return Value::Illegal;
                }
                Value::Illegal => return Value::Illegal,
                Value::Num(i) => match usize::try_from(i).ok().and_then(|i| self.ops.get(i)) {
                    Some(&op) => op,
                    None => return Value::Illegal,
                },
            },
        };
        op.apply(a, b)
    }
}

impl clockless_kernel::Process<Value> for ModuleProc {
    fn resume(&mut self, ctx: &mut ProcessCtx<'_, Value>) -> Wait<Value> {
        let ph = Phase::from_index(num_of(ctx, self.ph) as u8);
        if ph == Phase::Cm {
            let mut result = self.combine(ctx);
            if let ModuleTiming::Sequential { latency } = self.timing {
                if self.busy > 0 {
                    self.busy -= 1;
                    if result != Value::Disc {
                        // New operands while busy: resource conflict.
                        // Poison both the new request and everything in
                        // flight — the shared datapath is corrupted.
                        result = Value::Illegal;
                        for v in self.pipe.iter_mut() {
                            *v = Value::Illegal;
                        }
                    }
                } else if result != Value::Disc {
                    self.busy = latency.saturating_sub(1);
                }
            }
            if self.pipe.is_empty() {
                // Combinational: result is visible to this step's wa phase.
                ctx.assign(self.out, result);
            } else {
                let due = self.pipe.pop_front().expect("pipe holds `latency` slots");
                ctx.assign(self.out, due);
                self.pipe.push_back(result);
            }
        }
        // Modules compute only at cm; the kernel filter skips the other
        // phases.
        if self.started {
            Wait::Same
        } else {
            self.started = true;
            Wait::UntilEq(self.ph, Value::Num(Phase::Cm.index() as i64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::kernel_resolver;
    use clockless_kernel::Simulator;

    /// Builds a simulator with controller signals and a controller for
    /// `cs_max` steps; returns `(sim, cs, ph)`.
    fn with_controller(cs_max: Step) -> (Simulator<Value>, SignalId, SignalId) {
        let mut sim = Simulator::new();
        let cs = sim.signal("CS", Value::Num(0));
        let ph = sim.signal("PH", Value::Num(Phase::LAST.index() as i64));
        let ctrl = Controller::new(cs_max, cs, ph);
        sim.process("CONTROL", &[cs, ph], ctrl);
        (sim, cs, ph)
    }

    #[test]
    fn controller_runs_six_deltas_per_step() {
        let (mut sim, cs, ph) = with_controller(4);
        sim.initialize().unwrap();
        let stats = sim.run().unwrap();
        // Initial execution (delta 0) + 6 deltas per control step.
        assert_eq!(stats.delta_cycles, 1 + 6 * 4);
        assert_eq!(*sim.value(cs), Value::Num(4));
        assert_eq!(*sim.value(ph), Value::Num(Phase::Cr.index() as i64));
    }

    #[test]
    fn controller_phase_sequence_follows_fig2() {
        let (mut sim, _cs, ph) = with_controller(2);
        sim.initialize().unwrap();
        let mut seen = Vec::new();
        loop {
            match sim.step_delta().unwrap() {
                clockless_kernel::StepOutcome::Quiescent => break,
                _ => seen.push(Phase::from_index(sim.value(ph).num().unwrap() as u8)),
            }
        }
        // After the first delta (initial run applied), phases march
        // ra,rb,cm,wa,wb,cr twice.
        let expected: Vec<Phase> = std::iter::once(Phase::Cr) // delta 0: init, PH still cr
            .chain(Phase::ALL.iter().copied())
            .chain(Phase::ALL.iter().copied())
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn trans_asserts_then_releases() {
        let (mut sim, cs, ph) = with_controller(3);
        let src = sim.signal("SRC", Value::Num(42));
        let bus = sim.resolved_signal("BUS", Value::Disc, kernel_resolver());
        let t = Trans::new(2, Phase::Ra, cs, ph, TransSource::Signal(src), bus, false);
        sim.process("T", &[bus], t);
        sim.initialize().unwrap();

        let mut observed = Vec::new();
        loop {
            match sim.step_delta().unwrap() {
                clockless_kernel::StepOutcome::Quiescent => break,
                _ => {
                    let step = sim.value(cs).num().unwrap() as Step;
                    let phase = Phase::from_index(sim.value(ph).num().unwrap() as u8);
                    observed.push(((step, phase), *sim.value(bus)));
                }
            }
        }
        // The bus carries 42 exactly during rb of step 2 (assigned at ra,
        // visible one delta later, released at rb, visible at cm).
        for ((step, phase), v) in observed {
            if step == 2 && phase == Phase::Rb {
                assert_eq!(v, Value::Num(42));
            } else {
                assert_eq!(v, Value::Disc, "bus should be quiet at step {step} {phase}");
            }
        }
    }

    #[test]
    fn conflicting_trans_produce_illegal() {
        let (mut sim, cs, ph) = with_controller(2);
        let s1 = sim.signal("S1", Value::Num(1));
        let s2 = sim.signal("S2", Value::Num(2));
        let bus = sim.resolved_signal("BUS", Value::Disc, kernel_resolver());
        sim.process(
            "T1",
            &[bus],
            Trans::new(1, Phase::Ra, cs, ph, TransSource::Signal(s1), bus, false),
        );
        sim.process(
            "T2",
            &[bus],
            Trans::new(1, Phase::Ra, cs, ph, TransSource::Signal(s2), bus, false),
        );
        sim.initialize().unwrap();
        let mut saw_illegal_at = None;
        loop {
            match sim.step_delta().unwrap() {
                clockless_kernel::StepOutcome::Quiescent => break,
                _ => {
                    if *sim.value(bus) == Value::Illegal && saw_illegal_at.is_none() {
                        let step = sim.value(cs).num().unwrap() as Step;
                        let phase = Phase::from_index(sim.value(ph).num().unwrap() as u8);
                        saw_illegal_at = Some((step, phase));
                    }
                }
            }
        }
        // Both drive at ra of step 1; the conflict is visible from rb.
        assert_eq!(saw_illegal_at, Some((1, Phase::Rb)));
    }

    #[test]
    fn reg_stores_only_at_cr() {
        let (mut sim, cs, ph) = with_controller(3);
        let src = sim.signal("SRC", Value::Num(7));
        let rin = sim.resolved_signal("R_in", Value::Disc, kernel_resolver());
        let rout = sim.signal("R_out", Value::Disc);
        sim.process("REG", &[rout], Reg::new(ph, rin, rout));
        // Assign to R_in at wb of step 1.
        sim.process(
            "T",
            &[rin],
            Trans::new(1, Phase::Wb, cs, ph, TransSource::Signal(src), rin, false),
        );
        sim.initialize().unwrap();
        sim.run().unwrap();
        assert_eq!(*sim.value(rout), Value::Num(7));
    }

    #[test]
    fn module_pipelined_latency_one_matches_paper_add() {
        let (mut sim, cs, ph) = with_controller(4);
        let in1 = sim.resolved_signal("M_in1", Value::Disc, kernel_resolver());
        let in2 = sim.resolved_signal("M_in2", Value::Disc, kernel_resolver());
        let out = sim.signal("M_out", Value::Disc);
        let m = ModuleProc::new(
            ph,
            in1,
            in2,
            None,
            out,
            vec![Op::Add],
            ModuleTiming::Pipelined { latency: 1 },
        );
        sim.process("ADD", &[out], m);
        // Stimulus: operands land on the ports for step 2's cm phase via
        // two transfer processes reading constant-valued signals.
        let c1 = sim.signal("c1", Value::Num(20));
        let c2 = sim.signal("c2", Value::Num(22));
        sim.process(
            "TA",
            &[in1],
            Trans::new(2, Phase::Rb, cs, ph, TransSource::Signal(c1), in1, false),
        );
        sim.process(
            "TB",
            &[in2],
            Trans::new(2, Phase::Rb, cs, ph, TransSource::Signal(c2), in2, false),
        );
        sim.initialize().unwrap();

        let mut out_by_step_phase = Vec::new();
        loop {
            match sim.step_delta().unwrap() {
                clockless_kernel::StepOutcome::Quiescent => break,
                _ => {
                    let step = sim.value(cs).num().unwrap() as Step;
                    let phase = Phase::from_index(sim.value(ph).num().unwrap() as u8);
                    out_by_step_phase.push(((step, phase), *sim.value(out)));
                }
            }
        }
        // Result 42 must be on M_out during wa of step 3 (latency 1).
        let at_wa3 = out_by_step_phase
            .iter()
            .find(|((s, p), _)| *s == 3 && *p == Phase::Wa)
            .map(|(_, v)| *v);
        assert_eq!(at_wa3, Some(Value::Num(42)));
        // And still DISC during wa of step 2.
        let at_wa2 = out_by_step_phase
            .iter()
            .find(|((s, p), _)| *s == 2 && *p == Phase::Wa)
            .map(|(_, v)| *v);
        assert_eq!(at_wa2, Some(Value::Disc));
    }
}
