//! Step/phase transcripts: an RT-level "waveform" for terminals.
//!
//! §2.7 argues the models are "easy to understand in the sense that there
//! is a straightforward way of identifying register transfers"; a
//! transcript makes that visible: one row per control-step phase, one
//! column per observed object, `DISC` rows elided. This is the textual
//! sibling of the VCD export — resolution is exactly one delta cycle, so
//! conflicts show up as `ILLEGAL` in the row of their phase.

use std::fmt;

use clockless_kernel::{KernelError, SignalId, StepOutcome};

use crate::model::RtModel;
use crate::run::RtSimulation;
use crate::value::Value;

/// Errors from rendering a transcript.
#[derive(Debug)]
#[non_exhaustive]
pub enum TranscriptError {
    /// A requested name is neither a register, a bus nor a module.
    UnknownSignal(String),
    /// The simulation failed.
    Kernel(KernelError),
}

impl fmt::Display for TranscriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranscriptError::UnknownSignal(n) => {
                write!(f, "`{n}` names no register, bus or module of the model")
            }
            TranscriptError::Kernel(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for TranscriptError {}

impl From<KernelError> for TranscriptError {
    fn from(e: KernelError) -> Self {
        TranscriptError::Kernel(e)
    }
}

/// Runs `model` and renders the phase-by-phase values of the named
/// objects (registers show their output port, buses their value, modules
/// their output port). Rows in which every column is `DISC` are elided
/// with a `…` marker.
///
/// # Errors
///
/// [`TranscriptError::UnknownSignal`] for unknown names, or kernel errors
/// from the run.
///
/// # Examples
///
/// ```
/// use clockless_core::model::fig1_model;
/// use clockless_core::transcript::transcript;
///
/// let text = transcript(&fig1_model(3, 4), &["B1", "ADD", "R1"])?;
/// assert!(text.contains("ILLEGAL") == false);
/// assert!(text.contains("5.rb")); // the operand on B1
/// # Ok::<(), clockless_core::transcript::TranscriptError>(())
/// ```
pub fn transcript(model: &RtModel, names: &[&str]) -> Result<String, TranscriptError> {
    let mut sim = RtSimulation::new(model)?;
    let layout = sim.layout();

    // Resolve names: register output, bus, then module output.
    let mut columns: Vec<(String, SignalId)> = Vec::with_capacity(names.len());
    for &name in names {
        let sid = model
            .register_by_name(name)
            .map(|r| layout.reg_out[r.0 as usize])
            .or_else(|| model.bus_by_name(name).map(|b| layout.bus[b.0 as usize]))
            .or_else(|| {
                model
                    .module_by_name(name)
                    .map(|m| layout.mod_out[m.0 as usize])
            })
            .ok_or_else(|| TranscriptError::UnknownSignal(name.to_string()))?;
        columns.push((name.to_string(), sid));
    }

    // Column widths: at least the header, at least "ILLEGAL".
    let widths: Vec<usize> = columns.iter().map(|(n, _)| n.len().max(7)).collect();

    let mut out = String::new();
    {
        use std::fmt::Write as _;
        let _ = write!(out, "{:>8} ", "step.ph");
        for ((n, _), w) in columns.iter().zip(&widths) {
            let _ = write!(out, " {n:>w$}");
        }
        out.push('\n');
    }

    let mut elided = false;
    loop {
        match sim.step_delta()? {
            StepOutcome::Quiescent => break,
            _ => {
                let Some(pt) = sim.phase_time() else { continue };
                let values: Vec<Value> = columns
                    .iter()
                    .map(|(_, sid)| *sim.kernel().value(*sid))
                    .collect();
                if values.iter().all(|v| v.is_disc()) {
                    if !elided {
                        out.push_str("     ...\n");
                        elided = true;
                    }
                    continue;
                }
                elided = false;
                use std::fmt::Write as _;
                let _ = write!(out, "{:>8} ", format!("{}.{}", pt.step, pt.phase));
                for (v, w) in values.iter().zip(&widths) {
                    let _ = write!(out, " {:>w$}", v.to_string());
                }
                out.push('\n');
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;
    use crate::prelude::*;

    #[test]
    fn fig1_transcript_shows_the_transfer() {
        let text = transcript(&fig1_model(3, 4), &["B1", "B2", "ADD", "R1"]).unwrap();
        // Operands ride the buses at rb of step 5.
        let rb5 = text
            .lines()
            .find(|l| l.trim_start().starts_with("5.rb"))
            .unwrap();
        assert!(rb5.contains('3') && rb5.contains('4'), "{rb5}");
        // The sum is on ADD_out at wa of step 6 and in R1 from step 7.
        let wa6 = text
            .lines()
            .find(|l| l.trim_start().starts_with("6.wa"))
            .unwrap();
        assert!(wa6.contains('7'), "{wa6}");
        // With only the bus observed, everything outside steps 5/6 is
        // quiet and elided.
        let bus_only = transcript(&fig1_model(3, 4), &["B1"]).unwrap();
        assert!(
            bus_only.contains("..."),
            "quiet phases are elided:\n{bus_only}"
        );
        assert!(!bus_only.contains("1.ra"), "{bus_only}");
    }

    #[test]
    fn conflict_appears_as_illegal_in_its_phase() {
        let mut m = RtModel::new("c", 4);
        m.add_register_init("A", Value::Num(1)).unwrap();
        m.add_register_init("B", Value::Num(2)).unwrap();
        m.add_register("T").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_module(ModuleDecl::single(
            "CP1",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_module(ModuleDecl::single(
            "CP2",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "CP1")
                .src_a("A", "X")
                .write(2, "Y", "T"),
        )
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "CP2")
                .src_a("B", "X")
                .write(2, "Y", "T"),
        )
        .unwrap();
        let text = transcript(&m, &["X"]).unwrap();
        let rb2 = text
            .lines()
            .find(|l| l.trim_start().starts_with("2.rb"))
            .unwrap();
        assert!(rb2.contains("ILLEGAL"), "{text}");
    }

    #[test]
    fn unknown_name_rejected() {
        let err = transcript(&fig1_model(1, 1), &["nope"]).unwrap_err();
        assert!(matches!(err, TranscriptError::UnknownSignal(_)));
    }

    #[test]
    fn register_columns_show_committed_values() {
        let text = transcript(&fig1_model(10, 20), &["R1"]).unwrap();
        // R1 = 10 until the commit of step 6 becomes visible at step 7 ra.
        let ra7 = text
            .lines()
            .find(|l| l.trim_start().starts_with("7.ra"))
            .unwrap();
        assert!(ra7.contains("30"), "{ra7}");
    }
}
