//! The register-transfer model: resources plus scheduled transfers.
//!
//! An [`RtModel`] is the Rust rendering of the paper's "concrete register
//! transfer model" (§2.7): registers, buses, modules and the transfer
//! tuples embedded into the control-step scheme, together with the
//! controller's `CS_MAX`. Construction is incremental and validated — the
//! scheduling invariants the paper leaves to the designer (existence of
//! resources, operand arity, module latency vs. write-back step) are
//! checked when each transfer is added.
//!
//! The model is pure data; [`elaborate`](crate::elaborate::elaborate)
//! instantiates it onto the simulation kernel.

use std::collections::HashMap;
use std::fmt;

use crate::op::{Arity, Op};
use crate::phase::Step;
use crate::resource::{
    ArrayDecl, BusDecl, BusId, MemoryDecl, MemoryId, ModuleDecl, ModuleId, RegisterDecl, RegisterId,
};
use crate::tuples::{indexed_parts, TransferTuple};
use crate::value::Value;

/// Errors from building an [`RtModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// Two resources of the same kind share a name.
    DuplicateName(String),
    /// A transfer referenced an unknown register.
    UnknownRegister(String),
    /// A transfer referenced an unknown bus.
    UnknownBus(String),
    /// A transfer referenced an unknown module.
    UnknownModule(String),
    /// A transfer's step lies outside `1..=cs_max`.
    StepOutOfRange {
        /// The offending step.
        step: Step,
        /// The model's maximum control step.
        cs_max: Step,
    },
    /// The write-back step does not equal read step + module latency.
    WrongWriteStep {
        /// The step the tuple asked for.
        got: Step,
        /// The step the module's timing requires.
        expected: Step,
    },
    /// The selected operation is not in the module's operation set.
    OpNotSupported {
        /// Module name.
        module: String,
        /// The unsupported operation.
        op: Op,
    },
    /// A multi-operation module was used without selecting an operation.
    MissingOp {
        /// Module name.
        module: String,
    },
    /// Operand routes do not match the operation's arity.
    ArityMismatch {
        /// Module name.
        module: String,
        /// The operation whose arity was violated.
        op: Op,
        /// Human-readable description of the violation.
        detail: &'static str,
    },
    /// The tuple has neither operands nor a write-back: it does nothing.
    EmptyTransfer,
    /// A constant memory index lies outside the memory's word range.
    MemoryIndexOutOfRange {
        /// Memory name.
        memory: String,
        /// The offending index.
        index: u32,
        /// The memory's length.
        len: u32,
    },
    /// An array or memory was declared with zero elements.
    EmptyStorage(String),
    /// A guard referenced a name that is not a register (memory words
    /// cannot appear in guards — their value would need an address port).
    GuardRegisterUnknown(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName(n) => write!(f, "duplicate resource name `{n}`"),
            ModelError::UnknownRegister(n) => write!(f, "unknown register `{n}`"),
            ModelError::UnknownBus(n) => write!(f, "unknown bus `{n}`"),
            ModelError::UnknownModule(n) => write!(f, "unknown module `{n}`"),
            ModelError::StepOutOfRange { step, cs_max } => {
                write!(f, "step {step} outside 1..={cs_max}")
            }
            ModelError::WrongWriteStep { got, expected } => write!(
                f,
                "write-back scheduled at step {got} but module latency requires step {expected}"
            ),
            ModelError::OpNotSupported { module, op } => {
                write!(f, "module `{module}` does not support operation `{op}`")
            }
            ModelError::MissingOp { module } => write!(
                f,
                "module `{module}` offers several operations; the transfer must select one"
            ),
            ModelError::ArityMismatch { module, op, detail } => {
                write!(f, "operands for `{op}` on module `{module}`: {detail}")
            }
            ModelError::EmptyTransfer => write!(f, "transfer has neither operands nor write-back"),
            ModelError::MemoryIndexOutOfRange { memory, index, len } => {
                write!(f, "index {index} outside memory `{memory}` (length {len})")
            }
            ModelError::EmptyStorage(n) => {
                write!(f, "array/memory `{n}` must have at least one element")
            }
            ModelError::GuardRegisterUnknown(n) => {
                write!(f, "guard operand `{n}` is not a register")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A complete clock-free register-transfer model.
///
/// # Examples
///
/// The model of paper Fig. 1 / §2.7:
///
/// ```
/// use clockless_core::prelude::*;
///
/// let mut m = RtModel::new("example", 7);
/// m.add_register_init("R1", Value::Num(3))?;
/// m.add_register_init("R2", Value::Num(4))?;
/// m.add_bus("B1")?;
/// m.add_bus("B2")?;
/// m.add_module(ModuleDecl::single("ADD", Op::Add, ModuleTiming::Pipelined { latency: 1 }))?;
/// m.add_transfer("(R1,B1,R2,B2,5,ADD,6,B1,R1)".parse::<TransferTuple>().unwrap())?;
/// assert_eq!(m.tuples().len(), 1);
/// # Ok::<(), clockless_core::model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RtModel {
    name: String,
    cs_max: Step,
    registers: Vec<RegisterDecl>,
    buses: Vec<BusDecl>,
    modules: Vec<ModuleDecl>,
    arrays: Vec<ArrayDecl>,
    memories: Vec<MemoryDecl>,
    tuples: Vec<TransferTuple>,
    reg_index: HashMap<String, RegisterId>,
    bus_index: HashMap<String, BusId>,
    mod_index: HashMap<String, ModuleId>,
    mem_index: HashMap<String, MemoryId>,
}

/// What a storage name in a transfer's register position resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageRead {
    /// An ordinary register (including array elements).
    Register(RegisterId),
    /// A memory word at a constant address.
    MemWord {
        /// The memory.
        mem: MemoryId,
        /// The fixed word index (validated in range).
        index: u32,
    },
    /// A memory word addressed indirectly through a register.
    MemIndirect {
        /// The memory.
        mem: MemoryId,
        /// The register whose value selects the word.
        addr: RegisterId,
    },
}

impl RtModel {
    /// Creates an empty model simulating control steps `1..=cs_max`
    /// (the controller's `CS_MAX` generic).
    pub fn new(name: impl Into<String>, cs_max: Step) -> RtModel {
        RtModel {
            name: name.into(),
            cs_max,
            registers: Vec::new(),
            buses: Vec::new(),
            modules: Vec::new(),
            arrays: Vec::new(),
            memories: Vec::new(),
            tuples: Vec::new(),
            reg_index: HashMap::new(),
            bus_index: HashMap::new(),
            mod_index: HashMap::new(),
            mem_index: HashMap::new(),
        }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum control step (`CS_MAX`).
    pub fn cs_max(&self) -> Step {
        self.cs_max
    }

    /// Adds a register whose output starts at `DISC`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a register of this name
    /// exists.
    pub fn add_register(&mut self, name: impl Into<String>) -> Result<RegisterId, ModelError> {
        self.add_register_init(name, Value::Disc)
    }

    /// Adds a register preloaded with `init` (visible on its output port
    /// from step 1).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a register of this name
    /// exists.
    pub fn add_register_init(
        &mut self,
        name: impl Into<String>,
        init: Value,
    ) -> Result<RegisterId, ModelError> {
        let name = name.into();
        if self.reg_index.contains_key(&name) {
            return Err(ModelError::DuplicateName(name));
        }
        let id = RegisterId(self.registers.len() as u32);
        self.reg_index.insert(name.clone(), id);
        self.registers.push(RegisterDecl { name, init });
        Ok(id)
    }

    /// Adds a bus.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a bus of this name exists.
    pub fn add_bus(&mut self, name: impl Into<String>) -> Result<BusId, ModelError> {
        let name = name.into();
        if self.bus_index.contains_key(&name) {
            return Err(ModelError::DuplicateName(name));
        }
        let id = BusId(self.buses.len() as u32);
        self.bus_index.insert(name.clone(), id);
        self.buses.push(BusDecl { name });
        Ok(id)
    }

    /// Adds a functional module.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a module of this name
    /// exists.
    pub fn add_module(&mut self, decl: ModuleDecl) -> Result<ModuleId, ModelError> {
        if self.mod_index.contains_key(&decl.name) {
            return Err(ModelError::DuplicateName(decl.name));
        }
        let id = ModuleId(self.modules.len() as u32);
        self.mod_index.insert(decl.name.clone(), id);
        self.modules.push(decl);
        Ok(id)
    }

    /// Adds a register array: `len` ordinary registers named
    /// `name[0]` … `name[len-1]`, each initialized to `init`, plus the
    /// array declaration itself (kept for textual/VHDL round trips).
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyStorage`] for `len == 0`, or
    /// [`ModelError::DuplicateName`] if the base name is taken by another
    /// array or a memory, or any element name collides with a register.
    pub fn add_array(
        &mut self,
        name: impl Into<String>,
        len: u32,
        init: Value,
    ) -> Result<(), ModelError> {
        let name = name.into();
        if len == 0 {
            return Err(ModelError::EmptyStorage(name));
        }
        if self.mem_index.contains_key(&name) || self.arrays.iter().any(|a| a.name == name) {
            return Err(ModelError::DuplicateName(name));
        }
        for i in 0..len {
            self.add_register_init(format!("{name}[{i}]"), init)?;
        }
        self.arrays.push(ArrayDecl { name, len, init });
        Ok(())
    }

    /// Adds a memory of `len` words, each initialized to `init`.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyStorage`] for `len == 0`, or
    /// [`ModelError::DuplicateName`] if the name is taken by a memory,
    /// an array, or a register.
    pub fn add_memory(
        &mut self,
        name: impl Into<String>,
        len: u32,
        init: Value,
    ) -> Result<MemoryId, ModelError> {
        let name = name.into();
        if len == 0 {
            return Err(ModelError::EmptyStorage(name));
        }
        if self.mem_index.contains_key(&name)
            || self.reg_index.contains_key(&name)
            || self.arrays.iter().any(|a| a.name == name)
        {
            return Err(ModelError::DuplicateName(name));
        }
        let id = MemoryId(self.memories.len() as u32);
        self.mem_index.insert(name.clone(), id);
        self.memories.push(MemoryDecl { name, len, init });
        Ok(id)
    }

    /// Resolves a storage name from a transfer's register position:
    /// a register match wins (array elements are registers), otherwise an
    /// indexed reference `M[idx]` into a declared memory (constant index
    /// validated in range; otherwise `idx` must name a register used as
    /// the address).
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownRegister`] when nothing matches, or
    /// [`ModelError::MemoryIndexOutOfRange`] for a bad constant index.
    pub fn resolve_storage(&self, name: &str) -> Result<StorageRead, ModelError> {
        if let Some(id) = self.register_by_name(name) {
            return Ok(StorageRead::Register(id));
        }
        if let Some((base, idx)) = indexed_parts(name) {
            if let Some(mem) = self.memory_by_name(base) {
                let decl = &self.memories[mem.0 as usize];
                return match idx.parse::<u32>() {
                    Ok(i) if i < decl.len => Ok(StorageRead::MemWord { mem, index: i }),
                    Ok(i) => Err(ModelError::MemoryIndexOutOfRange {
                        memory: base.to_string(),
                        index: i,
                        len: decl.len,
                    }),
                    Err(_) => match self.register_by_name(idx) {
                        Some(addr) => Ok(StorageRead::MemIndirect { mem, addr }),
                        None => Err(ModelError::UnknownRegister(idx.to_string())),
                    },
                };
            }
        }
        Err(ModelError::UnknownRegister(name.to_string()))
    }

    /// Validates a tuple's guard: every named operand must be a register
    /// (array elements included; memory words are not allowed).
    fn validate_guard(&self, tuple: &TransferTuple) -> Result<(), ModelError> {
        if let Some(g) = &tuple.guard {
            for r in g.registers() {
                if self.register_by_name(r).is_none() {
                    return Err(ModelError::GuardRegisterUnknown(r.to_string()));
                }
            }
        }
        Ok(())
    }

    /// Adds a register transfer after validating it against the declared
    /// resources and the module's timing.
    ///
    /// # Errors
    ///
    /// Any [`ModelError`] variant describing the violated invariant.
    pub fn add_transfer(&mut self, tuple: TransferTuple) -> Result<(), ModelError> {
        self.validate_tuple(&tuple)?;
        self.tuples.push(tuple);
        Ok(())
    }

    /// Validates a tuple without adding it.
    ///
    /// # Errors
    ///
    /// Same as [`add_transfer`](Self::add_transfer).
    pub fn validate_tuple(&self, tuple: &TransferTuple) -> Result<(), ModelError> {
        if tuple.src_a.is_none() && tuple.src_b.is_none() && tuple.write.is_none() {
            return Err(ModelError::EmptyTransfer);
        }
        self.check_step(tuple.read_step)?;
        let module = self
            .module_by_name(&tuple.module)
            .ok_or_else(|| ModelError::UnknownModule(tuple.module.clone()))?;
        let decl = &self.modules[module.0 as usize];

        // Resolve the effective operation.
        let op = match (tuple.op, decl.ops.len()) {
            (Some(op), _) => {
                if decl.op_index(op).is_none() {
                    return Err(ModelError::OpNotSupported {
                        module: decl.name.clone(),
                        op,
                    });
                }
                op
            }
            (None, 1) => decl.ops[0],
            (None, _) => {
                return Err(ModelError::MissingOp {
                    module: decl.name.clone(),
                })
            }
        };

        // Operand routes must exist and match the operation's arity.
        for route in [&tuple.src_a, &tuple.src_b].into_iter().flatten() {
            self.resolve_storage(&route.register)?;
            if self.bus_by_name(&route.bus).is_none() {
                return Err(ModelError::UnknownBus(route.bus.clone()));
            }
        }
        self.validate_guard(tuple)?;
        let arity_err = |detail| ModelError::ArityMismatch {
            module: decl.name.clone(),
            op,
            detail,
        };
        match op.arity() {
            Arity::Binary => {
                if tuple.src_a.is_none() || tuple.src_b.is_none() {
                    return Err(arity_err("binary operation needs both operand routes"));
                }
            }
            Arity::UnaryA => {
                if tuple.src_a.is_none() {
                    return Err(arity_err("unary operation needs the first operand route"));
                }
                if tuple.src_b.is_some() {
                    return Err(arity_err(
                        "unary operation must leave the second port quiet",
                    ));
                }
            }
            Arity::UnaryB => {
                if tuple.src_b.is_none() {
                    return Err(arity_err("operation needs the second operand route"));
                }
                if tuple.src_a.is_some() {
                    return Err(arity_err("operation must leave the first port quiet"));
                }
            }
        }

        if let Some(w) = &tuple.write {
            self.check_step(w.step)?;
            if self.bus_by_name(&w.bus).is_none() {
                return Err(ModelError::UnknownBus(w.bus.clone()));
            }
            self.resolve_storage(&w.register)?;
            let expected = tuple.read_step + decl.timing.latency();
            if w.step != expected {
                return Err(ModelError::WrongWriteStep {
                    got: w.step,
                    expected,
                });
            }
        }
        Ok(())
    }

    fn check_step(&self, step: Step) -> Result<(), ModelError> {
        if step < 1 || step > self.cs_max {
            Err(ModelError::StepOutOfRange {
                step,
                cs_max: self.cs_max,
            })
        } else {
            Ok(())
        }
    }

    /// The declared registers, indexable by [`RegisterId`].
    pub fn registers(&self) -> &[RegisterDecl] {
        &self.registers
    }

    /// The declared buses, indexable by [`BusId`].
    pub fn buses(&self) -> &[BusDecl] {
        &self.buses
    }

    /// The declared modules, indexable by [`ModuleId`].
    pub fn modules(&self) -> &[ModuleDecl] {
        &self.modules
    }

    /// The scheduled transfers.
    pub fn tuples(&self) -> &[TransferTuple] {
        &self.tuples
    }

    /// The declared register arrays (their elements also appear in
    /// [`registers`](Self::registers)).
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// The declared memories, indexable by [`MemoryId`].
    pub fn memories(&self) -> &[MemoryDecl] {
        &self.memories
    }

    /// Looks up a memory by name.
    pub fn memory_by_name(&self, name: &str) -> Option<MemoryId> {
        self.mem_index.get(name).copied()
    }

    /// Looks up an array declaration by base name.
    pub fn array_by_name(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// `true` when `name` names a register that belongs to a declared
    /// array (i.e. was created by [`add_array`](Self::add_array)).
    pub fn is_array_element(&self, name: &str) -> bool {
        indexed_parts(name).is_some_and(|(base, _)| self.array_by_name(base).is_some())
    }

    /// Looks up a register by name.
    pub fn register_by_name(&self, name: &str) -> Option<RegisterId> {
        self.reg_index.get(name).copied()
    }

    /// Looks up a bus by name.
    pub fn bus_by_name(&self, name: &str) -> Option<BusId> {
        self.bus_index.get(name).copied()
    }

    /// Looks up a module by name.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.mod_index.get(name).copied()
    }

    /// The effective operation of a (validated) tuple: its selector, or
    /// the module's single operation.
    ///
    /// # Panics
    ///
    /// Panics if the tuple's module is unknown or ambiguous; tuples taken
    /// from [`tuples`](Self::tuples) never are.
    pub fn effective_op(&self, tuple: &TransferTuple) -> Op {
        match tuple.op {
            Some(op) => op,
            None => {
                let m = self
                    .module_by_name(&tuple.module)
                    .expect("validated tuple references known module");
                self.modules[m.0 as usize].ops[0]
            }
        }
    }

    /// Overwrites a register's initial value in place.
    ///
    /// This is a **mutation helper** for fault-injection campaigns
    /// (stuck-at-`DISC` and corrupted-init faults in
    /// `clockless-verify::faults`); regular model construction should pass
    /// the init to [`add_register_init`](Self::add_register_init).
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownRegister`] if no register of this name exists.
    pub fn set_register_init(&mut self, name: &str, init: Value) -> Result<(), ModelError> {
        let id = self
            .register_by_name(name)
            .ok_or_else(|| ModelError::UnknownRegister(name.to_string()))?;
        self.registers[id.0 as usize].init = init;
        Ok(())
    }

    /// Removes and returns the transfer at `index`, or `None` when the
    /// index is out of range.
    ///
    /// A mutation helper for dropped-tuple fault campaigns; the remaining
    /// tuples keep their relative order (and stay valid — removing a
    /// transfer cannot violate any scheduling invariant).
    pub fn remove_transfer(&mut self, index: usize) -> Option<TransferTuple> {
        if index < self.tuples.len() {
            Some(self.tuples.remove(index))
        } else {
            None
        }
    }

    /// Replaces the transfer at `index` with `tuple`, checking only that
    /// the referenced resources exist and every step lies in
    /// `1..=cs_max` — **not** the timing/arity invariants of
    /// [`validate_tuple`](Self::validate_tuple).
    ///
    /// This is the escape hatch fault-injection campaigns use to build
    /// step-skewed mutants (write-back at `stepW ± 1`), which the regular
    /// validation rightly rejects with [`ModelError::WrongWriteStep`].
    /// Elaboration handles any resource-valid tuple, so such mutants still
    /// simulate — they just misbehave, which is the point.
    ///
    /// Returns the replaced tuple.
    ///
    /// # Errors
    ///
    /// [`ModelError`] if a referenced resource is unknown, a step is out
    /// of range, or the tuple is empty.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn replace_transfer_unchecked(
        &mut self,
        index: usize,
        tuple: TransferTuple,
    ) -> Result<TransferTuple, ModelError> {
        assert!(
            index < self.tuples.len(),
            "transfer index {index} out of range ({} tuples)",
            self.tuples.len()
        );
        self.validate_tuple_resources(&tuple)?;
        Ok(std::mem::replace(&mut self.tuples[index], tuple))
    }

    /// The resource-existence subset of
    /// [`validate_tuple`](Self::validate_tuple): everything the elaborator
    /// needs to instantiate processes, nothing about timing.
    fn validate_tuple_resources(&self, tuple: &TransferTuple) -> Result<(), ModelError> {
        if tuple.src_a.is_none() && tuple.src_b.is_none() && tuple.write.is_none() {
            return Err(ModelError::EmptyTransfer);
        }
        self.check_step(tuple.read_step)?;
        if self.module_by_name(&tuple.module).is_none() {
            return Err(ModelError::UnknownModule(tuple.module.clone()));
        }
        for route in [&tuple.src_a, &tuple.src_b].into_iter().flatten() {
            self.resolve_storage(&route.register)?;
            if self.bus_by_name(&route.bus).is_none() {
                return Err(ModelError::UnknownBus(route.bus.clone()));
            }
        }
        self.validate_guard(tuple)?;
        if let Some(w) = &tuple.write {
            self.check_step(w.step)?;
            if self.bus_by_name(&w.bus).is_none() {
                return Err(ModelError::UnknownBus(w.bus.clone()));
            }
            self.resolve_storage(&w.register)?;
        }
        Ok(())
    }

    /// Rebuilds the name indices; required after deserialization (they are
    /// not serialized).
    pub fn rebuild_indices(&mut self) {
        self.reg_index = self
            .registers
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), RegisterId(i as u32)))
            .collect();
        self.bus_index = self
            .buses
            .iter()
            .enumerate()
            .map(|(i, b)| (b.name.clone(), BusId(i as u32)))
            .collect();
        self.mod_index = self
            .modules
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), ModuleId(i as u32)))
            .collect();
        self.mem_index = self
            .memories
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), MemoryId(i as u32)))
            .collect();
    }
}

/// Builds the model of paper Fig. 1 / §2.7: registers `R1`, `R2`, buses
/// `B1`, `B2`, a pipelined adder, and the transfer
/// `(R1,B1,R2,B2,5,ADD,6,B1,R1)`, with `CS_MAX = 7`.
///
/// `R1` and `R2` are preloaded with the given values so the transfer has
/// data to move (the paper feeds them through entity ports).
pub fn fig1_model(r1: i64, r2: i64) -> RtModel {
    use crate::resource::ModuleTiming;

    let mut m = RtModel::new("fig1_example", 7);
    m.add_register_init("R1", Value::Num(r1))
        .expect("fresh name");
    m.add_register_init("R2", Value::Num(r2))
        .expect("fresh name");
    m.add_bus("B1").expect("fresh name");
    m.add_bus("B2").expect("fresh name");
    m.add_module(ModuleDecl::single(
        "ADD",
        Op::Add,
        ModuleTiming::Pipelined { latency: 1 },
    ))
    .expect("fresh name");
    m.add_transfer(
        TransferTuple::new(5, "ADD")
            .src_a("R1", "B1")
            .src_b("R2", "B2")
            .write(6, "B1", "R1"),
    )
    .expect("fig1 tuple is valid");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ModuleTiming;

    fn base() -> RtModel {
        let mut m = RtModel::new("t", 10);
        m.add_register("R1").unwrap();
        m.add_register("R2").unwrap();
        m.add_bus("B1").unwrap();
        m.add_bus("B2").unwrap();
        m.add_module(ModuleDecl::single(
            "ADD",
            Op::Add,
            ModuleTiming::Pipelined { latency: 1 },
        ))
        .unwrap();
        m
    }

    #[test]
    fn duplicate_names_rejected_per_kind() {
        let mut m = base();
        assert!(matches!(
            m.add_register("R1"),
            Err(ModelError::DuplicateName(_))
        ));
        assert!(matches!(m.add_bus("B1"), Err(ModelError::DuplicateName(_))));
        // Same name across kinds is fine (namespaces are separate).
        assert!(m.add_bus("R1").is_ok());
    }

    #[test]
    fn valid_transfer_accepted() {
        let mut m = base();
        let t = TransferTuple::new(5, "ADD")
            .src_a("R1", "B1")
            .src_b("R2", "B2")
            .write(6, "B1", "R1");
        assert!(m.add_transfer(t).is_ok());
        assert_eq!(m.tuples().len(), 1);
    }

    #[test]
    fn unknown_resources_rejected() {
        let mut m = base();
        let t = TransferTuple::new(5, "ADD")
            .src_a("Rx", "B1")
            .src_b("R2", "B2")
            .write(6, "B1", "R1");
        assert_eq!(
            m.add_transfer(t),
            Err(ModelError::UnknownRegister("Rx".into()))
        );

        let t = TransferTuple::new(5, "ADD")
            .src_a("R1", "Bx")
            .src_b("R2", "B2")
            .write(6, "B1", "R1");
        assert_eq!(m.add_transfer(t), Err(ModelError::UnknownBus("Bx".into())));

        let t = TransferTuple::new(5, "MUL")
            .src_a("R1", "B1")
            .src_b("R2", "B2")
            .write(6, "B1", "R1");
        assert_eq!(
            m.add_transfer(t),
            Err(ModelError::UnknownModule("MUL".into()))
        );
    }

    #[test]
    fn write_step_must_match_latency() {
        let mut m = base();
        let t = TransferTuple::new(5, "ADD")
            .src_a("R1", "B1")
            .src_b("R2", "B2")
            .write(7, "B1", "R1");
        assert_eq!(
            m.add_transfer(t),
            Err(ModelError::WrongWriteStep {
                got: 7,
                expected: 6
            })
        );
    }

    #[test]
    fn steps_must_fit_cs_max() {
        let mut m = base();
        let t = TransferTuple::new(10, "ADD")
            .src_a("R1", "B1")
            .src_b("R2", "B2")
            .write(11, "B1", "R1");
        assert_eq!(
            m.add_transfer(t),
            Err(ModelError::StepOutOfRange {
                step: 11,
                cs_max: 10
            })
        );
    }

    #[test]
    fn set_register_init_mutates_in_place() {
        let mut m = fig1_model(3, 4);
        m.set_register_init("R1", Value::Disc).unwrap();
        assert_eq!(m.registers()[0].init, Value::Disc);
        assert_eq!(
            m.set_register_init("NOPE", Value::Num(1)),
            Err(ModelError::UnknownRegister("NOPE".into()))
        );
    }

    #[test]
    fn remove_transfer_pops_by_index() {
        let mut m = fig1_model(3, 4);
        assert!(m.remove_transfer(7).is_none());
        let t = m.remove_transfer(0).expect("in range");
        assert_eq!(t.module, "ADD");
        assert!(m.tuples().is_empty());
        assert!(m.remove_transfer(0).is_none());
    }

    #[test]
    fn replace_transfer_unchecked_allows_skewed_writes() {
        let mut m = fig1_model(3, 4);
        let mut skew = m.tuples()[0].clone();
        skew.write.as_mut().unwrap().step = 7; // latency requires 6
                                               // The validated path rejects the skew…
        assert!(matches!(
            m.validate_tuple(&skew),
            Err(ModelError::WrongWriteStep {
                got: 7,
                expected: 6
            })
        ));
        // …the fault-injection escape hatch accepts it (resources exist,
        // steps are in range) and returns the original.
        let old = m.replace_transfer_unchecked(0, skew.clone()).unwrap();
        assert_eq!(old.write.as_ref().unwrap().step, 6);
        assert_eq!(m.tuples()[0], skew);
        // Resource checks still bite: an unknown bus is refused.
        let mut bad = skew.clone();
        bad.write.as_mut().unwrap().bus = "BX".into();
        assert_eq!(
            m.replace_transfer_unchecked(0, bad),
            Err(ModelError::UnknownBus("BX".into()))
        );
        // As is a step outside 1..=cs_max.
        let mut oor = skew;
        oor.write.as_mut().unwrap().step = 8;
        assert!(matches!(
            m.replace_transfer_unchecked(0, oor),
            Err(ModelError::StepOutOfRange { step: 8, cs_max: 7 })
        ));
    }

    #[test]
    fn binary_op_needs_both_operands() {
        let mut m = base();
        let t = TransferTuple::new(5, "ADD")
            .src_a("R1", "B1")
            .write(6, "B1", "R1");
        assert!(matches!(
            m.add_transfer(t),
            Err(ModelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unary_op_rejects_second_operand() {
        let mut m = base();
        m.add_module(ModuleDecl::single(
            "CP",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        let ok = TransferTuple::new(2, "CP")
            .src_a("R1", "B1")
            .write(2, "B2", "R2");
        assert!(m.add_transfer(ok).is_ok());
        let bad = TransferTuple::new(3, "CP")
            .src_a("R1", "B1")
            .src_b("R2", "B2")
            .write(3, "B2", "R2");
        assert!(matches!(
            m.add_transfer(bad),
            Err(ModelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn multi_op_module_requires_selector() {
        let mut m = base();
        m.add_module(ModuleDecl::multi(
            "ALU",
            [Op::Add, Op::Sub],
            ModuleTiming::Combinational,
        ))
        .unwrap();
        let t = TransferTuple::new(2, "ALU")
            .src_a("R1", "B1")
            .src_b("R2", "B2")
            .write(2, "B1", "R1");
        assert!(matches!(
            m.add_transfer(t.clone()),
            Err(ModelError::MissingOp { .. })
        ));
        assert!(m.add_transfer(t.clone().op(Op::Sub)).is_ok());
        assert!(matches!(
            m.add_transfer(t.op(Op::Mul)),
            Err(ModelError::OpNotSupported { .. })
        ));
    }

    #[test]
    fn empty_transfer_rejected() {
        let mut m = base();
        assert_eq!(
            m.add_transfer(TransferTuple::new(1, "ADD")),
            Err(ModelError::EmptyTransfer)
        );
    }

    #[test]
    fn fig1_model_builds() {
        let m = fig1_model(3, 4);
        assert_eq!(m.cs_max(), 7);
        assert_eq!(m.registers().len(), 2);
        assert_eq!(m.tuples().len(), 1);
        assert_eq!(m.effective_op(&m.tuples()[0]), Op::Add);
    }

    #[test]
    fn arrays_expand_to_element_registers() {
        let mut m = base();
        m.add_array("A", 3, Value::Num(7)).unwrap();
        assert_eq!(m.arrays().len(), 1);
        assert!(m.register_by_name("A[0]").is_some());
        assert!(m.register_by_name("A[2]").is_some());
        assert!(m.register_by_name("A[3]").is_none());
        assert!(m.is_array_element("A[1]"));
        assert!(!m.is_array_element("R1"));
        // Elements work wherever registers do.
        let t = TransferTuple::new(5, "ADD")
            .src_a("A[0]", "B1")
            .src_b("A[1]", "B2")
            .write(6, "B1", "A[2]");
        assert!(m.add_transfer(t).is_ok());
        // Zero-length and duplicate declarations are rejected.
        assert!(matches!(
            m.add_array("Z", 0, Value::Disc),
            Err(ModelError::EmptyStorage(_))
        ));
        assert!(matches!(
            m.add_array("A", 2, Value::Disc),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn memory_references_resolve_and_validate() {
        let mut m = base();
        m.add_register("IDX").unwrap();
        let mem = m.add_memory("M", 4, Value::Num(0)).unwrap();
        assert_eq!(m.memories()[mem.0 as usize].len, 4);
        assert_eq!(
            m.resolve_storage("M[2]"),
            Ok(StorageRead::MemWord { mem, index: 2 })
        );
        assert!(matches!(
            m.resolve_storage("M[IDX]"),
            Ok(StorageRead::MemIndirect { .. })
        ));
        assert_eq!(
            m.resolve_storage("M[9]"),
            Err(ModelError::MemoryIndexOutOfRange {
                memory: "M".into(),
                index: 9,
                len: 4
            })
        );
        assert_eq!(
            m.resolve_storage("M[NOPE]"),
            Err(ModelError::UnknownRegister("NOPE".into()))
        );
        // Memory reads and writes pass tuple validation.
        let t = TransferTuple::new(5, "ADD")
            .src_a("M[0]", "B1")
            .src_b("M[IDX]", "B2")
            .write(6, "B1", "M[1]");
        assert!(m.add_transfer(t).is_ok());
        // Bad constant index inside a tuple is caught.
        let t = TransferTuple::new(5, "ADD")
            .src_a("M[4]", "B1")
            .src_b("R2", "B2")
            .write(6, "B1", "R1");
        assert!(matches!(
            m.add_transfer(t),
            Err(ModelError::MemoryIndexOutOfRange { .. })
        ));
        // Name collisions across storage kinds are rejected.
        assert!(matches!(
            m.add_memory("R1", 2, Value::Disc),
            Err(ModelError::DuplicateName(_))
        ));
        assert!(matches!(
            m.add_array("M", 2, Value::Disc),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn guard_operands_must_be_registers() {
        use crate::tuples::Guard;
        let mut m = base();
        m.add_array("A", 2, Value::Num(0)).unwrap();
        m.add_memory("M", 2, Value::Num(0)).unwrap();
        let t = |g: &str| {
            TransferTuple::new(5, "ADD")
                .src_a("R1", "B1")
                .src_b("R2", "B2")
                .write(6, "B1", "R1")
                .guard(Guard::parse(g).unwrap())
        };
        assert!(m.validate_tuple(&t("R1 = 0 and A[1] < 5")).is_ok());
        assert_eq!(
            m.validate_tuple(&t("NOPE = 0")),
            Err(ModelError::GuardRegisterUnknown("NOPE".into()))
        );
        // Memory words cannot be guard operands.
        assert_eq!(
            m.validate_tuple(&t("M[0] = 0")),
            Err(ModelError::GuardRegisterUnknown("M[0]".into()))
        );
    }

    #[test]
    fn indices_rebuild_after_being_cleared() {
        // Emulates the post-deserialization state, where the skipped
        // index maps come back empty.
        let mut m2 = fig1_model(1, 2);
        m2.reg_index.clear();
        m2.bus_index.clear();
        m2.mod_index.clear();
        m2.rebuild_indices();
        assert!(m2.register_by_name("R1").is_some());
        assert!(m2.bus_by_name("B2").is_some());
        assert!(m2.module_by_name("ADD").is_some());
    }
}
