//! Experiment E2 (paper Fig. 2 / §2.2): the delta-cycle cost of the
//! control-step scheme — "the complete simulation takes CS_MAX × 6 delta
//! simulation cycles" — swept over CS_MAX, plus the wall-clock cost per
//! control step. `kernel_snapshot` records the same workloads' kernel
//! counters into `BENCH_kernel.json`.

use clockless_bench::dense_model;
use clockless_bench::harness::Harness;
use clockless_core::{RtModel, RtSimulation, PHASES_PER_STEP};

fn report() {
    eprintln!("--- E2: Fig. 2 timing (deltas per control step) ---");
    eprintln!(
        "{:>8} {:>12} {:>14} {:>12}",
        "CS_MAX", "deltas", "deltas/step", "events"
    );
    for cs_max in [10u32, 100, 1_000, 10_000] {
        let model = RtModel::new("empty", cs_max);
        let mut sim = RtSimulation::new(&model).expect("elaborates");
        let stats = sim.run_to_completion().expect("runs").stats;
        let per_step = (stats.delta_cycles - 1) as f64 / cs_max as f64;
        eprintln!(
            "{cs_max:>8} {:>12} {per_step:>14.3} {:>12}",
            stats.delta_cycles, stats.events
        );
        assert_eq!(stats.delta_cycles, 1 + PHASES_PER_STEP * cs_max as u64);
    }
}

fn main() {
    report();
    let mut h = Harness::new();
    {
        let mut g = h.group("fig2_timing");

        // Empty controller sweep: the pure cost of the six-phase scheme.
        for cs_max in [10u32, 100, 1_000, 10_000] {
            g.bench(format!("controller_only/{cs_max}"), || {
                let model = RtModel::new("empty", cs_max);
                let mut sim = RtSimulation::new(&model).expect("elaborates");
                sim.run_to_completion().expect("runs")
            });
        }

        // Busy schedule sweep: same steps, increasing datapath activity.
        for width in [1usize, 4, 16] {
            let model = dense_model(width, 50);
            g.bench(format!("dense_width/{width}"), || {
                let mut sim = RtSimulation::new(&model).expect("elaborates");
                sim.run_to_completion().expect("runs")
            });
        }
    }
    h.print_table();
}
