-- Support package for register transfer models without clocks
-- (after M. Mutz, "Register Transfer Level VHDL Models without Clocks",
--  DATE 1998, sections 2.2 and 2.3).
package rt_pkg is
  -- Control step phases (Fig. 2): ra rb cm wa wb cr.
  type Phase is (ra, rb, cm, wa, wb, cr);

  -- Regular values are naturals; two sentinels share the Integer type.
  constant DISC    : Integer := -1;
  constant ILLEGAL : Integer := -2;

  type Integer_Vector is array (natural range <>) of Integer;

  -- The resolution function of section 2.3: DISC if all drivers are
  -- DISC; ILLEGAL on any ILLEGAL or on two or more non-DISC drivers;
  -- otherwise the unique driven value.
  function resolve (drivers : Integer_Vector) return Integer;
  subtype RInteger is resolve Integer;
end package rt_pkg;

package body rt_pkg is
  function resolve (drivers : Integer_Vector) return Integer is
    variable seen : Integer := DISC;
  begin
    for i in drivers'range loop
      if drivers(i) = ILLEGAL then
        return ILLEGAL;
      elsif drivers(i) /= DISC then
        if seen /= DISC then
          return ILLEGAL;
        end if;
        seen := drivers(i);
      end if;
    end loop;
    return seen;
  end function resolve;
end package body rt_pkg;

use work.rt_pkg.all;

-- Section 2.2: the controller drives the cyclic phase scheme with delta
-- delay only; simulation quiesces after CS_MAX control steps.
entity CONTROLLER is
  generic (CS_MAX : Natural);
  port (CS : inout Natural := 0;
        PH : inout Phase := Phase'High);  -- Phase'High = cr
end CONTROLLER;

architecture transfer of CONTROLLER is
begin
  process (PH)
  begin
    if PH = Phase'High then
      if CS < CS_MAX then
        CS <= CS + 1;
        PH <= Phase'Low;                  -- Phase'Low = ra
      end if;
    else
      PH <= Phase'Succ(PH);
    end if;
  end process;
end transfer;

use work.rt_pkg.all;

-- Section 2.4: a transfer process assigns its source to its sink at
-- phase P of control step S and releases (DISC) at the next phase.
entity TRANS is
  generic (S : Natural; P : Phase);
  port (CS   : in  Natural;
        PH   : in  Phase;
        InS  : in  Integer;
        OutS : out Integer := DISC);
end TRANS;

architecture transfer of TRANS is
begin
  process
  begin
    wait until CS = S and PH = P;
    OutS <= InS;
    wait until CS = S and PH = Phase'Succ(P);
    OutS <= DISC;
  end process;
end transfer;

use work.rt_pkg.all;

-- Section 2.5: registers fetch at cr whenever a transfer assigned their
-- input port; otherwise the old value is kept.
entity REG is
  port (PH    : in  Phase;
        R_in  : in  Integer;
        R_out : out Integer := DISC);
end REG;

architecture transfer of REG is
begin
  process
  begin
    wait until PH = cr;
    if R_in /= DISC then
      R_out <= R_in;
    end if;
  end process;
end transfer;

use work.rt_pkg.all;

-- Section 2.6 style module: ADD (pipelined, latency 1).
entity ADD is
  port (PH : in Phase; M_in1, M_in2 : in Integer; M_out : out Integer := DISC);
end ADD;

architecture transfer of ADD is
begin
  process
    variable m1 : Integer := DISC;
    variable r : Integer;
    variable a, b : Integer;
  begin
    wait until PH = cm;
    M_out <= m1;
    a := M_in1;  b := M_in2;
    if a = ILLEGAL or b = ILLEGAL then
      r := ILLEGAL;
    elsif a = DISC and b = DISC then
      r := DISC;
    elsif a /= DISC and b /= DISC then
      r := a + b;
    else
      r := ILLEGAL;
    end if;
    m1 := r;
  end process;
end transfer;

use work.rt_pkg.all;

entity fig1 is
end fig1;

architecture transfer of fig1 is
  -- timing signals
  signal CS : Natural;
  signal PH : Phase;
  -- module ports
  signal ADD_in1, ADD_in2 : RInteger;
  signal ADD_out : Integer;
  -- register ports
  signal R1_in : RInteger;
  signal R1_out : Integer := 3;
  signal R2_in : RInteger;
  signal R2_out : Integer := 4;
  -- buses
  signal B1 : RInteger;
  signal B2 : RInteger;
begin
  -- modules
  ADD_proc : entity work.ADD port map (PH, ADD_in1, ADD_in2, ADD_out);
  -- registers
  R1_proc : entity work.REG port map (PH, R1_in, R1_out);
  R2_proc : entity work.REG port map (PH, R2_in, R2_out);
  -- transfers
  R1_out_B1_5 : entity work.TRANS generic map (5, ra) port map (CS, PH, R1_out, B1);
  B1_ADD_in1_5 : entity work.TRANS generic map (5, rb) port map (CS, PH, B1, ADD_in1);
  R2_out_B2_5 : entity work.TRANS generic map (5, ra) port map (CS, PH, R2_out, B2);
  B2_ADD_in2_5 : entity work.TRANS generic map (5, rb) port map (CS, PH, B2, ADD_in2);
  ADD_out_B1_6 : entity work.TRANS generic map (6, wa) port map (CS, PH, ADD_out, B1);
  B1_R1_in_6 : entity work.TRANS generic map (6, wb) port map (CS, PH, B1, R1_in);
  -- controller
  CONTROL : entity work.CONTROLLER generic map (7) port map (CS, PH);
end transfer;
