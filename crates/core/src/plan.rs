//! Lowering elaborated models to a compiled phase-schedule plan.
//!
//! The paper's six-phase discipline makes clock-free RT models *statically
//! schedulable*: every transfer process is active at exactly one
//! `(step, phase)` slot, the controller's trajectory is fixed, and a run
//! costs exactly `1 + CS_MAX × 6` delta cycles (plus one trailing flush
//! delta when the last step commits a register). The interpreted kernel
//! discovers that schedule dynamically through sensitivity lists and wake
//! filters; [`ExecPlan::lower`] instead precomputes it as dense
//! per-`(step, phase)` tables of straight-line [`Action`]s, and
//! [`ExecPlan::execute`] walks the tables in a fixed number of iterations
//! with no event machinery at all.
//!
//! The walk is *observationally identical* to the interpreted kernel:
//! same final registers, same trace events in the same order (hence the
//! same VCD, commit log and conflict diagnoses — step and phase included)
//! and the same [`SimStats`]. Counters the compiled engine has no dynamic
//! equivalent for (process activations, wake-filter hits and misses, peak
//! runnable) are derived from the schedule in closed form; the rest
//! (events, driver updates, pending-update peaks) are counted during the
//! walk. `clockless-verify`'s `backend_equiv` asserts the byte-level
//! agreement over the whole corpus.
//!
//! Lowering additionally performs a **static conflict pre-pass**: two
//! [`Action::Assert`]s landing in the same slot of the same resolved
//! signal are reported as a [`StaticConflict`] *before* anything runs.
//! This is a conservative *potential*-conflict diagnostic — at run time
//! one of the colliding transfers may read `DISC` and resolve cleanly —
//! so the dynamic `ILLEGAL` events remain the ground truth the paper
//! describes.

use std::collections::VecDeque;

use clockless_kernel::{KernelError, SignalId, SimStats, SimTime, Trace};

use crate::backend::{BatchOutcome, ExecOptions, ExecOutcome};
use crate::check::{CheckEval, CheckProgram, SignalKind};
use crate::diag::{Conflict, ConflictReport, ConflictSite};
use crate::elaborate::SignalRole;
use crate::model::RtModel;
use crate::op::Op;
use crate::phase::{Phase, PhaseTime, Step};
use crate::resource::ModuleTiming;
use crate::run::{RegisterCommit, RunSummary};
use crate::tuples::{CmpOp, Endpoint, Guard, GuardOperand, MemAddr};
use crate::value::{resolve, Value};

/// Where an [`Action::Assert`] takes its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Read the signal with this dense index at execution time.
    Signal(usize),
    /// Drive a constant (operation-select transfers carry the operation
    /// code as a literal; memory-write address transfers carry constant
    /// addresses the same way).
    Const(Value),
    /// Register-indirect memory-word read: take the address from signal
    /// `addr` at execution time and read word `base + addr`. A `DISC`,
    /// `ILLEGAL` or out-of-range address reads `ILLEGAL`.
    MemRead {
        /// Dense index of the addressing register's output signal.
        addr: usize,
        /// Dense index of the memory's word 0 (words are contiguous).
        base: usize,
        /// Number of words.
        len: u32,
    },
}

/// One straight-line step of the compiled schedule.
///
/// Actions never block and never wait: each one reads current signal
/// values and schedules driver updates for the *next* delta cycle,
/// exactly as the corresponding kernel process resumption would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Controller assignment: schedule `value` on the single driver of a
    /// control signal (`CS` or `PH`).
    Control {
        /// Dense index of the control signal.
        sig: usize,
        /// The value to schedule.
        value: Value,
    },
    /// Transfer assert: read `src` now and schedule it on driver `slot`
    /// of `dst`. A guarded assert first evaluates its guard over current
    /// register values and drives `DISC` when disabled — the driver
    /// update still happens, so statistics stay guard-independent.
    Assert {
        /// The value source.
        src: Source,
        /// Dense index of the driven signal.
        dst: usize,
        /// The transfer's driver slot on `dst`.
        slot: usize,
        /// Index into the plan's guard table, when the transfer is
        /// conditional.
        guard: Option<u16>,
    },
    /// Transfer release: schedule `DISC` on driver `slot` of `dst`.
    Release {
        /// Dense index of the driven signal.
        dst: usize,
        /// The transfer's driver slot on `dst`.
        slot: usize,
    },
    /// Module evaluation (the `cm` body): combine the operand ports,
    /// advance the latency pipeline and schedule the output port.
    Eval {
        /// Dense index into the plan's module table.
        module: usize,
    },
    /// Register commit (the `cr` body): schedule the input port's value
    /// on the output unless it is `DISC`.
    Commit {
        /// Dense index into the plan's register table.
        reg: usize,
    },
    /// Memory commit (the `cr` body): when the write-value port is
    /// non-`DISC`, store it at the write-address port's word — or poison
    /// every word `ILLEGAL` when the address is not a regular number in
    /// range.
    CommitMem {
        /// Dense index into the plan's memory table.
        mem: usize,
    },
}

/// A [`CheckProgram`] resolved against one plan's dense signal table —
/// the precomputed handle [`ExecPlan::execute_batch_checked`] consumes,
/// built once per campaign by [`ExecPlan::resolve_checks`].
#[derive(Debug, Clone)]
pub struct PlanChecks {
    /// Dense signal index of each program signal, in program order.
    sigs: Vec<usize>,
    /// The program itself (owned so the handle is self-contained).
    program: CheckProgram,
}

/// A multiply driven slot found by the static conflict pre-pass.
///
/// Two or more transfers assert the same resolved signal in the same
/// `(step, phase)` slot. This is a *potential* conflict: it becomes the
/// paper's observable `ILLEGAL` only if at least two of the colliding
/// sources carry non-`DISC` values at run time, in which case the
/// `ILLEGAL` value is visible from the phase *after* `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticConflict {
    /// Name of the multiply driven resource.
    pub name: String,
    /// Kind of resource.
    pub site: ConflictSite,
    /// The slot whose schedule drives the resource more than once.
    pub at: PhaseTime,
    /// How many drives the slot schedules.
    pub drivers: usize,
}

impl std::fmt::Display for StaticConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} `{}` driven {} times at {}",
            self.site, self.name, self.drivers, self.at
        )
    }
}

/// One signal of the plan, mirroring the kernel's elaboration order.
#[derive(Debug, Clone)]
pub(crate) struct PlanSignal {
    pub(crate) name: String,
    pub(crate) init: Value,
    /// Number of driver slots (process-attachment order, exactly as the
    /// kernel would attach them).
    pub(crate) drivers: usize,
    /// Whether the signal resolves colliding drivers (buses and ports).
    pub(crate) resolved: bool,
    pub(crate) role: SignalRole,
}

/// One register: dense indices of its port signals.
#[derive(Debug, Clone)]
pub(crate) struct PlanReg {
    pub(crate) name: String,
    pub(crate) input: usize,
    pub(crate) output: usize,
}

/// One functional module: port indices plus operation/timing data.
#[derive(Debug, Clone)]
pub(crate) struct PlanModule {
    pub(crate) in1: usize,
    pub(crate) in2: usize,
    /// Operation-select port (multi-operation modules only).
    pub(crate) op: Option<usize>,
    pub(crate) out: usize,
    pub(crate) ops: Vec<Op>,
    pub(crate) timing: ModuleTiming,
}

/// One memory: dense indices of its port and word signals.
#[derive(Debug, Clone)]
pub(crate) struct PlanMem {
    /// Write-value port (resolved).
    pub(crate) win: usize,
    /// Write-address port (resolved).
    pub(crate) waddr: usize,
    /// Word signals, contiguous and in ascending address order.
    pub(crate) words: Vec<usize>,
}

/// One side of a lowered guard comparison.
#[derive(Debug, Clone, Copy)]
pub(crate) enum GuardSig {
    /// A register-output signal, read at evaluation time.
    Sig(usize),
    /// An integer literal.
    Const(i64),
}

/// A transfer guard lowered to dense signal indices. Mirrors
/// [`Guard::eval`]: the conjunction of clauses (a clause holds only over
/// two regular numbers), XOR-ed with the `not (…)` wrapper.
#[derive(Debug, Clone)]
pub(crate) struct PlanGuard {
    pub(crate) negated: bool,
    pub(crate) clauses: Vec<(GuardSig, CmpOp, GuardSig)>,
}

impl PlanGuard {
    pub(crate) fn eval(&self, mut read: impl FnMut(usize) -> Value) -> bool {
        let conj = self.clauses.iter().all(|&(lhs, cmp, rhs)| {
            let mut side = |s: GuardSig| match s {
                GuardSig::Sig(i) => read(i).num(),
                GuardSig::Const(v) => Some(v),
            };
            match (side(lhs), side(rhs)) {
                (Some(a), Some(b)) => cmp.holds(a, b),
                _ => false,
            }
        });
        conj != self.negated
    }

    fn flipped(&self) -> PlanGuard {
        PlanGuard {
            negated: !self.negated,
            clauses: self.clauses.clone(),
        }
    }
}

/// A transfer spec resolved to dense indices. Retained by the plan so
/// [`PlanDelta`]s can be expressed as spec-level edits (drop, re-step)
/// without re-lowering.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LoweredSpec {
    pub(crate) step: Step,
    pub(crate) phase: Phase,
    pub(crate) src: Source,
    pub(crate) dst: usize,
    pub(crate) slot: usize,
    pub(crate) guard: Option<u16>,
}

/// A spurious extra bus driver expressed at plan level: the batched
/// executor materializes it as a shadow combinational module (the same
/// `SPUR_<bus>_<step>` PassA module the legacy mutation adds) plus the
/// two specs its transfer tuple would lower to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PlanSpur {
    /// The shadow module's name (used in conflict diagnoses).
    name: String,
    /// The step in which the spurious driver asserts.
    step: Step,
    /// Dense index of the register-output signal the spur reads.
    src: usize,
    /// Dense index of the double-driven bus.
    bus: usize,
}

/// A small edit set turning the golden plan into one mutant: init-vector
/// overrides, suppressed specs, re-stepped specs, and at most one
/// spurious driver. Built by the `ExecPlan::delta_*` constructors and
/// consumed by [`ExecPlan::execute_batch`] — no model clone, no
/// re-elaboration.
///
/// Deltas compose observationally: the batched executor keeps the golden
/// driver-slot layout and merely masks edited specs per column, which is
/// sound because extra never-driven slots hold `DISC` and the resolution
/// function ignores them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanDelta {
    /// `(signal, value)` init overrides (stuck / corrupted-init faults).
    init_edits: Vec<(usize, Value)>,
    /// Spec indices removed from the schedule (dropped transfers).
    disabled_specs: Vec<usize>,
    /// `(spec, new_step)` re-schedules (skewed write-backs).
    moved_specs: Vec<(usize, Step)>,
    /// Spec indices whose guard is logically negated (guard-flip faults).
    flipped_specs: Vec<usize>,
    /// Spec indices whose guard is removed entirely (guard-force faults).
    forced_specs: Vec<usize>,
    /// Spurious extra bus driver (driver faults).
    spur: Option<PlanSpur>,
}

/// The compiled execution plan of one [`RtModel`].
///
/// Built by [`lower`](ExecPlan::lower); executed by
/// [`execute`](ExecPlan::execute). Slot `(s, p)` holds the straight-line
/// actions the kernel's runnable set would perform in the delta cycle of
/// step `s`, phase `p` — in the kernel's exact execution order, so driver
/// updates (and therefore events, traces and conflict diagnoses) come out
/// byte-identical.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    pub(crate) cs_max: Step,
    pub(crate) signals: Vec<PlanSignal>,
    pub(crate) regs: Vec<PlanReg>,
    pub(crate) modules: Vec<PlanModule>,
    pub(crate) mems: Vec<PlanMem>,
    /// Lowered transfer guards, indexed by [`LoweredSpec::guard`].
    pub(crate) guards: Vec<PlanGuard>,
    /// Actions of the initialization delta (delta 0).
    pub(crate) init_actions: Vec<Action>,
    /// `slots[(s-1)*6 + p.index()]` = actions of step `s`, phase `p`
    /// (executed in delta `(s-1)*6 + p.index() + 1`).
    pub(crate) slots: Vec<Vec<Action>>,
    /// Whether a trailing flush delta follows `cr(CS_MAX)`. Statically
    /// determined: some transfer asserts a register input at
    /// `wb(CS_MAX)`, so its commit and release are still pending after
    /// the last scheduled phase.
    pub(crate) flush: bool,
    /// Lowered transfer specs in attachment order (the source of the
    /// slot tables), kept so plan deltas can edit the schedule.
    pub(crate) specs: Vec<LoweredSpec>,
    /// `spec_tuple[i]` maps spec `i` back to its source tuple index.
    pub(crate) spec_tuple: Vec<usize>,
    /// Number of transfer tuples in the source model.
    pub(crate) tuple_count: usize,
    pub(crate) static_conflicts: Vec<StaticConflict>,
    /// Analytic stats derived from the schedule (see module docs).
    pub(crate) process_count: u64,
    pub(crate) activations: u64,
    pub(crate) wake_hits: u64,
    pub(crate) wake_misses: u64,
}

impl ExecPlan {
    /// Lowers a validated model into its compiled plan.
    ///
    /// Panics if the model references undeclared resources — impossible
    /// for models built through [`RtModel`]'s validating API.
    pub fn lower(model: &RtModel) -> ExecPlan {
        let cs_max = model.cs_max();
        let mut signals: Vec<PlanSignal> = Vec::new();

        // Signal order mirrors `elaborate` exactly: CS, PH, register
        // ports, buses, module ports.
        let cs = signals.len();
        signals.push(PlanSignal {
            name: "CS".into(),
            init: Value::Num(0),
            drivers: 0,
            resolved: false,
            role: SignalRole::ControlStep,
        });
        let ph = signals.len();
        signals.push(PlanSignal {
            name: "PH".into(),
            init: Value::Num(Phase::LAST.index() as i64),
            drivers: 0,
            resolved: false,
            role: SignalRole::PhaseSignal,
        });

        let mut regs = Vec::new();
        for r in model.registers() {
            let input = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_in", r.name),
                init: Value::Disc,
                drivers: 0,
                resolved: true,
                role: SignalRole::RegIn(r.name.clone()),
            });
            let output = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_out", r.name),
                init: r.init,
                drivers: 0,
                resolved: false,
                role: SignalRole::RegOut(r.name.clone()),
            });
            regs.push(PlanReg {
                name: r.name.clone(),
                input,
                output,
            });
        }

        let mut bus_sig = Vec::new();
        for b in model.buses() {
            let s = signals.len();
            signals.push(PlanSignal {
                name: b.name.clone(),
                init: Value::Disc,
                drivers: 0,
                resolved: true,
                role: SignalRole::Bus(b.name.clone()),
            });
            bus_sig.push(s);
        }

        let mut modules = Vec::new();
        for m in model.modules() {
            let in1 = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_in1", m.name),
                init: Value::Disc,
                drivers: 0,
                resolved: true,
                role: SignalRole::ModIn1(m.name.clone()),
            });
            let in2 = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_in2", m.name),
                init: Value::Disc,
                drivers: 0,
                resolved: true,
                role: SignalRole::ModIn2(m.name.clone()),
            });
            let op = if m.needs_op_port() {
                let s = signals.len();
                signals.push(PlanSignal {
                    name: format!("{}_op", m.name),
                    init: Value::Disc,
                    drivers: 0,
                    resolved: true,
                    role: SignalRole::ModOp(m.name.clone()),
                });
                Some(s)
            } else {
                None
            };
            let out = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_out", m.name),
                init: Value::Disc,
                drivers: 0,
                resolved: false,
                role: SignalRole::ModOut(m.name.clone()),
            });
            modules.push(PlanModule {
                in1,
                in2,
                op,
                out,
                ops: m.ops.clone(),
                timing: m.timing,
            });
        }

        // Memory signals come last, exactly as in `elaborate`, so
        // memory-free models keep byte-identical signal indices.
        let mut mems = Vec::new();
        for m in model.memories() {
            let win = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_win", m.name),
                init: Value::Disc,
                drivers: 0,
                resolved: true,
                role: SignalRole::MemWin(m.name.clone()),
            });
            let waddr = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_waddr", m.name),
                init: Value::Disc,
                drivers: 0,
                resolved: true,
                role: SignalRole::MemWaddr(m.name.clone()),
            });
            let mut words = Vec::with_capacity(m.len as usize);
            for i in 0..m.len {
                let w = signals.len();
                signals.push(PlanSignal {
                    name: m.word_name(i),
                    init: m.init,
                    drivers: 0,
                    resolved: false,
                    role: SignalRole::MemWord {
                        mem: m.name.clone(),
                        index: i,
                    },
                });
                words.push(w);
            }
            mems.push(PlanMem { win, waddr, words });
        }

        // Driver attachment in process-creation order, mirroring the
        // kernel: controller, register procs, module procs, memory-commit
        // procs, transfers.
        signals[cs].drivers = 1;
        signals[ph].drivers = 1;
        for r in &regs {
            signals[r.output].drivers += 1;
        }
        for m in &modules {
            signals[m.out].drivers += 1;
        }
        for m in &mems {
            for &w in &m.words {
                signals[w].drivers += 1;
            }
        }

        let index_of = |endpoint: &Endpoint| -> Option<usize> {
            match endpoint {
                Endpoint::RegOut(r) => model
                    .register_by_name(r)
                    .map(|id| regs[id.0 as usize].output),
                Endpoint::RegIn(r) => model
                    .register_by_name(r)
                    .map(|id| regs[id.0 as usize].input),
                Endpoint::Bus(b) => model.bus_by_name(b).map(|id| bus_sig[id.0 as usize]),
                Endpoint::ModIn1(m) => model.module_by_name(m).map(|id| modules[id.0 as usize].in1),
                Endpoint::ModIn2(m) => model.module_by_name(m).map(|id| modules[id.0 as usize].in2),
                Endpoint::ModOut(m) => model.module_by_name(m).map(|id| modules[id.0 as usize].out),
                Endpoint::ModOp(m) => model
                    .module_by_name(m)
                    .and_then(|id| modules[id.0 as usize].op),
                Endpoint::MemWin(m) => model.memory_by_name(m).map(|id| mems[id.0 as usize].win),
                Endpoint::MemWaddr(m) => {
                    model.memory_by_name(m).map(|id| mems[id.0 as usize].waddr)
                }
                Endpoint::MemWord {
                    mem,
                    addr: MemAddr::Const(i),
                } => model
                    .memory_by_name(mem)
                    .map(|id| mems[id.0 as usize].words[*i as usize]),
                Endpoint::MemWord {
                    addr: MemAddr::Reg(_),
                    ..
                }
                | Endpoint::ConstVal(_)
                | Endpoint::ConstOp(_) => None,
            }
        };

        let lower_guard = |g: &Guard| -> PlanGuard {
            let side = |op: &GuardOperand| match op {
                GuardOperand::Reg(r) => {
                    let id = model
                        .register_by_name(r)
                        .expect("validated guard references known register");
                    GuardSig::Sig(regs[id.0 as usize].output)
                }
                GuardOperand::Const(v) => GuardSig::Const(*v),
            };
            PlanGuard {
                negated: g.negated,
                clauses: g
                    .clauses
                    .iter()
                    .map(|c| (side(&c.lhs), c.cmp, side(&c.rhs)))
                    .collect(),
            }
        };

        let mut specs: Vec<LoweredSpec> = Vec::new();
        let mut spec_tuple: Vec<usize> = Vec::new();
        let mut guards: Vec<PlanGuard> = Vec::new();
        for (tuple_index, tuple) in model.tuples().iter().enumerate() {
            let guard = tuple.guard.as_ref().map(|g| {
                let gi = guards.len() as u16;
                guards.push(lower_guard(g));
                gi
            });
            for spec in tuple.expand_in(model) {
                let src = match &spec.src {
                    Endpoint::ConstOp(op) => {
                        let mid = model
                            .module_by_name(&tuple.module)
                            .expect("validated tuple references known module");
                        let idx = model.modules()[mid.0 as usize]
                            .op_index(*op)
                            .expect("validated tuple selects supported op");
                        Source::Const(Value::Num(idx as i64))
                    }
                    Endpoint::ConstVal(v) => Source::Const(Value::Num(*v)),
                    Endpoint::MemWord {
                        mem,
                        addr: MemAddr::Reg(r),
                    } => {
                        let mid = model
                            .memory_by_name(mem)
                            .expect("validated tuple references known memory");
                        let pm = &mems[mid.0 as usize];
                        let rid = model
                            .register_by_name(r)
                            .expect("validated tuple indexes with known register");
                        Source::MemRead {
                            addr: regs[rid.0 as usize].output,
                            base: pm.words[0],
                            len: pm.words.len() as u32,
                        }
                    }
                    other => Source::Signal(
                        index_of(other).expect("validated tuple references known resources"),
                    ),
                };
                let dst = index_of(&spec.dst).expect("validated tuple references known resources");
                let slot = signals[dst].drivers;
                signals[dst].drivers += 1;
                specs.push(LoweredSpec {
                    step: spec.step,
                    phase: spec.phase,
                    src,
                    dst,
                    slot,
                    guard,
                });
                spec_tuple.push(tuple_index);
            }
        }

        // Slot tables: for each delta of each step, the actions in the
        // kernel's runnable-set order (derived from waiter-list and wake
        // positions; see ARCHITECTURE.md "Two engines, one semantics").
        let num_slots = cs_max as usize * Phase::ALL.len();
        let mut slots: Vec<Vec<Action>> = vec![Vec::new(); num_slots];
        let ph_to = |p: Phase| Action::Control {
            sig: ph,
            value: Value::Num(p.index() as i64),
        };
        for s in 1..=cs_max {
            let base = (s as usize - 1) * Phase::ALL.len();
            let step_specs = || specs.iter().filter(|sp| sp.step == s);

            // ra: step specs wake before the controller (CS is processed
            // before PH in the wake queue). Only Ra specs assert here.
            let ra = &mut slots[base + Phase::Ra.index() as usize];
            for sp in step_specs().filter(|sp| sp.phase == Phase::Ra) {
                ra.push(Action::Assert {
                    src: sp.src,
                    dst: sp.dst,
                    slot: sp.slot,
                    guard: sp.guard,
                });
            }
            ra.push(ph_to(Phase::Rb));

            // rb: controller first, then Ra releases / Rb asserts
            // interleaved in declaration order (both re-registered at the
            // end of PH's waiter list during ra).
            let rb = &mut slots[base + Phase::Rb.index() as usize];
            rb.push(ph_to(Phase::Cm));
            for sp in step_specs() {
                match sp.phase {
                    Phase::Ra => rb.push(Action::Release {
                        dst: sp.dst,
                        slot: sp.slot,
                    }),
                    Phase::Rb => rb.push(Action::Assert {
                        src: sp.src,
                        dst: sp.dst,
                        slot: sp.slot,
                        guard: sp.guard,
                    }),
                    _ => {}
                }
            }

            // cm: controller, all modules (original waiter positions),
            // then Rb releases.
            let cm = &mut slots[base + Phase::Cm.index() as usize];
            cm.push(ph_to(Phase::Wa));
            for i in 0..modules.len() {
                cm.push(Action::Eval { module: i });
            }
            for sp in step_specs().filter(|sp| sp.phase == Phase::Rb) {
                cm.push(Action::Release {
                    dst: sp.dst,
                    slot: sp.slot,
                });
            }

            // wa: controller, then Wa asserts.
            let wa = &mut slots[base + Phase::Wa.index() as usize];
            wa.push(ph_to(Phase::Wb));
            for sp in step_specs().filter(|sp| sp.phase == Phase::Wa) {
                wa.push(Action::Assert {
                    src: sp.src,
                    dst: sp.dst,
                    slot: sp.slot,
                    guard: sp.guard,
                });
            }

            // wb: controller, Wb asserts (original positions), then Wa
            // releases (re-registered at the end during wa).
            let wb = &mut slots[base + Phase::Wb.index() as usize];
            wb.push(ph_to(Phase::Cr));
            for sp in step_specs().filter(|sp| sp.phase == Phase::Wb) {
                wb.push(Action::Assert {
                    src: sp.src,
                    dst: sp.dst,
                    slot: sp.slot,
                    guard: sp.guard,
                });
            }
            for sp in step_specs().filter(|sp| sp.phase == Phase::Wa) {
                wb.push(Action::Release {
                    dst: sp.dst,
                    slot: sp.slot,
                });
            }

            // cr: controller advances (CS before PH, matching its push
            // order; nothing on the last step), registers commit,
            // memories commit, then Wb releases.
            let cr = &mut slots[base + Phase::Cr.index() as usize];
            if s < cs_max {
                cr.push(Action::Control {
                    sig: cs,
                    value: Value::Num(s as i64 + 1),
                });
                cr.push(ph_to(Phase::Ra));
            }
            for i in 0..regs.len() {
                cr.push(Action::Commit { reg: i });
            }
            for i in 0..mems.len() {
                cr.push(Action::CommitMem { mem: i });
            }
            for sp in step_specs().filter(|sp| sp.phase == Phase::Wb) {
                cr.push(Action::Release {
                    dst: sp.dst,
                    slot: sp.slot,
                });
            }
        }

        let init_actions = if cs_max >= 1 {
            vec![
                Action::Control {
                    sig: cs,
                    value: Value::Num(1),
                },
                ph_to(Phase::Ra),
            ]
        } else {
            Vec::new()
        };

        // A commit at cr(CS_MAX) (and its paired release) leaves pending
        // updates after the last scheduled phase if and only if some
        // transfer asserts a register input at wb(CS_MAX).
        let flush = cs_max >= 1
            && specs
                .iter()
                .any(|sp| sp.phase == Phase::Wb && sp.step == cs_max);

        // Static conflict pre-pass: multiple asserts into one slot of one
        // signal, reported in slot order then first-drive order.
        let mut static_conflicts = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            let mut counts: Vec<(usize, usize)> = Vec::new();
            for action in slot {
                if let Action::Assert { dst, .. } = action {
                    match counts.iter_mut().find(|(d, _)| d == dst) {
                        Some((_, n)) => *n += 1,
                        None => counts.push((*dst, 1)),
                    }
                }
            }
            for (dst, n) in counts.into_iter().filter(|&(_, n)| n > 1) {
                let at = PhaseTime::from_active_delta(i as u64 + 1)
                    .expect("slot deltas are active by construction");
                let (site, name) = match &signals[dst].role {
                    SignalRole::Bus(n) => (ConflictSite::Bus, n.clone()),
                    SignalRole::ModIn1(n) | SignalRole::ModIn2(n) => {
                        (ConflictSite::ModulePort, n.clone())
                    }
                    SignalRole::ModOp(n) => (ConflictSite::ModuleOpPort, n.clone()),
                    SignalRole::ModOut(n) => (ConflictSite::ModuleOut, n.clone()),
                    SignalRole::RegIn(n) => (ConflictSite::RegisterPort, n.clone()),
                    SignalRole::RegOut(n) => (ConflictSite::RegisterValue, n.clone()),
                    SignalRole::MemWin(n) | SignalRole::MemWaddr(n) => {
                        (ConflictSite::MemoryPort, n.clone())
                    }
                    SignalRole::MemWord { mem, index } => (
                        ConflictSite::MemoryWord,
                        SignalRole::mem_word_name(mem, *index),
                    ),
                    SignalRole::ControlStep | SignalRole::PhaseSignal => continue,
                };
                static_conflicts.push(StaticConflict {
                    name,
                    site,
                    at,
                    drivers: n,
                });
            }
        }

        // Analytic kernel statistics (derived in closed form; the
        // differential suite pins them against the interpreted run).
        // Memory-commit processes wake exactly like register processes,
        // so they count as fixed processes.
        let fixed_procs = (regs.len() + modules.len() + mems.len()) as u64;
        let (activations, wake_hits, wake_misses) = analytic_stats(
            cs_max,
            fixed_procs,
            specs.iter().map(|sp| (sp.step, sp.phase)),
        );
        let process_count = 1 + fixed_procs + specs.len() as u64;

        ExecPlan {
            cs_max,
            signals,
            regs,
            modules,
            mems,
            guards,
            init_actions,
            slots,
            flush,
            specs,
            spec_tuple,
            tuple_count: model.tuples().len(),
            static_conflicts,
            process_count,
            activations,
            wake_hits,
            wake_misses,
        }
    }

    /// Maximum control step of the lowered model.
    pub fn cs_max(&self) -> Step {
        self.cs_max
    }

    /// Exact number of delta cycles a run of this plan executes — fixed
    /// by the schedule, known before anything runs.
    pub fn total_deltas(&self) -> u64 {
        1 + self.cs_max as u64 * Phase::ALL.len() as u64 + u64::from(self.flush)
    }

    /// The statically detected multiply driven slots (see
    /// [`StaticConflict`]).
    pub fn static_conflicts(&self) -> &[StaticConflict] {
        &self.static_conflicts
    }

    /// The scheduled actions of one `(step, phase)` slot, or `None` when
    /// `step` is outside `1..=CS_MAX`.
    pub fn actions(&self, step: Step, phase: Phase) -> Option<&[Action]> {
        if step < 1 || step > self.cs_max {
            return None;
        }
        let i = (step as usize - 1) * Phase::ALL.len() + phase.index() as usize;
        Some(self.slots[i].as_slice())
    }

    /// Walks the plan and harvests the observable output.
    ///
    /// # Errors
    ///
    /// [`KernelError::DeltaOverflow`] when [`total_deltas`](Self::total_deltas)
    /// exceeds the delta budget (diagnosed up front — the schedule length
    /// is static), [`KernelError::WallBudgetExceeded`] when the deadline
    /// passes mid-walk.
    pub fn execute(&self, options: &ExecOptions) -> Result<ExecOutcome, KernelError> {
        let delta_limit = options.delta_limit.unwrap_or(100_000_000);
        let needed = self.total_deltas();
        if needed > delta_limit {
            return Err(KernelError::DeltaOverflow {
                at: SimTime {
                    fs: 0,
                    delta: delta_limit,
                },
                limit: delta_limit,
            });
        }

        let mut values: Vec<Value> = self.signals.iter().map(|s| s.init).collect();
        let mut drivers: Vec<Vec<Value>> = self
            .signals
            .iter()
            .map(|s| vec![s.init; s.drivers])
            .collect();
        let mut pipes: Vec<VecDeque<Value>> = self
            .modules
            .iter()
            .map(|m| VecDeque::from(vec![Value::Disc; m.timing.latency() as usize]))
            .collect();
        let mut busy: Vec<u32> = vec![0; self.modules.len()];

        let mut trace: Option<Trace<Value>> = options.trace.then(Trace::new);
        // (delta, signal, value) of every event, for conflict/commit
        // extraction; only kept while tracing.
        let mut events: Vec<(u64, usize, Value)> = Vec::new();
        if let Some(t) = &mut trace {
            for (i, s) in self.signals.iter().enumerate() {
                t.push(SimTime::ZERO, SignalId::from_index(i), s.init);
            }
        }

        let mut stats = SimStats {
            process_activations: self.activations,
            wake_filter_hits: self.wake_hits,
            wake_filter_misses: self.wake_misses,
            // The initialization delta runs every process at once — the
            // high-water mark of the whole run.
            peak_runnable: self.process_count,
            ..SimStats::default()
        };

        let mut pending: Vec<(usize, usize, Value)> = Vec::new();
        for d in 0..needed {
            stats.peak_pending_updates = stats.peak_pending_updates.max(pending.len() as u64);

            // Update phase: apply scheduled driver transactions in push
            // order, recomputing effective values one transaction at a
            // time (two drives of one signal in one delta each produce
            // their own event, exactly like the kernel).
            let updates = std::mem::take(&mut pending);
            for (sig, slot, value) in updates {
                stats.driver_updates += 1;
                drivers[sig][slot] = value;
                let effective = if self.signals[sig].resolved {
                    resolve(&drivers[sig])
                } else {
                    drivers[sig][0]
                };
                if effective != values[sig] {
                    values[sig] = effective;
                    stats.events += 1;
                    if let Some(t) = &mut trace {
                        t.push(
                            SimTime { fs: 0, delta: d },
                            SignalId::from_index(sig),
                            effective,
                        );
                        events.push((d, sig, effective));
                    }
                }
            }

            // Run phase: the slot's straight-line actions.
            let actions: &[Action] = if d == 0 {
                &self.init_actions
            } else {
                self.slots
                    .get(d as usize - 1)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]) // trailing flush delta: updates only
            };
            for &action in actions {
                match action {
                    Action::Control { sig, value } => pending.push((sig, 0, value)),
                    Action::Assert {
                        src,
                        dst,
                        slot,
                        guard,
                    } => {
                        let enabled =
                            guard.is_none_or(|gi| self.guards[gi as usize].eval(|s| values[s]));
                        let v = if !enabled {
                            Value::Disc
                        } else {
                            match src {
                                Source::Signal(s) => values[s],
                                Source::Const(v) => v,
                                Source::MemRead { addr, base, len } => match values[addr].num() {
                                    Some(a) if (0..i64::from(len)).contains(&a) => {
                                        values[base + a as usize]
                                    }
                                    _ => Value::Illegal,
                                },
                            }
                        };
                        pending.push((dst, slot, v));
                    }
                    Action::Release { dst, slot } => pending.push((dst, slot, Value::Disc)),
                    Action::Eval { module } => {
                        let m = &self.modules[module];
                        let mut result = combine(
                            values[m.in1],
                            values[m.in2],
                            m.op.map(|p| values[p]),
                            &m.ops,
                        );
                        if let ModuleTiming::Sequential { latency } = m.timing {
                            if busy[module] > 0 {
                                busy[module] -= 1;
                                if result != Value::Disc {
                                    // Initiation-interval violation:
                                    // poison the whole pipeline.
                                    result = Value::Illegal;
                                    for v in pipes[module].iter_mut() {
                                        *v = Value::Illegal;
                                    }
                                }
                            } else if result != Value::Disc {
                                busy[module] = latency.saturating_sub(1);
                            }
                        }
                        let pipe = &mut pipes[module];
                        match pipe.pop_front() {
                            None => pending.push((m.out, 0, result)),
                            Some(due) => {
                                pending.push((m.out, 0, due));
                                pipe.push_back(result);
                            }
                        }
                    }
                    Action::Commit { reg } => {
                        let r = &self.regs[reg];
                        let v = values[r.input];
                        if v != Value::Disc {
                            pending.push((r.output, 0, v));
                        }
                    }
                    Action::CommitMem { mem } => {
                        let m = &self.mems[mem];
                        let v = values[m.win];
                        if v != Value::Disc {
                            match values[m.waddr].num() {
                                Some(a) if (0..m.words.len() as i64).contains(&a) => {
                                    pending.push((m.words[a as usize], 0, v));
                                }
                                _ => {
                                    for &w in &m.words {
                                        pending.push((w, 0, Value::Illegal));
                                    }
                                }
                            }
                        }
                    }
                }
            }

            if let Some(deadline) = options.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(KernelError::WallBudgetExceeded {
                        at: SimTime {
                            fs: 0,
                            delta: d + 1,
                        },
                    });
                }
            }
        }
        stats.delta_cycles = needed;

        let mut registers: Vec<(String, Value)> = self
            .regs
            .iter()
            .map(|r| (r.name.clone(), values[r.output]))
            .collect();
        for m in &self.mems {
            for &w in &m.words {
                registers.push((self.signals[w].name.clone(), values[w]));
            }
        }

        let conflicts = trace.as_ref().map(|_| self.dynamic_conflicts(&events));
        let commits = trace.as_ref().map(|_| self.commit_log(&events));
        let vcd = trace.as_ref().map(|t| {
            let names: Vec<String> = self.signals.iter().map(|s| s.name.clone()).collect();
            t.to_vcd(&names)
        });

        Ok(ExecOutcome {
            summary: RunSummary {
                stats,
                registers,
                conflicts,
            },
            commits,
            vcd,
        })
    }

    /// `ILLEGAL`-valued events localized to step and phase (the same
    /// extraction `RtSimulation::conflicts` performs on the trace).
    pub(crate) fn dynamic_conflicts(&self, events: &[(u64, usize, Value)]) -> ConflictReport {
        let mut conflicts = Vec::new();
        for &(delta, sig, value) in events {
            if value != Value::Illegal {
                continue;
            }
            let Some(visible_at) = PhaseTime::from_active_delta(delta) else {
                continue;
            };
            let (site, name) = match &self.signals[sig].role {
                SignalRole::Bus(n) => (ConflictSite::Bus, n.clone()),
                SignalRole::ModIn1(n) | SignalRole::ModIn2(n) => {
                    (ConflictSite::ModulePort, n.clone())
                }
                SignalRole::ModOp(n) => (ConflictSite::ModuleOpPort, n.clone()),
                SignalRole::ModOut(n) => (ConflictSite::ModuleOut, n.clone()),
                SignalRole::RegIn(n) => (ConflictSite::RegisterPort, n.clone()),
                SignalRole::RegOut(n) => (ConflictSite::RegisterValue, n.clone()),
                SignalRole::MemWin(n) | SignalRole::MemWaddr(n) => {
                    (ConflictSite::MemoryPort, n.clone())
                }
                SignalRole::MemWord { mem, index } => (
                    ConflictSite::MemoryWord,
                    SignalRole::mem_word_name(mem, *index),
                ),
                SignalRole::ControlStep | SignalRole::PhaseSignal => continue,
            };
            conflicts.push(Conflict {
                site,
                name,
                visible_at,
            });
        }
        ConflictReport { conflicts }
    }

    /// Register-output and memory-word events attributed to the storing
    /// step (the same extraction `RtSimulation::register_commits`
    /// performs).
    pub(crate) fn commit_log(&self, events: &[(u64, usize, Value)]) -> Vec<RegisterCommit> {
        let mut commits = Vec::new();
        for &(delta, sig, value) in events {
            let register = match &self.signals[sig].role {
                SignalRole::RegOut(name) => name.clone(),
                SignalRole::MemWord { mem, index } => SignalRole::mem_word_name(mem, *index),
                _ => continue,
            };
            let Some(pt) = PhaseTime::from_active_delta(delta) else {
                continue; // initial value, not a commit
            };
            commits.push(RegisterCommit {
                register,
                step: pt.step - 1,
                value,
            });
        }
        commits
    }

    // ------------------------------------------------------------------
    // Plan deltas: mutants as schedule edits
    // ------------------------------------------------------------------

    fn reg_by_name(&self, register: &str) -> Result<&PlanReg, String> {
        self.regs
            .iter()
            .find(|r| r.name == register)
            .ok_or_else(|| format!("unknown register `{register}`"))
    }

    /// Delta overriding a register's initial value (`DISC` for stuck-at
    /// faults, a number for corrupted inits).
    ///
    /// # Errors
    ///
    /// A message when `register` is not declared.
    pub fn delta_set_init(&self, register: &str, value: Value) -> Result<PlanDelta, String> {
        let reg = self.reg_by_name(register)?;
        Ok(PlanDelta {
            init_edits: vec![(reg.output, value)],
            ..PlanDelta::default()
        })
    }

    /// Delta removing the transfer tuple at `index` from the schedule.
    ///
    /// # Errors
    ///
    /// A message when `index` is out of range.
    pub fn delta_drop_tuple(&self, index: usize) -> Result<PlanDelta, String> {
        if index >= self.tuple_count {
            return Err(format!("no transfer at index {index}"));
        }
        Ok(PlanDelta {
            disabled_specs: (0..self.specs.len())
                .filter(|&i| self.spec_tuple[i] == index)
                .collect(),
            ..PlanDelta::default()
        })
    }

    /// Delta shifting the write-back (`wa` + `wb` specs) of the tuple at
    /// `index` by `delta` steps.
    ///
    /// # Errors
    ///
    /// A message when `index` is out of range, the tuple has no
    /// write-back, or the target step leaves `1..=CS_MAX`.
    pub fn delta_skew_write(&self, index: usize, delta: i32) -> Result<PlanDelta, String> {
        if index >= self.tuple_count {
            return Err(format!("no transfer at index {index}"));
        }
        let writes: Vec<usize> = (0..self.specs.len())
            .filter(|&i| {
                self.spec_tuple[i] == index && matches!(self.specs[i].phase, Phase::Wa | Phase::Wb)
            })
            .collect();
        let Some(&first) = writes.first() else {
            return Err(format!("transfer {index} has no write-back"));
        };
        let step = self.specs[first].step as i64 + i64::from(delta);
        if step < 1 || step > self.cs_max as i64 {
            return Err(format!("skewed write step {step} is out of range"));
        }
        Ok(PlanDelta {
            moved_specs: writes.into_iter().map(|i| (i, step as Step)).collect(),
            ..PlanDelta::default()
        })
    }

    /// Delta adding a spurious driver: `register` is read onto `bus` in
    /// `step` through a shadow `SPUR_<bus>_<step>` PassA module, exactly
    /// like the model-level driver mutation.
    ///
    /// # Errors
    ///
    /// A message when `bus` or `register` is not declared or `step` is
    /// outside the schedule.
    pub fn delta_extra_driver(
        &self,
        bus: &str,
        step: Step,
        register: &str,
    ) -> Result<PlanDelta, String> {
        let bus_sig = self
            .signals
            .iter()
            .position(|s| matches!(&s.role, SignalRole::Bus(n) if n == bus))
            .ok_or_else(|| format!("unknown bus `{bus}`"))?;
        let src = self.reg_by_name(register)?.output;
        if step < 1 || step > self.cs_max {
            return Err(format!("spurious driver step {step} is out of range"));
        }
        Ok(PlanDelta {
            spur: Some(PlanSpur {
                name: format!("SPUR_{bus}_{step}"),
                step,
                src,
                bus: bus_sig,
            }),
            ..PlanDelta::default()
        })
    }

    /// Spec indices of the guarded tuple at `index`, or an error when the
    /// index is out of range or the tuple is unguarded.
    fn guarded_specs(&self, index: usize) -> Result<Vec<usize>, String> {
        if index >= self.tuple_count {
            return Err(format!("no transfer at index {index}"));
        }
        let specs: Vec<usize> = (0..self.specs.len())
            .filter(|&i| self.spec_tuple[i] == index && self.specs[i].guard.is_some())
            .collect();
        if specs.is_empty() {
            return Err(format!("transfer {index} has no guard"));
        }
        Ok(specs)
    }

    /// Delta logically negating the guard of the tuple at `index`
    /// (guard-flip faults): the transfer fires exactly when it should
    /// not, and vice versa.
    ///
    /// # Errors
    ///
    /// A message when `index` is out of range or the tuple is unguarded.
    pub fn delta_flip_guard(&self, index: usize) -> Result<PlanDelta, String> {
        Ok(PlanDelta {
            flipped_specs: self.guarded_specs(index)?,
            ..PlanDelta::default()
        })
    }

    /// Delta removing the guard of the tuple at `index` (guard-force
    /// faults): the transfer fires unconditionally.
    ///
    /// # Errors
    ///
    /// A message when `index` is out of range or the tuple is unguarded.
    pub fn delta_force_guard(&self, index: usize) -> Result<PlanDelta, String> {
        Ok(PlanDelta {
            forced_specs: self.guarded_specs(index)?,
            ..PlanDelta::default()
        })
    }

    /// Executes many [`PlanDelta`] mutants of this plan in lockstep.
    ///
    /// Mutants run in chunks of up to 64 columns over
    /// structure-of-arrays state: one merged schedule whose actions carry
    /// per-column bit masks, one value/driver column per mutant. Each
    /// column's observables — final registers, first conflict, kernel
    /// counters — are identical to lowering and executing that mutant's
    /// model on its own (`clockless-verify` pins this differentially
    /// against the legacy per-mutant path).
    ///
    /// A column whose schedule exceeds `options.delta_limit` is latched
    /// as [`BatchOutcome::overflowed`] up front (the schedule length is
    /// static, exactly as in [`execute`](Self::execute)) and drops out
    /// without disturbing the other columns. Tracing is not supported;
    /// `options.trace` is ignored.
    ///
    /// `options.opt` gates the same stream specializations the solo
    /// compiled backend gets from [`crate::OptPlan`] — single-driver
    /// resolution bypass, folded control pushes, dead-spur elimination —
    /// re-derived on each chunk's merged mutant schedule. Elided work is
    /// re-credited to the per-column counters, so outcomes stay
    /// byte-identical at every level.
    ///
    /// # Errors
    ///
    /// [`KernelError::WallBudgetExceeded`] when `options.deadline` passes
    /// mid-walk.
    pub fn execute_batch(
        &self,
        deltas: &[PlanDelta],
        options: &ExecOptions,
    ) -> Result<Vec<BatchOutcome>, KernelError> {
        let mut out = Vec::with_capacity(deltas.len());
        for chunk in deltas.chunks(BATCH_WIDTH) {
            self.execute_chunk(chunk, options, None, &mut out)?;
        }
        Ok(out)
    }

    /// Resolves a [`CheckProgram`]'s signal references against this
    /// plan's dense signal table, producing the handle
    /// [`execute_batch_checked`](Self::execute_batch_checked) consumes.
    ///
    /// # Errors
    ///
    /// A message naming the first signal the plan does not have.
    pub fn resolve_checks(&self, program: &CheckProgram) -> Result<PlanChecks, String> {
        let sigs = program
            .signals
            .iter()
            .map(|s| {
                self.signals
                    .iter()
                    .position(|ps| match (&s.kind, &ps.role) {
                        (SignalKind::Register, SignalRole::RegOut(n)) => *n == s.name,
                        (SignalKind::MemoryWord, SignalRole::MemWord { mem, index }) => {
                            SignalRole::mem_word_name(mem, *index) == s.name
                        }
                        (SignalKind::Bus, SignalRole::Bus(n)) => *n == s.name,
                        _ => false,
                    })
                    .ok_or_else(|| format!("unknown {} `{}`", s.kind, s.name))
            })
            .collect::<Result<Vec<usize>, String>>()?;
        Ok(PlanChecks {
            sigs,
            program: program.clone(),
        })
    }

    /// [`execute_batch`](Self::execute_batch) with value checkers: after
    /// every column's update phase the monitored signals are fed to a
    /// per-column [`CheckEval`], so each [`BatchOutcome`] additionally
    /// carries the first monitor/invariant violation. Overflowed columns
    /// never run and report no verdict (`check: None`).
    ///
    /// # Errors
    ///
    /// [`KernelError::WallBudgetExceeded`] when `options.deadline` passes
    /// mid-walk.
    pub fn execute_batch_checked(
        &self,
        deltas: &[PlanDelta],
        options: &ExecOptions,
        checks: &PlanChecks,
    ) -> Result<Vec<BatchOutcome>, KernelError> {
        let mut out = Vec::with_capacity(deltas.len());
        for chunk in deltas.chunks(BATCH_WIDTH) {
            self.execute_chunk(chunk, options, Some(checks), &mut out)?;
        }
        Ok(out)
    }

    /// Runs one chunk of up to [`BATCH_WIDTH`] columns to completion.
    fn execute_chunk(
        &self,
        chunk: &[PlanDelta],
        options: &ExecOptions,
        checks: Option<&PlanChecks>,
        out: &mut Vec<BatchOutcome>,
    ) -> Result<(), KernelError> {
        let n = chunk.len();
        let bit = |c: usize| 1u64 << c;
        let cfg = options.opt.config();
        let delta_limit = options.delta_limit.unwrap_or(100_000_000);
        let base_fixed = (self.regs.len() + self.modules.len() + self.mems.len()) as u64;

        // Per-column schedule summary: effective specs → flush, exact
        // delta count, closed-form kernel counters. The budget precheck
        // mirrors `execute`: an over-budget column never runs at all.
        let mut needed = vec![0u64; n];
        let mut col_stats = vec![SimStats::default(); n];
        let mut overflow = vec![false; n];
        let mut full: u64 = 0;
        for (c, d) in chunk.iter().enumerate() {
            let mut summaries: Vec<(Step, Phase)> = Vec::with_capacity(self.specs.len() + 2);
            for (i, sp) in self.specs.iter().enumerate() {
                if d.disabled_specs.contains(&i) {
                    continue;
                }
                let step = d
                    .moved_specs
                    .iter()
                    .find(|&&(m, _)| m == i)
                    .map_or(sp.step, |&(_, s)| s);
                summaries.push((step, sp.phase));
            }
            if let Some(spur) = &d.spur {
                summaries.push((spur.step, Phase::Ra));
                summaries.push((spur.step, Phase::Rb));
            }
            let fixed = base_fixed + u64::from(d.spur.is_some());
            let flush = self.cs_max >= 1
                && summaries
                    .iter()
                    .any(|&(step, phase)| phase == Phase::Wb && step == self.cs_max);
            needed[c] = 1 + self.cs_max as u64 * Phase::ALL.len() as u64 + u64::from(flush);
            if needed[c] > delta_limit {
                overflow[c] = true;
                col_stats[c] = SimStats {
                    delta_cycles: delta_limit,
                    ..SimStats::default()
                };
                continue;
            }
            let (activations, wake_hits, wake_misses) =
                analytic_stats(self.cs_max, fixed, summaries.iter().copied());
            col_stats[c] = SimStats {
                process_activations: activations,
                wake_filter_hits: wake_hits,
                wake_filter_misses: wake_misses,
                peak_runnable: 1 + fixed + summaries.len() as u64,
                ..SimStats::default()
            };
            full |= bit(c);
        }

        // Shadow spur signals: three per chunk (in1, in2, out), shared by
        // every spur column; per-column conflict names live in the delta.
        let spur_cols: Vec<(usize, &PlanSpur)> = chunk
            .iter()
            .enumerate()
            .filter(|&(c, _)| full & bit(c) != 0)
            .filter_map(|(c, d)| d.spur.as_ref().map(|s| (c, s)))
            .collect();
        let any_spur = !spur_cols.is_empty();
        let spur_mask = spur_cols.iter().fold(0u64, |m, &(c, _)| m | bit(c));
        let s0 = self.signals.len();
        let (spur_in1, spur_out) = (s0, s0 + 2);
        let sig_count = s0 + if any_spur { 3 } else { 0 };

        // Driver-slot layout: golden counts plus one shared extra slot
        // per spur-driven bus. Columns that never drive a slot leave it
        // `DISC`, which the resolution function ignores — the reason the
        // golden layout can serve every mutant.
        let mut slot_count: Vec<usize> = self.signals.iter().map(|s| s.drivers).collect();
        let mut spur_bus_slot: Vec<(usize, usize)> = Vec::new();
        for &(_, spur) in &spur_cols {
            if !spur_bus_slot.iter().any(|&(b, _)| b == spur.bus) {
                spur_bus_slot.push((spur.bus, slot_count[spur.bus]));
                slot_count[spur.bus] += 1;
            }
        }
        let bus_slot = |bus: usize| -> usize {
            spur_bus_slot
                .iter()
                .find(|&&(b, _)| b == bus)
                .map(|&(_, s)| s)
                .expect("spur bus has an allocated slot")
        };
        if any_spur {
            slot_count.push(1); // spur in1: driven by the Rb spec
            slot_count.push(0); // spur in2: never driven (stays DISC)
            slot_count.push(1); // spur out: driven by the module proc
        }
        let mut slot_base: Vec<usize> = Vec::with_capacity(sig_count);
        let mut total_slots = 0usize;
        for &k in &slot_count {
            slot_base.push(total_slots);
            total_slots += k;
        }

        // SoA state: `values[sig * n + col]`,
        // `drivers[(slot_base[sig] + slot) * n + col]`. Driver slots
        // start at the (per-column) initial signal value, like the
        // kernel's elaboration.
        let mut values: Vec<Value> = vec![Value::Disc; sig_count * n];
        for (c, d) in chunk.iter().enumerate() {
            for (sig, s) in self.signals.iter().enumerate() {
                values[sig * n + c] = s.init;
            }
            for &(sig, v) in &d.init_edits {
                values[sig * n + c] = v;
            }
        }
        let mut drivers: Vec<Value> = vec![Value::Disc; total_slots * n];
        for sig in 0..s0 {
            for k in 0..self.signals[sig].drivers {
                let row = (slot_base[sig] + k) * n;
                for c in 0..n {
                    drivers[row + c] = values[sig * n + c];
                }
            }
        }

        // Per-column module state (golden modules plus the shadow spur,
        // a combinational PassA with an empty pipeline).
        let spur_ops = [Op::PassA];
        let mod_count = self.modules.len() + usize::from(any_spur);
        let module_view = |m: usize| -> (usize, usize, Option<usize>, usize, &[Op], ModuleTiming) {
            if let Some(pm) = self.modules.get(m) {
                (pm.in1, pm.in2, pm.op, pm.out, pm.ops.as_slice(), pm.timing)
            } else {
                (
                    spur_in1,
                    spur_in1 + 1,
                    None,
                    spur_out,
                    &spur_ops,
                    ModuleTiming::Combinational,
                )
            }
        };
        let mut pipes: Vec<VecDeque<Value>> = Vec::with_capacity(mod_count * n);
        for m in &self.modules {
            for _ in 0..n {
                pipes.push(VecDeque::from(vec![
                    Value::Disc;
                    m.timing.latency() as usize
                ]));
            }
        }
        if any_spur {
            pipes.resize_with(mod_count * n, VecDeque::new);
        }
        let mut busy: Vec<u32> = vec![0; mod_count * n];

        // Merged schedule: per-step spec activity as `(spec index,
        // column mask)` — golden placement minus per-column drops and
        // moves, plus moved-in specs — sorted by spec index. Spec order
        // is preserved by every mutation (drops remove, skews re-step,
        // spurs append last), so each column's mask-filtered view is
        // exactly its own mutant's action order.
        let mut clear: Vec<u64> = vec![0; self.specs.len()];
        let mut moved_in: Vec<(usize, Step, u64)> = Vec::new();
        for (c, d) in chunk.iter().enumerate() {
            if full & bit(c) == 0 {
                continue;
            }
            for &i in &d.disabled_specs {
                clear[i] |= bit(c);
            }
            for &(i, step) in &d.moved_specs {
                clear[i] |= bit(c);
                moved_in.push((i, step, bit(c)));
            }
        }
        let mut by_step: Vec<Vec<(usize, u64)>> = vec![Vec::new(); self.cs_max as usize + 1];
        for (i, sp) in self.specs.iter().enumerate() {
            if !(1..=self.cs_max).contains(&sp.step) {
                continue;
            }
            let m = full & !clear[i];
            if m != 0 {
                by_step[sp.step as usize].push((i, m));
            }
        }
        for (i, step, m) in moved_in {
            by_step[step as usize].push((i, m));
        }
        for v in &mut by_step {
            v.sort_by_key(|&(i, _)| i);
        }

        // Guard-fault overrides: per-spec column masks for flipped and
        // forced guards, plus a chunk-local guard table extended with the
        // flipped variants. Guard edits leave the schedule shape (and
        // therefore the analytic stats) untouched — a disabled transfer
        // still asserts, it just drives `DISC`.
        let mut flip_mask = vec![0u64; self.specs.len()];
        let mut force_mask = vec![0u64; self.specs.len()];
        for (c, d) in chunk.iter().enumerate() {
            if full & bit(c) == 0 {
                continue;
            }
            for &i in &d.forced_specs {
                force_mask[i] |= bit(c);
            }
            for &i in &d.flipped_specs {
                flip_mask[i] |= bit(c);
            }
        }
        for (fm, om) in flip_mask.iter_mut().zip(&force_mask) {
            *fm &= !om; // force wins when combined
        }
        let mut chunk_guards: Vec<PlanGuard> = self.guards.clone();
        let mut flip_of: Vec<Option<u16>> = vec![None; self.guards.len()];
        for (sp, &mask) in self.specs.iter().zip(&flip_mask) {
            if mask != 0 {
                let gi = sp.guard.expect("flipped spec has a guard") as usize;
                if flip_of[gi].is_none() {
                    flip_of[gi] = Some(chunk_guards.len() as u16);
                    let flipped = chunk_guards[gi].flipped();
                    chunk_guards.push(flipped);
                }
            }
        }
        // Pushes a spec's assert, split into base / flipped / forced
        // entries by the per-column override masks. Within any single
        // column exactly one variant is active, so per-column action
        // order is preserved.
        let push_assert = |vec: &mut Vec<(Action, u64)>, i: usize, m: u64| {
            let sp = self.specs[i];
            let assert = |guard: Option<u16>| Action::Assert {
                src: sp.src,
                dst: sp.dst,
                slot: sp.slot,
                guard,
            };
            let fm = m & flip_mask[i];
            let om = m & force_mask[i];
            let bm = m & !(fm | om);
            if bm != 0 {
                vec.push((assert(sp.guard), bm));
            }
            if fm != 0 {
                let gi = sp.guard.expect("flipped spec has a guard") as usize;
                vec.push((assert(flip_of[gi]), fm));
            }
            if om != 0 {
                vec.push((assert(None), om));
            }
        };

        let cs_sig = self
            .signals
            .iter()
            .position(|s| matches!(s.role, SignalRole::ControlStep))
            .expect("plan has a CS signal");
        let ph_sig = self
            .signals
            .iter()
            .position(|s| matches!(s.role, SignalRole::PhaseSignal))
            .expect("plan has a PH signal");
        let ph_to = |p: Phase| Action::Control {
            sig: ph_sig,
            value: Value::Num(p.index() as i64),
        };

        let num_slots = self.cs_max as usize * Phase::ALL.len();
        let mut sched: Vec<Vec<(Action, u64)>> = vec![Vec::new(); num_slots];
        for s in 1..=self.cs_max {
            let base = (s as usize - 1) * Phase::ALL.len();
            let entries = &by_step[s as usize];
            let spur_here: Vec<(usize, &PlanSpur)> = spur_cols
                .iter()
                .filter(|&&(_, spur)| spur.step == s)
                .copied()
                .collect();
            let spec = |i: usize| self.specs[i];

            let ra = &mut sched[base + Phase::Ra.index() as usize];
            for &(i, m) in entries.iter().filter(|&&(i, _)| spec(i).phase == Phase::Ra) {
                push_assert(ra, i, m);
            }
            for &(c, spur) in &spur_here {
                ra.push((
                    Action::Assert {
                        src: Source::Signal(spur.src),
                        dst: spur.bus,
                        slot: bus_slot(spur.bus),
                        guard: None,
                    },
                    bit(c),
                ));
            }
            ra.push((ph_to(Phase::Rb), full));

            let rb = &mut sched[base + Phase::Rb.index() as usize];
            rb.push((ph_to(Phase::Cm), full));
            for &(i, m) in entries {
                let sp = spec(i);
                match sp.phase {
                    Phase::Ra => rb.push((
                        Action::Release {
                            dst: sp.dst,
                            slot: sp.slot,
                        },
                        m,
                    )),
                    Phase::Rb => push_assert(rb, i, m),
                    _ => {}
                }
            }
            for &(c, spur) in &spur_here {
                rb.push((
                    Action::Release {
                        dst: spur.bus,
                        slot: bus_slot(spur.bus),
                    },
                    bit(c),
                ));
                rb.push((
                    Action::Assert {
                        src: Source::Signal(spur.bus),
                        dst: spur_in1,
                        slot: 0,
                        guard: None,
                    },
                    bit(c),
                ));
            }

            let cm = &mut sched[base + Phase::Cm.index() as usize];
            cm.push((ph_to(Phase::Wa), full));
            for i in 0..self.modules.len() {
                cm.push((Action::Eval { module: i }, full));
            }
            if any_spur {
                cm.push((
                    Action::Eval {
                        module: self.modules.len(),
                    },
                    spur_mask,
                ));
            }
            for &(i, m) in entries.iter().filter(|&&(i, _)| spec(i).phase == Phase::Rb) {
                let sp = spec(i);
                cm.push((
                    Action::Release {
                        dst: sp.dst,
                        slot: sp.slot,
                    },
                    m,
                ));
            }
            for &(c, _) in &spur_here {
                cm.push((
                    Action::Release {
                        dst: spur_in1,
                        slot: 0,
                    },
                    bit(c),
                ));
            }

            let wa = &mut sched[base + Phase::Wa.index() as usize];
            wa.push((ph_to(Phase::Wb), full));
            for &(i, m) in entries.iter().filter(|&&(i, _)| spec(i).phase == Phase::Wa) {
                push_assert(wa, i, m);
            }

            let wb = &mut sched[base + Phase::Wb.index() as usize];
            wb.push((ph_to(Phase::Cr), full));
            for &(i, m) in entries.iter().filter(|&&(i, _)| spec(i).phase == Phase::Wb) {
                push_assert(wb, i, m);
            }
            for &(i, m) in entries.iter().filter(|&&(i, _)| spec(i).phase == Phase::Wa) {
                let sp = spec(i);
                wb.push((
                    Action::Release {
                        dst: sp.dst,
                        slot: sp.slot,
                    },
                    m,
                ));
            }

            let cr = &mut sched[base + Phase::Cr.index() as usize];
            if s < self.cs_max {
                cr.push((
                    Action::Control {
                        sig: cs_sig,
                        value: Value::Num(s as i64 + 1),
                    },
                    full,
                ));
                cr.push((ph_to(Phase::Ra), full));
            }
            for i in 0..self.regs.len() {
                cr.push((Action::Commit { reg: i }, full));
            }
            for i in 0..self.mems.len() {
                cr.push((Action::CommitMem { mem: i }, full));
            }
            for &(i, m) in entries.iter().filter(|&&(i, _)| spec(i).phase == Phase::Wb) {
                let sp = spec(i);
                cr.push((
                    Action::Release {
                        dst: sp.dst,
                        slot: sp.slot,
                    },
                    m,
                ));
            }
        }
        let mut init_sched: Vec<(Action, u64)> =
            self.init_actions.iter().map(|&a| (a, full)).collect();

        // `-O` gated stream tweaks, mirroring [`OptPlan`] on the merged
        // masked schedule. Because the schedule is rebuilt per chunk the
        // passes see every mutation (drops, skews, spurs, guard edits)
        // before deciding what to elide — the "re-optimize per chunk"
        // obligation. Elided actions credit their exact pending/update/
        // event contributions back per delta, so every column's counters
        // stay byte-identical to the unoptimized walk.
        //
        // `elided_du[d]` rows would have sat pending at the top of delta
        // `d` and been applied there (one driver update per `full`
        // column); `elided_ev[d]` of those were guaranteed events
        // (control pushes: CS strictly increments, PH always changes).
        let mut elided_du = vec![0u64; num_slots + 2];
        let mut elided_ev = vec![0u64; num_slots + 2];
        if cfg.fold {
            // Constant folding: CS/PH pushes carry no information the
            // batch observes — columns are untraced, guards and checkers
            // read only register/memory/bus values, and the conflict
            // latch skips control roles — so the rows fold into per-delta
            // counter credits. The control signals' value cells simply go
            // stale.
            let mut fold = |actions: &mut Vec<(Action, u64)>, apply_at: usize| {
                actions.retain(|&(a, m)| {
                    if matches!(a, Action::Control { .. }) {
                        debug_assert_eq!(m, full, "control pushes are unmasked");
                        elided_du[apply_at] += 1;
                        elided_ev[apply_at] += 1;
                        false
                    } else {
                        true
                    }
                });
            };
            fold(&mut init_sched, 1);
            for (slot, actions) in sched.iter_mut().enumerate() {
                fold(actions, slot + 2);
            }
        }
        if cfg.dse {
            // Dead-spur elimination on the union schedule: an assert's
            // presence in `by_step` for *any* column (base, moved-in,
            // flipped or forced — guard edits only gate the driven
            // value, never the dst) marks its dst active, so an action
            // is elided only when it is dead in every column. Spur
            // asserts target the shadow module and a bus, never a
            // golden module's operand ports, and `init_edits` only
            // touch register outputs, which no elimination reads.
            let steps = self.cs_max as usize;
            let mut port_active = vec![vec![false; steps]; self.modules.len()];
            let mut reg_in_active = vec![vec![false; steps]; self.regs.len()];
            let mut mem_win_active = vec![vec![false; steps]; self.mems.len()];
            for s in 0..steps {
                for &(i, _) in &by_step[s + 1] {
                    let dst_sig = self.specs[i].dst;
                    for (m, pm) in self.modules.iter().enumerate() {
                        if dst_sig == pm.in1 || dst_sig == pm.in2 || Some(dst_sig) == pm.op {
                            port_active[m][s] = true;
                        }
                    }
                    for (r, pr) in self.regs.iter().enumerate() {
                        if dst_sig == pr.input {
                            reg_in_active[r][s] = true;
                        }
                    }
                    for (w, pw) in self.mems.iter().enumerate() {
                        if dst_sig == pw.win {
                            mem_win_active[w][s] = true;
                        }
                    }
                }
            }
            let eval_dead = |m: usize, s: usize| -> bool {
                let window = 2 * self.modules[m].timing.latency() as usize + 2;
                (s.saturating_sub(window)..=s).all(|t| !port_active[m][t])
            };
            for (slot, actions) in sched.iter_mut().enumerate() {
                let s = slot / Phase::ALL.len();
                actions.retain(|&(a, _)| match a {
                    // A dead eval's row is a perfect no-op (all inputs
                    // `DISC` across the window, pipeline drained), but
                    // it still counted one pending row and one driver
                    // update per column — credit those, no event.
                    Action::Eval { module }
                        if module < self.modules.len() && eval_dead(module, s) =>
                    {
                        elided_du[slot + 2] += 1;
                        false
                    }
                    // Commits push a row only for live (non-`DISC`)
                    // inputs, so eliding a never-live commit is free.
                    Action::Commit { reg } => reg_in_active[reg][s],
                    Action::CommitMem { mem } => mem_win_active[mem][s],
                    _ => true,
                });
            }
        }

        /// Appends one pending transaction row (`n` wide, `DISC`-filled).
        fn push_row(
            meta: &mut Vec<(usize, usize, u64)>,
            vals: &mut Vec<Value>,
            n: usize,
            sig: usize,
            slot: usize,
            mask: u64,
        ) -> usize {
            meta.push((sig, slot, mask));
            let row = vals.len();
            vals.resize(row + n, Value::Disc);
            row
        }

        // The lockstep walk. Per-column dynamic counters and the
        // first-`ILLEGAL` latch replace the solo engines' trace-based
        // extraction.
        let mut ev_count = vec![0u64; n];
        let mut du_count = vec![0u64; n];
        let mut peak_pending = vec![0u64; n];
        let mut pend_cnt = vec![0u64; n];
        let mut first_ill: Vec<Option<(usize, u64)>> = vec![None; n];
        let mut meta: Vec<(usize, usize, u64)> = Vec::new();
        let mut vals: Vec<Value> = Vec::new();

        let mut evals: Vec<CheckEval<'_>> = match checks {
            Some(ck) => (0..n).map(|_| CheckEval::new(&ck.program)).collect(),
            None => Vec::new(),
        };

        let max_needed = (0..n)
            .filter(|&c| full & bit(c) != 0)
            .map(|c| needed[c])
            .max()
            .unwrap_or(0);
        for d in 0..max_needed {
            pend_cnt.iter_mut().for_each(|x| *x = 0);
            for &(_, _, m) in &meta {
                let mut mm = m;
                while mm != 0 {
                    pend_cnt[mm.trailing_zeros() as usize] += 1;
                    mm &= mm - 1;
                }
            }
            // Credit elided rows exactly where they would have been
            // counted: pending at the top of this delta, applied (one
            // driver update, and for controls one event) right here.
            let (carry_du, carry_ev) = (elided_du[d as usize], elided_ev[d as usize]);
            if carry_du != 0 {
                let mut mm = full;
                while mm != 0 {
                    let c = mm.trailing_zeros() as usize;
                    mm &= mm - 1;
                    pend_cnt[c] += carry_du;
                    du_count[c] += carry_du;
                    ev_count[c] += carry_ev;
                }
            }
            for c in 0..n {
                peak_pending[c] = peak_pending[c].max(pend_cnt[c]);
            }

            // Update phase: apply transactions in push order, recomputing
            // each column's effective value one transaction at a time.
            for (e, &(sig, slot, m)) in meta.iter().enumerate() {
                let row = e * n;
                let dbase = slot_base[sig] + slot;
                let resolved = if sig < s0 {
                    self.signals[sig].resolved
                } else {
                    sig != spur_out
                };
                let eligible = if sig < s0 {
                    !matches!(
                        self.signals[sig].role,
                        SignalRole::ControlStep | SignalRole::PhaseSignal
                    )
                } else {
                    true
                };
                // Resolution specialization: a resolved signal with one
                // driver slot (note: a spur-driven bus grows an extra
                // chunk-local slot, disqualifying it) resolves to the
                // just-pushed value — `resolve` of a singleton is the
                // identity on `DISC`/`ILLEGAL`/`Num` alike — so the
                // driver buffer is neither written nor scanned.
                let direct = cfg.specialize && resolved && slot_count[sig] == 1;
                let mut mm = m;
                while mm != 0 {
                    let c = mm.trailing_zeros() as usize;
                    mm &= mm - 1;
                    du_count[c] += 1;
                    let effective = if direct {
                        vals[row + c]
                    } else if resolved {
                        drivers[dbase * n + c] = vals[row + c];
                        let mut seen: Option<Value> = None;
                        let mut acc = Value::Disc;
                        for k in 0..slot_count[sig] {
                            match drivers[(slot_base[sig] + k) * n + c] {
                                Value::Disc => {}
                                Value::Illegal => {
                                    acc = Value::Illegal;
                                    break;
                                }
                                v @ Value::Num(_) => {
                                    if seen.is_some() {
                                        acc = Value::Illegal;
                                        break;
                                    }
                                    seen = Some(v);
                                    acc = v;
                                }
                            }
                        }
                        if acc == Value::Illegal {
                            acc
                        } else {
                            seen.unwrap_or(Value::Disc)
                        }
                    } else {
                        drivers[dbase * n + c] = vals[row + c];
                        drivers[slot_base[sig] * n + c]
                    };
                    let vi = sig * n + c;
                    if effective != values[vi] {
                        values[vi] = effective;
                        ev_count[c] += 1;
                        if effective == Value::Illegal && eligible && first_ill[c].is_none() {
                            first_ill[c] = Some((sig, d));
                        }
                    }
                }
            }
            meta.clear();
            vals.clear();

            // Check phase: the end-of-delta values just computed are fed
            // to each live column's evaluator — the same observation the
            // interpreter's commit hook reconstructs, so verdicts agree
            // byte-for-byte.
            if let Some(ck) = checks {
                for c in 0..n {
                    if full & bit(c) != 0 && d < needed[c] {
                        evals[c].observe(d, |i| values[ck.sigs[i] * n + c]);
                    }
                }
            }

            // Run phase: the merged slot's masked straight-line actions.
            let actions: &[(Action, u64)] = if d == 0 {
                &init_sched
            } else {
                sched.get(d as usize - 1).map(Vec::as_slice).unwrap_or(&[])
            };
            for &(action, mask) in actions {
                match action {
                    Action::Control { sig, value } => {
                        let row = push_row(&mut meta, &mut vals, n, sig, 0, mask);
                        let mut mm = mask;
                        while mm != 0 {
                            let c = mm.trailing_zeros() as usize;
                            mm &= mm - 1;
                            vals[row + c] = value;
                        }
                    }
                    Action::Assert {
                        src,
                        dst,
                        slot,
                        guard,
                    } => {
                        let row = push_row(&mut meta, &mut vals, n, dst, slot, mask);
                        let mut mm = mask;
                        while mm != 0 {
                            let c = mm.trailing_zeros() as usize;
                            mm &= mm - 1;
                            let enabled = guard.is_none_or(|gi| {
                                chunk_guards[gi as usize].eval(|s| values[s * n + c])
                            });
                            vals[row + c] = if !enabled {
                                Value::Disc
                            } else {
                                match src {
                                    Source::Signal(sig) => values[sig * n + c],
                                    Source::Const(v) => v,
                                    Source::MemRead { addr, base, len } => {
                                        match values[addr * n + c].num() {
                                            Some(a) if (0..i64::from(len)).contains(&a) => {
                                                values[(base + a as usize) * n + c]
                                            }
                                            _ => Value::Illegal,
                                        }
                                    }
                                }
                            };
                        }
                    }
                    Action::Release { dst, slot } => {
                        push_row(&mut meta, &mut vals, n, dst, slot, mask);
                    }
                    Action::Eval { module } => {
                        let (in1, in2, op, out_sig, ops, timing) = module_view(module);
                        let row = push_row(&mut meta, &mut vals, n, out_sig, 0, mask);
                        let mut mm = mask;
                        while mm != 0 {
                            let c = mm.trailing_zeros() as usize;
                            mm &= mm - 1;
                            let mut result = combine(
                                values[in1 * n + c],
                                values[in2 * n + c],
                                op.map(|p| values[p * n + c]),
                                ops,
                            );
                            let mslot = module * n + c;
                            if let ModuleTiming::Sequential { latency } = timing {
                                if busy[mslot] > 0 {
                                    busy[mslot] -= 1;
                                    if result != Value::Disc {
                                        result = Value::Illegal;
                                        for v in pipes[mslot].iter_mut() {
                                            *v = Value::Illegal;
                                        }
                                    }
                                } else if result != Value::Disc {
                                    busy[mslot] = latency.saturating_sub(1);
                                }
                            }
                            let pipe = &mut pipes[mslot];
                            vals[row + c] = match pipe.pop_front() {
                                None => result,
                                Some(due) => {
                                    pipe.push_back(result);
                                    due
                                }
                            };
                        }
                    }
                    Action::Commit { reg } => {
                        let r = &self.regs[reg];
                        let mut buf = [Value::Disc; BATCH_WIDTH];
                        let mut live = 0u64;
                        let mut mm = mask;
                        while mm != 0 {
                            let c = mm.trailing_zeros() as usize;
                            mm &= mm - 1;
                            let v = values[r.input * n + c];
                            if v != Value::Disc {
                                live |= 1u64 << c;
                                buf[c] = v;
                            }
                        }
                        if live != 0 {
                            let row = push_row(&mut meta, &mut vals, n, r.output, 0, live);
                            let mut mm = live;
                            while mm != 0 {
                                let c = mm.trailing_zeros() as usize;
                                mm &= mm - 1;
                                vals[row + c] = buf[c];
                            }
                        }
                    }
                    Action::CommitMem { mem } => {
                        // Classify columns (store-at-word vs poison-all),
                        // then push one row per word in ascending order —
                        // each column's masked view matches its solo
                        // pending order (a single store, or the full
                        // 0..len poison sweep).
                        let pm = &self.mems[mem];
                        let len = pm.words.len();
                        let mut word_mask = vec![0u64; len];
                        let mut poison = 0u64;
                        let mut buf = [Value::Disc; BATCH_WIDTH];
                        let mut mm = mask;
                        while mm != 0 {
                            let c = mm.trailing_zeros() as usize;
                            mm &= mm - 1;
                            let v = values[pm.win * n + c];
                            if v == Value::Disc {
                                continue;
                            }
                            match values[pm.waddr * n + c].num() {
                                Some(a) if (0..len as i64).contains(&a) => {
                                    word_mask[a as usize] |= bit(c);
                                    buf[c] = v;
                                }
                                _ => poison |= bit(c),
                            }
                        }
                        for (w, &word) in pm.words.iter().enumerate() {
                            let m2 = word_mask[w] | poison;
                            if m2 == 0 {
                                continue;
                            }
                            let row = push_row(&mut meta, &mut vals, n, word, 0, m2);
                            let mut mm = m2;
                            while mm != 0 {
                                let c = mm.trailing_zeros() as usize;
                                mm &= mm - 1;
                                vals[row + c] = if poison & bit(c) != 0 {
                                    Value::Illegal
                                } else {
                                    buf[c]
                                };
                            }
                        }
                    }
                }
            }

            if let Some(deadline) = options.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(KernelError::WallBudgetExceeded {
                        at: SimTime {
                            fs: 0,
                            delta: d + 1,
                        },
                    });
                }
            }
        }

        for (c, d) in chunk.iter().enumerate() {
            let mut registers: Vec<(String, Value)> = self
                .regs
                .iter()
                .map(|r| (r.name.clone(), values[r.output * n + c]))
                .collect();
            for m in &self.mems {
                for &w in &m.words {
                    registers.push((self.signals[w].name.clone(), values[w * n + c]));
                }
            }
            let first_conflict = first_ill[c].and_then(|(sig, delta)| {
                let visible_at = PhaseTime::from_active_delta(delta)?;
                let (site, name) = if sig < s0 {
                    match &self.signals[sig].role {
                        SignalRole::Bus(nm) => (ConflictSite::Bus, nm.clone()),
                        SignalRole::ModIn1(nm) | SignalRole::ModIn2(nm) => {
                            (ConflictSite::ModulePort, nm.clone())
                        }
                        SignalRole::ModOp(nm) => (ConflictSite::ModuleOpPort, nm.clone()),
                        SignalRole::ModOut(nm) => (ConflictSite::ModuleOut, nm.clone()),
                        SignalRole::RegIn(nm) => (ConflictSite::RegisterPort, nm.clone()),
                        SignalRole::RegOut(nm) => (ConflictSite::RegisterValue, nm.clone()),
                        SignalRole::MemWin(nm) | SignalRole::MemWaddr(nm) => {
                            (ConflictSite::MemoryPort, nm.clone())
                        }
                        SignalRole::MemWord { mem, index } => (
                            ConflictSite::MemoryWord,
                            SignalRole::mem_word_name(mem, *index),
                        ),
                        SignalRole::ControlStep | SignalRole::PhaseSignal => return None,
                    }
                } else {
                    let name = d
                        .spur
                        .as_ref()
                        .expect("spur conflict implies a spur delta")
                        .name
                        .clone();
                    if sig == spur_out {
                        (ConflictSite::ModuleOut, name)
                    } else {
                        (ConflictSite::ModulePort, name)
                    }
                };
                Some(Conflict {
                    site,
                    name,
                    visible_at,
                })
            });
            let mut stats = col_stats[c];
            if !overflow[c] {
                stats.delta_cycles = needed[c];
                stats.events = ev_count[c];
                stats.driver_updates = du_count[c];
                stats.peak_pending_updates = peak_pending[c];
            }
            let check = if checks.is_some() && !overflow[c] {
                Some(evals[c].finish())
            } else {
                None
            };
            out.push(BatchOutcome {
                registers,
                first_conflict,
                stats,
                overflowed: overflow[c],
                check,
            });
        }
        Ok(())
    }
}

/// Columns per lockstep chunk of [`ExecPlan::execute_batch`] — one bit
/// of the per-action column masks each.
const BATCH_WIDTH: usize = 64;

/// Closed-form kernel statistics — `(activations, wake_hits,
/// wake_misses)` — of a schedule with `fixed_procs` register/module
/// processes and the given transfer-spec `(step, phase)` summaries over
/// `cs_max` steps. Shared between [`ExecPlan::lower`] (the golden
/// schedule) and the batched executor (per-column mutant schedules), so
/// the two derivations cannot drift.
fn analytic_stats(
    cs_max: Step,
    fixed_procs: u64,
    specs: impl Iterator<Item = (Step, Phase)>,
) -> (u64, u64, u64) {
    let steps = cs_max as u64;
    let mut activations = 1 + 6 * steps + fixed_procs * (1 + steps);
    // The kernel buckets `UntilEq` waiters per awaited value, so a filter
    // only ever fires when its predicate just became true: every
    // evaluation is a hit and the miss count is structurally zero.
    let mut wake_hits = fixed_procs * steps;
    let wake_misses = 0;
    for (step, phase) in specs {
        if (1..=cs_max).contains(&step) {
            // CS filter: one hit when CS arrives at the spec's step.
            wake_hits += 1;
            if phase == Phase::Ra {
                // init + assert + release; PH filter hits once (the
                // release phase).
                activations += 3;
                wake_hits += 1;
            } else {
                // init + arm + assert + release; PH filter hits twice
                // (the assert phase and the release phase).
                activations += 4;
                wake_hits += 2;
            }
        } else {
            // Defensive: a spec outside the schedule only ever runs its
            // init resume; its CS bucket never fires.
            activations += 1;
        }
    }
    (activations, wake_hits, wake_misses)
}

/// Combines module operand ports into a result, mirroring the module
/// process: the op port (when present) selects the operation by index;
/// `DISC` selection with live operands and out-of-range selections are
/// `ILLEGAL`.
pub(crate) fn combine(a: Value, b: Value, op_sel: Option<Value>, ops: &[Op]) -> Value {
    let op = match op_sel {
        None => ops[0],
        Some(Value::Disc) => {
            return if a == Value::Disc && b == Value::Disc {
                Value::Disc
            } else {
                Value::Illegal
            };
        }
        Some(Value::Illegal) => return Value::Illegal,
        Some(Value::Num(i)) => match usize::try_from(i).ok().and_then(|i| ops.get(i)) {
            Some(&op) => op,
            None => return Value::Illegal,
        },
    };
    op.apply(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, ExecOptions};
    use crate::model::{fig1_model, RtModel};
    use crate::op::Op;
    use crate::resource::{ModuleDecl, ModuleTiming};
    use crate::run::RtSimulation;
    use crate::tuples::TransferTuple;

    fn interpreted_traced(model: &RtModel) -> crate::backend::ExecOutcome {
        Backend::Interpreted
            .execute(model, &ExecOptions::traced())
            .unwrap()
    }

    fn compiled_traced(model: &RtModel) -> crate::backend::ExecOutcome {
        Backend::Compiled
            .execute(model, &ExecOptions::traced())
            .unwrap()
    }

    fn assert_equivalent(model: &RtModel) {
        let i = interpreted_traced(model);
        let c = compiled_traced(model);
        assert_eq!(i.summary.registers, c.summary.registers, "registers");
        assert_eq!(i.summary.stats, c.summary.stats, "stats");
        assert_eq!(
            i.summary.conflicts.as_ref().map(|r| &r.conflicts),
            c.summary.conflicts.as_ref().map(|r| &r.conflicts),
            "conflicts"
        );
        assert_eq!(i.commits, c.commits, "commits");
        assert_eq!(i.vcd, c.vcd, "vcd");
    }

    #[test]
    fn fig1_is_byte_equivalent() {
        assert_equivalent(&fig1_model(3, 4));
    }

    #[test]
    fn fig1_plan_shape() {
        let model = fig1_model(3, 4);
        let plan = ExecPlan::lower(&model);
        assert_eq!(plan.cs_max(), 7);
        assert_eq!(plan.total_deltas(), 43); // 1 + 7*6, no flush
        assert!(plan.static_conflicts().is_empty());
        // Step 5 ra: two register reads plus the controller advance.
        assert_eq!(plan.actions(5, Phase::Ra).unwrap().len(), 3);
        // An unscheduled step still carries the controller skeleton.
        assert_eq!(plan.actions(1, Phase::Ra).unwrap().len(), 1);
        assert!(plan.actions(8, Phase::Ra).is_none());
        assert!(plan.actions(0, Phase::Ra).is_none());
    }

    #[test]
    fn fig1_analytic_stats_match_interpreted() {
        let model = fig1_model(3, 4);
        let out = compiled_traced(&model);
        let s = out.summary.stats;
        assert_eq!(s.delta_cycles, 43);
        assert_eq!(s.process_activations, 89);
        assert_eq!(s.wake_filter_hits, 37);
        assert_eq!(s.wake_filter_misses, 0);
        assert_eq!(s.time_advances, 0);
    }

    /// A model whose only write lands at `wb(CS_MAX)`, forcing the
    /// trailing flush delta.
    fn flush_model() -> RtModel {
        let mut model = RtModel::new("flush", 2);
        model.add_register_init("R1", Value::Num(3)).unwrap();
        model.add_register_init("R2", Value::Num(4)).unwrap();
        model.add_bus("B1").unwrap();
        model.add_bus("B2").unwrap();
        model
            .add_module(ModuleDecl::single(
                "ADD",
                Op::Add,
                ModuleTiming::Pipelined { latency: 1 },
            ))
            .unwrap();
        model
            .add_transfer(
                TransferTuple::new(1, "ADD")
                    .src_a("R1", "B1")
                    .src_b("R2", "B2")
                    .write(2, "B1", "R1"),
            )
            .unwrap();
        model
    }

    #[test]
    fn write_at_last_step_takes_the_flush_delta() {
        let model = flush_model();
        let plan = ExecPlan::lower(&model);
        assert!(plan.flush);
        assert_eq!(plan.total_deltas(), 14); // 1 + 2*6 + flush
        assert_equivalent(&model);
        let out = compiled_traced(&model);
        assert_eq!(out.summary.register("R1"), Some(Value::Num(7)));
        assert_eq!(out.summary.stats.delta_cycles, 14);
    }

    #[test]
    fn model_without_transfers_is_byte_equivalent() {
        let mut model = RtModel::new("idle", 3);
        model.add_register_init("R1", Value::Num(9)).unwrap();
        model.add_bus("B1").unwrap();
        let plan = ExecPlan::lower(&model);
        assert!(!plan.flush);
        assert_eq!(plan.total_deltas(), 19);
        assert_equivalent(&model);
    }

    #[test]
    fn disc_init_registers_are_byte_equivalent() {
        // fig1 structure but with uninitialized (DISC) registers: the
        // ADD sees DISC operands and the commit never fires.
        let model = fig1_model_disc();
        assert_equivalent(&model);
        let out = compiled_traced(&model);
        assert_eq!(out.summary.register("R1"), Some(Value::Disc));
    }

    fn fig1_model_disc() -> RtModel {
        let mut model = RtModel::new("fig1_disc", 7);
        model.add_register("R1").unwrap();
        model.add_register("R2").unwrap();
        model.add_bus("B1").unwrap();
        model.add_bus("B2").unwrap();
        model
            .add_module(ModuleDecl::single(
                "ADD",
                Op::Add,
                ModuleTiming::Pipelined { latency: 1 },
            ))
            .unwrap();
        model
            .add_transfer(
                TransferTuple::new(5, "ADD")
                    .src_a("R1", "B1")
                    .src_b("R2", "B2")
                    .write(6, "B1", "R1"),
            )
            .unwrap();
        model
    }

    #[test]
    fn bus_conflict_is_found_statically_and_dynamically() {
        // Two transfers read different registers onto the same bus at the
        // same step: B1 is driven twice at ra(1).
        let mut model = RtModel::new("clash", 3);
        model.add_register_init("R1", Value::Num(1)).unwrap();
        model.add_register_init("R2", Value::Num(2)).unwrap();
        model.add_register_init("R3", Value::Num(3)).unwrap();
        model.add_bus("B1").unwrap();
        model.add_bus("B2").unwrap();
        model
            .add_module(ModuleDecl::single(
                "ADD",
                Op::Add,
                ModuleTiming::Pipelined { latency: 1 },
            ))
            .unwrap();
        model
            .add_module(ModuleDecl::single(
                "CPY",
                Op::PassA,
                ModuleTiming::Pipelined { latency: 1 },
            ))
            .unwrap();
        model
            .add_transfer(
                TransferTuple::new(1, "ADD")
                    .src_a("R1", "B1")
                    .src_b("R3", "B2")
                    .write(2, "B2", "R3"),
            )
            .unwrap();
        model
            .add_transfer(TransferTuple::new(1, "CPY").src_a("R2", "B1"))
            .unwrap();

        let plan = ExecPlan::lower(&model);
        let stat = plan
            .static_conflicts()
            .iter()
            .find(|c| c.name == "B1")
            .expect("static pre-pass flags the shared bus");
        assert_eq!(stat.site, ConflictSite::Bus);
        assert_eq!(stat.at, PhaseTime::new(1, Phase::Ra));
        assert_eq!(stat.drivers, 2);

        assert_equivalent(&model);
        let out = compiled_traced(&model);
        let report = out.summary.conflicts.unwrap();
        assert!(
            report.on("B1").any(|c| c.site == ConflictSite::Bus),
            "{report:?}"
        );
    }

    #[test]
    fn clean_model_has_no_static_conflicts() {
        assert!(ExecPlan::lower(&fig1_model(3, 4))
            .static_conflicts()
            .is_empty());
    }

    #[test]
    fn delta_overflow_is_diagnosed_up_front() {
        let model = fig1_model(3, 4);
        let plan = ExecPlan::lower(&model);
        let opts = ExecOptions {
            delta_limit: Some(10),
            ..Default::default()
        };
        let err = plan.execute(&opts).unwrap_err();
        assert!(
            matches!(err, KernelError::DeltaOverflow { limit: 10, .. }),
            "{err}"
        );
        // The interpreted kernel fails the same way with the same budget.
        let mut sim = RtSimulation::new(&model).unwrap();
        sim.set_delta_limit(10);
        let ierr = sim.run_to_completion().unwrap_err();
        assert_eq!(err, ierr);
        // And the exact budget passes both.
        let opts = ExecOptions {
            delta_limit: Some(43),
            ..Default::default()
        };
        assert!(plan.execute(&opts).is_ok());
    }

    #[test]
    fn zero_step_model_runs_one_delta() {
        let mut model = RtModel::new("empty", 0);
        model.add_register_init("R1", Value::Num(5)).unwrap();
        let plan = ExecPlan::lower(&model);
        assert_eq!(plan.total_deltas(), 1);
        assert_equivalent(&model);
    }

    #[test]
    fn sequential_module_models_are_byte_equivalent() {
        // A sequential multiplier with latency 2, plus a second transfer
        // violating its initiation interval (poisoned pipeline).
        for violate in [false, true] {
            let mut model = RtModel::new("seq", 6);
            model.add_register_init("R1", Value::Num(3)).unwrap();
            model.add_register_init("R2", Value::Num(4)).unwrap();
            model.add_register_init("R3", Value::Num(5)).unwrap();
            model.add_bus("B1").unwrap();
            model.add_bus("B2").unwrap();
            model
                .add_module(ModuleDecl::single(
                    "MUL",
                    Op::Mul,
                    ModuleTiming::Sequential { latency: 2 },
                ))
                .unwrap();
            model
                .add_transfer(
                    TransferTuple::new(1, "MUL")
                        .src_a("R1", "B1")
                        .src_b("R2", "B2")
                        .write(3, "B1", "R1"),
                )
                .unwrap();
            if violate {
                model
                    .add_transfer(
                        TransferTuple::new(2, "MUL")
                            .src_a("R3", "B1")
                            .src_b("R2", "B2")
                            .write(4, "B2", "R3"),
                    )
                    .unwrap();
            }
            assert_equivalent(&model);
        }
    }

    /// Batched column `i` must show exactly the observables a solo run of
    /// `mutants[i]` shows — registers, first conflict, kernel counters —
    /// at every optimization level of the lockstep walk.
    fn assert_batch_matches_solo(golden: &RtModel, deltas: &[PlanDelta], mutants: &[RtModel]) {
        assert_eq!(deltas.len(), mutants.len());
        let plan = ExecPlan::lower(golden);
        for level in crate::OptLevel::ALL {
            let options = ExecOptions::default().at_opt(level);
            let outs = plan.execute_batch(deltas, &options).unwrap();
            for (i, (out, mutant)) in outs.iter().zip(mutants).enumerate() {
                let solo = compiled_traced(mutant);
                assert!(!out.overflowed, "column {i} at -O{level}");
                assert_eq!(
                    out.registers, solo.summary.registers,
                    "column {i} registers at -O{level}"
                );
                assert_eq!(
                    out.first_conflict.as_ref(),
                    solo.summary.conflicts.as_ref().unwrap().first(),
                    "column {i} conflict at -O{level}"
                );
                assert_eq!(
                    out.stats, solo.summary.stats,
                    "column {i} stats at -O{level}"
                );
            }
        }
    }

    #[test]
    fn batched_deltas_match_solo_mutant_runs() {
        let golden = fig1_model(3, 4);
        let plan = ExecPlan::lower(&golden);

        let mut deltas = vec![PlanDelta::default()];
        let mut mutants = vec![golden.clone()];

        // Stuck-at-DISC and corrupted init.
        for (reg, value) in [("R1", Value::Disc), ("R2", Value::Num(9))] {
            deltas.push(plan.delta_set_init(reg, value).unwrap());
            let mut m = golden.clone();
            m.set_register_init(reg, value).unwrap();
            mutants.push(m);
        }

        // Dropped transfer.
        deltas.push(plan.delta_drop_tuple(0).unwrap());
        let mut m = golden.clone();
        m.remove_transfer(0).unwrap();
        mutants.push(m);

        // Skewed write-back, both directions; +1 lands the write on
        // `wb(CS_MAX)` so only that column takes the flush delta.
        for skew in [1i32, -1] {
            deltas.push(plan.delta_skew_write(0, skew).unwrap());
            let mut m = golden.clone();
            let mut tuple = m.tuples()[0].clone();
            let write = tuple.write.as_mut().unwrap();
            write.step = (write.step as i64 + i64::from(skew)) as Step;
            m.replace_transfer_unchecked(0, tuple).unwrap();
            mutants.push(m);
        }

        // Spurious drivers: one colliding with the scheduled read of B2
        // at step 5, one alone on an idle step, and two columns sharing
        // the same extra bus slot.
        for (bus, step, reg) in [("B2", 5, "R1"), ("B1", 2, "R2"), ("B1", 3, "R1")] {
            deltas.push(plan.delta_extra_driver(bus, step, reg).unwrap());
            let mut m = golden.clone();
            let spur = format!("SPUR_{bus}_{step}");
            m.add_module(ModuleDecl::single(
                &spur,
                Op::PassA,
                ModuleTiming::Combinational,
            ))
            .unwrap();
            m.add_transfer(TransferTuple::new(step, spur).src_a(reg, bus))
                .unwrap();
            mutants.push(m);
        }

        assert_batch_matches_solo(&golden, &deltas, &mutants);
    }

    #[test]
    fn batched_flush_model_deltas_match_solo() {
        // Golden takes the flush delta; dropping the tuple removes it,
        // and a -1 skew pulls the write off `wb(CS_MAX)`.
        let golden = flush_model();
        let plan = ExecPlan::lower(&golden);

        let mut deltas = vec![PlanDelta::default(), plan.delta_drop_tuple(0).unwrap()];
        let mut mutants = vec![golden.clone()];
        let mut m = golden.clone();
        m.remove_transfer(0).unwrap();
        mutants.push(m);

        deltas.push(plan.delta_skew_write(0, -1).unwrap());
        let mut m = golden.clone();
        let mut tuple = m.tuples()[0].clone();
        tuple.write.as_mut().unwrap().step = 1;
        m.replace_transfer_unchecked(0, tuple).unwrap();
        mutants.push(m);

        assert_batch_matches_solo(&golden, &deltas, &mutants);
    }

    #[test]
    fn batched_sequential_module_deltas_match_solo() {
        // Re-use the initiation-interval model: dropping the second
        // transfer un-poisons the pipeline, per column.
        let mut golden = RtModel::new("seq", 6);
        golden.add_register_init("R1", Value::Num(3)).unwrap();
        golden.add_register_init("R2", Value::Num(4)).unwrap();
        golden.add_register_init("R3", Value::Num(5)).unwrap();
        golden.add_bus("B1").unwrap();
        golden.add_bus("B2").unwrap();
        golden
            .add_module(ModuleDecl::single(
                "MUL",
                Op::Mul,
                ModuleTiming::Sequential { latency: 2 },
            ))
            .unwrap();
        golden
            .add_transfer(
                TransferTuple::new(1, "MUL")
                    .src_a("R1", "B1")
                    .src_b("R2", "B2")
                    .write(3, "B1", "R1"),
            )
            .unwrap();
        golden
            .add_transfer(
                TransferTuple::new(2, "MUL")
                    .src_a("R3", "B1")
                    .src_b("R2", "B2")
                    .write(4, "B2", "R3"),
            )
            .unwrap();
        let plan = ExecPlan::lower(&golden);

        let deltas = vec![PlanDelta::default(), plan.delta_drop_tuple(1).unwrap()];
        let mut mutants = vec![golden.clone()];
        let mut m = golden.clone();
        m.remove_transfer(1).unwrap();
        mutants.push(m);

        assert_batch_matches_solo(&golden, &deltas, &mutants);
    }

    #[test]
    fn batch_spans_multiple_chunks() {
        let golden = fig1_model(3, 4);
        let plan = ExecPlan::lower(&golden);
        let deltas: Vec<PlanDelta> = (0..70)
            .map(|i| plan.delta_set_init("R2", Value::Num(i)).unwrap())
            .collect();
        let outs = plan
            .execute_batch(&deltas, &ExecOptions::default())
            .unwrap();
        assert_eq!(outs.len(), 70);
        for (i, out) in outs.iter().enumerate() {
            let i = i as i64;
            assert_eq!(out.registers[0], ("R1".to_string(), Value::Num(3 + i)));
            assert_eq!(out.registers[1], ("R2".to_string(), Value::Num(i)));
        }
    }

    #[test]
    fn over_budget_columns_overflow_without_disturbing_the_rest() {
        let golden = fig1_model(3, 4);
        let plan = ExecPlan::lower(&golden);
        // 43 deltas golden; the +1 skew needs the flush delta (44).
        let deltas = vec![PlanDelta::default(), plan.delta_skew_write(0, 1).unwrap()];
        let opts = ExecOptions {
            delta_limit: Some(43),
            ..Default::default()
        };
        let outs = plan.execute_batch(&deltas, &opts).unwrap();
        assert!(!outs[0].overflowed);
        assert_eq!(outs[0].registers[0].1, Value::Num(7));
        assert!(outs[1].overflowed);
        assert_eq!(
            outs[1].stats,
            SimStats {
                delta_cycles: 43,
                ..SimStats::default()
            }
        );
    }

    #[test]
    fn delta_constructors_reject_bad_targets() {
        let plan = ExecPlan::lower(&fig1_model(3, 4));
        assert!(plan
            .delta_set_init("R9", Value::Disc)
            .unwrap_err()
            .contains("unknown register"));
        assert!(plan
            .delta_drop_tuple(5)
            .unwrap_err()
            .contains("no transfer at index 5"));
        assert!(plan
            .delta_skew_write(0, 7)
            .unwrap_err()
            .contains("out of range"));
        assert!(plan
            .delta_extra_driver("B9", 1, "R1")
            .unwrap_err()
            .contains("unknown bus"));
        assert!(plan
            .delta_extra_driver("B1", 9, "R1")
            .unwrap_err()
            .contains("out of range"));
    }

    /// A model with two guarded transfers over registers and array
    /// elements: tuple 0 guarded by `g0`, tuple 1 by `g1` (`None` =
    /// unguarded). With the canonical guards, tuple 0 fires (R2 = 4 ≠ 0)
    /// and tuple 1 is suppressed (A[1] = 1 < 3).
    fn guarded_model(g0: Option<Guard>, g1: Option<Guard>) -> RtModel {
        let mut model = RtModel::new("guarded", 4);
        model.add_register_init("R1", Value::Num(3)).unwrap();
        model.add_register_init("R2", Value::Num(4)).unwrap();
        model.add_array("A", 2, Value::Num(1)).unwrap();
        model.add_bus("B1").unwrap();
        model.add_bus("B2").unwrap();
        model
            .add_module(ModuleDecl::single(
                "ADD",
                Op::Add,
                ModuleTiming::Pipelined { latency: 1 },
            ))
            .unwrap();
        let mut t0 = TransferTuple::new(1, "ADD")
            .src_a("R1", "B1")
            .src_b("R2", "B2")
            .write(2, "B1", "R1");
        if let Some(g) = g0 {
            t0 = t0.guard(g);
        }
        model.add_transfer(t0).unwrap();
        let mut t1 = TransferTuple::new(3, "ADD")
            .src_a("A[0]", "B1")
            .src_b("R2", "B2")
            .write(4, "B2", "A[1]");
        if let Some(g) = g1 {
            t1 = t1.guard(g);
        }
        model.add_transfer(t1).unwrap();
        model
    }

    fn canonical_guards() -> (Guard, Guard) {
        (
            Guard::parse("R2 /= 0").unwrap(),
            Guard::parse("A[1] >= 3").unwrap(),
        )
    }

    #[test]
    fn guarded_transfers_are_byte_equivalent() {
        let (g0, g1) = canonical_guards();
        let model = guarded_model(Some(g0), Some(g1));
        assert_equivalent(&model);
        let out = compiled_traced(&model);
        // The true guard fires, the false one drives DISC instead.
        assert_eq!(out.summary.register("R1"), Some(Value::Num(7)));
        assert_eq!(out.summary.register("A[1]"), Some(Value::Num(1)));
        assert!(out.summary.conflicts.as_ref().unwrap().is_clean());
        // A suppressed transfer still wakes its processes and drives its
        // slot (with DISC), so the scheduling counters are
        // guard-independent; only value-event counts may differ.
        let unguarded = guarded_model(None, None);
        assert_equivalent(&unguarded);
        let base = compiled_traced(&unguarded).summary.stats;
        let s = out.summary.stats;
        assert_eq!(base.delta_cycles, s.delta_cycles);
        assert_eq!(base.process_activations, s.process_activations);
        assert_eq!(base.wake_filter_hits, s.wake_filter_hits);
        assert_eq!(base.wake_filter_misses, s.wake_filter_misses);
        assert_eq!(
            compiled_traced(&unguarded).summary.register("A[1]"),
            Some(Value::Num(5))
        );
    }

    #[test]
    fn flipped_and_forced_guard_models_are_byte_equivalent() {
        let (g0, g1) = canonical_guards();
        let model = guarded_model(Some(g0.flipped()), Some(g1.flipped()));
        assert_equivalent(&model);
        let out = compiled_traced(&model);
        assert_eq!(out.summary.register("R1"), Some(Value::Num(3)));
        assert_eq!(out.summary.register("A[1]"), Some(Value::Num(5)));
    }

    #[test]
    fn guard_deltas_match_solo_mutant_runs() {
        let (g0, g1) = canonical_guards();
        let golden = guarded_model(Some(g0.clone()), Some(g1.clone()));
        let plan = ExecPlan::lower(&golden);
        let deltas = vec![
            PlanDelta::default(),
            plan.delta_flip_guard(0).unwrap(),
            plan.delta_flip_guard(1).unwrap(),
            plan.delta_force_guard(0).unwrap(),
            plan.delta_force_guard(1).unwrap(),
        ];
        let mutants = vec![
            golden.clone(),
            guarded_model(Some(g0.flipped()), Some(g1.clone())),
            guarded_model(Some(g0.clone()), Some(g1.flipped())),
            guarded_model(None, Some(g1.clone())),
            guarded_model(Some(g0), None),
        ];
        assert_batch_matches_solo(&golden, &deltas, &mutants);
    }

    #[test]
    fn guard_delta_constructors_reject_bad_targets() {
        let (g0, _) = canonical_guards();
        let plan = ExecPlan::lower(&guarded_model(Some(g0), None));
        assert!(plan
            .delta_flip_guard(1)
            .unwrap_err()
            .contains("has no guard"));
        assert!(plan
            .delta_force_guard(1)
            .unwrap_err()
            .contains("has no guard"));
        assert!(plan
            .delta_flip_guard(9)
            .unwrap_err()
            .contains("no transfer at index 9"));
    }

    /// Memory exerciser: a constant-address read, a register-indirect
    /// read through `RI`, and a write (constant `M[0]` or indirect
    /// `M[RI]`). Words start at 5, `RA` = 7.
    fn memory_model(ri_init: i64, indirect_write: bool) -> RtModel {
        let mut model = RtModel::new("mem", 3);
        model.add_register_init("RA", Value::Num(7)).unwrap();
        model.add_register_init("RI", Value::Num(ri_init)).unwrap();
        model.add_register("RD").unwrap();
        model.add_register("RE").unwrap();
        model.add_memory("M", 3, Value::Num(5)).unwrap();
        model.add_bus("B1").unwrap();
        model.add_bus("B2").unwrap();
        model
            .add_module(ModuleDecl::single(
                "CP",
                Op::PassA,
                ModuleTiming::Combinational,
            ))
            .unwrap();
        model
            .add_transfer(
                TransferTuple::new(1, "CP")
                    .src_a("M[1]", "B1")
                    .write(1, "B2", "RD"),
            )
            .unwrap();
        model
            .add_transfer(
                TransferTuple::new(2, "CP")
                    .src_a("M[RI]", "B1")
                    .write(2, "B2", "RE"),
            )
            .unwrap();
        let dst = if indirect_write { "M[RI]" } else { "M[0]" };
        model
            .add_transfer(
                TransferTuple::new(3, "CP")
                    .src_a("RA", "B1")
                    .write(3, "B2", dst),
            )
            .unwrap();
        model
    }

    #[test]
    fn memory_models_are_byte_equivalent() {
        let model = memory_model(1, false);
        assert_equivalent(&model);
        let out = compiled_traced(&model);
        assert_eq!(out.summary.register("RD"), Some(Value::Num(5)));
        assert_eq!(out.summary.register("RE"), Some(Value::Num(5)));
        assert_eq!(out.summary.register("M[0]"), Some(Value::Num(7)));
        assert_eq!(out.summary.register("M[1]"), Some(Value::Num(5)));
        assert_eq!(out.summary.register("M[2]"), Some(Value::Num(5)));
        assert!(out.summary.conflicts.as_ref().unwrap().is_clean());
    }

    #[test]
    fn indirect_memory_write_is_byte_equivalent() {
        let model = memory_model(2, true);
        assert_equivalent(&model);
        let out = compiled_traced(&model);
        // The step-2 read sees the pre-write word value.
        assert_eq!(out.summary.register("RE"), Some(Value::Num(5)));
        assert_eq!(out.summary.register("M[2]"), Some(Value::Num(7)));
        assert_eq!(out.summary.register("M[0]"), Some(Value::Num(5)));
    }

    #[test]
    fn bad_memory_address_poisons_all_words_identically() {
        let model = memory_model(9, true);
        assert_equivalent(&model);
        let out = compiled_traced(&model);
        // Out-of-range read: ILLEGAL lands in RE.
        assert_eq!(out.summary.register("RE"), Some(Value::Illegal));
        // Out-of-range write: every word is poisoned.
        for w in ["M[0]", "M[1]", "M[2]"] {
            assert_eq!(out.summary.register(w), Some(Value::Illegal), "{w}");
        }
        let report = out.summary.conflicts.unwrap();
        assert!(
            report
                .conflicts
                .iter()
                .any(|c| c.site == ConflictSite::MemoryWord),
            "{report}"
        );
    }

    #[test]
    fn memory_batch_columns_match_solo_runs() {
        // Diverging address columns exercise the chunked commit's
        // per-word store masks and the poison path side by side.
        let golden = memory_model(1, true);
        let plan = ExecPlan::lower(&golden);
        let deltas = vec![
            PlanDelta::default(),
            plan.delta_set_init("RI", Value::Num(9)).unwrap(),
            plan.delta_set_init("RI", Value::Num(0)).unwrap(),
            plan.delta_set_init("RI", Value::Disc).unwrap(),
        ];
        let mutants = vec![
            golden.clone(),
            memory_model(9, true),
            memory_model(0, true),
            {
                let mut m = memory_model(0, true);
                m.set_register_init("RI", Value::Disc).unwrap();
                m
            },
        ];
        assert_batch_matches_solo(&golden, &deltas, &mutants);
    }
}
