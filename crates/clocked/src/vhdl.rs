//! Synthesizable VHDL emission for translated designs.
//!
//! §4's end product is "a usual synthesizable RT description based on
//! clock signals … which can be performed by current commercial synthesis
//! tools". This module renders a [`ClockedDesign`] as exactly that: a
//! single clocked entity with a step-counter FSM, per-step case-statement
//! multiplexers compiled from the routing tables, edge-triggered
//! registers and module pipelines. The output is plain VHDL-1993 over
//! `Integer` datapaths (one-cycle-per-step architecture).
//!
//! DSP operations (the CORDIC class) have no inline expression and are
//! rejected, mirroring `clockless_core::vhdl`.

use std::fmt::Write as _;

use clockless_core::{Op, Value};

use crate::translate::ClockedDesign;

/// Errors from VHDL emission.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmitVhdlError {
    /// The operation has no inline VHDL expression.
    UnsupportedOp(Op),
}

impl std::fmt::Display for EmitVhdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitVhdlError::UnsupportedOp(op) => {
                write!(f, "operation `{op}` has no VHDL expression in the subset")
            }
        }
    }
}

impl std::error::Error for EmitVhdlError {}

fn op_expr(op: Op, a: &str, b: &str) -> Option<String> {
    Some(match op {
        Op::Add => format!("{a} + {b}"),
        Op::Sub => format!("{a} - {b}"),
        Op::Mul => format!("{a} * {b}"),
        Op::MulFx(f) => format!("({a} * {b}) / {}", 1i64 << f),
        Op::Shr => format!("to_integer(shift_right(to_signed({a}, 64), {b}))"),
        Op::Shl => format!("to_integer(shift_left(to_signed({a}, 64), {b}))"),
        Op::PassA => a.to_string(),
        Op::PassB => b.to_string(),
        Op::Neg => format!("-{a}"),
        Op::Abs => format!("abs {a}"),
        Op::Min => format!("minimum({a}, {b})"),
        Op::Max => format!("maximum({a}, {b})"),
        Op::And
        | Op::Or
        | Op::Xor
        | Op::Atan2Fx(_)
        | Op::SqrtFx(_)
        | Op::SinFx(_)
        | Op::CosFx(_) => return None,
    })
}

/// Renders the design as one synthesizable entity (one-cycle-per-step
/// architecture; the clock scheme's period is a comment, physical timing
/// being the synthesis tool's concern).
///
/// # Errors
///
/// [`EmitVhdlError::UnsupportedOp`] for DSP operations.
pub fn emit_clocked_vhdl(design: &ClockedDesign) -> Result<String, EmitVhdlError> {
    let model = design.model();
    for m in model.modules() {
        for &op in &m.ops {
            if op_expr(op, "a", "b").is_none() {
                return Err(EmitVhdlError::UnsupportedOp(op));
            }
        }
    }
    let tables = design.tables();
    let cs_max = model.cs_max() as usize;
    let name = model
        .name()
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect::<String>();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- Synthesizable translation of clock-free model `{}` (section 4):",
        model.name()
    );
    let _ = writeln!(
        out,
        "-- one clock cycle per control step, {} steps, {} control signals.",
        model.cs_max(),
        tables.control_signal_count()
    );
    let _ = writeln!(out, "library ieee;");
    let _ = writeln!(out, "use ieee.std_logic_1164.all;");
    let _ = writeln!(out, "use ieee.numeric_std.all;\n");
    let _ = writeln!(out, "entity {name}_clocked is");
    let _ = writeln!(out, "  port (clk : in std_logic;");
    let _ = writeln!(out, "        rst : in std_logic;");
    let mut first = true;
    for r in model.registers() {
        let sep = if first { "" } else { ";" };
        if !first {
            let _ = writeln!(out, "{sep}");
        }
        first = false;
        let _ = write!(out, "        {}_q : out Integer", r.name);
    }
    let _ = writeln!(out, ");");
    let _ = writeln!(out, "end {name}_clocked;\n");
    let _ = writeln!(out, "architecture rtl of {name}_clocked is");
    let _ = writeln!(out, "  constant DISC : Integer := -1;");
    let _ = writeln!(out, "  signal step : Natural range 0 to {};", cs_max + 1);
    for r in model.registers() {
        let init = match r.init {
            Value::Num(v) => v.to_string(),
            _ => "DISC".to_string(),
        };
        let _ = writeln!(out, "  signal {}_r : Integer := {};", r.name, init);
    }
    for b in model.buses() {
        let _ = writeln!(out, "  signal {0}_rmux, {0}_wmux : Integer;", b.name);
    }
    for m in model.modules() {
        let _ = writeln!(out, "  signal {0}_comb, {0}_out : Integer;", m.name);
    }
    let _ = writeln!(out, "begin");

    // Read-side bus muxes.
    for (bidx, b) in model.buses().iter().enumerate() {
        let bid = clockless_core::BusId(bidx as u32);
        let _ = writeln!(out, "\n  -- bus {} (read side)", b.name);
        let _ = writeln!(out, "  {}_rmux <=", b.name);
        for (si, table) in tables.bus_read.iter().enumerate() {
            if let Some(rid) = table.get(&bid) {
                let reg = &model.registers()[rid.0 as usize].name;
                let _ = writeln!(out, "    {reg}_r when step = {} else", si + 1);
            }
        }
        let _ = writeln!(out, "    DISC;");
        let _ = writeln!(out, "  -- bus {} (write side)", b.name);
        let _ = writeln!(out, "  {}_wmux <=", b.name);
        for (si, table) in tables.bus_write.iter().enumerate() {
            if let Some(mid) = table.get(&bid) {
                let module = &model.modules()[mid.0 as usize].name;
                let _ = writeln!(out, "    {module}_out when step = {} else", si + 1);
            }
        }
        let _ = writeln!(out, "    DISC;");
    }

    // Module datapaths.
    for (midx, m) in model.modules().iter().enumerate() {
        let mid = clockless_core::ModuleId(midx as u32);
        let _ = writeln!(out, "\n  -- module {} datapath", m.name);
        let _ = writeln!(out, "  process (step, {})", {
            let buses: Vec<String> = model
                .buses()
                .iter()
                .map(|b| format!("{}_rmux", b.name))
                .collect();
            buses.join(", ")
        });
        let _ = writeln!(out, "  begin");
        let _ = writeln!(out, "    case step is");
        for si in 0..cs_max {
            let Some(&op) = tables.mod_op[si].get(&mid) else {
                continue;
            };
            let a = tables.mod_in1[si]
                .get(&mid)
                .map(|b| format!("{}_rmux", model.buses()[b.0 as usize].name))
                .unwrap_or_else(|| "DISC".to_string());
            let b = tables.mod_in2[si]
                .get(&mid)
                .map(|b| format!("{}_rmux", model.buses()[b.0 as usize].name))
                .unwrap_or_else(|| "DISC".to_string());
            let expr = op_expr(op, &a, &b).expect("checked above");
            let _ = writeln!(out, "      when {} => {}_comb <= {};", si + 1, m.name, expr);
        }
        let _ = writeln!(out, "      when others => {}_comb <= DISC;", m.name);
        let _ = writeln!(out, "    end case;");
        let _ = writeln!(out, "  end process;");
        let latency = m.timing.latency();
        if latency == 0 {
            let _ = writeln!(out, "  {0}_out <= {0}_comb;", m.name);
        } else {
            let _ = writeln!(out, "  process (clk)  -- {}-stage pipeline", latency);
            let _ = writeln!(out, "    type pipe_t is array (1 to {latency}) of Integer;");
            let _ = writeln!(out, "    variable pipe : pipe_t := (others => DISC);");
            let _ = writeln!(out, "  begin");
            let _ = writeln!(out, "    if rising_edge(clk) then");
            let _ = writeln!(out, "      {}_out <= pipe({latency});", m.name);
            for stage in (2..=latency).rev() {
                let _ = writeln!(out, "      pipe({stage}) := pipe({});", stage - 1);
            }
            let _ = writeln!(out, "      pipe(1) := {}_comb;", m.name);
            let _ = writeln!(out, "    end if;");
            let _ = writeln!(out, "  end process;");
        }
    }

    // Step counter and registers.
    let _ = writeln!(out, "\n  -- controller: one clock cycle per control step");
    let _ = writeln!(out, "  process (clk)");
    let _ = writeln!(out, "  begin");
    let _ = writeln!(out, "    if rising_edge(clk) then");
    let _ = writeln!(out, "      if rst = '1' then");
    let _ = writeln!(out, "        step <= 1;");
    let _ = writeln!(out, "      elsif step <= {cs_max} then");
    let _ = writeln!(out, "        step <= step + 1;");
    let _ = writeln!(out, "      end if;");
    let _ = writeln!(out, "    end if;");
    let _ = writeln!(out, "  end process;");
    let _ = writeln!(out, "\n  -- registers with per-step load enables");
    let _ = writeln!(out, "  process (clk)");
    let _ = writeln!(out, "  begin");
    let _ = writeln!(out, "    if rising_edge(clk) then");
    let _ = writeln!(out, "      case step is");
    for si in 0..cs_max {
        let loads = &tables.reg_load[si];
        if loads.is_empty() {
            continue;
        }
        let _ = writeln!(out, "        when {} =>", si + 1);
        let mut entries: Vec<_> = loads.iter().collect();
        entries.sort_by_key(|(r, _)| r.0);
        for (rid, bid) in entries {
            let reg = &model.registers()[rid.0 as usize].name;
            let bus = &model.buses()[bid.0 as usize].name;
            let _ = writeln!(out, "          if {bus}_wmux /= DISC then");
            let _ = writeln!(out, "            {reg}_r <= {bus}_wmux;");
            let _ = writeln!(out, "          end if;");
        }
    }
    let _ = writeln!(out, "        when others => null;");
    let _ = writeln!(out, "      end case;");
    let _ = writeln!(out, "    end if;");
    let _ = writeln!(out, "  end process;");
    for r in model.registers() {
        let _ = writeln!(out, "  {0}_q <= {0}_r;", r.name);
    }
    let _ = writeln!(out, "end rtl;");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{ClockScheme, ClockedDesign};
    use clockless_core::model::fig1_model;

    #[test]
    fn fig1_emits_synthesizable_structure() {
        let design = ClockedDesign::translate(&fig1_model(3, 4), ClockScheme::default()).unwrap();
        let vhdl = emit_clocked_vhdl(&design).unwrap();
        assert!(vhdl.contains("entity fig1_example_clocked is"));
        assert!(vhdl.contains("rising_edge(clk)"));
        // Bus B1 read side selects R1 in step 5, write side ADD in step 6.
        assert!(vhdl.contains("R1_r when step = 5 else"));
        assert!(vhdl.contains("ADD_out when step = 6 else"));
        // The adder computes in step 5 through the pipeline register.
        assert!(vhdl.contains("when 5 => ADD_comb <= B1_rmux + B2_rmux;"));
        assert!(vhdl.contains("pipe(1) := ADD_comb;"));
        // R1 loads from B1's write mux in step 6.
        assert!(vhdl.contains("R1_r <= B1_wmux;"));
    }

    #[test]
    fn dsp_design_rejected() {
        use clockless_core::prelude::*;
        let mut m = RtModel::new("dsp", 12);
        m.add_register_init("A", Value::Num(1)).unwrap();
        m.add_register("T").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("W").unwrap();
        m.add_module(ModuleDecl::single(
            "CORDIC",
            Op::SqrtFx(16),
            ModuleTiming::Sequential { latency: 8 },
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(1, "CORDIC")
                .src_a("A", "X")
                .write(9, "W", "T"),
        )
        .unwrap();
        let design = ClockedDesign::translate(&m, ClockScheme::default()).unwrap();
        assert_eq!(
            emit_clocked_vhdl(&design),
            Err(EmitVhdlError::UnsupportedOp(Op::SqrtFx(16)))
        );
    }

    #[test]
    fn emission_is_deterministic() {
        let design = ClockedDesign::translate(&fig1_model(1, 2), ClockScheme::default()).unwrap();
        assert_eq!(
            emit_clocked_vhdl(&design).unwrap(),
            emit_clocked_vhdl(&design).unwrap()
        );
    }
}
