//! End-to-end tests of the `clockless` CLI binary against the model
//! corpus in `models/`.

use std::path::Path;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clockless"))
}

fn repo_path(rel: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(rel)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn run_fig1_reports_result_and_stats() {
    let out = cli()
        .args(["run", &repo_path("models/fig1.rtl")])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("R1"), "{stdout}");
    assert!(stdout.contains("7"), "{stdout}");
    assert!(stdout.contains("43 deltas"), "{stdout}");
}

#[test]
fn run_with_vcd_writes_waveform() {
    let vcd_path = std::env::temp_dir().join("clockless_cli_test.vcd");
    let out = cli()
        .args([
            "run",
            &repo_path("models/accumulate.rtl"),
            "--vcd",
            &vcd_path.to_string_lossy(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let vcd = std::fs::read_to_string(&vcd_path).expect("vcd written");
    assert!(vcd.contains("$enddefinitions"));
    let _ = std::fs::remove_file(&vcd_path);
}

#[test]
fn run_with_transcript_prints_phase_table() {
    let out = cli()
        .args([
            "run",
            &repo_path("models/fig1.rtl"),
            "--transcript",
            "B1,ADD,R1",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("phase transcript"), "{stdout}");
    assert!(stdout.contains("5.rb"), "{stdout}");
    assert!(stdout.contains("6.wa"), "{stdout}");
}

#[test]
fn transcript_with_unknown_signal_fails() {
    let out = cli()
        .args(["run", &repo_path("models/fig1.rtl"), "--transcript", "nope"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("names no register"), "{stderr}");
}

#[test]
fn check_clean_model_succeeds() {
    let out = cli()
        .args(["check", &repo_path("models/multiop.rtl")])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "{stdout}");
    assert!(stdout.contains("round trip: ok"), "{stdout}");
}

#[test]
fn check_conflicted_model_fails_with_localization() {
    let out = cli()
        .args(["check", &repo_path("models/conflict.rtl")])
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "conflicted model must fail the check"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bus `X`"), "{stdout}");
    assert!(stdout.contains("step 2 phase rb"), "{stdout}");
}

#[test]
fn translate_reports_equivalence() {
    for scheme in ["one", "two"] {
        let out = cli()
            .args([
                "translate",
                &repo_path("models/accumulate.rtl"),
                "--scheme",
                scheme,
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("equivalence vs. the clock-free model: ok"),
            "{stdout}"
        );
    }
}

#[test]
fn translate_rejects_conflicted_model() {
    let out = cli()
        .args(["translate", &repo_path("models/conflict.rtl")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("two sources"), "{stderr}");
}

#[test]
fn explain_prints_the_paper_mapping() {
    let out = cli()
        .args(["explain", "(R1,B1,R2,B2,5,ADD,6,B1,R1)"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "R1_out_B1_5",
        "B1_ADD_in1_5",
        "R2_out_B2_5",
        "B2_ADD_in2_5",
        "ADD_out_B1_6",
        "B1_R1_in_6",
    ] {
        assert!(stdout.contains(name), "{stdout}");
    }
}

#[test]
fn bad_usage_exits_2() {
    let out = cli().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = cli().args(["frobnicate"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_file_reports_error() {
    let out = cli()
        .args(["run", "/nonexistent/nope.rtl"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn every_corpus_model_parses() {
    let dir = repo_path("models");
    let mut count = 0;
    for entry in std::fs::read_dir(dir).expect("models dir exists") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "rtl") {
            let text = std::fs::read_to_string(&path).expect("readable");
            clockless::core::text::parse_model(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
            count += 1;
        }
    }
    assert!(count >= 4, "expected the corpus, found {count} models");
}

#[test]
fn vhdl_emits_the_paper_subset() {
    let out = cli()
        .args(["vhdl", &repo_path("models/fig1.rtl")])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("entity CONTROLLER is"), "{stdout}");
    assert!(stdout.contains("entity TRANS is"), "{stdout}");
    assert!(
        stdout.contains("R1_out_B1_5 : entity work.TRANS"),
        "{stdout}"
    );
}

#[test]
fn vhdl_clocked_emits_synthesizable_rtl() {
    let out = cli()
        .args(["vhdl", &repo_path("models/accumulate.rtl"), "--clocked"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rising_edge(clk)"), "{stdout}");
    assert!(stdout.contains("entity accumulate_clocked is"), "{stdout}");
}

#[test]
fn vhdl_files_are_imported_and_run() {
    let out = cli()
        .args(["run", &repo_path("models/fig1.vhd")])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("R1               7"), "{stdout}");
}

#[test]
fn vhdl_roundtrip_through_the_cli() {
    // rtl -> vhdl -> run must equal rtl -> run.
    let vhdl = cli()
        .args(["vhdl", &repo_path("models/multiop.rtl")])
        .output()
        .expect("binary runs");
    assert!(vhdl.status.success());
    let tmp = std::env::temp_dir().join("clockless_multiop_roundtrip.vhd");
    std::fs::write(&tmp, &vhdl.stdout).expect("written");
    let via_vhdl = cli()
        .args(["run", &tmp.to_string_lossy()])
        .output()
        .expect("binary runs");
    assert!(via_vhdl.status.success(), "{via_vhdl:?}");
    let direct = cli()
        .args(["run", &repo_path("models/multiop.rtl")])
        .output()
        .expect("binary runs");
    let pick = |out: &std::process::Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .skip_while(|l| !l.contains("final register values"))
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(pick(&via_vhdl), pick(&direct));
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn stats_reports_utilization() {
    let out = cli()
        .args(["stats", &repo_path("models/accumulate.rtl")])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("occupancy"), "{stdout}");
    assert!(stdout.contains("module initiations"), "{stdout}");
}

#[test]
fn stats_json_reports_kernel_counters() {
    let out = cli()
        .args(["stats", &repo_path("models/fig1.rtl"), "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"model\": \"fig1\""), "{stdout}");
    assert!(stdout.contains("\"delta_cycles\": 43"), "{stdout}");
    assert!(stdout.contains("\"wake_filter_misses\""), "{stdout}");
    assert!(stdout.contains("\"process\": \"CONTROL\""), "{stdout}");
}

#[test]
fn check_reports_lints() {
    // A model with an unused bus gets a lint warning but still passes.
    let tmp = std::env::temp_dir().join("clockless_lint_test.rtl");
    std::fs::write(
        &tmp,
        "model linty steps 4\nregister A init 1\nregister T\nbus X\nbus Y\nbus UNUSED\n\
         module CP ops passa comb\ntransfer (A,X,-,-,2,CP,2,Y,T)\n",
    )
    .expect("written");
    let out = cli()
        .args(["check", &tmp.to_string_lossy()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bus `UNUSED` is never used"), "{stdout}");
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn iks_corpus_models_stay_in_sync_with_the_builders() {
    use clockless::iks::prelude::*;
    // models/iks_ik.rtl was generated from build_ik_chip for pose (1,1);
    // its body must match a fresh generation (headers aside).
    let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
    let chip = build_ik_chip(to_fx(1.0), to_fx(1.0), constants).expect("builds");
    let fresh = clockless::core::text::to_text(&chip.model);
    let committed = std::fs::read_to_string(repo_path("models/iks_ik.rtl")).expect("readable");
    let body: String = committed
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(body, fresh, "regenerate models/iks_ik.rtl");

    let samples = [to_fx(0.5), to_fx(1.5), to_fx(-1.0), to_fx(2.0)];
    let coeffs = [to_fx(2.0), to_fx(-0.5), to_fx(0.25), to_fx(1.0)];
    let model = clockless::iks::build_fir_chip(samples, coeffs).expect("builds");
    let fresh = clockless::core::text::to_text(&model);
    let committed = std::fs::read_to_string(repo_path("models/iks_fir.rtl")).expect("readable");
    let body: String = committed
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(body, fresh, "regenerate models/iks_fir.rtl");
}

#[test]
fn iks_corpus_model_solves_the_pose_via_the_cli_path() {
    use clockless::iks::prelude::*;
    // Loading the text-format chip and running it gives the golden angles.
    let text = std::fs::read_to_string(repo_path("models/iks_ik.rtl")).expect("readable");
    let model = clockless::core::text::parse_model(&text).expect("parses");
    let mut sim = clockless::core::RtSimulation::new(&model).expect("elaborates");
    let summary = sim.run_to_completion().expect("runs");
    let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
    let golden = solve_ik(to_fx(1.0), to_fx(1.0), &constants).expect("reachable");
    assert_eq!(summary.register("J0").unwrap().num(), Some(golden.theta1));
    assert_eq!(summary.register("J1").unwrap().num(), Some(golden.theta2));
}

#[test]
fn fleet_json_is_byte_identical_across_worker_counts() {
    let models = [
        repo_path("models/fig1.rtl"),
        repo_path("models/accumulate.rtl"),
        repo_path("models/multiop.rtl"),
        repo_path("models/conflict.rtl"),
    ];
    let run = |jobs: &str| {
        let mut cmd = cli();
        cmd.arg("fleet")
            .args(&models)
            .args(["--jobs", jobs, "--json"]);
        let out = cmd.output().expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        out.stdout
    };
    let one = run("1");
    let four = run("4");
    assert_eq!(one, four, "fleet --json must not depend on worker count");
    let text = String::from_utf8_lossy(&one);
    assert!(text.contains("\"jobs\": 4"), "{text}");
    assert!(text.contains("\"conflicted_jobs\": 1"), "{text}");
    assert!(text.contains("ILLEGAL on bus `X`"), "{text}");
    // The deterministic rendering carries no machine-local wall times.
    assert!(!text.contains("wall_ns"), "{text}");
}

#[test]
fn fleet_runs_a_spec_file_with_stimulus_overrides() {
    let tmp = std::env::temp_dir().join("clockless_cli_fleet_spec");
    std::fs::create_dir_all(&tmp).expect("tmp dir");
    std::fs::copy(repo_path("models/fig1.rtl"), tmp.join("fig1.rtl")).expect("copied");
    std::fs::write(
        tmp.join("sweep.fleet"),
        "fleet cli_test\n\
         job base rtl fig1.rtl\n\
         job stim rtl fig1.rtl init R1=40 init R2=2\n\
         job sched hls fir 4\n",
    )
    .expect("written");
    let out = cli()
        .args([
            "fleet",
            &tmp.join("sweep.fleet").to_string_lossy(),
            "--jobs",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 jobs"), "{stdout}");
    for job in ["base", "stim", "sched"] {
        assert!(stdout.contains(job), "{stdout}");
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn fleet_runs_the_committed_demo_spec() {
    // models/demo.fleet is the spec the README points at — keep it green.
    let out = cli()
        .args(["fleet", &repo_path("models/demo.fleet"), "--jobs", "4"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 jobs"), "{stdout}");
    for job in ["fig1_stim", "fir_sched", "ik_pose"] {
        assert!(stdout.contains(job), "{stdout}");
    }
}

#[test]
fn fleet_malformed_spec_fails_with_line_number() {
    let tmp = std::env::temp_dir().join("clockless_cli_bad.fleet");
    std::fs::write(&tmp, "fleet bad\njob x hls fir not_a_number\n").expect("written");
    let out = cli()
        .args(["fleet", &tmp.to_string_lossy()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("spec line 2"), "{stderr}");
    assert!(stderr.contains("not a valid number"), "{stderr}");
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn fleet_without_inputs_is_a_usage_error() {
    let out = cli().args(["fleet"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = cli()
        .args(["fleet", "--jobs", "zero", &repo_path("models/fig1.rtl")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fleet_quarantines_failures_and_stays_deterministic() {
    // models/chaos.fleet mixes clean jobs with a panicking chaos probe
    // and a delta-budget blowout. Keep-going mode must finish the batch,
    // exit 1, and produce byte-identical JSON at any worker count.
    let run = |jobs: &str| {
        let out = cli()
            .args([
                "fleet",
                &repo_path("models/chaos.fleet"),
                "--jobs",
                jobs,
                "--json",
            ])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(1), "{out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("2 job(s) quarantined"), "{stderr}");
        out.stdout
    };
    let one = run("1");
    let four = run("4");
    assert_eq!(one, four, "quarantine JSON must not depend on worker count");
    let text = String::from_utf8_lossy(&one);
    assert!(text.contains("\"failed_jobs\": 2"), "{text}");
    assert!(text.contains("\"status\": \"panicked\""), "{text}");
    assert!(
        text.contains("\"status\": \"delta-budget-exceeded\""),
        "{text}"
    );
    // Clean jobs keep their results: the stimulated fig1 ends at 42.
    assert!(text.contains("\"name\": \"stim\""), "{text}");
    assert!(text.contains("\"value\": \"42\""), "{text}");
}

#[test]
fn fleet_fail_fast_aborts_on_the_panicking_job() {
    let out = cli()
        .args([
            "fleet",
            &repo_path("models/chaos.fleet"),
            "--jobs",
            "4",
            "--fail-fast",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("job `boom` panicked"), "{stderr}");
}

#[test]
fn faults_campaign_is_seed_reproducible() {
    let run = |jobs: &str| {
        let out = cli()
            .args([
                "faults",
                &repo_path("models/fig1.rtl"),
                "--seed",
                "7",
                "--jobs",
                jobs,
                "--json",
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        out.stdout
    };
    let a = run("1");
    let b = run("4");
    assert_eq!(a, b, "same seed must give a byte-identical report");
    let text = String::from_utf8_lossy(&a);
    assert!(text.contains("\"seed\": 7"), "{text}");
    assert!(text.contains("\"injected_faults\": 9"), "{text}");
}

#[test]
fn faults_detects_every_injected_dual_driver_conflict() {
    let out = cli()
        .args([
            "faults",
            &repo_path("models/fig1.rtl"),
            "--classes",
            "stuck,drivers",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 detected (100%)"), "{stdout}");
    assert!(stdout.contains("drivers  2/2 detected"), "{stdout}");
    assert!(stdout.contains("0 silent"), "{stdout}");
    // Conflicts are localized to step AND phase.
    assert!(stdout.contains("in step 5 phase rb"), "{stdout}");
}

#[test]
fn run_backend_compiled_matches_interpreted_byte_for_byte() {
    let run = |extra: &[&str]| {
        let mut cmd = cli();
        cmd.args(["run", &repo_path("models/fig1.rtl"), "--trace"])
            .args(extra);
        let out = cmd.output().expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        out.stdout
    };
    let interp = run(&["--backend", "interpreted"]);
    let compiled = run(&["--backend", "compiled"]);
    assert_eq!(interp, run(&[]), "interpreted is the default");
    assert_eq!(interp, compiled, "backends must print identical reports");
    // An unknown backend is a usage error.
    let out = cli()
        .args(["run", &repo_path("models/fig1.rtl"), "--backend", "jit"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fleet_backend_compiled_json_matches_interpreted() {
    let run = |backend: &str| {
        let out = cli()
            .args([
                "fleet",
                &repo_path("models/demo.fleet"),
                "--jobs",
                "2",
                "--json",
                "--backend",
                backend,
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        out.stdout
    };
    assert_eq!(
        run("interpreted"),
        run("compiled"),
        "fleet --json must not depend on the backend"
    );
}

#[test]
fn faults_backend_compiled_json_matches_interpreted() {
    let run = |backend: &str| {
        let out = cli()
            .args([
                "faults",
                &repo_path("models/fig1.rtl"),
                "--seed",
                "7",
                "--json",
                "--backend",
                backend,
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        out.stdout
    };
    assert_eq!(
        run("interpreted"),
        run("compiled"),
        "fault campaigns must not depend on the backend"
    );
}

#[test]
fn faults_rejects_unknown_classes() {
    let out = cli()
        .args([
            "faults",
            &repo_path("models/fig1.rtl"),
            "--classes",
            "meteor",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown fault class `meteor`"), "{stderr}");
}

// ------------------------------------------------ guarded/memory corpus goldens

/// `models/guarded.rtl` (mutually exclusive guards, a conjunction and a
/// negated guard over an array): the run report and the fully-checked
/// fault campaign are pinned byte-for-byte, on both backends.
#[test]
fn guarded_corpus_model_matches_goldens() {
    let run_golden = std::fs::read_to_string(repo_path("tests/golden/run_guarded.json"))
        .expect("golden present");
    let faults_golden = std::fs::read_to_string(repo_path("tests/golden/faults_guarded.json"))
        .expect("golden present");
    for backend in ["interpreted", "compiled"] {
        let out = cli()
            .args([
                "run",
                &repo_path("models/guarded.rtl"),
                "--json",
                "--backend",
                backend,
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            run_golden,
            "run report drifted on backend {backend}"
        );
        let out = cli()
            .args([
                "faults",
                &repo_path("models/guarded.rtl"),
                "--json",
                "--checkers",
                "all",
                "--backend",
                backend,
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            faults_golden,
            "faults report drifted on backend {backend}"
        );
    }
    // The guards class is exercised and, with the checkers armed, the
    // campaign leaves no silent corruption.
    assert!(
        faults_golden.contains("\"class\": \"guards\""),
        "{faults_golden}"
    );
    assert!(faults_golden.contains("\"silent\": 0"), "{faults_golden}");
}

/// `models/memory.rtl` (constant- and register-indexed memory words):
/// same pinning as the guarded model, plus the final-state spot checks
/// of the indexed read-modify-write walk.
#[test]
fn memory_corpus_model_matches_goldens() {
    let run_golden =
        std::fs::read_to_string(repo_path("tests/golden/run_memory.json")).expect("golden present");
    let faults_golden = std::fs::read_to_string(repo_path("tests/golden/faults_memory.json"))
        .expect("golden present");
    for backend in ["interpreted", "compiled"] {
        let out = cli()
            .args([
                "run",
                &repo_path("models/memory.rtl"),
                "--json",
                "--backend",
                backend,
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            run_golden,
            "run report drifted on backend {backend}"
        );
        let out = cli()
            .args([
                "faults",
                &repo_path("models/memory.rtl"),
                "--json",
                "--checkers",
                "all",
                "--backend",
                backend,
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            faults_golden,
            "faults report drifted on backend {backend}"
        );
    }
    // The indexed walk: M[0]=5 loads, increments, spills to M[IDX]=M[2],
    // doubles through the read-back, and the guarded spill hits M[3].
    assert!(
        run_golden.contains(r#"{"name": "ACC", "value": "12"}"#),
        "{run_golden}"
    );
    assert!(
        run_golden.contains(r#"{"name": "M[2]", "value": "6"}"#),
        "{run_golden}"
    );
    assert!(
        run_golden.contains(r#"{"name": "M[3]", "value": "12"}"#),
        "{run_golden}"
    );
}
