//! Experiment E7 (§2.7 formal semantics): the bidirectional tuple ↔
//! process mapping. The bench measures expansion, reconstruction and the
//! full round trip over growing models; the report confirms identity.

use clockless_bench::dense_model;
use clockless_bench::harness::Harness;
use clockless_core::TransferSpec;
use clockless_verify::{merge_partials, reconstruct_partials, roundtrip_check};

fn report() {
    eprintln!("--- E7: tuple <-> process round trip ---");
    eprintln!(
        "{:>8} {:>10} {:>10} {:>10}",
        "tuples", "processes", "partials", "roundtrip"
    );
    for width in [2usize, 8, 32] {
        let model = dense_model(width, 8);
        let specs: Vec<TransferSpec> = model.tuples().iter().flat_map(|t| t.expand()).collect();
        let partials = reconstruct_partials(&specs).expect("reconstructs");
        let merged = merge_partials(partials.clone(), &model).expect("merges");
        let identity = roundtrip_check(&model).is_ok();
        eprintln!(
            "{:>8} {:>10} {:>10} {:>10}",
            model.tuples().len(),
            specs.len(),
            partials.len(),
            identity
        );
        assert!(identity);
        assert_eq!(merged.len(), model.tuples().len());
    }
}

fn main() {
    report();
    let mut h = Harness::new();
    {
        let mut g = h.group("tuple_roundtrip");

        for width in [2usize, 8, 32] {
            let model = dense_model(width, 8);
            let specs: Vec<TransferSpec> = model.tuples().iter().flat_map(|t| t.expand()).collect();

            g.bench(format!("expand/{width}"), || {
                model
                    .tuples()
                    .iter()
                    .flat_map(|t| t.expand())
                    .collect::<Vec<_>>()
            });

            g.bench(format!("reconstruct/{width}"), || {
                reconstruct_partials(&specs).expect("reconstructs")
            });

            g.bench(format!("full_roundtrip/{width}"), || {
                roundtrip_check(&model).expect("identity")
            });

            // The full source-level loop: model -> VHDL text -> model.
            g.bench(format!("vhdl_roundtrip/{width}"), || {
                let text = clockless_core::vhdl::emit_vhdl(&model).expect("emits");
                clockless_verify::model_from_vhdl(&text).expect("imports")
            });
        }
    }
    h.print_table();
}
