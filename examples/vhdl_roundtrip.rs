//! VHDL in, VHDL out: the paper's own artifact, round-tripped.
//!
//! Emits a model as VHDL source in the paper's subset (§2 package and
//! component entities, §2.7 architecture), parses that source back into a
//! model, proves both models identical, simulates the re-imported one,
//! and hands the design off as synthesizable VHDL-1993 (§4).
//!
//! Run with: `cargo run --example vhdl_roundtrip`

use clockless::clocked::{emit_clocked_vhdl, ClockScheme, ClockedDesign};
use clockless::core::model::fig1_model;
use clockless::core::vhdl::emit_vhdl;
use clockless::core::{RtSimulation, Value};
use clockless::verify::model_from_vhdl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = fig1_model(3, 4);

    // 1. Emit the §2.7 "concrete register transfer model" as VHDL.
    let vhdl = emit_vhdl(&model)?;
    println!("--- emitted VHDL (paper subset), §2.7 architecture excerpt ---");
    let arch_start = vhdl
        .find("entity fig1_example is")
        .expect("architecture present");
    for line in vhdl[arch_start..].lines().take(24) {
        println!("{line}");
    }
    println!("  ... ({} lines total)\n", vhdl.lines().count());

    // 2. Parse it back and prove the round trip is the identity.
    let imported = model_from_vhdl(&vhdl)?;
    assert_eq!(imported.registers(), model.registers());
    assert_eq!(imported.buses(), model.buses());
    assert_eq!(imported.modules(), model.modules());
    assert_eq!(imported.tuples(), model.tuples());
    println!("parse(emit(model)) == model: resources, timings and tuples identical.");

    // 3. The re-imported model simulates to the same result, delta for
    //    delta.
    let mut original = RtSimulation::new(&model)?;
    let mut roundtripped = RtSimulation::new(&imported)?;
    let a = original.run_to_completion()?;
    let b = roundtripped.run_to_completion()?;
    assert_eq!(a.registers, b.registers);
    assert_eq!(a.stats, b.stats);
    assert_eq!(b.register("R1"), Some(Value::Num(7)));
    println!(
        "simulation identical: R1 = {}, {} delta cycles both ways.\n",
        b.register("R1").expect("register exists"),
        b.stats.delta_cycles
    );

    // 4. The §4 hand-off: the same design as synthesizable clocked VHDL.
    let design = ClockedDesign::translate(&model, ClockScheme::default())?;
    let clocked = emit_clocked_vhdl(&design)?;
    println!("--- synthesizable hand-off (§4), excerpt ---");
    for line in clocked.lines().take(14) {
        println!("{line}");
    }
    println!(
        "  ... ({} lines total, {} control signals)",
        clocked.lines().count(),
        design.tables().control_signal_count()
    );
    println!("\nOK: the paper's VHDL subset is a first-class input and output format.");
    Ok(())
}
