//! The microcode-to-transfers translator.
//!
//! §3: "We have extracted the register transfers from the microcode …
//! This could be easily automated. We have written a C program, that
//! translates the microcode tables given in \[10\] to transfer process
//! instances." This module is that program: it decodes every
//! microinstruction against the code maps, groups the operand routes and
//! operation selections of each module per cycle, matches each `Result`
//! route to the initiation `latency` cycles earlier, and produces the
//! transfer tuples of the clock-free RT model.

use std::collections::HashMap;
use std::fmt;

use clockless_core::{Op, RtModel, Step, TransferTuple};

use crate::microcode::{MicroInstruction, MicroOp, MicrocodeError, OpcodeMaps, OperandPort};

/// Errors from translating a microprogram.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TranslateMicrocodeError {
    /// Decoding failed.
    Decode(MicrocodeError),
    /// A module's operand port was routed twice in one cycle.
    DuplicateOperand {
        /// The module.
        module: String,
        /// The cycle.
        step: Step,
    },
    /// A module got two operation selections in one cycle.
    DuplicateOperation {
        /// The module.
        module: String,
        /// The cycle.
        step: Step,
    },
    /// A module's result was routed twice in one cycle.
    DuplicateResult {
        /// The module.
        module: String,
        /// The cycle.
        step: Step,
    },
    /// A result route had no matching initiation `latency` cycles
    /// earlier.
    OrphanResult {
        /// The module.
        module: String,
        /// The cycle of the orphan result route.
        step: Step,
    },
    /// An instruction referenced a module the model does not declare.
    UnknownModule(String),
    /// A single-operation module was given a different operation.
    WrongOperation {
        /// The module.
        module: String,
        /// The selected operation.
        op: Op,
    },
}

impl fmt::Display for TranslateMicrocodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TranslateMicrocodeError::*;
        match self {
            Decode(e) => write!(f, "{e}"),
            DuplicateOperand { module, step } => {
                write!(f, "module `{module}` operand routed twice in cycle {step}")
            }
            DuplicateOperation { module, step } => {
                write!(
                    f,
                    "module `{module}` operation selected twice in cycle {step}"
                )
            }
            DuplicateResult { module, step } => {
                write!(f, "module `{module}` result routed twice in cycle {step}")
            }
            OrphanResult { module, step } => write!(
                f,
                "result of `{module}` routed in cycle {step} without a matching initiation"
            ),
            UnknownModule(m) => write!(f, "microcode references unknown module `{m}`"),
            WrongOperation { module, op } => write!(
                f,
                "single-operation module `{module}` cannot perform `{op}`"
            ),
        }
    }
}

impl std::error::Error for TranslateMicrocodeError {}

impl From<MicrocodeError> for TranslateMicrocodeError {
    fn from(e: MicrocodeError) -> Self {
        TranslateMicrocodeError::Decode(e)
    }
}

#[derive(Default)]
struct Initiation {
    src_a: Option<(String, String)>, // (register, bus)
    src_b: Option<(String, String)>,
    op: Option<Op>,
}

/// Translates a microprogram into transfer tuples against the given chip
/// model (used for module latencies and operation-port requirements).
///
/// # Errors
///
/// Any [`TranslateMicrocodeError`] describing the first inconsistency.
pub fn translate(
    program: &[MicroInstruction],
    maps: &OpcodeMaps,
    model: &RtModel,
) -> Result<Vec<TransferTuple>, TranslateMicrocodeError> {
    // Phase 1: decode and bucket.
    let mut inits: HashMap<(String, Step), Initiation> = HashMap::new();
    let mut results: HashMap<(String, Step), (String, String)> = HashMap::new(); // (bus, dst)
    let mut init_order: Vec<(String, Step)> = Vec::new();

    for instr in program {
        for op in instr.decode(maps)? {
            match op {
                MicroOp::Operand {
                    src,
                    bus,
                    module,
                    port,
                } => {
                    let key = (module.clone(), instr.step);
                    if !inits.contains_key(&key) {
                        init_order.push(key.clone());
                    }
                    let entry = inits.entry(key).or_default();
                    let slot = match port {
                        OperandPort::In1 => &mut entry.src_a,
                        OperandPort::In2 => &mut entry.src_b,
                    };
                    if slot.is_some() {
                        return Err(TranslateMicrocodeError::DuplicateOperand {
                            module,
                            step: instr.step,
                        });
                    }
                    *slot = Some((src, bus));
                }
                MicroOp::Operation { module, op } => {
                    let key = (module.clone(), instr.step);
                    if !inits.contains_key(&key) {
                        init_order.push(key.clone());
                    }
                    let entry = inits.entry(key).or_default();
                    if entry.op.is_some() {
                        return Err(TranslateMicrocodeError::DuplicateOperation {
                            module,
                            step: instr.step,
                        });
                    }
                    entry.op = Some(op);
                }
                MicroOp::Result { module, bus, dst } => {
                    let key = (module.clone(), instr.step);
                    if results.insert(key, (bus, dst)).is_some() {
                        return Err(TranslateMicrocodeError::DuplicateResult {
                            module,
                            step: instr.step,
                        });
                    }
                }
            }
        }
    }

    // Phase 2: match results to initiations and build tuples.
    let mut tuples = Vec::new();
    let mut consumed: Vec<(String, Step)> = Vec::new();
    for key in &init_order {
        let (module, step) = key;
        let init = &inits[key];
        let mid = model
            .module_by_name(module)
            .ok_or_else(|| TranslateMicrocodeError::UnknownModule(module.clone()))?;
        let decl = &model.modules()[mid.0 as usize];
        let mut tuple = TransferTuple::new(*step, module.clone());
        if let Some((reg, bus)) = &init.src_a {
            tuple = tuple.src_a(reg.clone(), bus.clone());
        }
        if let Some((reg, bus)) = &init.src_b {
            tuple = tuple.src_b(reg.clone(), bus.clone());
        }
        // Operation selection: multi-op modules carry it on the tuple;
        // single-op modules must agree with their only operation.
        match init.op {
            Some(op) if decl.needs_op_port() => tuple = tuple.op(op),
            Some(op) if decl.ops[0] != op => {
                return Err(TranslateMicrocodeError::WrongOperation {
                    module: module.clone(),
                    op,
                });
            }
            Some(_) | None => {}
        }
        let write_step = step + decl.timing.latency();
        if let Some((bus, dst)) = results.get(&(module.clone(), write_step)) {
            tuple = tuple.write(write_step, bus.clone(), dst.clone());
            consumed.push((module.clone(), write_step));
        }
        tuples.push(tuple);
    }

    // Orphan results: routed but never produced.
    for (module, step) in results.keys() {
        if !consumed.contains(&(module.clone(), *step)) {
            return Err(TranslateMicrocodeError::OrphanResult {
                module: module.clone(),
                step: *step,
            });
        }
    }

    Ok(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microcode::{Field, MicroOpTemplate, RegRef};
    use crate::resources::chip_model;
    use clockless_core::Op;

    fn simple_maps() -> OpcodeMaps {
        let mut maps = OpcodeMaps::default();
        maps.opc1.insert(0, vec![]);
        maps.opc1.insert(
            1,
            vec![
                MicroOpTemplate::Operand {
                    src: RegRef::indexed("M", Field::Mr),
                    bus: "BusA".into(),
                    module: "MULT".into(),
                    port: OperandPort::In1,
                },
                MicroOpTemplate::Operand {
                    src: RegRef::indexed("M", Field::R1),
                    bus: "BusB".into(),
                    module: "MULT".into(),
                    port: OperandPort::In2,
                },
            ],
        );
        maps.opc1.insert(
            2,
            vec![MicroOpTemplate::Result {
                module: "MULT".into(),
                bus: "W".into(),
                dst: RegRef::named("X"),
            }],
        );
        maps.opc2.insert(0, vec![]);
        maps.opc2.insert(
            1,
            vec![MicroOpTemplate::Operation {
                module: "MULT".into(),
                op: Op::MulFx(16),
            }],
        );
        maps
    }

    fn instr(addr: u32, step: Step, opc1: u8, opc2: u8, mr: u8, r1: u8) -> MicroInstruction {
        MicroInstruction {
            addr,
            step,
            opc1,
            opc2,
            j: 0,
            r1,
            mr,
        }
    }

    #[test]
    fn initiation_and_result_merge_into_one_tuple() {
        let model = chip_model(5, &[]);
        let program = [
            instr(0, 1, 1, 1, 0, 1), // MULT <- M0 * M1
            instr(1, 3, 2, 0, 0, 0), // X <- MULT (latency 2)
        ];
        let tuples = translate(&program, &simple_maps(), &model).unwrap();
        assert_eq!(tuples.len(), 1);
        let t = &tuples[0];
        assert_eq!(t.to_string(), "(M0,BusA,M1,BusB,1,MULT,3,W,X)");
        // Single-op module: the selector is folded away.
        assert!(t.op.is_none());
    }

    #[test]
    fn orphan_result_detected() {
        let model = chip_model(5, &[]);
        let program = [instr(0, 3, 2, 0, 0, 0)];
        assert_eq!(
            translate(&program, &simple_maps(), &model),
            Err(TranslateMicrocodeError::OrphanResult {
                module: "MULT".into(),
                step: 3
            })
        );
    }

    #[test]
    fn mismatched_result_cycle_is_orphan() {
        let model = chip_model(5, &[]);
        // Result routed one cycle early (latency is 2).
        let program = [instr(0, 1, 1, 1, 0, 1), instr(1, 2, 2, 0, 0, 0)];
        assert!(matches!(
            translate(&program, &simple_maps(), &model),
            Err(TranslateMicrocodeError::OrphanResult { .. })
        ));
    }

    #[test]
    fn duplicate_operand_detected() {
        let model = chip_model(5, &[]);
        let mut maps = simple_maps();
        maps.opc1.insert(
            3,
            vec![MicroOpTemplate::Operand {
                src: RegRef::named("X"),
                bus: "LZA".into(),
                module: "MULT".into(),
                port: OperandPort::In1,
            }],
        );
        // Two instructions in the same cycle both route MULT.In1.
        let program = [instr(0, 1, 1, 1, 0, 1), instr(1, 1, 3, 0, 0, 0)];
        assert_eq!(
            translate(&program, &maps, &model),
            Err(TranslateMicrocodeError::DuplicateOperand {
                module: "MULT".into(),
                step: 1
            })
        );
    }

    #[test]
    fn wrong_operation_on_single_op_module() {
        let model = chip_model(5, &[]);
        let mut maps = simple_maps();
        maps.opc2.insert(
            9,
            vec![MicroOpTemplate::Operation {
                module: "MULT".into(),
                op: Op::Add,
            }],
        );
        let program = [instr(0, 1, 1, 9, 0, 1)];
        assert_eq!(
            translate(&program, &maps, &model),
            Err(TranslateMicrocodeError::WrongOperation {
                module: "MULT".into(),
                op: Op::Add
            })
        );
    }
}
