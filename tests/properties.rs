//! Property-based tests over the core data structures and invariants.
//!
//! The generators are hand-rolled on a deterministic splitmix64 stream so
//! the suite runs with zero external crates (tier-1 is offline). Every
//! failure message includes the case seed, which reproduces the case when
//! fed back through the same generator. The `slow-tests` feature raises
//! the iteration counts; the default counts keep `cargo test -q` quick.

use std::collections::HashMap;

use clockless::core::prelude::*;
use clockless::core::{resolve, Endpoint, TransferTuple};
use clockless::hls::{random_dag, synthesize, ResourceClass, ResourceSet};
use clockless::verify::{concrete_check, roundtrip_check, verify_synthesis};

/// Cases per cheap property.
const CASES: u64 = if cfg!(feature = "slow-tests") {
    512
} else {
    64
};
/// Cases per property that runs synthesis + simulation end to end.
const HEAVY_CASES: u64 = if cfg!(feature = "slow-tests") { 32 } else { 8 };

/// Deterministic splitmix64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `lo..hi` (half-open, `hi > lo`).
    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn arb_value(rng: &mut Rng) -> Value {
    match rng.next_u64() % 3 {
        0 => Value::Disc,
        1 => Value::Illegal,
        _ => Value::Num(rng.next_u64() as i64),
    }
}

/// Every `Op` variant (with a sampling of `MulFx` shifts).
fn all_ops() -> Vec<Op> {
    let mut ops = vec![
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Min,
        Op::Max,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Shr,
        Op::Shl,
        Op::PassA,
        Op::PassB,
        Op::Neg,
        Op::Abs,
    ];
    ops.extend((0u8..32).map(Op::MulFx));
    ops
}

fn arb_values(rng: &mut Rng, max_len: usize) -> Vec<Value> {
    let n = rng.range(0, max_len + 1);
    (0..n).map(|_| arb_value(rng)).collect()
}

// ---- Resolution ---------------------------------------------------------

/// The resolution function is order-independent (any permutation of
/// drivers resolves identically) — essential, since VHDL leaves the
/// driver order unspecified.
#[test]
fn resolution_is_permutation_invariant() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let mut drivers = arb_values(&mut rng, 5);
        let original = resolve(&drivers);
        // Deterministic shuffle from the stream.
        for i in (1..drivers.len()).rev() {
            let j = rng.range(0, i + 1);
            drivers.swap(i, j);
        }
        assert_eq!(resolve(&drivers), original, "case {case}");
    }
}

/// Resolution yields a number only when exactly one driver is a
/// number and none is ILLEGAL.
#[test]
fn resolution_numeric_iff_unique_driver() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let drivers = arb_values(&mut rng, 5);
        let nums = drivers.iter().filter(|v| v.is_num()).count();
        let illegal = drivers.iter().any(|v| v.is_illegal());
        let r = resolve(&drivers);
        match (illegal, nums) {
            (true, _) => assert_eq!(r, Value::Illegal, "case {case}"),
            (false, 0) => assert_eq!(r, Value::Disc, "case {case}"),
            (false, 1) => assert!(r.is_num(), "case {case}"),
            (false, _) => assert_eq!(r, Value::Illegal, "case {case}"),
        }
    }
}

/// Resolution is associative under nesting: resolving a sublist first
/// and splicing the result in gives the same outcome. (This is what
/// lets buses and ports be resolved independently.)
#[test]
fn resolution_nests() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let a = arb_values(&mut rng, 3);
        let b = arb_values(&mut rng, 3);
        let flat: Vec<Value> = a.iter().chain(b.iter()).copied().collect();
        let nested = {
            let ra = resolve(&a);
            let mut v = vec![ra];
            v.extend(b.iter().copied());
            resolve(&v)
        };
        assert_eq!(resolve(&flat), nested, "case {case}");
    }
}

// ---- Operations ---------------------------------------------------------

/// ILLEGAL is absorbing for every operation.
#[test]
fn illegal_absorbs() {
    for op in all_ops() {
        for case in 0..CASES / 8 {
            let mut rng = Rng::new(case);
            let v = arb_value(&mut rng);
            assert_eq!(op.apply(Value::Illegal, v), Value::Illegal);
            assert_eq!(op.apply(v, Value::Illegal), Value::Illegal);
        }
    }
}

/// All-DISC operands always yield DISC ("no operation this step").
#[test]
fn disc_in_disc_out() {
    for op in all_ops() {
        assert_eq!(op.apply(Value::Disc, Value::Disc), Value::Disc, "{op:?}");
    }
}

/// Op mnemonics round-trip through parsing.
#[test]
fn op_mnemonic_roundtrip() {
    for op in all_ops() {
        assert_eq!(op.mnemonic().parse::<Op>().unwrap(), op);
    }
}

/// Value encoding round-trips for non-negative payloads.
#[test]
fn value_encoding_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let n = rng.range_i64(0, i64::MAX);
        let v = Value::Num(n);
        assert_eq!(Value::from_encoded(v.to_encoded().unwrap()), v, "n = {n}");
    }
}

// ---- Transfer tuples ----------------------------------------------------

/// Transfer tuples round-trip through the paper's textual notation.
#[test]
fn tuple_text_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let read_step = rng.range_i64(1, 50) as u32;
        let latency = rng.range_i64(0, 3) as u32;
        let has_b = rng.bool();
        let has_write = rng.bool();
        let mut t = TransferTuple::new(read_step, "M").src_a("Ra", "Ba");
        if has_b {
            t = t.src_b("Rb", "Bb");
        }
        if has_write {
            t = t.write(read_step + latency, "Bw", "Rw");
        }
        let text = t.to_string();
        assert_eq!(text.parse::<TransferTuple>().unwrap(), t, "case {case}");
    }
}

/// Expansion emits specs in strictly increasing phase order per step,
/// and each sink is driven exactly once by the tuple.
#[test]
fn expansion_shape() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let read_step = rng.range_i64(1, 20) as u32;
        let latency = rng.range_i64(0, 3) as u32;
        let t = TransferTuple::new(read_step, "M")
            .src_a("Ra", "Ba")
            .src_b("Rb", "Bb")
            .write(read_step + latency, "Bw", "Rw");
        let specs = t.expand();
        assert_eq!(specs.len(), 6);
        // Sinks are unique per (endpoint, step, phase).
        let mut sinks: Vec<(String, u32)> = specs
            .iter()
            .map(|s| (format!("{}", s.dst), s.step))
            .collect();
        sinks.sort();
        let before = sinks.len();
        sinks.dedup();
        // Bw and Ba may coincide as strings only if names equal — they
        // don't here.
        assert_eq!(sinks.len(), before);
        // Reads at the read step, writes at the write step.
        for s in &specs {
            match &s.dst {
                Endpoint::Bus(b) if b == "Bw" => assert_eq!(s.step, read_step + latency),
                Endpoint::Bus(_) => assert_eq!(s.step, read_step),
                Endpoint::RegIn(_) => assert_eq!(s.step, read_step + latency),
                _ => assert_eq!(s.step, read_step),
            }
        }
    }
}

// ---- End-to-end synthesis ----------------------------------------------

/// The flagship end-to-end property: any random DAG synthesized under
/// random resource budgets simulates to the dataflow evaluator's
/// values, passes the automatic prover, and its tuples round-trip
/// through the §2.7 process semantics.
#[test]
fn synthesized_random_dags_are_correct() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0xE2E_0000 + case);
        let seed = rng.next_u64();
        let nodes = rng.range(4, 28);
        let n_inputs = rng.range(1, 5);
        let muls = rng.range(1, 3);
        let alus = rng.range(1, 3);
        let input_vals: Vec<i64> = (0..5).map(|_| rng.range_i64(-1000, 1000)).collect();

        let g = random_dag(seed, nodes, n_inputs);
        let names: Vec<String> = (0..n_inputs).map(|i| format!("in{i}")).collect();
        let inputs: HashMap<&str, i64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), input_vals[i]))
            .collect();
        let resources = ResourceSet::new([
            ResourceClass::new(
                "MUL",
                [Op::Mul],
                ModuleTiming::Pipelined { latency: 2 },
                muls,
            ),
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub, Op::Min, Op::Max, Op::Xor],
                ModuleTiming::Pipelined { latency: 1 },
                alus,
            ),
        ]);
        let syn = synthesize(&g, &resources, &inputs).expect("synthesis succeeds");
        assert!(
            concrete_check(&g, &syn, &inputs).expect("simulates"),
            "case {case}"
        );
        let report = verify_synthesis(&g, &syn, 8).expect("verifier runs");
        assert!(report.passed(), "case {case}: {report}");
        roundtrip_check(&syn.model).expect("roundtrip");
    }
}

/// Symbolic simulation agrees with concrete simulation on random
/// models (soundness of the abstract interpreter).
#[test]
fn symbolic_matches_concrete() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0x51D_0000 + case);
        let r1 = rng.range_i64(-1000, 1000);
        let r2 = rng.range_i64(-1000, 1000);
        let model = fig1_model(r1, r2);
        let out = clockless::verify::symbolic_run(&model, &HashMap::new()).unwrap();
        let mut sim = RtSimulation::new(&model).unwrap();
        let summary = sim.run_to_completion().unwrap();
        let expected = summary.register("R1").unwrap().num().unwrap();
        assert_eq!(
            &*out["R1"],
            &clockless::verify::Expr::Const(expected),
            "r1 = {r1}, r2 = {r2}"
        );
    }
}

/// Source-level round trip: any synthesized model emits as the
/// paper's VHDL subset and reads back identically.
#[test]
fn vhdl_roundtrip_on_random_models() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0x0D1_0000 + case);
        let seed = rng.next_u64();
        let nodes = rng.range(3, 16);
        let g = random_dag(seed, nodes, 3);
        let names: Vec<String> = (0..3).map(|i| format!("in{i}")).collect();
        let inputs: HashMap<&str, i64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as i64 + 1))
            .collect();
        let resources = ResourceSet::new([
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 2),
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub, Op::Min, Op::Max],
                ModuleTiming::Pipelined { latency: 1 },
                2,
            ),
        ]);
        // Random DAGs may contain Xor (no VHDL expression in the subset):
        // skip those seeds.
        if g.nodes().iter().any(|n| n.op == Op::Xor) {
            continue;
        }
        let syn = synthesize(&g, &resources, &inputs).expect("synthesis");
        let text = clockless::core::emit_vhdl(&syn.model).expect("emits");
        let back = clockless::verify::model_from_vhdl(&text).expect("imports");
        assert_eq!(back.registers(), syn.model.registers());
        assert_eq!(back.modules(), syn.model.modules());
        let mut a = back.tuples().to_vec();
        let mut b = syn.model.tuples().to_vec();
        let key = |t: &clockless::core::TransferTuple| (t.module.clone(), t.read_step);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b, "case {case}");
    }
}

/// The kernel is deterministic: identical models produce identical
/// statistics and results on every run.
#[test]
fn simulation_is_deterministic() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0xDE7_0000 + case);
        let seed = rng.next_u64();
        let nodes = rng.range(3, 20);
        let g = random_dag(seed, nodes, 3);
        let names: Vec<String> = (0..3).map(|i| format!("in{i}")).collect();
        let inputs: HashMap<&str, i64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as i64 * 3 - 1))
            .collect();
        let resources = ResourceSet::new([
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 1),
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub, Op::Min, Op::Max, Op::Xor],
                ModuleTiming::Pipelined { latency: 1 },
                1,
            ),
        ]);
        let syn = synthesize(&g, &resources, &inputs).expect("synthesis");
        let mut s1 = RtSimulation::new(&syn.model).expect("elaborates");
        let mut s2 = RtSimulation::new(&syn.model).expect("elaborates");
        let r1 = s1.run_to_completion().expect("runs");
        let r2 = s2.run_to_completion().expect("runs");
        assert_eq!(r1.stats, r2.stats, "case {case}");
        assert_eq!(r1.registers, r2.registers, "case {case}");
    }
}

// ---- Normalization soundness -------------------------------------------

/// A small random expression generator over three variables.
fn arb_expr(rng: &mut Rng, depth: usize) -> std::rc::Rc<clockless::verify::Expr> {
    use clockless::verify::Expr;
    if depth == 0 || rng.next_u64().is_multiple_of(3) {
        return if rng.bool() {
            Expr::constant(rng.range_i64(-50, 50))
        } else {
            Expr::var(["x", "y", "z"][rng.range(0, 3)])
        };
    }
    let op = [Op::Add, Op::Sub, Op::Mul, Op::Min, Op::Max][rng.range(0, 5)];
    let a = arb_expr(rng, depth - 1);
    let b = arb_expr(rng, depth - 1);
    Expr::apply(op, vec![a, b]).expect("no illegal constants")
}

/// Recursively commutes every Add/Mul — an equivalence-preserving rewrite.
fn commuted(e: &std::rc::Rc<clockless::verify::Expr>) -> std::rc::Rc<clockless::verify::Expr> {
    use clockless::verify::Expr;
    match &**e {
        Expr::Apply(op, args) if args.len() == 2 => {
            let a = commuted(&args[0]);
            let b = commuted(&args[1]);
            let swapped = matches!(op, Op::Add | Op::Mul);
            let args = if swapped { vec![b, a] } else { vec![a, b] };
            Expr::apply(*op, args).expect("no illegal constants")
        }
        Expr::Apply(op, args) => {
            let args = args.iter().map(commuted).collect();
            Expr::apply(*op, args).expect("no illegal constants")
        }
        _ => e.clone(),
    }
}

/// Commuting Add/Mul everywhere preserves the normal form — except
/// inside opaque operations (Min/Max), where commuted *children*
/// still normalize but a commuted opaque node itself may not compare
/// equal; so the property is checked semantically as well.
#[test]
fn normalization_is_sound() {
    use clockless::verify::equivalent;
    for case in 0..CASES {
        let mut rng = Rng::new(0x40B_0000 + case);
        let e = arb_expr(&mut rng, 4);
        let xs: Vec<i64> = (0..3).map(|_| rng.range_i64(-100, 100)).collect();
        let c = commuted(&e);
        let env: HashMap<String, i64> = ["x", "y", "z"]
            .iter()
            .zip(&xs)
            .map(|(n, v)| (n.to_string(), *v))
            .collect();
        // Semantic agreement always holds for the rewrite.
        let ev_e = e.eval(&env);
        let ev_c = c.eval(&env);
        assert_eq!(ev_e.clone(), ev_c, "case {case}");
        // And if the prover says "equivalent", evaluation must agree —
        // soundness of the normal form.
        if equivalent(&e, &c) {
            assert_eq!(ev_e, c.eval(&env), "case {case}");
        }
    }
}

/// The ring fragment (no opaque ops) normalizes commutations away
/// completely.
#[test]
fn ring_fragment_proves_commutativity() {
    use clockless::verify::{equivalent, Expr};
    for case in 0..CASES {
        let mut rng = Rng::new(0x416_0000 + case);
        let a = rng.range_i64(-20, 20);
        let b = rng.range_i64(-20, 20);
        let c = rng.range_i64(-20, 20);
        let x = Expr::var("x");
        let y = Expr::var("y");
        // (a·x + b·y)·(x + c) vs its fully commuted form.
        let e1 = Expr::apply(
            Op::Mul,
            vec![
                Expr::apply(
                    Op::Add,
                    vec![
                        Expr::apply(Op::Mul, vec![Expr::constant(a), x.clone()]).unwrap(),
                        Expr::apply(Op::Mul, vec![Expr::constant(b), y.clone()]).unwrap(),
                    ],
                )
                .unwrap(),
                Expr::apply(Op::Add, vec![x.clone(), Expr::constant(c)]).unwrap(),
            ],
        )
        .unwrap();
        let e2 = Expr::apply(
            Op::Mul,
            vec![
                Expr::apply(Op::Add, vec![Expr::constant(c), x.clone()]).unwrap(),
                Expr::apply(
                    Op::Add,
                    vec![
                        Expr::apply(Op::Mul, vec![y, Expr::constant(b)]).unwrap(),
                        Expr::apply(Op::Mul, vec![x, Expr::constant(a)]).unwrap(),
                    ],
                )
                .unwrap(),
            ],
        )
        .unwrap();
        assert!(equivalent(&e1, &e2), "a = {a}, b = {b}, c = {c}");
    }
}

/// Transcript rendering and model statistics never fail on random
/// synthesized models, and the statistics satisfy their invariants.
#[test]
fn transcript_and_stats_total_on_random_models() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0x57A_0000 + case);
        let seed = rng.next_u64();
        let nodes = rng.range(3, 16);
        let g = random_dag(seed, nodes, 3);
        let names: Vec<String> = (0..3).map(|i| format!("in{i}")).collect();
        let inputs: HashMap<&str, i64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as i64 + 1))
            .collect();
        let resources = ResourceSet::new([
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 2),
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub, Op::Min, Op::Max, Op::Xor],
                ModuleTiming::Pipelined { latency: 1 },
                2,
            ),
        ]);
        let syn = synthesize(&g, &resources, &inputs).expect("synthesis");
        let s = clockless::core::model_stats(&syn.model);
        assert_eq!(s.tuples, syn.model.tuples().len());
        assert!(s.occupancy() >= 0.0 && s.occupancy() <= 1.0);
        assert!(s.peak.1 as u64 >= 1);
        let first_reg = syn.model.registers()[0].name.clone();
        let text = clockless::core::transcript(&syn.model, &[&first_reg]).expect("renders");
        assert!(text.contains("step.ph"));
        // Lints: emitted schedules have no dataflow lints.
        let lints = clockless::verify::lint_model(&syn.model);
        assert!(
            !lints.iter().any(|l| matches!(
                l,
                clockless::verify::Lint::DeadWrite { .. }
                    | clockless::verify::Lint::ReadOfUndefined { .. }
            )),
            "case {case}: {lints:?}"
        );
    }
}
