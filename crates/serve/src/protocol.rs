//! The NDJSON wire protocol: one JSON object per line, in both
//! directions.
//!
//! `docs/PROTOCOL.md` is the normative reference; this module is its
//! implementation. Requests are parsed with the workspace's small
//! hand-rolled JSON reader ([`Json::parse`], re-exported from
//! [`clockless_core::json`] — no external crates), and responses are
//! rendered as single-line envelopes:
//!
//! ```text
//! {"v":1,"id":7,"op":"run","ok":true,"payload":"<JSON document, string-encoded>"}
//! {"v":1,"id":8,"op":"run","ok":false,"error":{"code":"build-failed","message":"…"}}
//! ```
//!
//! The `payload` field is the **byte-exact** document the one-shot CLI
//! would print for the same job (including its trailing newline),
//! JSON-string-encoded so it fits on one line. Unescaping it recovers
//! the CLI output verbatim — that is how `scripts/ci.sh` and the
//! integration tests enforce daemon/CLI byte-identity.

use std::fmt;

/// Protocol version stamped into every response envelope (`"v"`).
pub const PROTOCOL_VERSION: u32 = 1;

pub use clockless_core::json::Json;

/// Stable machine-readable error codes used in error envelopes.
///
/// `docs/PROTOCOL.md` documents when each is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line is not valid JSON.
    BadJson,
    /// The request is valid JSON but structurally wrong (missing or
    /// mistyped fields, bad flag values).
    BadRequest,
    /// The `op` field names no known job kind.
    UnknownOp,
    /// The model failed to parse or elaborate.
    BuildFailed,
    /// The simulation/campaign/batch ran and failed.
    RunFailed,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::BuildFailed => "build-failed",
            ErrorCode::RunFailed => "run-failed",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A job rejection: the code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Stable machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl JobError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> JobError {
        JobError {
            code,
            message: message.into(),
        }
    }
}

/// Renders a success envelope: one line, newline-terminated.
///
/// `payload` is embedded as a JSON string — the byte-exact one-shot CLI
/// document, trailing newline included.
///
/// # Examples
///
/// ```
/// use clockless_serve::protocol::render_ok;
///
/// let line = render_ok(4, "ping", "pong\n");
/// assert_eq!(line, "{\"v\":1,\"id\":4,\"op\":\"ping\",\"ok\":true,\"payload\":\"pong\\n\"}\n");
/// ```
pub fn render_ok(id: u64, op: &str, payload: &str) -> String {
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"op\":\"{}\",\"ok\":true,\"payload\":\"{}\"}}\n",
        clockless_core::json::escape(op),
        clockless_core::json::escape(payload)
    )
}

/// Renders an error envelope: one line, newline-terminated. `id` is
/// `null` when the request line could not be parsed far enough to
/// recover one.
///
/// # Examples
///
/// ```
/// use clockless_serve::protocol::{render_error, ErrorCode};
///
/// let line = render_error(None, None, ErrorCode::BadJson, "line 1: not JSON");
/// assert!(line.starts_with("{\"v\":1,\"id\":null,\"op\":null,\"ok\":false,"));
/// assert!(line.contains("\"code\":\"bad-json\""));
/// ```
pub fn render_error(id: Option<u64>, op: Option<&str>, code: ErrorCode, message: &str) -> String {
    let id = id.map_or("null".to_string(), |n| n.to_string());
    let op = op.map_or("null".to_string(), |o| {
        format!("\"{}\"", clockless_core::json::escape(o))
    });
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"op\":{op},\"ok\":false,\
         \"error\":{{\"code\":\"{code}\",\"message\":\"{}\"}}}}\n",
        clockless_core::json::escape(message)
    )
}

/// A parsed request line: correlation id plus the raw request object
/// (job-specific fields are interpreted by the job implementations).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The job kind (`run`, `faults`, `fleet`, `sweep`, `stats`,
    /// `ping`, `shutdown`).
    pub op: String,
    /// The full request object, for job-specific fields.
    pub body: Json,
}

impl Request {
    /// Parses one NDJSON request line.
    ///
    /// # Errors
    ///
    /// `(recovered id, error)` — the id is `Some` whenever the line was
    /// valid JSON with a numeric `id`, so the error envelope can still
    /// be correlated.
    pub fn parse(line: &str) -> Result<Request, (Option<u64>, JobError)> {
        let body = Json::parse(line).map_err(|e| (None, JobError::new(ErrorCode::BadJson, e)))?;
        let id = body.get("id").and_then(Json::as_u64);
        if !matches!(body, Json::Obj(_)) {
            return Err((
                None,
                JobError::new(ErrorCode::BadRequest, "request must be a JSON object"),
            ));
        }
        let Some(id) = id else {
            return Err((
                None,
                JobError::new(ErrorCode::BadRequest, "missing or non-integer `id` field"),
            ));
        };
        let Some(op) = body.get("op").and_then(Json::as_str) else {
            return Err((
                Some(id),
                JobError::new(ErrorCode::BadRequest, "missing `op` field"),
            ));
        };
        Ok(Request {
            id,
            op: op.to_string(),
            body,
        })
    }
}

/// Decodes the `payload` field out of a response line, recovering the
/// byte-exact one-shot CLI document. Returns `None` for error envelopes
/// and non-responses.
///
/// # Examples
///
/// ```
/// use clockless_serve::protocol::{decode_payload, render_ok};
///
/// let line = render_ok(1, "run", "{\n  \"run\": {}\n}\n");
/// assert_eq!(decode_payload(&line).as_deref(), Some("{\n  \"run\": {}\n}\n"));
/// ```
pub fn decode_payload(line: &str) -> Option<String> {
    let v = Json::parse(line.trim_end()).ok()?;
    if v.get("ok").and_then(Json::as_bool) != Some(true) {
        return None;
    }
    v.get("payload").and_then(Json::as_str).map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The parser itself lives in `clockless_core::json` (with its own
    // tests); here we keep one smoke check that the re-export behaves.
    #[test]
    fn duplicate_keys_keep_the_first() {
        let v = Json::parse(r#"{"k":1,"k":2}"#).expect("parses");
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn request_parse_recovers_id_when_possible() {
        let ok = Request::parse(r#"{"id":9,"op":"ping"}"#).expect("parses");
        assert_eq!((ok.id, ok.op.as_str()), (9, "ping"));

        let (id, err) = Request::parse("not json").expect_err("fails");
        assert_eq!((id, err.code), (None, ErrorCode::BadJson));

        let (id, err) = Request::parse(r#"{"id":4}"#).expect_err("fails");
        assert_eq!((id, err.code), (Some(4), ErrorCode::BadRequest));

        let (id, err) = Request::parse(r#"{"op":"run"}"#).expect_err("fails");
        assert_eq!((id, err.code), (None, ErrorCode::BadRequest));
    }

    #[test]
    fn payload_round_trips_byte_exactly() {
        let doc = "{\n  \"kernel\": {\"delta_cycles\": 43},\n  \"weird\": \"a\\\"b\\nc\"\n}\n";
        let line = render_ok(12, "run", doc);
        assert_eq!(line.matches('\n').count(), 1, "single line: {line:?}");
        assert_eq!(decode_payload(&line).as_deref(), Some(doc));
    }

    #[test]
    fn error_envelope_shape() {
        let line = render_error(
            Some(3),
            Some("fleet"),
            ErrorCode::RunFailed,
            "2 job(s) lost",
        );
        let v = Json::parse(line.trim_end()).expect("envelope is valid JSON");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        let e = v.get("error").expect("error object");
        assert_eq!(e.get("code").and_then(Json::as_str), Some("run-failed"));
        assert_eq!(decode_payload(&line), None);
    }
}
