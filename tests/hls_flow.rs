//! Experiment E8: the high-level-synthesis use case of §4 — scheduling
//! and allocation results become clock-free RT models, simulate at the
//! abstract level, verify against the algorithmic description, and
//! translate to clocked RTL.

use std::collections::HashMap;

use clockless::clocked::{check_clocked_equivalence, ClockScheme};
use clockless::core::prelude::*;
use clockless::hls::prelude::*;
use clockless::hls::{ResourceClass, ResourceSet};
use clockless::verify::{concrete_check, cross_check, roundtrip_check, verify_synthesis};

fn standard_resources(muls: usize, alus: usize) -> ResourceSet {
    ResourceSet::new([
        ResourceClass::new(
            "MUL",
            [Op::Mul],
            ModuleTiming::Pipelined { latency: 2 },
            muls,
        ),
        ResourceClass::new(
            "ALU",
            [Op::Add, Op::Sub],
            ModuleTiming::Pipelined { latency: 1 },
            alus,
        ),
    ])
}

fn fir_inputs(n: usize) -> (Vec<String>, HashMap<&'static str, i64>) {
    let names: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
    let leaked: Vec<&'static str> = names
        .iter()
        .map(|n| Box::leak(n.clone().into_boxed_str()) as &str)
        .collect();
    let map = leaked
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, (i as i64 + 1) * 3 - 7))
        .collect();
    (names, map)
}

/// Full-flow check: synthesize, simulate, compare with the evaluator,
/// prove symbolically, check conflict-freedom, check the clocked
/// translation.
fn full_flow(g: &clockless::hls::Dfg, resources: &ResourceSet, inputs: &HashMap<&str, i64>) {
    let syn = synthesize(g, resources, inputs).expect("synthesis");
    // Concrete simulation matches the evaluator.
    assert!(concrete_check(g, &syn, inputs).expect("simulates"));
    // Symbolic proof.
    let report = verify_synthesis(g, &syn, 16).expect("verification");
    assert!(report.passed(), "{report}");
    // Emitted schedules are conflict-free, statically and dynamically.
    let cc = cross_check(&syn.model).expect("cross-check runs");
    assert!(cc.predicted.is_empty() && cc.dynamic_only.is_empty());
    // The §2.7 semantics invert on the emitted model.
    roundtrip_check(&syn.model).expect("roundtrip");
    // And the clocked translation is equivalent.
    let eq = check_clocked_equivalence(
        &syn.model,
        ClockScheme::OneCyclePerStep {
            period_fs: clockless::kernel::NS,
        },
    )
    .expect("translates");
    assert!(eq.equivalent(), "{eq}");
}

#[test]
fn fir_filter_across_resource_budgets() {
    let g = fir(&[1, -2, 3, -4, 5]);
    let (_names, inputs) = fir_inputs(5);
    for (muls, alus) in [(1, 1), (2, 1), (2, 2), (5, 4)] {
        full_flow(&g, &standard_resources(muls, alus), &inputs);
    }
}

#[test]
fn horner_polynomial_flow() {
    let g = horner(&[7, -3, 2, 1]);
    let inputs: HashMap<&str, i64> = [("x", 5)].into_iter().collect();
    // Horner needs PassA for the seed coefficient.
    let resources = ResourceSet::new([
        ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 1),
        ResourceClass::new(
            "ALU",
            [Op::Add, Op::Sub, Op::PassA],
            ModuleTiming::Pipelined { latency: 1 },
            1,
        ),
    ]);
    full_flow(&g, &resources, &inputs);
}

#[test]
fn diffeq_benchmark_flow() {
    let g = diffeq();
    let inputs: HashMap<&str, i64> = [("x", 4), ("y", -3), ("u", 7), ("dx", 2)]
        .into_iter()
        .collect();
    for (muls, alus) in [(1, 1), (2, 2), (3, 2)] {
        full_flow(&g, &standard_resources(muls, alus), &inputs);
    }
}

#[test]
fn resource_constraints_trade_time_for_area() {
    // More resources => shorter schedules (monotone, down to the
    // critical path).
    let g = fir(&[2, 4, 6, 8, 10, 12]);
    let (_names, inputs) = fir_inputs(6);
    let mut lengths = Vec::new();
    for muls in [1usize, 2, 3, 6] {
        let syn = synthesize(&g, &standard_resources(muls, 2), &inputs).unwrap();
        lengths.push(syn.model.cs_max());
    }
    for w in lengths.windows(2) {
        assert!(w[1] <= w[0], "lengths not monotone: {lengths:?}");
    }
    // The most generous budget reaches the critical path exactly.
    let cp = clockless::hls::critical_path(&g, &standard_resources(6, 2)).unwrap();
    assert_eq!(*lengths.last().unwrap(), cp, "lengths: {lengths:?}");
    // And the scarcest budget is strictly slower.
    assert!(lengths[0] > cp);
}

#[test]
fn sequential_units_flow() {
    // A sequential (non-pipelined) multiplier serializes initiations but
    // the flow still verifies.
    let g = fir(&[3, 1, 4]);
    let (_names, inputs) = fir_inputs(3);
    let resources = ResourceSet::new([
        ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Sequential { latency: 3 }, 1),
        ResourceClass::new("ADD", [Op::Add], ModuleTiming::Pipelined { latency: 1 }, 1),
    ]);
    full_flow(&g, &resources, &inputs);
}

#[test]
fn random_dags_flow() {
    for seed in [1u64, 7, 42, 1234] {
        let g = random_dag(seed, 24, 4);
        let names: Vec<String> = (0..4).map(|i| format!("in{i}")).collect();
        let inputs: HashMap<&str, i64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as i64 * 11 - 13))
            .collect();
        // Random DAGs include Min/Max/Xor: give the ALU all of them.
        let resources = ResourceSet::new([
            ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 2),
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub, Op::Min, Op::Max, Op::Xor],
                ModuleTiming::Pipelined { latency: 1 },
                2,
            ),
        ]);
        let syn = synthesize(&g, &resources, &inputs).expect("synthesis");
        assert!(
            concrete_check(&g, &syn, &inputs).expect("simulates"),
            "seed {seed}"
        );
        let report = verify_synthesis(&g, &syn, 24).expect("verifies");
        assert!(report.passed(), "seed {seed}: {report}");
        roundtrip_check(&syn.model).expect("roundtrip");
    }
}
