//! The IKS chip's RT-level resource structure (paper Fig. 3).
//!
//! Fig. 3 shows register files `R[]`, `J[]`, `M[]`, registers `P`, `Z`,
//! `Y`, `X`, the two-stage pipelined multiplier `MULT`, the
//! (non-pipelined) adders `Z-ADD`, `Y-ADD`, `X-ADD`, buses `BusA`/`BusB`
//! and several **direct links**. Following §3's advice that "it is better
//! to model more resources than to extend the VHDL subset":
//!
//! * register files become individual registers (`M0`…`M7`, `R0`…`R3`,
//!   `J0`…`J2`);
//! * direct links become dedicated buses (`LZA`, `LZB`, `LCA`, `LCB`) and
//!   the shared write-back path becomes bus `W`;
//! * the chip's trigonometric engine is the `CORDIC` core, a sequential
//!   (non-pipelined) module with selectable operations — the multi-
//!   operation extension §3 introduced.

use clockless_core::{ModuleDecl, ModuleTiming, Op, RtModel, Step, Value};

use crate::fixed::FRAC;

/// Size of the constant/parameter file `M[]`.
pub const M_FILE: usize = 8;
/// Size of the scratch file `R[]`.
pub const R_FILE: usize = 4;
/// Size of the joint-angle file `J[]`.
pub const J_FILE: usize = 3;

/// Latency (control steps) of the sequential CORDIC core.
pub const CORDIC_LATENCY: u32 = 8;
/// Latency of the two-stage pipelined multiplier (§3: "The multiplier is
/// a 2-stage pipelined unit").
pub const MULT_LATENCY: u32 = 2;

/// Builds the chip's resource skeleton (no transfers yet), preloading
/// the `M[]` file with `(index, value)` pairs.
///
/// # Panics
///
/// Panics if an `M[]` index is out of range.
pub fn chip_model(cs_max: Step, m_init: &[(usize, i64)]) -> RtModel {
    let mut m = RtModel::new("iks_chip", cs_max);

    // Register files, expanded to scalar registers.
    for i in 0..M_FILE {
        let init = m_init
            .iter()
            .find(|(idx, _)| *idx == i)
            .map(|(_, v)| Value::Num(*v))
            .unwrap_or(Value::Disc);
        m.add_register_init(format!("M{i}"), init)
            .expect("fresh name");
    }
    assert!(
        m_init.iter().all(|(i, _)| *i < M_FILE),
        "M[] index out of range"
    );
    for i in 0..R_FILE {
        m.add_register(format!("R{i}")).expect("fresh name");
    }
    for i in 0..J_FILE {
        m.add_register(format!("J{i}")).expect("fresh name");
    }
    for r in ["X", "Y", "Z", "P"] {
        m.add_register(r).expect("fresh name");
    }

    // Buses: the two shared buses of Fig. 3, the write-back path, and
    // the direct links modeled as dedicated buses.
    for b in ["BusA", "BusB", "W", "LZA", "LZB", "LCA", "LCB"] {
        m.add_bus(b).expect("fresh name");
    }

    // Functional modules.
    m.add_module(ModuleDecl::single(
        "MULT",
        Op::MulFx(FRAC),
        ModuleTiming::Pipelined {
            latency: MULT_LATENCY,
        },
    ))
    .expect("fresh name");
    // The three adders are combinational multi-operation units; the
    // opcode maps show them computing sums, differences and shifted
    // operands ("X := 0 + Rshift(x2,i)").
    for a in ["ZADD", "XADD", "YADD"] {
        m.add_module(ModuleDecl::multi(
            a,
            [Op::Add, Op::Sub, Op::Shr, Op::PassA, Op::PassB],
            ModuleTiming::Combinational,
        ))
        .expect("fresh name");
    }
    m.add_module(ModuleDecl::multi(
        "CORDIC",
        [
            Op::Atan2Fx(FRAC),
            Op::SqrtFx(FRAC),
            Op::SinFx(FRAC),
            Op::CosFx(FRAC),
        ],
        ModuleTiming::Sequential {
            latency: CORDIC_LATENCY,
        },
    ))
    .expect("fresh name");

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_inventory_matches_fig3() {
        let m = chip_model(10, &[(0, 42)]);
        assert_eq!(m.registers().len(), M_FILE + R_FILE + J_FILE + 4);
        assert_eq!(m.buses().len(), 7);
        assert_eq!(m.modules().len(), 5);
        assert!(m.module_by_name("MULT").is_some());
        assert!(m.module_by_name("CORDIC").is_some());
        // Preload visible.
        let m0 = m.register_by_name("M0").unwrap();
        assert_eq!(m.registers()[m0.0 as usize].init, Value::Num(42));
        let m1 = m.register_by_name("M1").unwrap();
        assert_eq!(m.registers()[m1.0 as usize].init, Value::Disc);
    }

    #[test]
    fn multiplier_is_two_stage_pipelined() {
        let m = chip_model(4, &[]);
        let mult = m.module_by_name("MULT").unwrap();
        assert_eq!(
            m.modules()[mult.0 as usize].timing,
            ModuleTiming::Pipelined { latency: 2 }
        );
    }

    #[test]
    fn adders_are_combinational_multi_op() {
        let m = chip_model(4, &[]);
        for a in ["ZADD", "XADD", "YADD"] {
            let id = m.module_by_name(a).unwrap();
            let decl = &m.modules()[id.0 as usize];
            assert_eq!(decl.timing, ModuleTiming::Combinational);
            assert!(decl.needs_op_port());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_m_index_panics() {
        chip_model(4, &[(M_FILE, 1)]);
    }
}
