//! Writes `BENCH_serve.json` at the repository root: throughput and
//! resident-set size of the `clockless serve` daemon vs job count, cold
//! cache (every job a distinct model → parse + lower every time) against
//! warm cache (one model resident → every job executes the cached
//! `ExecPlan`), plus the headline comparison the daemon exists for:
//! warm-cache `run` jobs against spawning the one-shot CLI per job.
//!
//! Per the workspace convention, job counts and the byte-identity field
//! are machine-independent; `wall_ns`, `jobs_per_sec`, `rss_kb` and the
//! speedup are machine-local. The `speedup_vs_one_shot` row is asserted
//! `>= 5.0` — the acceptance bar for keeping the daemon resident.
//!
//! Requires the release CLI (`cargo build --release`) for the one-shot
//! baseline; run from the repo root:
//!
//! ```text
//! cargo bench --manifest-path crates/bench/Cargo.toml --bench serve_throughput
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use clockless_serve::{decode_payload, run_client, Daemon, ServeConfig};

/// A fig1-shaped model, made textually unique per index so every cold
/// job is a guaranteed cache miss.
fn model_text(i: usize) -> String {
    format!(
        "model bench{i} steps 7\nregister R1 init {}\nregister R2 init 4\n\
         bus B1\nbus B2\nmodule ADD ops add pipelined 1\n\
         transfer (R1,B1,R2,B2,5,ADD,6,B1,R1)\n",
        i % 100
    )
}

/// One NDJSON `run` request line with the model text inlined.
fn run_request(id: usize, text: &str) -> String {
    let escaped = text
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!("{{\"id\":{id},\"op\":\"run\",\"model\":\"{escaped}\"}}\n")
}

/// VmRSS of this process (daemon runs in-process) in kB.
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct Row {
    phase: &'static str,
    jobs: usize,
    wall_ns: u64,
    jobs_per_sec: f64,
    rss_kb: u64,
}

/// Sends `requests` through one client session and returns (wall ns,
/// response payload lines).
fn session(socket: &Path, requests: &str) -> (u64, Vec<String>) {
    let mut out = Vec::new();
    let t = Instant::now();
    run_client(socket, requests.as_bytes(), &mut out, false).expect("client session");
    let ns = t.elapsed().as_nanos() as u64;
    let text = String::from_utf8(out).expect("utf-8 responses");
    (ns, text.lines().map(str::to_string).collect())
}

/// Wall ns per job of the one-shot CLI (`run <model> --json`), best of
/// `samples` spawns, plus the document it prints.
fn one_shot(cli: &Path, model_file: &Path, samples: usize) -> (u64, String) {
    let mut best = u64::MAX;
    let mut doc = String::new();
    for _ in 0..samples {
        let t = Instant::now();
        let out = std::process::Command::new(cli)
            .arg("run")
            .arg(model_file)
            .arg("--json")
            .output()
            .expect("one-shot CLI runs");
        let ns = t.elapsed().as_nanos() as u64;
        assert!(out.status.success(), "{out:?}");
        doc = String::from_utf8(out.stdout).expect("utf-8");
        best = best.min(ns);
    }
    (best, doc)
}

fn main() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cli = repo.join("target/release/clockless");
    assert!(
        cli.exists(),
        "one-shot baseline needs the release CLI: run `cargo build --release` first"
    );

    let tmp: PathBuf =
        std::env::temp_dir().join(format!("clockless-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("tmp dir");
    let socket = tmp.join("daemon.sock");

    // The daemon runs in-process (so rss_kb() sees its cache) on a real
    // Unix socket (so the measurement includes protocol + transport).
    let daemon = Box::leak(Box::new(Daemon::new(ServeConfig::default())));
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || daemon.serve_unix(&socket))
    };
    while !socket.exists() {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut unique = 0usize; // next never-seen model index (cold jobs)

    for jobs in [8usize, 32, 128] {
        // Cold: every request a model the daemon has never parsed.
        let mut reqs = String::new();
        for id in 0..jobs {
            reqs.push_str(&run_request(id, &model_text(unique)));
            unique += 1;
        }
        let (wall_ns, lines) = session(&socket, &reqs);
        assert_eq!(lines.len(), jobs, "every cold job answered");
        rows.push(Row {
            phase: "cold",
            jobs,
            wall_ns,
            jobs_per_sec: jobs as f64 / (wall_ns as f64 / 1e9),
            rss_kb: rss_kb(),
        });

        // Warm: the same model every time — one miss on first contact,
        // then pure cached-plan execution.
        let warm_text = model_text(0);
        let mut reqs = String::new();
        for id in 0..jobs {
            reqs.push_str(&run_request(id, &warm_text));
        }
        let (wall_ns, lines) = session(&socket, &reqs);
        assert_eq!(lines.len(), jobs, "every warm job answered");
        rows.push(Row {
            phase: "warm",
            jobs,
            wall_ns,
            jobs_per_sec: jobs as f64 / (wall_ns as f64 / 1e9),
            rss_kb: rss_kb(),
        });
        eprintln!(
            "jobs={jobs:<4} cold={:>10.0} jobs/s  warm={:>10.0} jobs/s  rss={} kB",
            rows[rows.len() - 2].jobs_per_sec,
            rows[rows.len() - 1].jobs_per_sec,
            rows[rows.len() - 1].rss_kb
        );
    }

    // Headline: warm-cache daemon runs vs spawning the one-shot CLI.
    let warm_text = model_text(0);
    let model_file = tmp.join("bench0.rtl");
    std::fs::write(&model_file, &warm_text).expect("model file");
    let (one_shot_ns, cli_doc) = one_shot(&cli, &model_file, 5);

    let warm_jobs = 64usize;
    let mut reqs = String::new();
    for id in 0..warm_jobs {
        reqs.push_str(&run_request(id, &warm_text));
    }
    let (warm_wall_ns, lines) = session(&socket, &reqs);
    let warm_ns_per_job = warm_wall_ns / warm_jobs as u64;
    let speedup = one_shot_ns as f64 / warm_ns_per_job as f64;

    // The daemon's warm payload must also BE the CLI document, byte for
    // byte — speed without fidelity would be cheating.
    let payload = decode_payload(&lines[0]).expect("run payload");
    let byte_identical = payload == cli_doc;
    assert!(byte_identical, "daemon payload != one-shot CLI document");
    assert!(
        speedup >= 5.0,
        "warm-cache daemon must beat one-shot CLI by >=5x, got {speedup:.1}x \
         ({warm_ns_per_job} ns/job vs {one_shot_ns} ns one-shot)"
    );

    // Stop the daemon and collect its exit.
    let (_, lines) = session(&socket, "{\"id\":0,\"op\":\"shutdown\"}\n");
    assert_eq!(lines.len(), 1);
    server
        .join()
        .expect("server thread")
        .expect("clean daemon exit");
    let _ = std::fs::remove_dir_all(&tmp);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"generated_by\": \"cargo bench --manifest-path crates/bench/Cargo.toml \
         --bench serve_throughput\",\n",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    let _ = writeln!(
        out,
        "  \"one_shot_vs_warm\": {{\"one_shot_ns_per_job\": {one_shot_ns}, \
         \"warm_ns_per_job\": {warm_ns_per_job}, \"speedup_vs_one_shot\": {speedup:.1}, \
         \"required_speedup\": 5.0, \"payload_byte_identical\": {byte_identical}}},"
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"phase\": \"{}\", \"jobs\": {}, \"wall_ns\": {}, \"jobs_per_sec\": {:.0}, \
             \"rss_kb\": {}}}{}",
            r.phase, r.jobs, r.wall_ns, r.jobs_per_sec, r.rss_kb, comma
        );
    }
    out.push_str("  ]\n}\n");

    let path = repo.join("BENCH_serve.json");
    std::fs::write(&path, out).expect("writes BENCH_serve.json");
    eprintln!(
        "serve throughput: one-shot {one_shot_ns} ns/job, warm {warm_ns_per_job} ns/job \
         ({speedup:.1}x); {} rows written to {}",
        rows.len(),
        path.canonicalize().unwrap_or(path).display()
    );
}
