//! The inverse-kinematics microprogram.
//!
//! The original IKS microprogram (Leung & Shanblatt) is not available;
//! per DESIGN.md we write real microcode in the reconstructed format for
//! the two-link planar inverse kinematics of
//! [`crate::algorithm::solve_ik`], scheduled onto the Fig. 3 resources:
//!
//! | cycle | MULT (lat 2)        | ZADD (comb)    | CORDIC (seq, lat 8)     |
//! |-------|---------------------|----------------|--------------------------|
//! | 1     | px·px               |                |                          |
//! | 2     | py·py               |                | atan2(py, px) → φ        |
//! | 3     | → X                 |                |                          |
//! | 4     | → Y                 |                |                          |
//! | 5     |                     | Z := X+Y (r²)  |                          |
//! | 6     |                     | Z := Z−M2      |                          |
//! | 7     | Z·M3 (c2)           |                |                          |
//! | 9     | → X                 |                |                          |
//! | 10    | X·X (c2²)           |                | → P (φ)                  |
//! | 12    | → Y                 |                |                          |
//! | 13    |                     | Z := M4−Y      |                          |
//! | 14    |                     |                | sqrt(Z) (s2)             |
//! | 15    | M6·X (l2·c2)        |                |                          |
//! | 17    | → Z                 |                |                          |
//! | 18    |                     | Z := M5+Z (k1) |                          |
//! | 22    |                     |                | → Y (s2)                 |
//! | 23    | M6·Y (k2)           |                | atan2(Y, X) (θ2)         |
//! | 25    | → R0                |                |                          |
//! | 31    |                     |                | → J1 (θ2); atan2(R0, Z)  |
//! | 39    |                     |                | → R1 (ψ)                 |
//! | 40    |                     | J0 := P−R1     |                          |
//!
//! The `M[]` file holds the pose and the host-precomputed constants:
//! `M0 = px`, `M1 = py`, `M2 = l1²+l2²`, `M3 = 1/(2·l1·l2)`, `M4 = 1.0`,
//! `M5 = l1`, `M6 = l2`.

use clockless_core::{Op, RtModel};

use crate::algorithm::IkConstants;
use crate::fixed::{FRAC, ONE};
use crate::microcode::{Field, MicroInstruction, MicroOpTemplate, OpcodeMaps, OperandPort, RegRef};
use crate::resources::chip_model;
use crate::translate::{translate, TranslateMicrocodeError};

/// Total control steps of the IK microprogram.
pub const IK_STEPS: u32 = 40;

/// Register holding θ1 after the run.
pub const THETA1_REG: &str = "J0";
/// Register holding θ2 after the run.
pub const THETA2_REG: &str = "J1";

fn operand(src: RegRef, bus: &str, module: &str, port: OperandPort) -> MicroOpTemplate {
    MicroOpTemplate::Operand {
        src,
        bus: bus.into(),
        module: module.into(),
        port,
    }
}

fn result(module: &str, bus: &str, dst: RegRef) -> MicroOpTemplate {
    MicroOpTemplate::Result {
        module: module.into(),
        bus: bus.into(),
        dst,
    }
}

fn operation(module: &str, op: Op) -> MicroOpTemplate {
    MicroOpTemplate::Operation {
        module: module.into(),
        op,
    }
}

/// The opcode maps of the IK microprogram.
///
/// Routing codes (`opc1`): 1x = multiplier operand routes, 2x = CORDIC
/// operand routes, 4x = result routes, 5x = the combined configurations
/// a single cycle needs. Operation codes (`opc2`) select what the
/// multiplier, adder and CORDIC core compute.
pub fn ik_opcode_maps() -> OpcodeMaps {
    use Field::{Mr, J, R1};
    use OperandPort::{In1, In2};

    let m_mr = || RegRef::indexed("M", Mr);
    let m_r1 = || RegRef::indexed("M", R1);
    let m_j = || RegRef::indexed("M", J);
    let r_r1 = || RegRef::indexed("R", R1);
    let j_j = || RegRef::indexed("J", J);
    let x = || RegRef::named("X");
    let y = || RegRef::named("Y");
    let z = || RegRef::named("Z");
    let p = || RegRef::named("P");

    let mut maps = OpcodeMaps::default();
    let o1 = &mut maps.opc1;
    o1.insert(0, vec![]);
    o1.insert(
        10,
        vec![
            operand(m_mr(), "BusA", "MULT", In1),
            operand(m_r1(), "BusB", "MULT", In2),
        ],
    );
    o1.insert(
        11,
        vec![
            operand(x(), "BusA", "MULT", In1),
            operand(x(), "BusB", "MULT", In2),
        ],
    );
    o1.insert(
        12,
        vec![
            operand(z(), "BusA", "MULT", In1),
            operand(m_mr(), "BusB", "MULT", In2),
        ],
    );
    o1.insert(
        13,
        vec![
            operand(m_mr(), "BusA", "MULT", In1),
            operand(x(), "BusB", "MULT", In2),
        ],
    );
    o1.insert(
        14,
        vec![
            operand(m_mr(), "BusA", "MULT", In1),
            operand(y(), "BusB", "MULT", In2),
        ],
    );
    o1.insert(
        15,
        vec![
            operand(m_mr(), "BusA", "MULT", In1),
            operand(z(), "BusB", "MULT", In2),
        ],
    );
    o1.insert(
        16,
        vec![
            operand(m_mr(), "BusA", "MULT", In1),
            operand(p(), "BusB", "MULT", In2),
        ],
    );
    o1.insert(21, vec![operand(z(), "LCA", "CORDIC", In1)]);
    o1.insert(40, vec![result("MULT", "W", x())]);
    o1.insert(41, vec![result("MULT", "W", y())]);
    o1.insert(42, vec![result("MULT", "W", z())]);
    o1.insert(43, vec![result("MULT", "W", r_r1())]);
    o1.insert(47, vec![result("CORDIC", "W", y())]);
    o1.insert(49, vec![result("CORDIC", "W", r_r1())]);
    o1.insert(
        50,
        vec![
            operand(m_r1(), "BusA", "MULT", In1),
            operand(m_r1(), "BusB", "MULT", In2),
            operand(m_mr(), "LCA", "CORDIC", In1),
            operand(m_j(), "LCB", "CORDIC", In2),
        ],
    );
    o1.insert(
        51,
        vec![
            operand(x(), "LZA", "ZADD", In1),
            operand(y(), "LZB", "ZADD", In2),
            result("ZADD", "W", z()),
        ],
    );
    o1.insert(
        52,
        vec![
            operand(z(), "LZA", "ZADD", In1),
            operand(m_mr(), "LZB", "ZADD", In2),
            result("ZADD", "W", z()),
        ],
    );
    o1.insert(
        53,
        vec![
            result("CORDIC", "W", p()),
            operand(x(), "BusA", "MULT", In1),
            operand(x(), "BusB", "MULT", In2),
        ],
    );
    o1.insert(
        54,
        vec![
            operand(m_mr(), "LZA", "ZADD", In1),
            operand(y(), "LZB", "ZADD", In2),
            result("ZADD", "W", z()),
        ],
    );
    o1.insert(
        55,
        vec![
            operand(m_mr(), "LZA", "ZADD", In1),
            operand(z(), "LZB", "ZADD", In2),
            result("ZADD", "W", z()),
        ],
    );
    o1.insert(
        56,
        vec![
            operand(m_mr(), "BusA", "MULT", In1),
            operand(y(), "BusB", "MULT", In2),
            operand(y(), "LCA", "CORDIC", In1),
            operand(x(), "LCB", "CORDIC", In2),
        ],
    );
    o1.insert(
        57,
        vec![
            result("CORDIC", "W", j_j()),
            operand(r_r1(), "LCA", "CORDIC", In1),
            operand(z(), "LCB", "CORDIC", In2),
        ],
    );
    o1.insert(
        58,
        vec![
            operand(p(), "LZA", "ZADD", In1),
            operand(r_r1(), "LZB", "ZADD", In2),
            result("ZADD", "W", j_j()),
        ],
    );

    // Codes 60+: the forward-kinematics configurations.
    o1.insert(
        60,
        vec![
            operand(m_mr(), "LZA", "ZADD", In1),
            operand(m_r1(), "LZB", "ZADD", In2),
            result("ZADD", "W", p()),
            operand(m_j(), "LCA", "CORDIC", In1),
        ],
    );
    o1.insert(
        61,
        vec![
            result("CORDIC", "W", x()),
            operand(m_j(), "LCA", "CORDIC", In1),
        ],
    );
    o1.insert(
        62,
        vec![
            result("CORDIC", "W", y()),
            operand(p(), "LCA", "CORDIC", In1),
        ],
    );
    o1.insert(
        63,
        vec![
            result("CORDIC", "W", z()),
            operand(p(), "LCA", "CORDIC", In1),
        ],
    );
    o1.insert(64, vec![result("CORDIC", "W", p())]);
    o1.insert(
        66,
        vec![
            operand(RegRef::indexed("R", R1), "LZA", "ZADD", In1),
            operand(RegRef::indexed("R", Mr), "LZB", "ZADD", In2),
            result("ZADD", "W", j_j()),
        ],
    );

    // Codes 67+: the MACC/FIR configurations (the paper names "MACC,
    // multiplier/accumulator" among the modeled resources).
    o1.insert(
        67,
        vec![
            operand(z(), "LZA", "ZADD", In1),
            operand(r_r1(), "LZB", "ZADD", In2),
            result("ZADD", "W", z()),
        ],
    );
    o1.insert(
        68,
        vec![
            operand(z(), "LZA", "ZADD", In1),
            operand(r_r1(), "LZB", "ZADD", In2),
            result("ZADD", "W", z()),
            result("MULT", "BusB", RegRef::indexed("R", Mr)),
        ],
    );
    o1.insert(
        69,
        vec![
            result("MULT", "W", x()),
            operand(m_mr(), "BusA", "MULT", In1),
            operand(m_r1(), "BusB", "MULT", In2),
        ],
    );
    o1.insert(
        70,
        vec![
            result("MULT", "W", y()),
            operand(m_mr(), "BusA", "MULT", In1),
            operand(m_r1(), "BusB", "MULT", In2),
        ],
    );
    o1.insert(
        71,
        vec![
            result("MULT", "BusB", RegRef::indexed("R", J)),
            operand(x(), "LZA", "ZADD", In1),
            operand(y(), "LZB", "ZADD", In2),
            result("ZADD", "W", z()),
        ],
    );

    let o2 = &mut maps.opc2;
    o2.insert(0, vec![]);
    o2.insert(1, vec![operation("MULT", Op::MulFx(FRAC))]);
    o2.insert(2, vec![operation("ZADD", Op::Add)]);
    o2.insert(3, vec![operation("ZADD", Op::Sub)]);
    o2.insert(4, vec![operation("CORDIC", Op::SqrtFx(FRAC))]);
    o2.insert(
        5,
        vec![
            operation("MULT", Op::MulFx(FRAC)),
            operation("CORDIC", Op::Atan2Fx(FRAC)),
        ],
    );
    o2.insert(6, vec![operation("CORDIC", Op::Atan2Fx(FRAC))]);
    o2.insert(
        7,
        vec![
            operation("ZADD", Op::Add),
            operation("CORDIC", Op::CosFx(FRAC)),
        ],
    );
    o2.insert(8, vec![operation("CORDIC", Op::SinFx(FRAC))]);
    o2.insert(9, vec![operation("CORDIC", Op::CosFx(FRAC))]);

    maps
}

/// The IK microprogram: one row per active cycle
/// (`addr cycle opc1 opc2 j r1 mr`, the paper's table format).
pub fn ik_microprogram() -> Vec<MicroInstruction> {
    let row = |addr, step, opc1, opc2, j, r1, mr| MicroInstruction {
        addr,
        step,
        opc1,
        opc2,
        j,
        r1,
        mr,
    };
    vec![
        row(0, 1, 10, 1, 0, 0, 0),   // MULT px·px
        row(1, 2, 50, 5, 0, 1, 1),   // MULT py·py ; CORDIC atan2(M1, M0)
        row(2, 3, 40, 0, 0, 0, 0),   // X := px²
        row(3, 4, 41, 0, 0, 0, 0),   // Y := py²
        row(4, 5, 51, 2, 0, 0, 0),   // Z := X + Y
        row(5, 6, 52, 3, 0, 0, 2),   // Z := Z − M2
        row(6, 7, 12, 1, 0, 0, 3),   // MULT Z·M3
        row(7, 9, 40, 0, 0, 0, 0),   // X := c2
        row(8, 10, 53, 1, 0, 0, 0),  // P := φ ; MULT X·X
        row(9, 12, 41, 0, 0, 0, 0),  // Y := c2²
        row(10, 13, 54, 3, 0, 0, 4), // Z := M4 − Y
        row(11, 14, 21, 4, 0, 0, 0), // CORDIC sqrt(Z)
        row(12, 15, 13, 1, 0, 0, 6), // MULT M6·X
        row(13, 17, 42, 0, 0, 0, 0), // Z := l2·c2
        row(14, 18, 55, 2, 0, 0, 5), // Z := M5 + Z  (k1)
        row(15, 22, 47, 0, 0, 0, 0), // Y := s2
        row(16, 23, 56, 5, 0, 0, 6), // MULT M6·Y ; CORDIC atan2(Y, X)
        row(17, 25, 43, 0, 0, 0, 0), // R0 := k2
        row(18, 31, 57, 6, 1, 0, 0), // J1 := θ2 ; CORDIC atan2(R0, Z)
        row(19, 39, 49, 0, 0, 1, 0), // R1 := ψ
        row(20, 40, 58, 3, 0, 1, 0), // J0 := P − R1
    ]
}

/// Total control steps of the forward-kinematics microprogram.
pub const FK_STEPS: u32 = 37;

/// Register holding the x coordinate after a forward-kinematics run.
pub const FK_X_REG: &str = "J0";
/// Register holding the y coordinate after a forward-kinematics run.
pub const FK_Y_REG: &str = "J1";

/// The forward-kinematics microprogram: computes
/// `x = l1·cos θ1 + l2·cos(θ1+θ2)`, `y = l1·sin θ1 + l2·sin(θ1+θ2)` on
/// the same chip resources, with the CORDIC core in rotation mode
/// (`M0 = θ1`, `M1 = θ2`, `M5 = l1`, `M6 = l2`):
///
/// | cycle | MULT       | ZADD             | CORDIC                  |
/// |-------|------------|------------------|-------------------------|
/// | 1     |            | P := θ1+θ2       | cos(θ1)                 |
/// | 9     |            |                  | → X ; sin(θ1)           |
/// | 10    | l1·X       |                  |                         |
/// | 12    | → R0       |                  |                         |
/// | 17    |            |                  | → Y ; cos(P)            |
/// | 18    | l1·Y       |                  |                         |
/// | 20    | → R1       |                  |                         |
/// | 25    |            |                  | → Z ; sin(P)            |
/// | 26    | l2·Z       |                  |                         |
/// | 28    | → R2       |                  |                         |
/// | 29    |            | J0 := R0+R2 (x)  |                         |
/// | 33    |            |                  | → P                     |
/// | 34    | l2·P       |                  |                         |
/// | 36    | → R3       |                  |                         |
/// | 37    |            | J1 := R1+R3 (y)  |                         |
pub fn fk_microprogram() -> Vec<MicroInstruction> {
    let row = |addr, step, opc1, opc2, j, r1, mr| MicroInstruction {
        addr,
        step,
        opc1,
        opc2,
        j,
        r1,
        mr,
    };
    vec![
        row(0, 1, 60, 7, 0, 1, 0),   // ZADD M0+M1 -> P ; CORDIC cos(M0)
        row(1, 9, 61, 8, 0, 0, 0),   // X := cos θ1 ; CORDIC sin(M0)
        row(2, 10, 13, 1, 0, 0, 5),  // MULT M5·X
        row(3, 12, 43, 0, 0, 0, 0),  // R0 := l1·cos θ1
        row(4, 17, 62, 9, 0, 0, 0),  // Y := sin θ1 ; CORDIC cos(P)
        row(5, 18, 14, 1, 0, 0, 5),  // MULT M5·Y
        row(6, 20, 43, 0, 0, 1, 0),  // R1 := l1·sin θ1
        row(7, 25, 63, 8, 0, 0, 0),  // Z := cos θ12 ; CORDIC sin(P)
        row(8, 26, 15, 1, 0, 0, 6),  // MULT M6·Z
        row(9, 28, 43, 0, 0, 2, 0),  // R2 := l2·cos θ12
        row(10, 29, 66, 2, 0, 0, 2), // J0 := R0 + R2 (x)
        row(11, 33, 64, 0, 0, 0, 0), // P := sin θ12
        row(12, 34, 16, 1, 0, 0, 6), // MULT M6·P
        row(13, 36, 43, 0, 0, 3, 0), // R3 := l2·sin θ12
        row(14, 37, 66, 2, 1, 1, 3), // J1 := R1 + R3 (y)
    ]
}

/// Builds the chip model running the forward-kinematics microprogram for
/// joint angles `(theta1, theta2)` (Q16.16 radians).
///
/// # Errors
///
/// Propagates microcode-translation and model-validation errors.
pub fn build_fk_chip(
    theta1: i64,
    theta2: i64,
    constants: IkConstants,
) -> Result<IksChip, Box<dyn std::error::Error>> {
    let g = constants.geometry;
    let m_init = [(0, theta1), (1, theta2), (5, g.l1), (6, g.l2)];
    let mut model = chip_model(FK_STEPS, &m_init);
    let tuples = translate(&fk_microprogram(), &ik_opcode_maps(), &model).map_err(Box::new)?;
    for t in tuples {
        model.add_transfer(t)?;
    }
    Ok(IksChip { model, constants })
}

/// Total control steps of the 4-tap FIR (MACC) microprogram.
pub const FIR_STEPS: u32 = 7;

/// Register holding the FIR result (the accumulator) after the run.
pub const FIR_OUT_REG: &str = "Z";

/// A 4-tap FIR filter microprogram on the MACC datapath: the pipelined
/// multiplier streams one product per cycle (`x_i · c_i` in Q16.16) and
/// the Z-adder accumulates them — the paper's "MACC,
/// multiplier/accumulator" resource in action.
///
/// `M0..M3` hold the samples, `M4..M7` the coefficients; `X`/`Y`/`R0`/`R1`
/// buffer products in flight; the sum lands in `Z`:
///
/// | cycle | MULT        | ZADD            |
/// |-------|-------------|-----------------|
/// | 1     | x0·c0       |                 |
/// | 2     | x1·c1       |                 |
/// | 3     | x2·c2 → X   |                 |
/// | 4     | x3·c3 → Y   |                 |
/// | 5     | → R0        | Z := X+Y        |
/// | 6     | → R1        | Z := Z+R0       |
/// | 7     |             | Z := Z+R1       |
pub fn fir_microprogram() -> Vec<MicroInstruction> {
    let row = |addr, step, opc1, opc2, j, r1, mr| MicroInstruction {
        addr,
        step,
        opc1,
        opc2,
        j,
        r1,
        mr,
    };
    vec![
        row(0, 1, 10, 1, 0, 4, 0), // MULT M0·M4
        row(1, 2, 10, 1, 0, 5, 1), // MULT M1·M5
        row(2, 3, 69, 1, 0, 6, 2), // X := p0 ; MULT M2·M6
        row(3, 4, 70, 1, 0, 7, 3), // Y := p1 ; MULT M3·M7
        row(4, 5, 71, 2, 0, 0, 0), // R0 := p2 ; Z := X+Y
        row(5, 6, 68, 2, 0, 0, 1), // R1 := p3 ; Z := Z+R0
        row(6, 7, 67, 2, 0, 1, 0), // Z := Z+R1
    ]
}

/// Builds the chip model running the 4-tap FIR microprogram over Q16.16
/// samples and coefficients.
///
/// # Errors
///
/// Propagates microcode-translation and model-validation errors.
pub fn build_fir_chip(
    samples: [i64; 4],
    coefficients: [i64; 4],
) -> Result<RtModel, Box<dyn std::error::Error>> {
    let m_init: Vec<(usize, i64)> = samples
        .iter()
        .enumerate()
        .map(|(i, &v)| (i, v))
        .chain(coefficients.iter().enumerate().map(|(i, &v)| (i + 4, v)))
        .collect();
    let mut model = chip_model(FIR_STEPS, &m_init);
    let tuples = translate(&fir_microprogram(), &ik_opcode_maps(), &model).map_err(Box::new)?;
    for t in tuples {
        model.add_transfer(t)?;
    }
    Ok(model)
}

/// A fully built IKS chip model for one pose.
#[derive(Debug, Clone)]
pub struct IksChip {
    /// The complete clock-free RT model (resources + transfers).
    pub model: RtModel,
    /// The constants the `M[]` file was loaded with.
    pub constants: IkConstants,
}

/// Builds the chip model for a pose `(px, py)` (Q16.16) and arm
/// constants: chip skeleton, `M[]` preload, microcode translation, and
/// transfer insertion.
///
/// # Errors
///
/// Propagates microcode-translation errors; model-validation failures
/// (which would indicate an inconsistency between the microprogram and
/// the resource declarations) are also reported as strings.
pub fn build_ik_chip(
    px: i64,
    py: i64,
    constants: IkConstants,
) -> Result<IksChip, Box<dyn std::error::Error>> {
    let g = constants.geometry;
    let m_init = [
        (0, px),
        (1, py),
        (2, constants.k_sum),
        (3, constants.inv_2l1l2),
        (4, ONE),
        (5, g.l1),
        (6, g.l2),
    ];
    let mut model = chip_model(IK_STEPS, &m_init);
    let maps = ik_opcode_maps();
    let program = ik_microprogram();
    let tuples = translate(&program, &maps, &model).map_err(Box::new)?;
    for t in tuples {
        model.add_transfer(t)?;
    }
    Ok(IksChip { model, constants })
}

/// Convenience: number of transfer tuples the microprogram expands to.
pub fn ik_tuple_count() -> Result<usize, TranslateMicrocodeError> {
    let model = chip_model(IK_STEPS, &[]);
    Ok(translate(&ik_microprogram(), &ik_opcode_maps(), &model)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{solve_ik, ArmGeometry};
    use crate::fixed::{from_fx, to_fx};
    use clockless_core::{RtSimulation, Value};

    fn run_chip(px: f64, py: f64) -> (i64, i64, IkConstants) {
        let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
        let chip = build_ik_chip(to_fx(px), to_fx(py), constants).expect("chip builds");
        let mut sim = RtSimulation::traced(&chip.model).expect("elaborates");
        let summary = sim.run_to_completion().expect("runs");
        assert!(
            summary.conflicts.as_ref().unwrap().is_clean(),
            "microprogram must be conflict-free: {}",
            summary.conflicts.unwrap()
        );
        let t1 = summary.register(THETA1_REG).expect("J0 exists");
        let t2 = summary.register(THETA2_REG).expect("J1 exists");
        let (Value::Num(t1), Value::Num(t2)) = (t1, t2) else {
            panic!("joint registers must hold numbers, got {t1:?}/{t2:?}");
        };
        (t1, t2, constants)
    }

    #[test]
    fn chip_matches_algorithmic_model_bit_exactly() {
        for (px, py) in [(1.0, 1.0), (1.5, 0.2), (-0.8, 1.1), (0.3, -1.2)] {
            let (t1, t2, constants) = run_chip(px, py);
            let golden = solve_ik(to_fx(px), to_fx(py), &constants).expect("reachable");
            assert_eq!(t1, golden.theta1, "θ1 for ({px},{py})");
            assert_eq!(t2, golden.theta2, "θ2 for ({px},{py})");
        }
    }

    #[test]
    fn chip_solution_satisfies_forward_kinematics() {
        let (t1, t2, constants) = run_chip(1.2, 0.7);
        let sol = crate::algorithm::IkSolution {
            theta1: t1,
            theta2: t2,
        };
        let (fx, fy) = crate::algorithm::forward_kinematics(&sol, &constants.geometry);
        assert!((fx - 1.2).abs() < 1e-2, "fx = {fx}");
        assert!((fy - 0.7).abs() < 1e-2, "fy = {fy}");
        // Sanity: the angles are plausible radians.
        assert!(from_fx(t2) > 0.0 && from_fx(t2) < std::f64::consts::PI);
    }

    #[test]
    fn microprogram_translates_to_expected_tuple_count() {
        // 11 initiations: 6 MULT, 5 ZADD... counted from the table:
        // MULT at 1,2,7,10,15,23 (6), ZADD at 5,6,13,18,40 (5),
        // CORDIC at 2,14,23,31 (4) = 15 tuples.
        assert_eq!(ik_tuple_count().unwrap(), 15);
    }

    #[test]
    fn microprogram_is_conflict_free_statically() {
        // The microprogram must also pass the *static* conflict check of
        // the clocked translation (cross-validation of both detectors).
        let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
        let chip = build_ik_chip(to_fx(1.0), to_fx(1.0), constants).unwrap();
        // Reuse core validation only here; the full clocked check lives
        // in the cross-crate integration tests.
        for t in chip.model.tuples() {
            chip.model.validate_tuple(t).expect("tuples validate");
        }
    }

    #[test]
    fn fk_chip_matches_fixed_point_golden_bit_exactly() {
        use crate::algorithm::forward_kinematics_fx;
        let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
        for (t1, t2) in [(0.3f64, 0.9f64), (-0.7, 1.2), (2.4, 0.5), (-2.0, -1.0)] {
            let (t1, t2) = (to_fx(t1), to_fx(t2));
            let chip = build_fk_chip(t1, t2, constants).expect("fk chip builds");
            let mut sim = RtSimulation::traced(&chip.model).expect("elaborates");
            let summary = sim.run_to_completion().expect("runs");
            assert!(summary.conflicts.as_ref().unwrap().is_clean());
            let x = summary.register(FK_X_REG).unwrap().num().unwrap();
            let y = summary.register(FK_Y_REG).unwrap().num().unwrap();
            let (gx, gy) = forward_kinematics_fx(t1, t2, &constants.geometry);
            assert_eq!(x, gx, "x for angles ({t1},{t2})");
            assert_eq!(y, gy, "y for angles ({t1},{t2})");
        }
    }

    #[test]
    fn ik_then_fk_on_chip_closes_the_loop() {
        // The full robotics loop, entirely on simulated hardware: solve
        // the pose with the IK microprogram, feed the joint angles into
        // the FK microprogram, land back on the target.
        let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
        for (px, py) in [(1.0f64, 1.0f64), (0.4, -1.3), (-1.5, 0.3)] {
            let (t1, t2, _) = run_chip(px, py);
            let chip = build_fk_chip(t1, t2, constants).expect("fk chip builds");
            let mut sim = RtSimulation::new(&chip.model).expect("elaborates");
            let summary = sim.run_to_completion().expect("runs");
            let x = from_fx(summary.register(FK_X_REG).unwrap().num().unwrap());
            let y = from_fx(summary.register(FK_Y_REG).unwrap().num().unwrap());
            assert!(
                (x - px).abs() < 2e-2 && (y - py).abs() < 2e-2,
                "IK∘FK({px},{py}) = ({x},{y})"
            );
        }
    }

    #[test]
    fn fir_chip_computes_the_fixed_point_dot_product() {
        use crate::fixed::mul_fx;
        let samples = [to_fx(1.5), to_fx(-2.0), to_fx(0.25), to_fx(3.0)];
        let coeffs = [to_fx(0.5), to_fx(1.0), to_fx(-4.0), to_fx(0.125)];
        let model = build_fir_chip(samples, coeffs).expect("fir chip builds");
        let mut sim = RtSimulation::traced(&model).expect("elaborates");
        let summary = sim.run_to_completion().expect("runs");
        assert!(summary.conflicts.as_ref().unwrap().is_clean());
        let golden: i64 = samples
            .iter()
            .zip(&coeffs)
            .map(|(&x, &c)| mul_fx(x, c))
            .sum();
        assert_eq!(
            summary.register(crate::program::FIR_OUT_REG).unwrap().num(),
            Some(golden)
        );
        // ≈ 0.75 - 2.0 - 1.0 + 0.375
        assert!((from_fx(golden) - (-1.875)).abs() < 1e-3);
    }

    #[test]
    fn fir_chip_streams_the_pipelined_multiplier_every_cycle() {
        let model = build_fir_chip([to_fx(1.0); 4], [to_fx(1.0); 4]).unwrap();
        let mut mult_steps: Vec<u32> = model
            .tuples()
            .iter()
            .filter(|t| t.module == "MULT")
            .map(|t| t.read_step)
            .collect();
        mult_steps.sort();
        // Back-to-back initiations: the MACC multiplier is pipelined.
        assert_eq!(mult_steps, vec![1, 2, 3, 4]);
    }

    #[test]
    fn fir_chip_has_no_dataflow_lints() {
        // (Cross-crate lint coverage lives in the workspace tests; here
        // we at least pin conflict-freedom and the roundtrip.)
        let model = build_fir_chip([to_fx(2.0); 4], [to_fx(0.5); 4]).unwrap();
        for t in model.tuples() {
            model.validate_tuple(t).expect("valid");
        }
    }

    #[test]
    fn cordic_initiations_respect_the_core_latency() {
        let program = ik_microprogram();
        let maps = ik_opcode_maps();
        let model = chip_model(IK_STEPS, &[]);
        let tuples = translate(&program, &maps, &model).unwrap();
        let mut cordic_steps: Vec<u32> = tuples
            .iter()
            .filter(|t| t.module == "CORDIC")
            .map(|t| t.read_step)
            .collect();
        cordic_steps.sort();
        for w in cordic_steps.windows(2) {
            assert!(
                w[1] - w[0] >= crate::resources::CORDIC_LATENCY,
                "CORDIC re-initiated too early: {w:?}"
            );
        }
    }
}
