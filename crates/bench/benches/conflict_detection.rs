//! Experiment E3 (§2.7 conflict localization): every injected conflict is
//! found at exactly the predicted step and phase; the bench measures the
//! cost of the traced run plus report extraction, and of the static
//! analysis, across conflict densities.

use clockless_bench::conflicted_model;
use clockless_bench::harness::Harness;
use clockless_core::{Phase, PhaseTime, RtSimulation};
use clockless_verify::{cross_check, static_conflicts};

fn report() {
    eprintln!("--- E3: conflict detection and localization ---");
    eprintln!(
        "{:>8} {:>10} {:>10} {:>12} {:>14}",
        "pairs", "predicted", "confirmed", "dyn-only", "localization"
    );
    for pairs in [1usize, 4, 16] {
        let model = conflicted_model(pairs);
        let cc = cross_check(&model).expect("runs");
        // Every injected pair is predicted and confirmed at (step, rb).
        let mut exact = true;
        for i in 0..pairs {
            let want = PhaseTime::new(2 * i as u32 + 1, Phase::Rb);
            exact &= cc
                .confirmed
                .iter()
                .any(|p| p.name == format!("X{i}") && p.visible_at() == want);
        }
        eprintln!(
            "{pairs:>8} {:>10} {:>10} {:>12} {:>14}",
            cc.predicted.len(),
            cc.confirmed.len(),
            cc.dynamic_only.len(),
            if exact { "exact" } else { "MISSED" }
        );
        assert!(cc.all_confirmed());
        assert!(exact);
    }
}

fn main() {
    report();
    let mut h = Harness::new();
    {
        let mut g = h.group("conflict_detection");

        for pairs in [1usize, 4, 16] {
            let model = conflicted_model(pairs);
            g.bench(format!("dynamic_traced_run/{pairs}"), || {
                let mut sim = RtSimulation::traced(&model).expect("elaborates");
                sim.run_to_completion().expect("runs");
                sim.conflicts().expect("traced")
            });
            g.bench(format!("static_analysis/{pairs}"), || {
                static_conflicts(&model)
            });
        }
    }
    h.print_table();
}
