//! Golden-run value monitors: checker-mode selection and check-program
//! construction for fault campaigns.
//!
//! The resolution function detects exactly the faults that double-drive
//! a resolved signal; value corruption (dropped transfers, skewed
//! writes, corrupted inits) completes cleanly and stays silent. The
//! monitors close that gap: one canonical clean run records the
//! per-delta value table of every register output and bus
//! ([`clockless_core::check::record_table`]), and every mutant is
//! compared against it — the first divergent `(step, phase, signal)` is
//! reported exactly like conflict detection reports its first `ILLEGAL`.
//!
//! [`CheckerMode`] selects which detector families a campaign arms;
//! [`build_checkers`] performs the recording (and, via
//! [`mine_invariants`], the mining)
//! once per campaign.
//!
//! # Examples
//!
//! ```
//! use clockless_core::model::fig1_model;
//! use clockless_verify::monitor::{build_checkers, CheckerMode};
//!
//! let mode: CheckerMode = "all".parse()?;
//! let program = build_checkers(&fig1_model(3, 4), mode)?.expect("armed");
//! assert!(program.monitor.is_some());
//! assert!(!program.invariants.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::str::FromStr;

use clockless_core::check::{check_signals, record_table, CheckProgram, CheckedError};
use clockless_core::model::RtModel;

use crate::invariants::mine_invariants;

/// Which value-checker families a campaign (or checked run) arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckerMode {
    /// No value checking — the resolution function is the only detector
    /// (the paper's baseline).
    #[default]
    Off,
    /// Golden-run value monitors only.
    Golden,
    /// Mined functional invariants only.
    Invariants,
    /// Both monitors and invariants.
    All,
}

impl CheckerMode {
    /// Stable lowercase spelling (`off|golden|invariants|all`).
    pub fn as_str(self) -> &'static str {
        match self {
            CheckerMode::Off => "off",
            CheckerMode::Golden => "golden",
            CheckerMode::Invariants => "invariants",
            CheckerMode::All => "all",
        }
    }

    /// `true` when golden monitors are armed.
    pub fn monitors(self) -> bool {
        matches!(self, CheckerMode::Golden | CheckerMode::All)
    }

    /// `true` when mined invariants are armed.
    pub fn invariants(self) -> bool {
        matches!(self, CheckerMode::Invariants | CheckerMode::All)
    }
}

impl fmt::Display for CheckerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a [`CheckerMode`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCheckerModeError(pub String);

impl fmt::Display for ParseCheckerModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown checker mode `{}` (expected off|golden|invariants|all)",
            self.0
        )
    }
}

impl std::error::Error for ParseCheckerModeError {}

impl FromStr for CheckerMode {
    type Err = ParseCheckerModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(CheckerMode::Off),
            "golden" => Ok(CheckerMode::Golden),
            "invariants" => Ok(CheckerMode::Invariants),
            "all" => Ok(CheckerMode::All),
            other => Err(ParseCheckerModeError(other.to_string())),
        }
    }
}

/// Builds the [`CheckProgram`] for `model` under `mode`, or `None` for
/// [`CheckerMode::Off`].
///
/// One clean interpreter run records the per-delta value table of every
/// register output and bus; the table *is* the golden monitor, and the
/// invariant miner learns from its register rows. Both backends produce
/// byte-identical per-delta values, so the recording is engine-agnostic.
///
/// # Errors
///
/// The clean run's own failure (a model that cannot run cleanly has no
/// golden reference to check against).
pub fn build_checkers(
    model: &RtModel,
    mode: CheckerMode,
) -> Result<Option<CheckProgram>, CheckedError> {
    if mode == CheckerMode::Off {
        return Ok(None);
    }
    let signals = check_signals(model);
    let table = record_table(model, &signals)?;
    let invariants = if mode.invariants() {
        mine_invariants(&signals, &table)
    } else {
        Vec::new()
    };
    Ok(Some(CheckProgram {
        monitor: mode.monitors().then_some(table),
        signals,
        invariants,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;

    #[test]
    fn mode_parse_and_display_roundtrip() {
        for mode in [
            CheckerMode::Off,
            CheckerMode::Golden,
            CheckerMode::Invariants,
            CheckerMode::All,
        ] {
            assert_eq!(mode.to_string().parse::<CheckerMode>().unwrap(), mode);
        }
        assert_eq!("ALL".parse::<CheckerMode>().unwrap(), CheckerMode::All);
        assert_eq!(CheckerMode::default(), CheckerMode::Off);
        let err = "both".parse::<CheckerMode>().unwrap_err();
        assert!(err.to_string().contains("both"));
    }

    #[test]
    fn build_checkers_arms_the_selected_families() {
        let model = fig1_model(3, 4);
        assert!(build_checkers(&model, CheckerMode::Off).unwrap().is_none());

        let golden = build_checkers(&model, CheckerMode::Golden)
            .unwrap()
            .unwrap();
        assert!(golden.monitor.is_some());
        assert!(golden.invariants.is_empty());

        let inv = build_checkers(&model, CheckerMode::Invariants)
            .unwrap()
            .unwrap();
        assert!(inv.monitor.is_none());
        assert!(!inv.invariants.is_empty());

        let all = build_checkers(&model, CheckerMode::All).unwrap().unwrap();
        assert!(all.monitor.is_some());
        assert_eq!(all.invariants, inv.invariants);
        // R1, R2, B1, B2 — registers first.
        assert_eq!(all.signals.len(), 4);
    }
}
