//! The algorithmic-level inverse-kinematics golden model.
//!
//! §3 verifies the microcode-derived RT model "against a description at
//! the algorithmic level" — "some kind of bottom-up evaluation of low
//! level descriptions". This module is that algorithmic description: the
//! closed-form inverse kinematics of a two-link planar arm, computed in
//! the chip's own Q16.16 arithmetic (`mul_fx`, CORDIC `atan2`, `sqrt`) so
//! the comparison against the simulated chip is **bit-exact**.
//!
//! Given a target `(px, py)` and link lengths `l1`, `l2` (elbow-down
//! solution):
//!
//! ```text
//! c2 = (px² + py² − l1² − l2²) / (2·l1·l2)
//! s2 = √(1 − c2²)
//! θ2 = atan2(s2, c2)
//! θ1 = atan2(py, px) − atan2(l2·s2, l1 + l2·c2)
//! ```

use std::fmt;

use crate::cordic;
use crate::fixed::{mul_fx, recip_fx, to_fx, ONE};

/// Geometry of the two-link arm, in Q16.16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmGeometry {
    /// Length of the first link.
    pub l1: i64,
    /// Length of the second link.
    pub l2: i64,
}

impl ArmGeometry {
    /// Geometry from floating-point link lengths.
    ///
    /// # Panics
    ///
    /// Panics if either length is not strictly positive.
    pub fn new(l1: f64, l2: f64) -> ArmGeometry {
        assert!(l1 > 0.0 && l2 > 0.0, "link lengths must be positive");
        ArmGeometry {
            l1: to_fx(l1),
            l2: to_fx(l2),
        }
    }
}

/// Precomputed chip constants: the datapath has no divider, so the
/// division by `2·l1·l2` becomes a multiplication by this precomputed
/// reciprocal. These values are loaded into the `M[]` register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IkConstants {
    /// `l1² + l2²` (Q16.16).
    pub k_sum: i64,
    /// `1 / (2·l1·l2)` (Q16.16).
    pub inv_2l1l2: i64,
    /// The geometry itself.
    pub geometry: ArmGeometry,
}

impl IkConstants {
    /// Computes the constants for a geometry.
    pub fn new(geometry: ArmGeometry) -> IkConstants {
        let k_sum = mul_fx(geometry.l1, geometry.l1) + mul_fx(geometry.l2, geometry.l2);
        let inv_2l1l2 = recip_fx(2 * mul_fx(geometry.l1, geometry.l2));
        IkConstants {
            k_sum,
            inv_2l1l2,
            geometry,
        }
    }
}

/// A joint-angle solution, Q16.16 radians.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IkSolution {
    /// Shoulder angle.
    pub theta1: i64,
    /// Elbow angle (elbow-down: `θ2 ≥ 0`).
    pub theta2: i64,
}

/// Why a pose has no solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IkError {
    /// The target lies outside the annulus the arm can reach
    /// (`|c2| > 1`).
    Unreachable,
}

impl fmt::Display for IkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IkError::Unreachable => write!(f, "target pose is outside the arm's reach"),
        }
    }
}

impl std::error::Error for IkError {}

/// Solves the inverse kinematics for target `(px, py)` (Q16.16), exactly
/// as the chip computes it.
///
/// # Errors
///
/// [`IkError::Unreachable`] when the target is outside the reachable
/// annulus.
///
/// # Examples
///
/// ```
/// use clockless_iks::algorithm::{solve_ik, ArmGeometry, IkConstants};
/// use clockless_iks::fixed::{from_fx, to_fx};
///
/// let consts = IkConstants::new(ArmGeometry::new(1.0, 1.0));
/// let sol = solve_ik(to_fx(1.0), to_fx(1.0), &consts)?;
/// // Fully stretched along the diagonal would be (√2, √2); (1,1) bends
/// // the elbow by 90°.
/// assert!((from_fx(sol.theta2) - std::f64::consts::FRAC_PI_2).abs() < 1e-2);
/// # Ok::<(), clockless_iks::algorithm::IkError>(())
/// ```
pub fn solve_ik(px: i64, py: i64, consts: &IkConstants) -> Result<IkSolution, IkError> {
    let g = consts.geometry;
    // r² = px² + py²
    let r2 = mul_fx(px, px) + mul_fx(py, py);
    // c2 = (r² − (l1²+l2²)) · 1/(2·l1·l2)
    let num = r2 - consts.k_sum;
    let c2 = mul_fx(num, consts.inv_2l1l2);
    if !(-ONE..=ONE).contains(&c2) {
        return Err(IkError::Unreachable);
    }
    // s2 = √(1 − c2²)
    let s2sq = ONE - mul_fx(c2, c2);
    let s2 = cordic::sqrt(s2sq);
    let theta2 = cordic::atan2(s2, c2);
    // θ1 = atan2(py, px) − atan2(l2·s2, l1 + l2·c2)
    let k1 = g.l1 + mul_fx(g.l2, c2);
    let k2 = mul_fx(g.l2, s2);
    let phi = cordic::atan2(py, px);
    let psi = cordic::atan2(k2, k1);
    Ok(IkSolution {
        theta1: phi - psi,
        theta2,
    })
}

/// Forward kinematics in the chip's own Q16.16 arithmetic — the
/// algorithmic golden model for the forward-kinematics microprogram
/// (`crate::program::build_fk_chip`): bit-exact against the simulated
/// chip by construction.
pub fn forward_kinematics_fx(theta1: i64, theta2: i64, geometry: &ArmGeometry) -> (i64, i64) {
    let (s1, c1) = crate::cordic::sincos(theta1);
    let (s12, c12) = crate::cordic::sincos(theta1 + theta2);
    (
        mul_fx(geometry.l1, c1) + mul_fx(geometry.l2, c12),
        mul_fx(geometry.l1, s1) + mul_fx(geometry.l2, s12),
    )
}

/// Forward kinematics in floating point — the independent cross-check
/// for the golden model: feeding a solution back must land on the target.
pub fn forward_kinematics(sol: &IkSolution, geometry: &ArmGeometry) -> (f64, f64) {
    use crate::fixed::from_fx;
    let t1 = from_fx(sol.theta1);
    let t2 = from_fx(sol.theta2);
    let l1 = from_fx(geometry.l1);
    let l2 = from_fx(geometry.l2);
    (
        l1 * t1.cos() + l2 * (t1 + t2).cos(),
        l1 * t1.sin() + l2 * (t1 + t2).sin(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::from_fx;

    fn check_pose(px: f64, py: f64, l1: f64, l2: f64) {
        let consts = IkConstants::new(ArmGeometry::new(l1, l2));
        let sol = solve_ik(to_fx(px), to_fx(py), &consts)
            .unwrap_or_else(|e| panic!("({px},{py}) should be reachable: {e}"));
        let (fx, fy) = forward_kinematics(&sol, &consts.geometry);
        assert!(
            (fx - px).abs() < 5e-3 && (fy - py).abs() < 5e-3,
            "target ({px},{py}) -> fk ({fx},{fy})"
        );
    }

    #[test]
    fn reachable_poses_roundtrip_through_forward_kinematics() {
        check_pose(1.0, 1.0, 1.0, 1.0);
        check_pose(1.5, 0.2, 1.0, 1.0);
        check_pose(-0.8, 1.1, 1.0, 1.0);
        check_pose(0.3, -1.2, 1.0, 1.0);
        check_pose(2.5, 1.0, 2.0, 1.5);
        check_pose(-1.0, -2.0, 2.0, 1.5);
    }

    #[test]
    fn grid_of_poses_roundtrips() {
        let consts = IkConstants::new(ArmGeometry::new(1.0, 1.0));
        let mut solved = 0;
        for ix in -10..=10 {
            for iy in -10..=10 {
                let (px, py) = (ix as f64 * 0.19, iy as f64 * 0.19);
                let r = (px * px + py * py).sqrt();
                if !(0.2..=1.9).contains(&r) {
                    continue; // avoid the singular fringe
                }
                if let Ok(sol) = solve_ik(to_fx(px), to_fx(py), &consts) {
                    let (fx, fy) = forward_kinematics(&sol, &consts.geometry);
                    assert!(
                        (fx - px).abs() < 1e-2 && (fy - py).abs() < 1e-2,
                        "({px},{py}) -> ({fx},{fy})"
                    );
                    solved += 1;
                }
            }
        }
        assert!(solved > 150, "solved only {solved} poses");
    }

    #[test]
    fn unreachable_poses_rejected() {
        let consts = IkConstants::new(ArmGeometry::new(1.0, 1.0));
        assert_eq!(
            solve_ik(to_fx(3.0), to_fx(0.0), &consts),
            Err(IkError::Unreachable)
        );
        // Inside the inner annulus of an l1 >> l2 arm.
        let consts2 = IkConstants::new(ArmGeometry::new(2.0, 0.5));
        assert_eq!(
            solve_ik(to_fx(0.1), to_fx(0.0), &consts2),
            Err(IkError::Unreachable)
        );
    }

    #[test]
    fn elbow_down_solution_has_nonnegative_theta2() {
        let consts = IkConstants::new(ArmGeometry::new(1.0, 1.0));
        for (px, py) in [(1.0, 1.0), (0.5, -1.2), (-1.3, 0.4)] {
            let sol = solve_ik(to_fx(px), to_fx(py), &consts).unwrap();
            assert!(sol.theta2 >= 0, "theta2 = {}", from_fx(sol.theta2));
        }
    }

    #[test]
    fn constants_match_geometry() {
        let c = IkConstants::new(ArmGeometry::new(1.0, 1.0));
        assert!((from_fx(c.k_sum) - 2.0).abs() < 1e-3);
        assert!((from_fx(c.inv_2l1l2) - 0.5).abs() < 1e-3);
    }
}
