//! Automatic translation of control-step timing into a clocked design.
//!
//! §4 of the paper: "There are several ways to translate a control step
//! scheme into a clock scheme based on clock signals. The transformation
//! into a usual synthesizable RT description based on clock signals can be
//! performed automatically." This module performs that transformation:
//! the transfer tuples are compiled into **per-step routing tables**
//! (which bus carries what, which register loads from which bus, which
//! operation each module performs), and a [`ClockScheme`] decides how many
//! clock cycles implement one control step.
//!
//! Translation is *static*: any resource conflict (two sources on one bus
//! in one step, two loads into one register, overlapping use of a
//! sequential module) is rejected here — the same conflicts the abstract
//! model exposes dynamically as `ILLEGAL` values. The `clockless-verify`
//! crate cross-checks the two detectors against each other.

use std::collections::HashMap;
use std::fmt;

use clockless_core::{BusId, Guard, ModuleId, ModuleTiming, Op, RegisterId, RtModel, Step};

/// How control steps map to clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockScheme {
    /// One clock cycle per control step: operands are read, routed and
    /// combined combinationally within the cycle; registers latch at the
    /// next rising edge.
    OneCyclePerStep {
        /// Clock period in femtoseconds.
        period_fs: u64,
    },
    /// Two clock cycles per control step: a conservative implementation
    /// giving the datapath a full cycle to settle before the write cycle.
    /// Functionally identical, twice the cycles and physical time.
    TwoCyclesPerStep {
        /// Clock period in femtoseconds.
        period_fs: u64,
    },
}

impl ClockScheme {
    /// Clock cycles implementing one control step.
    pub fn cycles_per_step(self) -> u64 {
        match self {
            ClockScheme::OneCyclePerStep { .. } => 1,
            ClockScheme::TwoCyclesPerStep { .. } => 2,
        }
    }

    /// The clock period in femtoseconds.
    pub fn period_fs(self) -> u64 {
        match self {
            ClockScheme::OneCyclePerStep { period_fs }
            | ClockScheme::TwoCyclesPerStep { period_fs } => period_fs,
        }
    }
}

impl Default for ClockScheme {
    /// One cycle per step with a 10 ns clock.
    fn default() -> Self {
        ClockScheme::OneCyclePerStep {
            period_fs: 10 * clockless_kernel::NS,
        }
    }
}

/// What drives a bus during a given control step (kept for reporting; the
/// routing tables separate the read side and the write side, because the
/// abstract model time-multiplexes a bus between the `ra`/`rb` and
/// `wa`/`wb` phases of one step and the clocked architecture therefore
/// synthesizes one mux net per side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusSource {
    /// A register's output port.
    Reg(RegisterId),
    /// A module's output port.
    Module(ModuleId),
}

/// Static resource conflicts found during translation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TranslateError {
    /// Two sources routed onto one bus in the same step.
    BusConflict {
        /// The bus's name.
        bus: String,
        /// The step of the collision.
        step: Step,
    },
    /// Two buses routed into one module operand port in the same step.
    PortConflict {
        /// The module's name.
        module: String,
        /// Which operand port (1 or 2).
        port: u8,
        /// The step of the collision.
        step: Step,
    },
    /// Two different operations selected on one module in the same step.
    OpConflict {
        /// The module's name.
        module: String,
        /// The step of the collision.
        step: Step,
    },
    /// Two buses routed into one register in the same step.
    RegisterLoadConflict {
        /// The register's name.
        register: String,
        /// The step of the collision.
        step: Step,
    },
    /// A sequential (non-pipelined) module was re-initiated while busy.
    SequentialOverlap {
        /// The module's name.
        module: String,
        /// Step of the offending second initiation.
        step: Step,
    },
    /// The model declares a memory. Memories are indexed resources with
    /// run-time addressing and whole-memory poisoning on a bad address;
    /// the §4 routing-table architecture has no clocked counterpart for
    /// them, so such models are rejected rather than mistranslated.
    UnsupportedMemory {
        /// The memory's name.
        memory: String,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::BusConflict { bus, step } => {
                write!(f, "bus `{bus}` has two sources in step {step}")
            }
            TranslateError::PortConflict { module, port, step } => {
                write!(
                    f,
                    "module `{module}` port {port} has two sources in step {step}"
                )
            }
            TranslateError::OpConflict { module, step } => {
                write!(f, "module `{module}` selects two operations in step {step}")
            }
            TranslateError::RegisterLoadConflict { register, step } => {
                write!(
                    f,
                    "register `{register}` loads from two buses in step {step}"
                )
            }
            TranslateError::SequentialOverlap { module, step } => {
                write!(
                    f,
                    "sequential module `{module}` re-initiated while busy in step {step}"
                )
            }
            TranslateError::UnsupportedMemory { memory } => {
                write!(
                    f,
                    "memory `{memory}` has no clocked translation (outside the section 4 subset)"
                )
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// Per-step routing tables compiled from the transfer tuples.
///
/// Index 0 of each outer `Vec` corresponds to control step 1.
#[derive(Debug, Clone, Default)]
pub struct RoutingTables {
    /// Read-side bus sources per step (registers feeding buses at `ra`).
    pub bus_read: Vec<HashMap<BusId, RegisterId>>,
    /// Write-side bus sources per step (modules feeding buses at `wa`).
    pub bus_write: Vec<HashMap<BusId, ModuleId>>,
    /// Module first-operand routing per step.
    pub mod_in1: Vec<HashMap<ModuleId, BusId>>,
    /// Module second-operand routing per step.
    pub mod_in2: Vec<HashMap<ModuleId, BusId>>,
    /// Module operation selection per step.
    pub mod_op: Vec<HashMap<ModuleId, Op>>,
    /// Register load selections per step.
    pub reg_load: Vec<HashMap<RegisterId, BusId>>,
    /// Guards gating the read-side bus drives per step: a false guard
    /// puts `DISC` on the bus instead of the register value, exactly as
    /// the abstract guarded transfer process does.
    pub bus_read_guard: Vec<HashMap<BusId, Guard>>,
    /// Guards gating the register load enables per step, evaluated over
    /// the register values current at the end-of-step latch edge (the
    /// write-side spec's guard evaluation point in the abstract model).
    pub reg_load_guard: Vec<HashMap<RegisterId, Guard>>,
}

impl RoutingTables {
    fn with_steps(cs_max: Step) -> RoutingTables {
        let n = cs_max as usize;
        RoutingTables {
            bus_read: vec![HashMap::new(); n],
            bus_write: vec![HashMap::new(); n],
            mod_in1: vec![HashMap::new(); n],
            mod_in2: vec![HashMap::new(); n],
            mod_op: vec![HashMap::new(); n],
            reg_load: vec![HashMap::new(); n],
            bus_read_guard: vec![HashMap::new(); n],
            reg_load_guard: vec![HashMap::new(); n],
        }
    }

    /// Control-signal count of the generated controller: one select line
    /// per non-empty table entry (a proxy for controller complexity,
    /// reported by the translation bench).
    pub fn control_signal_count(&self) -> usize {
        self.bus_read.iter().map(HashMap::len).sum::<usize>()
            + self.bus_write.iter().map(HashMap::len).sum::<usize>()
            + self.mod_in1.iter().map(HashMap::len).sum::<usize>()
            + self.mod_in2.iter().map(HashMap::len).sum::<usize>()
            + self.mod_op.iter().map(HashMap::len).sum::<usize>()
            + self.reg_load.iter().map(HashMap::len).sum::<usize>()
    }
}

/// A clocked design: the source model, its compiled routing tables and
/// the clock scheme.
#[derive(Debug, Clone)]
pub struct ClockedDesign {
    model: RtModel,
    tables: RoutingTables,
    scheme: ClockScheme,
}

impl ClockedDesign {
    /// Translates a clock-free model into a clocked design.
    ///
    /// # Errors
    ///
    /// Returns the first [`TranslateError`] if the schedule has a static
    /// resource conflict — the clocked architecture's multiplexers cannot
    /// realize two simultaneous sources, so such models are rejected
    /// rather than poisoned.
    pub fn translate(
        model: &RtModel,
        scheme: ClockScheme,
    ) -> Result<ClockedDesign, TranslateError> {
        if let Some(m) = model.memories().first() {
            return Err(TranslateError::UnsupportedMemory {
                memory: m.name.clone(),
            });
        }
        let mut tables = RoutingTables::with_steps(model.cs_max());
        let mut seq_busy_until: HashMap<ModuleId, Step> = HashMap::new();

        for tuple in model.tuples() {
            let mid = model
                .module_by_name(&tuple.module)
                .expect("validated tuple references known module");
            let mdecl = &model.modules()[mid.0 as usize];
            let rs = tuple.read_step;
            let rsi = (rs - 1) as usize;

            // Operand routes.
            for (route, port) in [(&tuple.src_a, 1u8), (&tuple.src_b, 2u8)] {
                let Some(route) = route else { continue };
                let rid = model
                    .register_by_name(&route.register)
                    .expect("validated tuple references known register");
                let bid = model
                    .bus_by_name(&route.bus)
                    .expect("validated tuple references known bus");
                // Any second drive is a conflict — the abstract model's
                // resolution function flags even equal values (§2.3).
                if tables.bus_read[rsi].insert(bid, rid).is_some() {
                    return Err(TranslateError::BusConflict {
                        bus: route.bus.clone(),
                        step: rs,
                    });
                }
                let port_table = if port == 1 {
                    &mut tables.mod_in1[rsi]
                } else {
                    &mut tables.mod_in2[rsi]
                };
                if port_table.insert(mid, bid).is_some() {
                    return Err(TranslateError::PortConflict {
                        module: tuple.module.clone(),
                        port,
                        step: rs,
                    });
                }
                if let Some(g) = &tuple.guard {
                    tables.bus_read_guard[rsi].insert(bid, g.clone());
                }
            }

            // Operation selection (explicit or the module's single op).
            let op = model.effective_op(tuple);
            if tables.mod_op[rsi].insert(mid, op).is_some() {
                return Err(TranslateError::OpConflict {
                    module: tuple.module.clone(),
                    step: rs,
                });
            }

            // Sequential modules: initiation interval check.
            if let ModuleTiming::Sequential { latency } = mdecl.timing {
                if let Some(&busy_until) = seq_busy_until.get(&mid) {
                    if rs < busy_until {
                        return Err(TranslateError::SequentialOverlap {
                            module: tuple.module.clone(),
                            step: rs,
                        });
                    }
                }
                seq_busy_until.insert(mid, rs + latency.max(1));
            }

            // Write-back route.
            if let Some(w) = &tuple.write {
                let wsi = (w.step - 1) as usize;
                let bid = model
                    .bus_by_name(&w.bus)
                    .expect("validated tuple references known bus");
                let rid = model
                    .register_by_name(&w.register)
                    .expect("validated tuple references known register");
                if tables.bus_write[wsi].insert(bid, mid).is_some() {
                    return Err(TranslateError::BusConflict {
                        bus: w.bus.clone(),
                        step: w.step,
                    });
                }
                if tables.reg_load[wsi].insert(rid, bid).is_some() {
                    return Err(TranslateError::RegisterLoadConflict {
                        register: w.register.clone(),
                        step: w.step,
                    });
                }
                if let Some(g) = &tuple.guard {
                    tables.reg_load_guard[wsi].insert(rid, g.clone());
                }
            }
        }

        Ok(ClockedDesign {
            model: model.clone(),
            tables,
            scheme,
        })
    }

    /// The source model.
    pub fn model(&self) -> &RtModel {
        &self.model
    }

    /// The compiled routing tables.
    pub fn tables(&self) -> &RoutingTables {
        &self.tables
    }

    /// The clock scheme.
    pub fn scheme(&self) -> ClockScheme {
        self.scheme
    }

    /// Total clock cycles a full run takes (including the final latch
    /// edge's cycle).
    pub fn total_cycles(&self) -> u64 {
        self.model.cs_max() as u64 * self.scheme.cycles_per_step() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;
    use clockless_core::prelude::*;

    #[test]
    fn fig1_translates_cleanly() {
        let model = fig1_model(1, 2);
        let d = ClockedDesign::translate(&model, ClockScheme::default()).unwrap();
        let t = d.tables();
        // Step 5 (index 4): B1 from R1, B2 from R2, ADD ports routed.
        let b1 = model.bus_by_name("B1").unwrap();
        let b2 = model.bus_by_name("B2").unwrap();
        let r1 = model.register_by_name("R1").unwrap();
        let add = model.module_by_name("ADD").unwrap();
        assert_eq!(t.bus_read[4][&b1], r1);
        assert_eq!(t.mod_in1[4][&add], b1);
        assert_eq!(t.mod_in2[4][&add], b2);
        assert_eq!(t.mod_op[4][&add], Op::Add);
        // Step 6 (index 5): B1's write side fed by ADD, R1 loads from B1.
        assert_eq!(t.bus_write[5][&b1], add);
        assert_eq!(t.reg_load[5][&r1], b1);
        assert_eq!(d.total_cycles(), 8);
    }

    #[test]
    fn bus_conflict_rejected_statically() {
        let mut m = RtModel::new("c", 6);
        m.add_register_init("R1", Value::Num(1)).unwrap();
        m.add_register_init("R2", Value::Num(2)).unwrap();
        m.add_register("R3").unwrap();
        m.add_bus("B1").unwrap();
        m.add_bus("B2").unwrap();
        m.add_module(ModuleDecl::single(
            "ADD",
            Op::Add,
            ModuleTiming::Pipelined { latency: 1 },
        ))
        .unwrap();
        m.add_module(ModuleDecl::single(
            "CP",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(3, "ADD")
                .src_a("R1", "B1")
                .src_b("R2", "B2")
                .write(4, "B2", "R3"),
        )
        .unwrap();
        m.add_transfer(
            TransferTuple::new(3, "CP")
                .src_a("R2", "B1")
                .write(3, "B2", "R3"),
        )
        .unwrap();
        let err = ClockedDesign::translate(&m, ClockScheme::default()).unwrap_err();
        assert_eq!(
            err,
            TranslateError::BusConflict {
                bus: "B1".into(),
                step: 3
            }
        );
    }

    #[test]
    fn sequential_overlap_rejected() {
        let mut m = RtModel::new("s", 8);
        m.add_register_init("A", Value::Num(1)).unwrap();
        m.add_register_init("B", Value::Num(2)).unwrap();
        m.add_register("C").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_bus("Z").unwrap();
        m.add_module(ModuleDecl::single(
            "MUL",
            Op::Mul,
            ModuleTiming::Sequential { latency: 2 },
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(1, "MUL")
                .src_a("A", "X")
                .src_b("B", "Y")
                .write(3, "Z", "C"),
        )
        .unwrap();
        // Step 2 initiation overlaps the busy window [1, 3).
        let bad = TransferTuple::new(2, "MUL")
            .src_a("A", "X")
            .src_b("B", "Y")
            .write(4, "Z", "C");
        m.add_transfer(bad).unwrap();
        let err = ClockedDesign::translate(&m, ClockScheme::default()).unwrap_err();
        assert!(matches!(
            err,
            TranslateError::SequentialOverlap { step: 2, .. }
        ));
    }

    #[test]
    fn shared_route_is_a_conflict() {
        // Two tuples reading the same register over the same bus in the
        // same step would instantiate two TRANS drivers; the abstract
        // resolution flags even equal values (§2.3), so the translation
        // rejects the schedule for consistency with the dynamic detector.
        let mut m = RtModel::new("share", 4);
        m.add_register_init("A", Value::Num(5)).unwrap();
        m.add_register("C").unwrap();
        m.add_register("D").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_bus("Z").unwrap();
        m.add_module(ModuleDecl::single(
            "CP1",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_module(ModuleDecl::single(
            "CP2",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "CP1")
                .src_a("A", "X")
                .write(2, "Y", "C"),
        )
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "CP2")
                .src_a("A", "X")
                .write(2, "Z", "D"),
        )
        .unwrap();
        assert_eq!(
            ClockedDesign::translate(&m, ClockScheme::default()).unwrap_err(),
            TranslateError::BusConflict {
                bus: "X".into(),
                step: 2
            }
        );
    }

    #[test]
    fn scheme_properties() {
        let one = ClockScheme::OneCyclePerStep { period_fs: 100 };
        let two = ClockScheme::TwoCyclesPerStep { period_fs: 100 };
        assert_eq!(one.cycles_per_step(), 1);
        assert_eq!(two.cycles_per_step(), 2);
        assert_eq!(one.period_fs(), 100);
    }
}
