//! Error types for kernel elaboration and simulation.

use std::error::Error;
use std::fmt;

use crate::signal::SignalId;
use crate::time::SimTime;

/// Errors raised while building (elaborating) or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// A signal with more than one driver was declared without a
    /// resolution function, which VHDL semantics forbid.
    UnresolvedMultipleDrivers {
        /// The offending signal.
        signal: SignalId,
        /// The signal's name, for diagnostics.
        name: String,
        /// How many drivers were attached.
        drivers: usize,
    },
    /// A process assigned to a signal it never declared as driven.
    NotADriver {
        /// The offending signal.
        signal: SignalId,
        /// The name of the process that attempted the assignment.
        process: String,
    },
    /// The per-instant delta-cycle budget was exhausted, which almost
    /// always indicates a zero-delay oscillation in the model.
    DeltaOverflow {
        /// Time point at which the limit was hit.
        at: SimTime,
        /// The configured limit.
        limit: u64,
    },
    /// The run's wall-clock budget expired before the model quiesced.
    WallBudgetExceeded {
        /// Simulation time point at which the budget ran out.
        at: SimTime,
    },
    /// A signal id referred to a signal that does not exist.
    UnknownSignal(SignalId),
    /// `initialize` was called twice, or `run` before `initialize`.
    BadPhase(&'static str),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnresolvedMultipleDrivers { name, drivers, .. } => write!(
                f,
                "signal `{name}` has {drivers} drivers but no resolution function"
            ),
            KernelError::NotADriver { signal, process } => write!(
                f,
                "process `{process}` assigned to signal {signal:?} without driving it"
            ),
            KernelError::DeltaOverflow { at, limit } => write!(
                f,
                "delta-cycle limit {limit} exhausted at {at}; model is oscillating"
            ),
            KernelError::WallBudgetExceeded { at } => {
                write!(f, "wall-clock budget exhausted at {at}")
            }
            KernelError::UnknownSignal(id) => write!(f, "unknown signal {id:?}"),
            KernelError::BadPhase(msg) => write!(f, "kernel used out of order: {msg}"),
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let e = KernelError::DeltaOverflow {
            at: SimTime::ZERO,
            limit: 10,
        };
        let s = e.to_string();
        assert!(s.contains("delta-cycle limit 10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KernelError>();
    }
}
