//! The IKS chip (§3): inverse kinematics from microcode.
//!
//! Reconstructs the paper's application: a microprogram in the
//! `addr cycle opc1 opc2 j r1 m/r` format is translated into transfer
//! tuples (the paper's "C program"), the resulting clock-free RT model is
//! simulated for a series of target poses, and every answer is compared
//! bit-exactly against the algorithmic-level golden model — the paper's
//! bottom-up verification.
//!
//! Run with: `cargo run --example iks_robot`

use clockless::core::RtSimulation;
use clockless::iks::prelude::*;
use clockless::iks::{ik_microprogram, ik_opcode_maps};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = ArmGeometry::new(1.0, 1.0);
    let constants = IkConstants::new(geometry);

    // Show a few microprogram rows in the paper's table format.
    println!("microprogram excerpt (paper §3 format):");
    println!("  addr cycle opc1 opc2  j r1 mr");
    for row in ik_microprogram().iter().take(6) {
        println!(
            "  {:>4} {:>5} {:>4} {:>4} {:>2} {:>2} {:>2}",
            row.addr, row.step, row.opc1, row.opc2, row.j, row.r1, row.mr
        );
    }
    let maps = ik_opcode_maps();
    println!(
        "  … {} rows total, {} opc1 codes, {} opc2 codes",
        ik_microprogram().len(),
        maps.opc1.len(),
        maps.opc2.len()
    );

    println!("\npose sweep (chip simulation vs algorithmic golden model):");
    println!("  target (x, y)      θ1 chip    θ2 chip    fk error   bit-exact");
    for (px, py) in [
        (1.0f64, 1.0f64),
        (1.5, 0.2),
        (-0.8, 1.1),
        (0.3, -1.2),
        (0.9, 1.4),
        (-1.2, -0.9),
    ] {
        // Build the chip model: resources of Fig. 3 + translated microcode.
        let chip = build_ik_chip(to_fx(px), to_fx(py), constants)?;
        let mut sim = RtSimulation::new(&chip.model)?;
        let summary = sim.run_to_completion()?;
        let t1 = summary
            .register(THETA1_REG)
            .and_then(|v| v.num())
            .expect("J0 holds θ1");
        let t2 = summary
            .register(THETA2_REG)
            .and_then(|v| v.num())
            .expect("J1 holds θ2");

        // The bottom-up verification: chip result vs algorithmic level.
        let golden = solve_ik(to_fx(px), to_fx(py), &constants)?;
        let exact = t1 == golden.theta1 && t2 == golden.theta2;

        // Independent cross-check: forward kinematics must land on target.
        let sol = IkSolution {
            theta1: t1,
            theta2: t2,
        };
        let (fx, fy) = clockless::iks::forward_kinematics(&sol, &geometry);
        let err = ((fx - px).powi(2) + (fy - py).powi(2)).sqrt();

        println!(
            "  ({px:>5.2}, {py:>5.2})   {:>8.4}   {:>8.4}   {err:>8.2e}   {exact}",
            from_fx(t1),
            from_fx(t2),
        );
        assert!(exact, "chip must match the golden model bit for bit");
        assert!(err < 1e-2, "forward kinematics must close the loop");
    }

    // Model inventory, the way §3 describes the chip.
    let chip = build_ik_chip(to_fx(1.0), to_fx(1.0), constants)?;
    println!(
        "\nchip model: {} registers, {} buses, {} modules, {} transfers over {} control steps",
        chip.model.registers().len(),
        chip.model.buses().len(),
        chip.model.modules().len(),
        chip.model.tuples().len(),
        chip.model.cs_max()
    );

    // Close the loop entirely on simulated hardware: the IK chip's joint
    // angles feed the FK microprogram (CORDIC core in rotation mode) and
    // must land back on the target pose.
    use clockless::iks::{build_fk_chip, FK_X_REG, FK_Y_REG};
    println!("\nIK ∘ FK on chip (forward-kinematics microprogram):");
    for (px, py) in [(1.0f64, 1.0f64), (0.4, -1.3), (-1.5, 0.3)] {
        let ik = build_ik_chip(to_fx(px), to_fx(py), constants)?;
        let mut sim = RtSimulation::new(&ik.model)?;
        let summary = sim.run_to_completion()?;
        let t1 = summary.register(THETA1_REG).unwrap().num().unwrap();
        let t2 = summary.register(THETA2_REG).unwrap().num().unwrap();

        let fk = build_fk_chip(t1, t2, constants)?;
        let mut sim = RtSimulation::new(&fk.model)?;
        let summary = sim.run_to_completion()?;
        let x = from_fx(summary.register(FK_X_REG).unwrap().num().unwrap());
        let y = from_fx(summary.register(FK_Y_REG).unwrap().num().unwrap());
        println!("  target ({px:>5.2}, {py:>5.2}) -> FK(IK) = ({x:>6.3}, {y:>6.3})");
        assert!((x - px).abs() < 2e-2 && (y - py).abs() < 2e-2);
    }
    println!("OK: microcode → transfers → simulation ≡ algorithmic model, and IK∘FK closes.");
    Ok(())
}
